//! Cross-crate integration tests: the paper's headline claims, exercised
//! through the umbrella crate's public API exactly as a downstream user
//! would.

use tetris::metrics::slowdown::SlowdownSummary;
use tetris::prelude::*;
use tetris::sim::GreedyFifo;

fn cluster() -> ClusterConfig {
    ClusterConfig::uniform(20, MachineSpec::paper_large())
}

fn suite(seed: u64) -> Workload {
    WorkloadSuiteConfig::scaled(50, 0.08).generate(seed)
}

fn run(w: &Workload, sched: Box<dyn SchedulerPolicy>, seed: u64) -> tetris::sim::SimOutcome {
    Simulation::build(cluster(), w.clone())
        .scheduler(sched)
        .seed(seed)
        .run()
}

#[test]
fn headline_tetris_beats_slot_and_drf_schedulers() {
    // The validated experiment configuration (20 machines, 50 jobs,
    // seed 42 — the same point EXPERIMENTS.md reports).
    let w = suite(42);
    let tetris = run(
        &w,
        Box::new(TetrisScheduler::new(TetrisConfig::default())),
        42,
    );
    let fair = run(&w, Box::new(FairScheduler::new()), 42);
    let cap = run(&w, Box::new(CapacityScheduler::new()), 42);
    let drf = run(&w, Box::new(DrfScheduler::new()), 42);
    assert!(tetris.all_jobs_completed());

    for base in [&fair, &cap, &drf] {
        let imp = ImprovementSummary::compare(&tetris, base);
        assert!(
            imp.median() > 5.0,
            "median JCT gain vs {} too small: {:.1}%",
            base.scheduler,
            imp.median()
        );
        assert!(
            imp.avg_jct > 5.0,
            "avg JCT gain vs {} too small: {:.1}%",
            base.scheduler,
            imp.avg_jct
        );
    }
}

#[test]
fn makespan_gains_with_all_jobs_at_time_zero() {
    let mut w = suite(3);
    for j in &mut w.jobs {
        j.arrival = 0.0;
    }
    let tetris = run(
        &w,
        Box::new(TetrisScheduler::new(TetrisConfig::default())),
        3,
    );
    let drf = run(&w, Box::new(DrfScheduler::new()), 3);
    let cap = run(&w, Box::new(CapacityScheduler::new()), 3);
    assert!(
        tetris.makespan() < drf.makespan(),
        "tetris {:.0} vs drf {:.0}",
        tetris.makespan(),
        drf.makespan()
    );
    assert!(
        tetris.makespan() < cap.makespan(),
        "tetris {:.0} vs capacity {:.0}",
        tetris.makespan(),
        cap.makespan()
    );
}

#[test]
fn tetris_tasks_run_unstretched_baselines_contend() {
    let w = suite(3);
    let tetris = run(
        &w,
        Box::new(TetrisScheduler::new(TetrisConfig::default())),
        3,
    );
    let cap = run(&w, Box::new(CapacityScheduler::new()), 3);
    // Tetris allocates peak demands and never over-allocates → its tasks
    // run at their planned rates. The slot scheduler over-allocates and
    // its tasks contend.
    assert!(
        tetris.mean_task_stretch() < 1.10,
        "{}",
        tetris.mean_task_stretch()
    );
    assert!(cap.mean_task_stretch() > 1.3, "{}", cap.mean_task_stretch());
}

#[test]
fn upper_bound_dominates_every_policy() {
    let w = suite(4);
    let ub = UpperBoundScheduler::new().simulate(&w, cluster().total_capacity());
    assert!(ub.complete());
    for sched in [
        Box::new(TetrisScheduler::new(TetrisConfig::default())) as Box<dyn SchedulerPolicy>,
        Box::new(FairScheduler::new()),
        Box::new(DrfScheduler::new()),
        Box::new(GreedyFifo::new()),
    ] {
        let o = run(&w, sched, 4);
        assert!(
            ub.avg_jct() <= o.avg_jct() * 1.001,
            "upper bound {:.1} lost to {} at {:.1}",
            ub.avg_jct(),
            o.scheduler,
            o.avg_jct()
        );
    }
}

#[test]
fn fairness_knob_bounds_slowdowns() {
    let w = suite(5);
    let fair = run(&w, Box::new(FairScheduler::new()), 5);
    let mut unfair_cfg = TetrisConfig::default();
    unfair_cfg.fairness_knob = 0.0;
    let mut fair_cfg = TetrisConfig::default();
    fair_cfg.fairness_knob = 0.75;
    let unfair = run(&w, Box::new(TetrisScheduler::new(unfair_cfg)), 5);
    let fairish = run(&w, Box::new(TetrisScheduler::new(fair_cfg)), 5);
    let s_unfair = SlowdownSummary::compare(&unfair, &fair);
    let s_fairish = SlowdownSummary::compare(&fairish, &fair);
    // Raising f must not increase the fraction of jobs slowed (much).
    assert!(
        s_fairish.frac_slowed <= s_unfair.frac_slowed + 0.05,
        "f=0.75 slowed {:.2}, f=0 slowed {:.2}",
        s_fairish.frac_slowed,
        s_unfair.frac_slowed
    );
}

#[test]
fn trace_roundtrip_preserves_simulation_results() {
    let w = suite(6);
    let json = tetris::workload::trace::to_json(&w, "integration test").unwrap();
    let back = tetris::workload::trace::from_json(&json).unwrap().workload;
    let a = run(
        &w,
        Box::new(TetrisScheduler::new(TetrisConfig::default())),
        6,
    );
    let b = run(
        &back,
        Box::new(TetrisScheduler::new(TetrisConfig::default())),
        6,
    );
    assert_eq!(a.makespan(), b.makespan());
    assert_eq!(
        a.tasks.iter().map(|t| t.finish).collect::<Vec<_>>(),
        b.tasks.iter().map(|t| t.finish).collect::<Vec<_>>()
    );
}

#[test]
fn facebook_trace_runs_under_all_schedulers() {
    let w = FacebookTraceConfig {
        n_jobs: 40,
        scale: 0.04,
        ..FacebookTraceConfig::default()
    }
    .generate(7);
    for sched in [
        Box::new(TetrisScheduler::new(TetrisConfig::default())) as Box<dyn SchedulerPolicy>,
        Box::new(FairScheduler::new()),
        Box::new(CapacityScheduler::new()),
        Box::new(DrfScheduler::new()),
        Box::new(SrtfScheduler::new()),
        Box::new(RandomScheduler::seeded(7)),
    ] {
        let name = sched.name().to_string();
        let o = run(&w, sched, 7);
        assert!(
            o.all_jobs_completed(),
            "{name} failed to complete the trace"
        );
    }
}

#[test]
fn estimation_mode_still_completes_and_stays_close_to_oracle() {
    use tetris::scheduler::EstimationMode;
    let w = FacebookTraceConfig {
        n_jobs: 40,
        scale: 0.04,
        ..FacebookTraceConfig::default()
    }
    .generate(8);
    let oracle = run(
        &w,
        Box::new(TetrisScheduler::new(TetrisConfig::default())),
        8,
    );
    let mut cfg = TetrisConfig::default();
    cfg.estimation = EstimationMode::Learned {
        overestimate: 1.5,
        warmup: 3,
    };
    let learned = run(&w, Box::new(TetrisScheduler::new(cfg)), 8);
    assert!(learned.all_jobs_completed());
    // Over-estimation costs some efficiency but must stay in the same
    // ballpark (the tracker reclaims what over-estimates leave idle).
    assert!(
        learned.avg_jct() < oracle.avg_jct() * 1.5,
        "learned {:.1} vs oracle {:.1}",
        learned.avg_jct(),
        oracle.avg_jct()
    );
}
