//! Golden equivalence suite for the event-hot-path performance pass.
//!
//! The optimized schedulers reuse warm scratch buffers (`ScheduleScratch`,
//! generation-stamped sets, candidate arenas) and take availability-based
//! shortcuts (the SRTF quick prefilter). Both are only legal if they are
//! *invisible*: every decision — assignments, score breakdowns, event
//! order, job/task outcomes — must be identical to the unoptimized
//! reference path. This suite pins that across ≥3 seeds × 2 workload
//! shapes for:
//!
//! * `TetrisScheduler` with warm (reused) scratch vs the same scheduler
//!   with its scratch dropped before every `schedule()` call;
//! * `SrtfScheduler::new()` (envelope prefilter) vs
//!   `SrtfScheduler::exhaustive()` (checks every machine).
//!
//! Comparison is over the full observability event stream — which carries
//! per-placement `DecisionScores` — with the one wall-clock field
//! (`HeartbeatProcessed::wall_ns`) zeroed, plus a structural fingerprint
//! of the outcome (per-job finishes, per-task placements).
//!
//! The event-driven API adds a third axis: every policy with incremental
//! `on_event` state (Tetris's per-job candidate caches, the slot
//! baselines' ledgers, DRF's active-job list) is pinned against the same
//! policy behind the [`MarkAllDirty`] adapter — which swallows events, so
//! the inner policy never syncs and recomputes everything from the view —
//! on fault-free runs *and* under machine crash/recover churn (the event
//! arms a quiet run never exercises).

use tetris::prelude::*;
use tetris::sim::{ClusterView, MarkAllDirty, SimConfig};
use tetris_obs::{Event, Obs, VecRecorder};

const SEEDS: [u64; 3] = [11, 42, 77];

/// Tetris whose scratch is dropped before every call: the cold reference.
struct ColdScratchTetris(TetrisScheduler);

impl SchedulerPolicy for ColdScratchTetris {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn uses_tracker(&self) -> bool {
        self.0.uses_tracker()
    }
    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.0.reset_scratch();
        self.0.schedule(view)
    }
}

fn cluster() -> ClusterConfig {
    ClusterConfig::uniform(8, MachineSpec::paper_large())
}

/// The two workload shapes: the synthetic deployment suite (map/reduce
/// DAGs, staggered arrivals) and the Facebook-like trace (heavy-tailed
/// job sizes, recurring families).
fn workloads(seed: u64) -> Vec<(&'static str, Workload)> {
    let suite = WorkloadSuiteConfig::small().generate(seed);
    let mut fb_cfg = FacebookTraceConfig::default();
    fb_cfg.n_jobs = 30;
    fb_cfg.scale = 0.05;
    fb_cfg.mean_interarrival = 10.0;
    let facebook = fb_cfg.generate(seed);
    vec![("suite", suite), ("facebook", facebook)]
}

/// Run one policy over a workload with the event stream recorded.
fn traced_run(
    sched: Box<dyn SchedulerPolicy>,
    w: &Workload,
    cfg: &SimConfig,
) -> (SimOutcome, Vec<(f64, Event)>) {
    let rec = VecRecorder::shared();
    let mut obs = Obs::with_recorder(Box::new(rec.clone()));
    let outcome = Simulation::build(cluster(), w.clone())
        .scheduler(sched)
        .config(cfg.clone())
        .observe(&mut obs)
        .run();
    (outcome, rec.take())
}

fn quiet_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    cfg
}

/// Machine churn: a quarter of the cluster crash/recover-cycles, with
/// flaky trackers leading each crash — drives the `TaskPreempted` /
/// `TaskAbandoned` / `MachineDown` / `MachineUp` / `MachineSuspected` /
/// `MachineCleared` event arms through every policy under test.
fn churn_cfg(seed: u64) -> SimConfig {
    let mut cfg = quiet_cfg(seed);
    cfg.faults.crash_frac = 0.25;
    cfg.faults.crash_cycles = 2;
    cfg.faults.downtime = 60.0;
    cfg.faults.window = (20.0, 600.0);
    cfg.faults.flake_lead = 30.0;
    cfg
}

/// Zero the only wall-clock-dependent field so streams compare exactly.
fn normalize(events: Vec<(f64, Event)>) -> Vec<(f64, Event)> {
    events
        .into_iter()
        .map(|(t, e)| match e {
            Event::HeartbeatProcessed {
                pending_tasks,
                placements,
                ..
            } => (
                t,
                Event::HeartbeatProcessed {
                    pending_tasks,
                    placements,
                    wall_ns: 0,
                },
            ),
            other => (t, other),
        })
        .collect()
}

/// Structural fingerprint of an outcome: everything decision-dependent,
/// nothing wall-clock-dependent.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    completed: bool,
    final_time: f64,
    jobs: Vec<(Option<f64>, Option<f64>)>,
    tasks: Vec<(Option<usize>, Option<f64>, Option<f64>)>,
    placements: u64,
    events: u64,
}

fn fingerprint(o: &SimOutcome) -> Fingerprint {
    Fingerprint {
        completed: o.completed,
        final_time: o.final_time,
        jobs: o.jobs.iter().map(|j| (j.first_start, j.finish)).collect(),
        tasks: o
            .tasks
            .iter()
            .map(|t| (t.machine.map(|m| m.index()), t.start, t.finish))
            .collect(),
        placements: o.stats.placements,
        events: o.stats.events,
    }
}

/// Core assertion: two policies produce identical decisions on `w`.
fn assert_equivalent(
    label: &str,
    seed: u64,
    w: &Workload,
    optimized: Box<dyn SchedulerPolicy>,
    reference: Box<dyn SchedulerPolicy>,
) {
    assert_equivalent_cfg(label, seed, w, &quiet_cfg(seed), optimized, reference)
}

/// [`assert_equivalent`] under an explicit simulation config (fault
/// plans, tracker periods, ...).
fn assert_equivalent_cfg(
    label: &str,
    seed: u64,
    w: &Workload,
    cfg: &SimConfig,
    optimized: Box<dyn SchedulerPolicy>,
    reference: Box<dyn SchedulerPolicy>,
) {
    let (o_opt, e_opt) = traced_run(optimized, w, cfg);
    let (o_ref, e_ref) = traced_run(reference, w, cfg);

    assert_eq!(
        fingerprint(&o_opt),
        fingerprint(&o_ref),
        "{label}/seed {seed}: outcome diverged"
    );
    let e_opt = normalize(e_opt);
    let e_ref = normalize(e_ref);
    assert_eq!(
        e_opt.len(),
        e_ref.len(),
        "{label}/seed {seed}: event counts diverged"
    );
    for (i, (a, b)) in e_opt.iter().zip(e_ref.iter()).enumerate() {
        assert_eq!(
            a, b,
            "{label}/seed {seed}: event #{i} diverged (scores/order must be identical)"
        );
    }
    // The streams must actually carry decision scores, otherwise this
    // test silently compares nothing.
    let scored = e_opt
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                Event::TaskPlaced {
                    combined_score: Some(_),
                    ..
                }
            )
        })
        .count();
    if label.starts_with("tetris") {
        assert!(
            scored > 0,
            "{label}/seed {seed}: no scored placements recorded"
        );
    }
}

#[test]
fn tetris_warm_scratch_matches_cold_reference() {
    for seed in SEEDS {
        for (wname, w) in workloads(seed) {
            assert_equivalent(
                &format!("tetris/{wname}"),
                seed,
                &w,
                Box::new(TetrisScheduler::new(TetrisConfig::default())),
                Box::new(ColdScratchTetris(TetrisScheduler::new(
                    TetrisConfig::default(),
                ))),
            );
        }
    }
}

#[test]
fn srtf_prefilter_matches_exhaustive_reference() {
    for seed in SEEDS {
        for (wname, w) in workloads(seed) {
            assert_equivalent(
                &format!("srtf/{wname}"),
                seed,
                &w,
                Box::new(SrtfScheduler::new()),
                Box::new(SrtfScheduler::exhaustive()),
            );
        }
    }
}

#[test]
fn packing_only_warm_scratch_matches_cold_reference() {
    // A second Tetris operating point (no SRTF term, no fairness) drives
    // different branches through the candidate loop and the banned set.
    for seed in SEEDS {
        for (wname, w) in workloads(seed) {
            assert_equivalent(
                &format!("tetris-packing/{wname}"),
                seed,
                &w,
                Box::new(TetrisScheduler::new(TetrisConfig::packing_only())),
                Box::new(ColdScratchTetris(TetrisScheduler::new(
                    TetrisConfig::packing_only(),
                ))),
            );
        }
    }
}

/// A policy under test and its full-rescan reference twin.
type PolicyPair = (
    &'static str,
    Box<dyn SchedulerPolicy>,
    Box<dyn SchedulerPolicy>,
);

/// The incremental policies and their mark-all-dirty reference twins.
fn incremental_pairs() -> Vec<PolicyPair> {
    vec![
        (
            "tetris-inc",
            Box::new(TetrisScheduler::new(TetrisConfig::default())),
            Box::new(MarkAllDirty(TetrisScheduler::new(TetrisConfig::default()))),
        ),
        (
            "capacity-inc",
            Box::new(CapacityScheduler::new()),
            Box::new(MarkAllDirty(CapacityScheduler::new())),
        ),
        (
            "fair-inc",
            Box::new(FairScheduler::new()),
            Box::new(MarkAllDirty(FairScheduler::new())),
        ),
        (
            "drf-inc",
            Box::new(DrfScheduler::new()),
            Box::new(MarkAllDirty(DrfScheduler::new())),
        ),
    ]
}

#[test]
fn incremental_policies_match_mark_all_dirty_oracle() {
    for seed in SEEDS {
        for (wname, w) in workloads(seed) {
            for (name, inc, oracle) in incremental_pairs() {
                assert_equivalent(&format!("{name}/{wname}"), seed, &w, inc, oracle);
            }
        }
    }
}

#[test]
fn incremental_policies_match_oracle_under_machine_churn() {
    // Crashes preempt and abandon tasks, take machines down and up, and
    // flake trackers — the full event taxonomy. Incremental bookkeeping
    // that drifts from the view under churn diverges here.
    for seed in SEEDS {
        for (wname, w) in workloads(seed) {
            for (name, inc, oracle) in incremental_pairs() {
                assert_equivalent_cfg(
                    &format!("{name}-churn/{wname}"),
                    seed,
                    &w,
                    &churn_cfg(seed),
                    inc,
                    oracle,
                );
            }
        }
    }
}
