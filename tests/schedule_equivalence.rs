//! Golden equivalence suite for the event-hot-path performance pass.
//!
//! The optimized schedulers reuse warm scratch buffers (`ScheduleScratch`,
//! generation-stamped sets, candidate arenas) and take availability-based
//! shortcuts (the SRTF quick prefilter). Both are only legal if they are
//! *invisible*: every decision — assignments, score breakdowns, event
//! order, job/task outcomes — must be identical to the unoptimized
//! reference path. This suite pins that across ≥3 seeds × 2 workload
//! shapes for:
//!
//! * `TetrisScheduler` with warm (reused) scratch vs the same scheduler
//!   with its scratch dropped before every `schedule()` call;
//! * `SrtfScheduler::new()` (envelope prefilter) vs
//!   `SrtfScheduler::exhaustive()` (checks every machine).
//!
//! Comparison is over the full observability event stream — which carries
//! per-placement `DecisionScores` — with the one wall-clock field
//! (`HeartbeatProcessed::wall_ns`) zeroed, plus a structural fingerprint
//! of the outcome (per-job finishes, per-task placements).

use tetris::prelude::*;
use tetris::sim::ClusterView;
use tetris_obs::{Event, Obs, VecRecorder};

const SEEDS: [u64; 3] = [11, 42, 77];

/// Tetris whose scratch is dropped before every call: the cold reference.
struct ColdScratchTetris(TetrisScheduler);

impl SchedulerPolicy for ColdScratchTetris {
    fn name(&self) -> String {
        self.0.name()
    }
    fn uses_tracker(&self) -> bool {
        self.0.uses_tracker()
    }
    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.0.reset_scratch();
        self.0.schedule(view)
    }
}

fn cluster() -> ClusterConfig {
    ClusterConfig::uniform(8, MachineSpec::paper_large())
}

/// The two workload shapes: the synthetic deployment suite (map/reduce
/// DAGs, staggered arrivals) and the Facebook-like trace (heavy-tailed
/// job sizes, recurring families).
fn workloads(seed: u64) -> Vec<(&'static str, Workload)> {
    let suite = WorkloadSuiteConfig::small().generate(seed);
    let mut fb_cfg = FacebookTraceConfig::default();
    fb_cfg.n_jobs = 30;
    fb_cfg.scale = 0.05;
    fb_cfg.mean_interarrival = 10.0;
    let facebook = fb_cfg.generate(seed);
    vec![("suite", suite), ("facebook", facebook)]
}

/// Run one policy over a workload with the event stream recorded.
fn traced_run(
    sched: Box<dyn SchedulerPolicy>,
    w: &Workload,
    seed: u64,
) -> (SimOutcome, Vec<(f64, Event)>) {
    let rec = VecRecorder::shared();
    let mut obs = Obs::with_recorder(Box::new(rec.clone()));
    let outcome = Simulation::build(cluster(), w.clone())
        .scheduler_boxed(sched)
        .seed(seed)
        .observe(&mut obs)
        .run();
    (outcome, rec.take())
}

/// Zero the only wall-clock-dependent field so streams compare exactly.
fn normalize(events: Vec<(f64, Event)>) -> Vec<(f64, Event)> {
    events
        .into_iter()
        .map(|(t, e)| match e {
            Event::HeartbeatProcessed {
                pending_tasks,
                placements,
                ..
            } => (
                t,
                Event::HeartbeatProcessed {
                    pending_tasks,
                    placements,
                    wall_ns: 0,
                },
            ),
            other => (t, other),
        })
        .collect()
}

/// Structural fingerprint of an outcome: everything decision-dependent,
/// nothing wall-clock-dependent.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    completed: bool,
    final_time: f64,
    jobs: Vec<(Option<f64>, Option<f64>)>,
    tasks: Vec<(Option<usize>, Option<f64>, Option<f64>)>,
    placements: u64,
    events: u64,
}

fn fingerprint(o: &SimOutcome) -> Fingerprint {
    Fingerprint {
        completed: o.completed,
        final_time: o.final_time,
        jobs: o.jobs.iter().map(|j| (j.first_start, j.finish)).collect(),
        tasks: o
            .tasks
            .iter()
            .map(|t| (t.machine.map(|m| m.index()), t.start, t.finish))
            .collect(),
        placements: o.stats.placements,
        events: o.stats.events,
    }
}

/// Core assertion: two policies produce identical decisions on `w`.
fn assert_equivalent(
    label: &str,
    seed: u64,
    w: &Workload,
    optimized: Box<dyn SchedulerPolicy>,
    reference: Box<dyn SchedulerPolicy>,
) {
    let (o_opt, e_opt) = traced_run(optimized, w, seed);
    let (o_ref, e_ref) = traced_run(reference, w, seed);

    assert_eq!(
        fingerprint(&o_opt),
        fingerprint(&o_ref),
        "{label}/seed {seed}: outcome diverged"
    );
    let e_opt = normalize(e_opt);
    let e_ref = normalize(e_ref);
    assert_eq!(
        e_opt.len(),
        e_ref.len(),
        "{label}/seed {seed}: event counts diverged"
    );
    for (i, (a, b)) in e_opt.iter().zip(e_ref.iter()).enumerate() {
        assert_eq!(
            a, b,
            "{label}/seed {seed}: event #{i} diverged (scores/order must be identical)"
        );
    }
    // The streams must actually carry decision scores, otherwise this
    // test silently compares nothing.
    let scored = e_opt
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                Event::TaskPlaced {
                    combined_score: Some(_),
                    ..
                }
            )
        })
        .count();
    if label.starts_with("tetris") {
        assert!(
            scored > 0,
            "{label}/seed {seed}: no scored placements recorded"
        );
    }
}

#[test]
fn tetris_warm_scratch_matches_cold_reference() {
    for seed in SEEDS {
        for (wname, w) in workloads(seed) {
            assert_equivalent(
                &format!("tetris/{wname}"),
                seed,
                &w,
                Box::new(TetrisScheduler::new(TetrisConfig::default())),
                Box::new(ColdScratchTetris(TetrisScheduler::new(
                    TetrisConfig::default(),
                ))),
            );
        }
    }
}

#[test]
fn srtf_prefilter_matches_exhaustive_reference() {
    for seed in SEEDS {
        for (wname, w) in workloads(seed) {
            assert_equivalent(
                &format!("srtf/{wname}"),
                seed,
                &w,
                Box::new(SrtfScheduler::new()),
                Box::new(SrtfScheduler::exhaustive()),
            );
        }
    }
}

#[test]
fn packing_only_warm_scratch_matches_cold_reference() {
    // A second Tetris operating point (no SRTF term, no fairness) drives
    // different branches through the candidate loop and the banned set.
    for seed in SEEDS {
        for (wname, w) in workloads(seed) {
            assert_equivalent(
                &format!("tetris-packing/{wname}"),
                seed,
                &w,
                Box::new(TetrisScheduler::new(TetrisConfig::packing_only())),
                Box::new(ColdScratchTetris(TetrisScheduler::new(
                    TetrisConfig::packing_only(),
                ))),
            );
        }
    }
}
