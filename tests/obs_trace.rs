//! Cross-crate observability checks: Tetris placements carry score
//! breakdowns in the trace, baselines stay unscored, and both runs feed
//! the same heartbeat histograms.

use tetris::prelude::*;
use tetris::sim::GreedyFifo;
use tetris_obs::{names, Event, Obs, VecRecorder};

fn cluster() -> ClusterConfig {
    ClusterConfig::uniform(6, MachineSpec::paper_large())
}

fn traced_run(
    sched: Box<dyn SchedulerPolicy>,
    seed: u64,
) -> (tetris::sim::SimOutcome, Obs, Vec<(f64, Event)>) {
    let w = WorkloadSuiteConfig::small().generate(seed);
    let rec = VecRecorder::shared();
    let mut obs = Obs::with_recorder(Box::new(rec.clone()));
    let outcome = Simulation::build(cluster(), w)
        .scheduler(sched)
        .seed(seed)
        .observe(&mut obs)
        .run();
    let events = rec.take();
    (outcome, obs, events)
}

#[test]
fn tetris_placements_carry_scores_baselines_do_not() {
    let (outcome, _, events) =
        traced_run(Box::new(TetrisScheduler::new(TetrisConfig::default())), 17);
    assert!(outcome.all_jobs_completed());
    let scored: Vec<_> = events
        .iter()
        .filter_map(|(_, e)| match e {
            Event::TaskPlaced {
                alignment_score,
                srtf_score,
                combined_score,
                considered_machines,
                ..
            } => Some((
                alignment_score,
                srtf_score,
                combined_score,
                considered_machines,
            )),
            _ => None,
        })
        .collect();
    assert_eq!(scored.len() as u64, outcome.stats.placements);
    // Tetris annotates (almost) every placement; reservation redemptions
    // are placed by right, not by score, so allow a small unscored tail.
    let with_scores = scored.iter().filter(|(a, ..)| a.is_some()).count();
    assert!(
        with_scores * 2 > scored.len(),
        "{with_scores}/{} scored",
        scored.len()
    );
    // A scored placement is scored in full.
    assert!(scored
        .iter()
        .filter(|(a, ..)| a.is_some())
        .all(|(_, s, c, m)| s.is_some() && c.is_some() && m.is_some()));
    // Considered machines is the candidate set size, bounded by the cluster.
    assert!(scored
        .iter()
        .filter_map(|(.., m)| m.as_ref())
        .all(|&m| m >= 1 && m as usize <= cluster().len()));

    let (_, _, base_events) = traced_run(Box::new(GreedyFifo::new()), 17);
    assert!(base_events.iter().all(|(_, e)| match e {
        Event::TaskPlaced {
            alignment_score, ..
        } => alignment_score.is_none(),
        _ => true,
    }));
}

#[test]
fn heartbeat_histograms_fill_for_every_policy() {
    for sched in [
        Box::new(TetrisScheduler::new(TetrisConfig::default())) as Box<dyn SchedulerPolicy>,
        Box::new(FairScheduler::new()),
        Box::new(DrfScheduler::new()),
    ] {
        let name = sched.name().to_string();
        let (_, obs, _) = traced_run(sched, 23);
        let hb = obs
            .metrics
            .histogram(names::HEARTBEAT_NS)
            .unwrap_or_else(|| panic!("{name}: no heartbeat histogram"));
        assert!(hb.count() > 0, "{name}");
        assert!(
            hb.quantile(0.99).unwrap() >= hb.quantile(0.5).unwrap(),
            "{name}"
        );
        let sched_h = obs.metrics.histogram(names::SCHEDULE_NS).unwrap();
        // A heartbeat makes one or more schedule calls, each individually
        // no longer than the whole pass.
        assert!(sched_h.count() >= hb.count(), "{name}");
        assert!(
            obs.metrics.counter(names::PLACEMENTS) > 0,
            "{name}: no placements counted"
        );
    }
}
