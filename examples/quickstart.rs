//! Quickstart: run one workload under Tetris and the paper's baselines and
//! compare makespan / average job completion time.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tetris::prelude::*;

fn main() {
    // A 20-machine cluster with the paper's machine profile and a scaled
    // version of the paper's §5.1 workload suite (50 jobs, task counts
    // scaled to keep per-machine load comparable to the 250-machine
    // deployment).
    let cluster = ClusterConfig::uniform(20, MachineSpec::paper_large());
    let workload = WorkloadSuiteConfig::scaled(50, 0.08).generate(42);
    println!(
        "workload: {} jobs, {} tasks on {} machines\n",
        workload.jobs.len(),
        workload.num_tasks(),
        cluster.len()
    );

    let run = |name: &str, sched: Box<dyn SchedulerPolicy>| {
        let outcome = Simulation::build(cluster.clone(), workload.clone())
            .scheduler(sched)
            .seed(42)
            .run();
        println!("{:<12} {}", name, RunMetrics::of(&outcome).row());
        outcome
    };

    println!("{:<12} {}", "", RunMetrics::header());
    let tetris = run(
        "tetris",
        Box::new(TetrisScheduler::new(TetrisConfig::default())),
    );
    let fair = run("fair", Box::new(FairScheduler::new()));
    let _cap = run("capacity", Box::new(CapacityScheduler::new()));
    let drf = run("drf", Box::new(DrfScheduler::new()));

    println!();
    for base in [&fair, &drf] {
        let imp = ImprovementSummary::compare(&tetris, base);
        println!(
            "tetris vs {:<10}  avg JCT: {:+.1}%   median job: {:+.1}%   makespan: {:+.1}%",
            base.scheduler,
            imp.avg_jct,
            imp.median(),
            imp.makespan
        );
    }
}
