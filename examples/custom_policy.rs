//! Writing your own scheduling policy against the simulator's
//! `SchedulerPolicy` trait — and measuring it against Tetris.
//!
//! The example policy is "widest-task-first": place the pending task with
//! the largest normalized demand sum first, on the emptiest machine where
//! it fits — a greedy packer with no fairness constraint at all. It is a
//! genuinely strong baseline on raw average JCT (unconstrained greed often
//! is), and the comparison shows the axis it ignores: how many jobs do worse
//! than under a fair allocation. This is the paper's point that raw
//! efficiency and fairness must be traded deliberately (§3.4), and how
//! you'd measure any policy of your own.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use tetris::prelude::*;

/// Widest-task-first with emptiest-machine placement.
struct WidestFirst;

impl SchedulerPolicy for WidestFirst {
    fn name(&self) -> &str {
        "widest-first"
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let total = view.total_capacity();
        // Collect pending tasks, widest (largest normalized demand) first.
        let mut tasks: Vec<(f64, _)> = view
            .active_jobs()
            .flat_map(|j| view.job_pending_stages(j))
            .flat_map(|(_, slice)| slice.iter().copied())
            .map(|t| (view.task(t).demand.normalized_by(&total).sum(), t))
            .collect();
        tasks.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

        let query = view.query();
        let mut avail: Vec<ResourceVec> = query.iter_all().map(|m| view.available(m)).collect();
        let mut out = Vec::new();
        for (_, t) in tasks {
            // Emptiest machine (most free normalized resources) that fits.
            let mut best: Option<(f64, MachineId)> = None;
            for m in query.iter_all() {
                let plan = view.plan(t, m);
                let fits = plan.local.fits_within(&avail[m.index()])
                    && plan
                        .remote
                        .iter()
                        .all(|(s, d)| d.fits_within(&avail[s.index()]));
                if fits {
                    let freeness = avail[m.index()].normalized_by(&view.capacity(m)).sum();
                    if best.is_none_or(|(bf, _)| freeness > bf) {
                        best = Some((freeness, m));
                    }
                }
            }
            if let Some((_, m)) = best {
                let plan = view.plan(t, m);
                avail[m.index()] -= plan.local;
                for (s, d) in &plan.remote {
                    avail[s.index()] -= *d;
                }
                out.push(Assignment::new(t, m));
            }
        }
        out
    }
}

use tetris::metrics::slowdown::SlowdownSummary;
use tetris::sim::MachineId;

fn main() {
    let cluster = ClusterConfig::uniform(20, MachineSpec::paper_large());
    let workload = WorkloadSuiteConfig::scaled(50, 0.08).generate(42);

    let run = |sched: Box<dyn SchedulerPolicy>| {
        Simulation::build(cluster.clone(), workload.clone())
            .scheduler(sched)
            .seed(42)
            .run()
    };
    let fair = run(Box::new(FairScheduler::new()));

    println!(
        "{:<14} {} {:>12}",
        "",
        RunMetrics::header(),
        "slowed-vs-fair"
    );
    for (name, sched) in [
        (
            "tetris",
            Box::new(TetrisScheduler::new(TetrisConfig::default())) as Box<dyn SchedulerPolicy>,
        ),
        ("widest-first", Box::new(WidestFirst)),
    ] {
        let o = run(sched);
        let slow = SlowdownSummary::compare(&o, &fair);
        println!(
            "{:<14} {} {:>11.0}%",
            name,
            RunMetrics::of(&o).row(),
            slow.frac_slowed * 100.0
        );
    }
    println!(
        "\nUnconstrained greed is a strong baseline on raw average JCT — the\n\
         interesting column is the last one: Tetris's fairness knob caps how\n\
         many jobs do worse than a fair allocation, which a pure packer\n\
         cannot promise. Swap in your own `SchedulerPolicy` and measure both."
    );
}
