//! The paper's Figure-1 motivating example, end to end.
//!
//! Three jobs on a 3-machine cluster (18 cores / 36 GB / 3 Gbps total):
//! job A has 18 one-core/2 GB map tasks, jobs B and C have 6 three-core/
//! 1 GB maps each, and every job finishes with 3 network-saturating
//! reduce tasks behind a barrier. All tasks run for `t` time units.
//!
//! DRF gives every job an equal dominant share and finishes everything at
//! `6t`; Tetris's packing serializes complementary phases and finishes the
//! jobs at `{2t, 3t, 4t}` — a 33 % better makespan and average JCT, with
//! *every* job finishing earlier.
//!
//! ```sh
//! cargo run --release --example motivating_example
//! ```

use tetris::metrics::gantt::Gantt;
use tetris::prelude::*;
use tetris::resources::units::{gbps, GB, MB};
use tetris::sim::{Interference, SimConfig};
use tetris::workload::gen::motivating_example;

fn main() {
    let t_unit = 10.0; // seconds per paper "t"
    let ex = motivating_example(t_unit);

    let spec = MachineSpec::new()
        .cores(6.0)
        .memory(12.0 * GB)
        .disks(8, 100.0 * MB) // oversized: the example is network-bound
        .nic(gbps(1.0));
    let cluster = ClusterConfig::uniform(3, spec);

    let mut cfg = SimConfig::default();
    cfg.seed = 1;
    // The paper's arithmetic assumes idealized proportional sharing.
    cfg.interference = Interference::none();

    println!("Figure 1 — three jobs, two phases each, t = {t_unit}s\n");
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>9} {:>9}",
        "scheduler", "A", "B", "C", "avg JCT", "makespan"
    );
    for (name, sched) in [
        (
            "tetris",
            Box::new(TetrisScheduler::new(TetrisConfig::default())) as Box<dyn SchedulerPolicy>,
        ),
        ("drf", Box::new(DrfScheduler::new())),
        ("drf-all-dims", Box::new(DrfScheduler::extended())),
    ] {
        let o = Simulation::build(cluster.clone(), ex.workload.clone())
            .scheduler(sched)
            .config(cfg.clone())
            .run();
        if name == "tetris" {
            println!(
                "-- tetris schedule (A/B/C per machine, {}s buckets) --",
                ex.t / 2.0
            );
            println!(
                "{}",
                Gantt::new(&o, 3, (o.makespan() / (ex.t / 2.0)).ceil() as usize).render()
            );
        }
        let f = |x: f64| format!("{:.1}t", x / ex.t);
        println!(
            "{:<14} {:>6} {:>6} {:>6} {:>9} {:>9}",
            name,
            f(o.jobs[0].jct().unwrap()),
            f(o.jobs[1].jct().unwrap()),
            f(o.jobs[2].jct().unwrap()),
            f(o.avg_jct()),
            f(o.makespan()),
        );
    }
    println!(
        "\npaper: packing finishes the jobs at {{2t, 3t, 4t}} (some order);\n\
         DRF finishes everything at 6t or later."
    );
}
