//! Sweep the fairness knob `f` and print the efficiency↔fairness
//! trade-off the paper exposes (§3.4, Figs. 8–9).
//!
//! `f = 0` packs with no fairness constraint; `f → 1` always serves the
//! job furthest below its fair share. The paper's finding — and this
//! example's output — is that the trade-off is unusually gentle for
//! cluster scheduling: a fair job choice still leaves many tasks to pick
//! from, so `f ≈ 0.25` keeps nearly all of the efficiency while slowing
//! almost no job relative to a fair scheduler.
//!
//! ```sh
//! cargo run --release --example fairness_tradeoff
//! ```

use tetris::metrics::slowdown::SlowdownSummary;
use tetris::prelude::*;

fn main() {
    let cluster = ClusterConfig::uniform(20, MachineSpec::paper_large());
    let workload = WorkloadSuiteConfig::scaled(50, 0.08).generate(7);

    let run = |sched: Box<dyn SchedulerPolicy>| {
        Simulation::build(cluster.clone(), workload.clone())
            .scheduler(sched)
            .seed(7)
            .run()
    };
    let fair = run(Box::new(FairScheduler::new()));

    println!(
        "{:>5} {:>12} {:>14} {:>12} {:>18}",
        "f", "avg JCT (s)", "JCT gain", "jobs slowed", "avg slowdown"
    );
    for f in [0.0, 0.25, 0.5, 0.75, 0.99] {
        let mut cfg = TetrisConfig::default();
        cfg.fairness_knob = f;
        let o = run(Box::new(TetrisScheduler::new(cfg)));
        let imp = ImprovementSummary::compare(&o, &fair);
        let slow = SlowdownSummary::compare(&o, &fair);
        println!(
            "{:>5.2} {:>12.1} {:>13.1}% {:>11.0}% {:>17.1}%",
            f,
            o.avg_jct(),
            imp.avg_jct,
            slow.frac_slowed * 100.0,
            slow.avg_slowdown_pct,
        );
    }
    println!(
        "\npaper: f ≈ 0.25 gives nearly the best efficiency while only a few\n\
         percent of jobs slow down, by little — performance and fairness\n\
         coexist in data-parallel clusters."
    );
}
