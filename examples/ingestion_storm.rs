//! The resource tracker reacting to external cluster activity (paper
//! §4.3 and Figure 6).
//!
//! At t = 150 s, data ingestion starts writing at one machine's full disk
//! bandwidth for 300 s. Tetris's tracker reports the usage and the
//! scheduler stops placing tasks there; the slot-based Capacity scheduler
//! has no idea, keeps placing, and the contention stretches its tasks and
//! slows the ingestion stream itself.
//!
//! ```sh
//! cargo run --release --example ingestion_storm
//! ```

use tetris::metrics::timeline;
use tetris::prelude::*;
use tetris::resources::units::MB;
use tetris::sim::{ExternalLoad, MachineId, SimConfig};

fn main() {
    let cluster = ClusterConfig::paper_small();
    let loaded = MachineId(0);
    let workload = WorkloadSuiteConfig {
        n_jobs: 40,
        scale: 0.02,
        arrival_horizon: 600.0,
        machine_profile: MachineSpec::paper_small(),
        ..WorkloadSuiteConfig::default()
    }
    .generate(99);

    let mut cfg = SimConfig::default();
    cfg.seed = 99;
    cfg.external_loads.push(ExternalLoad {
        machine: loaded,
        start: 150.0,
        duration: 300.0,
        load: ResourceVec::zero().with(Resource::DiskWrite, 100.0 * MB),
    });

    let cap = MachineSpec::paper_small().capacity();
    for (name, sched) in [
        (
            "tetris (tracker-aware)",
            Box::new(TetrisScheduler::new(TetrisConfig::default())) as Box<dyn SchedulerPolicy>,
        ),
        (
            "capacity (tracker-blind)",
            Box::new(CapacityScheduler::new()),
        ),
    ] {
        let o = Simulation::build(cluster.clone(), workload.clone())
            .scheduler(sched)
            .config(cfg.clone())
            .run();
        let tl = timeline::machine_timeline(&o, loaded, &cap).expect("machine samples");
        println!(
            "== {name}: machine {loaded} timeline (ingestion t=150..450s); mean task stretch {:.2} ==",
            o.mean_task_stretch()
        );
        println!("{}", timeline::render(&timeline::decimate(&tl, 14)));
    }
}
