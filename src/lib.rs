//! # tetris
//!
//! Umbrella crate for the Tetris workspace — a production-quality Rust
//! reproduction of **"Multi-Resource Packing for Cluster Schedulers"**
//! (Grandl et al., SIGCOMM 2014).
//!
//! This crate re-exports the public API of every member crate so that
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`resources`] — the six-dimensional resource model;
//! * [`workload`] — jobs, tasks, DAGs, trace generation and analysis;
//! * [`sim`] — the discrete-event cluster simulator;
//! * [`scheduler`] — the Tetris scheduler itself (packing + SRTF + fairness);
//! * [`baselines`] — Fair/Capacity/DRF/SRTF/upper-bound comparators;
//! * [`metrics`] — makespan/JCT/fairness evaluation metrics.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete runnable walk-through; the
//! one-paragraph version:
//!
//! ```
//! use tetris::prelude::*;
//!
//! // A 4-machine cluster with the paper's machine profile.
//! let cluster = ClusterConfig::uniform(4, MachineSpec::paper_large());
//! // A small seeded synthetic workload.
//! let jobs = WorkloadSuiteConfig::small().generate(7);
//! // Run it under the Tetris scheduler.
//! let outcome = Simulation::build(cluster, jobs)
//!     .scheduler(TetrisScheduler::new(TetrisConfig::default()))
//!     .seed(7)
//!     .run();
//! assert!(outcome.all_jobs_completed());
//! ```

#![forbid(unsafe_code)]

pub use tetris_baselines as baselines;
pub use tetris_core as scheduler;
pub use tetris_metrics as metrics;
pub use tetris_resources as resources;
pub use tetris_sim as sim;
pub use tetris_workload as workload;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use tetris_baselines::{
        CapacityScheduler, DrfScheduler, FairScheduler, RandomScheduler, SrtfScheduler,
        UpperBoundScheduler,
    };
    pub use tetris_core::{
        AlignmentKind, EstimationMode, StarvationConfig, TetrisConfig, TetrisScheduler,
    };
    pub use tetris_metrics::{ImprovementSummary, RunMetrics};
    pub use tetris_resources::{units, MachineSpec, Resource, ResourceVec};
    pub use tetris_sim::{
        Assignment, ClusterConfig, ClusterView, SchedulerPolicy, SimOutcome, SimTime, Simulation,
    };
    pub use tetris_workload::{
        FacebookTraceConfig, Job, JobSpec, StageSpec, TaskSpec, Workload, WorkloadSuiteConfig,
    };
}
