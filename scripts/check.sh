#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== scheduler equivalence (optimized == reference) =="
cargo test -q --test schedule_equivalence

echo "== benches compile =="
cargo bench -p tetris-bench --no-run -q

echo "== fault-injection properties =="
cargo test -q -p tetris-sim --test prop_faults

echo "== reproduce smoke (parallel runner) =="
cargo build --release -p tetris-expts -q
target/release/reproduce fig1 table2 --jobs 2 >/dev/null
target/release/reproduce sweep table2 --seeds 1..2 --jobs 2 >/dev/null

echo "== batch golden (typed-spec layer is invisible to all-batch runs) =="
# The §16 spec API (classes, priorities, constraints, preemption) must
# be a pure extension: an all-batch reproduce run renders byte-identical
# output to the checked-in pre-§16 golden. cmp, not a tolerance.
target/release/reproduce fig1 table2 --jobs 2 | sed '/finished in/d' \
  | cmp - scripts/golden/batch_reproduce.txt \
  || { echo "batch reproduce output diverged from the pre-§16 golden"; exit 1; }

echo "== churn smoke (fault sweep at toy scale) =="
target/release/reproduce churn --scale 0.05 >/dev/null

echo "== view API snapshot (SchedulerPolicy surface is pinned) =="
cargo test -q -p tetris-sim --test api_snapshot

echo "== telemetry + provenance smoke =="
cargo build --release -p tetris-workload -q
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
# Default trace: byte-identity gate — no provenance keys may appear when
# --trace-verbose is off (the golden wire-bytes unit test pins the exact
# JSON; this guards the whole end-to-end artifact).
target/release/reproduce --trace "$tmp/plain.jsonl" --scale 0.1 >/dev/null
if grep -q '"provenance"' "$tmp/plain.jsonl"; then
  echo "default trace leaked provenance (must be --trace-verbose only)"; exit 1
fi
# Verbose run: provenance with rejected candidates must be present, and
# the telemetry stream must be byte-identical across repeated runs.
target/release/reproduce --trace "$tmp/verbose.jsonl" --trace-verbose \
  --timeseries "$tmp/ts1.jsonl" --scale 0.1 >/dev/null
grep -q '"provenance"' "$tmp/verbose.jsonl" \
  || { echo "verbose trace carries no provenance"; exit 1; }
grep -q '"rejected":\[{' "$tmp/verbose.jsonl" \
  || { echo "verbose trace has no rejected candidates"; exit 1; }
target/release/reproduce --timeseries "$tmp/ts2.jsonl" --scale 0.1 >/dev/null
cmp -s "$tmp/ts1.jsonl" "$tmp/ts2.jsonl" \
  || { echo "telemetry stream is not deterministic across runs"; exit 1; }
# explain reconstructs a placement story from the verbose trace. (Write
# to a file before grepping: `| grep -q` exits at first match and the
# closed pipe would SIGPIPE the tool, which pipefail reads as failure.)
task="$(grep -m1 '"rejected":\[{' "$tmp/verbose.jsonl" \
  | sed 's/.*"TaskPlaced":{"job":[0-9]*,"task":\([0-9]*\).*/\1/')"
target/release/trace-tool explain "$tmp/verbose.jsonl" --task "$task" > "$tmp/explain.txt"
grep -q "rejected #1" "$tmp/explain.txt" \
  || { echo "explain shows no rejected candidates"; exit 1; }
# report renders a deterministic summary of the stream.
target/release/trace-tool report "$tmp/ts1.jsonl" --csv "$tmp/ts.csv" > "$tmp/report.txt"
grep -q "packing_efficiency" "$tmp/report.txt" \
  || { echo "report missing summary"; exit 1; }
head -1 "$tmp/ts.csv" | grep -q "^t,cpu_alloc" || { echo "bad csv header"; exit 1; }

echo "== table8 smoke (incremental heartbeat path) =="
# The probe inside table8 asserts incremental == full-rebuild decisions
# every heartbeat; here we additionally check the event-driven path was
# actually exercised: every sweep row must report delivered scheduler
# events (last column > 0).
table8_out="$(target/release/reproduce table8 --scale 0.05)"
echo "$table8_out" | awk '
  /^(2500|11000|51000|100000) / { rows++; if ($7 + 0 <= 0) bad = 1 }
  END { exit (rows == 4 && !bad) ? 0 : 1 }
' || { echo "table8 smoke failed: expected 4 sweep rows with events > 0"; echo "$table8_out"; exit 1; }

echo "== scale smoke (indexed MachineQuery vs linear oracle) =="
# The ColdPassProbe inside the experiment asserts byte-identical
# assignment streams between the indexed and linear backends every rep,
# so a clean exit *is* the equivalence gate; additionally pin that the
# sharded-scorer smoke actually dispatched work.
scale_out="$(target/release/reproduce scale --scale 0.02)"
echo "$scale_out" | grep -q "shard batches" \
  || { echo "scale smoke missing sharded-scorer section"; echo "$scale_out"; exit 1; }
batches="$(echo "$scale_out" | grep -oE 'shard batches [0-9]+' | awk '{print $3}')"
[ "${batches:-0}" -gt 0 ] \
  || { echo "scale smoke: sharded scorer dispatched no batches"; echo "$scale_out"; exit 1; }

echo "== index equivalence properties (MachineQuery vs linear oracle) =="
cargo test -q -p tetris-sim --test prop_index

echo "== serving smoke (diurnal SLOs + preemption, §16) =="
# The per-wave Tetris <= Capacity SLO gate is asserted by the serving
# unit tests; the smoke pins that the experiment runs end to end and
# that preemption actually fired (a nonzero preempt column).
serving_out="$(target/release/reproduce serving --scale 0.5)"
echo "$serving_out" | grep -q "preempt" \
  || { echo "serving smoke missing summary table"; echo "$serving_out"; exit 1; }
echo "$serving_out" | awk '
  $1 == "tetris" && NF == 7 { if ($6 + 0 > 0) ok = 1 }
  END { exit ok ? 0 : 1 }
' || { echo "serving smoke: tetris preempted nothing"; echo "$serving_out"; exit 1; }

echo "== serving properties (no inversion, conservation, constrained oracle) =="
cargo test -q -p tetris-sim --test prop_serving

echo "== grep gate: policies place through the constraint filter =="
# Raw MachineQuery::fits() bypasses the §16 constraint predicate; policy
# code must use fits_constrained (or constraints_allow on its own scan).
# (fits_within — plain vector comparison — stays legal.)
if grep -rnE '\.fits\(' crates/core/src crates/baselines/src examples; then
  echo "policy code calls raw fits() and bypasses placement constraints"; exit 1
fi

echo "== grep gate: policies go through MachineQuery, not raw machine scans =="
# view.machines() was removed with the MachineQuery redesign; policy code
# must not resurrect it or hand-roll id-range iteration over machines.
# (num_machines() alone stays legal for buffer sizing.)
if grep -rnE '\.machines\(\)|\(0\.\.(view|v)\.num_machines\(\)\)' \
    crates/core/src crates/baselines/src examples; then
  echo "policy code iterates machines outside MachineQuery"; exit 1
fi

echo "== omega smoke (sharded multi-scheduler) =="
# The omega experiment gates shards=1 byte-equivalence against the bare
# scheduler and placement-count invariance across shard counts inside the
# run, so a clean exit is the real gate; additionally pin that the sweep
# table rendered with the commit-stage columns.
omega_out="$(target/release/reproduce omega --scale 0.02)"
echo "$omega_out" | grep -q "retry_peak" \
  || { echo "omega smoke missing sweep table"; echo "$omega_out"; exit 1; }
# An instrumented engine run under --shards 2 must surface the
# commit-stage conflict counters in its summary table.
shard_out="$(target/release/reproduce --shards 2 --metrics "$tmp/shard_metrics.json" --scale 0.1)"
echo "$shard_out" | grep -q "scheduling_conflicts_total" \
  || { echo "sharded run summary missing conflict counters"; echo "$shard_out"; exit 1; }

echo "== sharded-scheduler properties (commit loop, conservation, delegate) =="
cargo test -q -p tetris-sim --test prop_sharded

echo "== grep gate: shard workers never mutate shared cluster state =="
# The sharded driver sees the cluster only through a read-only
# ClusterView plus its own CommitOverlay ledger; every real mutation
# happens when the engine applies the committed batch after schedule()
# returns. Any engine-state type, interior mutability, or unsafe block
# in the module would be a way to smuggle writes into the parallel
# section.
if grep -nE 'SimState|RefCell|Mutex|RwLock|UnsafeCell|Atomic[UIB]|unsafe' \
    crates/sim/src/sharded.rs; then
  echo "sharded driver can mutate shared state from a worker"; exit 1
fi

echo "== recovery smoke (checkpoint + WAL replay) =="
# Crash an instrumented run mid-way, recover it from the journal alone,
# and diff the recovered outcome's wire bytes against a crash-free run's.
# Byte-identity is the DESIGN.md 15 contract, not a statistical property
# — cmp, not a tolerance.
rec_out="$(target/release/reproduce --journal "$tmp/rec.wal" --checkpoint-every 4 \
  --crash-at 6 --outcome "$tmp/recovered.json" --scale 0.1)"
echo "$rec_out" | grep -q "recovered from checkpoint" \
  || { echo "instrumented run did not crash and recover"; echo "$rec_out"; exit 1; }
target/release/reproduce --outcome "$tmp/full.json" --scale 0.1 >/dev/null
cmp "$tmp/recovered.json" "$tmp/full.json" \
  || { echo "recovered outcome diverges from the uninterrupted run"; exit 1; }

echo "== recovery properties (journal roundtrip, torn tails, replay bound) =="
cargo test -q -p tetris-sim --test prop_recovery

echo "== grep gate: sharded driver stays journal-free =="
# Durability is the engine's job: the sharded driver proposes and commits
# in memory only, and recovery re-derives its commit frontier from engine
# records. A journal reference here would let a shard write decision
# records outside the engine's commit points, breaking the torn-batch
# recovery argument.
if grep -nE '\bJournal\b|JournalRecord' crates/sim/src/sharded.rs; then
  echo "sharded driver touches the journal"; exit 1
fi

echo "all checks passed"
