#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== scheduler equivalence (optimized == reference) =="
cargo test -q --test schedule_equivalence

echo "== benches compile =="
cargo bench -p tetris-bench --no-run -q

echo "== fault-injection properties =="
cargo test -q -p tetris-sim --test prop_faults

echo "== reproduce smoke (parallel runner) =="
cargo build --release -p tetris-expts -q
target/release/reproduce fig1 table2 --jobs 2 >/dev/null
target/release/reproduce sweep table2 --seeds 1..2 --jobs 2 >/dev/null

echo "== churn smoke (fault sweep at toy scale) =="
target/release/reproduce churn --scale 0.05 >/dev/null

echo "== view API snapshot (SchedulerPolicy surface is pinned) =="
cargo test -q -p tetris-sim --test api_snapshot

echo "== table8 smoke (incremental heartbeat path) =="
# The probe inside table8 asserts incremental == full-rebuild decisions
# every heartbeat; here we additionally check the event-driven path was
# actually exercised: every sweep row must report delivered scheduler
# events (last column > 0).
table8_out="$(target/release/reproduce table8 --scale 0.05)"
echo "$table8_out" | awk '
  /^(2500|11000|51000|100000) / { rows++; if ($7 + 0 <= 0) bad = 1 }
  END { exit (rows == 4 && !bad) ? 0 : 1 }
' || { echo "table8 smoke failed: expected 4 sweep rows with events > 0"; echo "$table8_out"; exit 1; }

echo "all checks passed"
