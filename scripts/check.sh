#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== scheduler equivalence (optimized == reference) =="
cargo test -q --test schedule_equivalence

echo "== benches compile =="
cargo bench -p tetris-bench --no-run -q

echo "== fault-injection properties =="
cargo test -q -p tetris-sim --test prop_faults

echo "== reproduce smoke (parallel runner) =="
cargo build --release -p tetris-expts -q
target/release/reproduce fig1 table2 --jobs 2 >/dev/null
target/release/reproduce sweep table2 --seeds 1..2 --jobs 2 >/dev/null

echo "== churn smoke (fault sweep at toy scale) =="
target/release/reproduce churn --scale 0.05 >/dev/null

echo "all checks passed"
