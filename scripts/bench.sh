#!/usr/bin/env bash
# Benchmark the reproduce suite: prove the optimized schedulers are
# decision-identical to the reference path, run the suite serially (with
# a per-experiment before/after comparison against the committed
# BENCH_reproduce.json, if present), then at --jobs N, and emit
# BENCH_reproduce.json (schema v2: wall + thread-CPU seconds, worker
# utilization, Amdahl bound, merged heartbeat-latency histograms).
#
# usage: scripts/bench.sh [JOBS] [extra reproduce args...]
#   JOBS defaults to the machine's core count.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"
shift || true

# Timing numbers from a scheduler that changed its decisions are
# meaningless — refuse to benchmark unless equivalence holds. Do NOT
# comment this out to "make the bench run": a skipped equivalence suite
# means the before/after comparison below compares different programs.
echo "== scheduler equivalence gate =="
if ! cargo test -q --test schedule_equivalence; then
    echo "FATAL: schedule_equivalence failed or did not run." >&2
    echo "       The optimized hot path no longer matches the reference" >&2
    echo "       scheduler; benchmark numbers would be invalid." >&2
    exit 1
fi

echo "== building (release) =="
cargo build --release -p tetris-expts
BIN=target/release/reproduce

BASELINE=$(mktemp /tmp/bench_serial.XXXXXX.json)
trap 'rm -f "$BASELINE"' EXIT

echo "== reproduce all --jobs 1 (serial baseline) =="
if [[ -f BENCH_reproduce.json ]]; then
    # Compare this serial run against the committed emission: per-
    # experiment before/after rows (fig7 is the headline) plus the
    # suite-level measured speedup.
    "$BIN" all --jobs 1 --bench "$BASELINE" \
        --bench-baseline BENCH_reproduce.json "$@" | tail -n 16
else
    "$BIN" all --jobs 1 --bench "$BASELINE" "$@" >/dev/null
fi

echo "== reproduce all --jobs $JOBS =="
"$BIN" all --jobs "$JOBS" --bench BENCH_reproduce.json \
    --bench-baseline "$BASELINE" "$@" | tail -n 6

echo "wrote BENCH_reproduce.json"
