#!/usr/bin/env bash
# Benchmark the reproduce suite: run it serially, then at --jobs N, and
# emit BENCH_reproduce.json with per-experiment wall-clock, the merged
# heartbeat-latency histograms, and the measured parallel speedup.
#
# usage: scripts/bench.sh [JOBS] [extra reproduce args...]
#   JOBS defaults to the machine's core count.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"
shift || true

echo "== building (release) =="
cargo build --release -p tetris-expts
BIN=target/release/reproduce

BASELINE=$(mktemp /tmp/bench_serial.XXXXXX.json)
trap 'rm -f "$BASELINE"' EXIT

echo "== reproduce all --jobs 1 (serial baseline) =="
"$BIN" all --jobs 1 --bench "$BASELINE" "$@" >/dev/null

echo "== reproduce all --jobs $JOBS =="
"$BIN" all --jobs "$JOBS" --bench BENCH_reproduce.json \
    --bench-baseline "$BASELINE" "$@" | tail -n 3

echo "wrote BENCH_reproduce.json"
