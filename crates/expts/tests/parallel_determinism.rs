//! The parallel runner's core contract: `--jobs N` produces byte-identical
//! reports to `--jobs 1` for the same (scale, seed). Exercised on the
//! cheap end of the registry so the test stays fast; the property holds
//! registry-wide because every experiment is a pure `fn(&RunCtx) -> Report`
//! and the pool only reorders execution, never inputs.

use tetris_expts::experiments;
use tetris_expts::runner::run_experiments;
use tetris_expts::Scale;

const SUBSET: [&str; 4] = ["fig1", "table2", "fig2", "table3"];

fn subset() -> Vec<experiments::Experiment> {
    SUBSET
        .iter()
        .map(|id| experiments::find(id).unwrap())
        .collect()
}

#[test]
fn parallel_reports_are_byte_identical_to_serial() {
    let serial = run_experiments(subset(), Scale::Laptop, 1.0, 42, 1, |_| {});
    for jobs in [4, 8] {
        let par = run_experiments(subset(), Scale::Laptop, 1.0, 42, jobs, |_| {});
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.id, p.id, "jobs={jobs} reordered results");
            assert_eq!(
                s.report.text, p.report.text,
                "jobs={jobs} changed [{}]'s report text",
                s.id
            );
            assert_eq!(
                s.report.metrics, p.report.metrics,
                "jobs={jobs} changed [{}]'s metrics",
                s.id
            );
        }
    }
}

#[test]
fn streaming_callback_fires_in_registry_order() {
    let mut order = Vec::new();
    run_experiments(subset(), Scale::Laptop, 1.0, 42, 4, |r| order.push(r.id));
    assert_eq!(order, SUBSET);
}

#[test]
fn observability_metrics_are_deterministic_too() {
    // The per-experiment merged registries feed --bench. Counters and
    // histogram *counts* (how many heartbeats/schedule calls happened)
    // must be independent of the worker count; the recorded latencies
    // themselves are wall-clock and legitimately vary run to run.
    let serial = run_experiments(subset(), Scale::Laptop, 1.0, 42, 1, |_| {});
    let par = run_experiments(subset(), Scale::Laptop, 1.0, 42, 8, |_| {});
    for (s, p) in serial.iter().zip(&par) {
        let (ss, ps) = (s.metrics.snapshot(), p.metrics.snapshot());
        assert_eq!(
            ss.counters, ps.counters,
            "[{}] counters diverged under parallelism",
            s.id
        );
        assert_eq!(
            ss.histograms.keys().collect::<Vec<_>>(),
            ps.histograms.keys().collect::<Vec<_>>(),
            "[{}] histogram set diverged",
            s.id
        );
        for (name, h) in &ss.histograms {
            assert_eq!(
                h.count, ps.histograms[name].count,
                "[{}] {name} observation count diverged",
                s.id
            );
        }
    }
}
