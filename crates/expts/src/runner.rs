//! Deterministic parallel execution of the experiment suite.
//!
//! The worker pool itself lives in `tetris_sim::pool` (hoisted there so
//! the sharded cold-pass scoring loop can share it); this module drives
//! it: workers pull the next experiment off the deque, run it against
//! their own private [`RunCtx`], and send the finished result back tagged
//! with its submission index. The main thread re-orders completions and
//! streams them out in submission order, so `--jobs 8` produces
//! byte-identical reports to `--jobs 1` — parallelism changes only the
//! wall-clock, never the output. That guarantee rests on two facts
//! checked by tests elsewhere: experiments are pure functions of their
//! context (no global state — the old env-var seed channel is gone), and
//! observability never perturbs simulation outcomes.
//!
//! The same pool powers multi-seed sweeps (`reproduce sweep fig4 --seeds
//! 1..8`), which fan one experiment out across seeds and aggregate the
//! per-seed headline metrics into median/p10/p90 rows, and the benchmark
//! emitter (`--bench FILE`), which records per-experiment wall-clock and
//! the merged observability registry as machine-readable JSON.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use tetris_metrics::table::TextTable;
use tetris_obs::{MetricsRegistry, MetricsSnapshot};
use tetris_workload::stats::percentile;

use crate::experiments::Experiment;
use crate::setup::Scale;
use crate::{Report, RunCtx};

pub use tetris_sim::pool::{pool_map, pool_map_prioritized};

/// One finished experiment: its report, wall-clock, and the
/// observability metrics its simulations accumulated.
pub struct ExpRun {
    /// Experiment id ("fig4", ...).
    pub id: &'static str,
    /// One-line description.
    pub what: &'static str,
    /// The rendered report + typed metrics.
    pub report: Report,
    /// Wall-clock of this experiment alone.
    pub seconds: f64,
    /// CPU time the worker thread spent inside this experiment. On a
    /// loaded or oversubscribed machine this is smaller than `seconds`;
    /// the gap is time spent descheduled.
    pub cpu_seconds: f64,
    /// Merged registries of every simulation the experiment ran.
    pub metrics: MetricsRegistry,
}

/// CPU time consumed by the calling thread, in seconds.
///
/// Parses utime+stime from `/proc/thread-self/stat` (fields 14/15, in
/// USER_HZ ticks — fixed at 100 on Linux): a safe, dependency-free read
/// that keeps the workspace's `forbid(unsafe_code)` intact, at the cost
/// of 10 ms granularity — ample for experiments measured in seconds.
/// Returns 0 where /proc is unavailable (non-Linux), leaving the field
/// defined but empty.
pub fn thread_cpu_seconds() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return 0.0;
    };
    // comm (field 2) may contain spaces and parens; resume after the
    // *last* closing paren, which lands at field 3 ("state").
    let Some((_, rest)) = stat.rsplit_once(')') else {
        return 0.0;
    };
    let mut fields = rest.split_ascii_whitespace();
    // Counting from field 3 at index 0, utime (field 14) is index 11 and
    // stime (field 15) follows it.
    let (Some(utime), Some(stime)) = (fields.nth(11), fields.next()) else {
        return 0.0;
    };
    let ticks = utime.parse::<f64>().unwrap_or(0.0) + stime.parse::<f64>().unwrap_or(0.0);
    const USER_HZ: f64 = 100.0;
    ticks / USER_HZ
}

/// Run `selected` experiments at `(scale, seed)` on `jobs` workers, with
/// a workload-size multiplier (`--scale`, 1.0 = default sizing).
/// `on_done` fires in registry order as experiments finish.
pub fn run_experiments(
    selected: Vec<Experiment>,
    scale: Scale,
    scale_factor: f64,
    seed: u64,
    jobs: usize,
    mut on_done: impl FnMut(&ExpRun),
) -> Vec<ExpRun> {
    // Longest-first only matters with real parallelism; a single worker
    // keeps registry order so serial output starts streaming immediately.
    let lpt = jobs > 1;
    pool_map_prioritized(
        selected,
        jobs,
        move |e| if lpt { e.cost as u64 } else { 0 },
        move |e, _| {
            // A fresh context per experiment: workers share nothing, and
            // the metrics each absorbs are attributable to one id.
            let ctx = RunCtx::new(scale, seed).scaled(scale_factor);
            let start = Instant::now();
            let cpu_start = thread_cpu_seconds();
            let report = (e.run)(&ctx);
            ExpRun {
                id: e.id,
                what: e.what,
                report,
                seconds: start.elapsed().as_secs_f64(),
                cpu_seconds: thread_cpu_seconds() - cpu_start,
                metrics: ctx.take_metrics(),
            }
        },
        |_, r| on_done(r),
    )
}

/// One seed's leg of a sweep.
pub struct SeedRun {
    /// The master seed this leg ran under.
    pub seed: u64,
    /// The experiment's report at that seed.
    pub report: Report,
    /// Wall-clock of this leg.
    pub seconds: f64,
}

/// Run one experiment across `seeds` on `jobs` workers. `on_done` fires
/// in seed order.
pub fn run_sweep(
    exp: Experiment,
    scale: Scale,
    scale_factor: f64,
    seeds: Vec<u64>,
    jobs: usize,
    mut on_done: impl FnMut(&SeedRun),
) -> Vec<SeedRun> {
    pool_map(
        seeds,
        jobs,
        move |seed, _| {
            let ctx = RunCtx::new(scale, seed).scaled(scale_factor);
            let start = Instant::now();
            let report = (exp.run)(&ctx);
            SeedRun {
                seed,
                report,
                seconds: start.elapsed().as_secs_f64(),
            }
        },
        |_, r| on_done(r),
    )
}

/// Aggregate a sweep's per-seed headline metrics into a median/p10/p90
/// table, one row per metric in the order the experiment reports them.
pub fn aggregate_sweep(runs: &[SeedRun]) -> String {
    let mut t = TextTable::new(vec!["metric", "median", "p10", "p90"]);
    let Some(first) = runs.first() else {
        return t.render();
    };
    for (name, _) in &first.report.metrics {
        let xs: Vec<f64> = runs.iter().filter_map(|r| r.report.get(name)).collect();
        t.row(vec![
            (*name).to_string(),
            format!("{:.3}", percentile(&xs, 0.5)),
            format!("{:.3}", percentile(&xs, 0.1)),
            format!("{:.3}", percentile(&xs, 0.9)),
        ]);
    }
    t.render()
}

/// Schema tag written into every benchmark emission.
pub const BENCH_SCHEMA: &str = "tetris-reproduce-bench/v2";

/// The previous schema tag; still accepted on read (v1 files simply lack
/// the v2 CPU-accounting fields, which default to zero).
pub const BENCH_SCHEMA_V1: &str = "tetris-reproduce-bench/v1";

/// Machine-readable record of one `reproduce --bench` run.
#[derive(Serialize, Deserialize)]
pub struct BenchReport {
    /// Format tag ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// The experiment ids that ran, in order.
    pub command: Vec<String>,
    /// Scale label ("laptop" / "full").
    pub scale: String,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread count.
    pub jobs: usize,
    /// Wall-clock of the whole suite, queue to last result.
    pub wall_seconds: f64,
    /// Sum of per-experiment wall-clocks — what a serial run would cost.
    pub cpu_seconds: f64,
    /// `cpu_seconds / wall_seconds`: parallel speedup inferred from this
    /// run alone.
    pub speedup_estimate: f64,
    /// v2: sum of per-experiment *thread CPU* seconds. When this is well
    /// below `cpu_seconds` the workers were descheduled — the machine has
    /// fewer free cores than `jobs`, and adding workers cannot help.
    #[serde(default)]
    pub thread_cpu_seconds: f64,
    /// v2: fraction of worker wall-capacity spent running experiments:
    /// `cpu_seconds / (min(jobs, n_experiments) · wall_seconds)`. Low
    /// utilization with `jobs > 1` means the pool idled waiting for a
    /// straggler.
    #[serde(default)]
    pub worker_utilization: f64,
    /// v2: Amdahl/LPT bound on parallel speedup for this suite:
    /// `cpu_seconds / max(per-experiment seconds)` — no worker count can
    /// beat the longest single experiment.
    #[serde(default)]
    pub amdahl_bound: f64,
    /// Wall-clock of the `--bench-baseline` run, when one was supplied.
    pub baseline_wall_seconds: Option<f64>,
    /// Measured speedup vs the baseline run (`baseline wall / this wall`).
    pub speedup_vs_baseline: Option<f64>,
    /// Per-experiment timing and headline metrics. Rows are keyed by
    /// experiment id: `--bench-baseline` comparisons match rows by id and
    /// silently skip experiments absent from the older file (a baseline
    /// written before an experiment existed stays usable).
    pub experiments: Vec<BenchExperiment>,
    /// Observability registries of every simulation, merged — includes
    /// the heartbeat/schedule latency histograms (Table 8's continuous
    /// counterpart).
    pub obs: MetricsSnapshot,
}

/// One experiment's row in a [`BenchReport`].
#[derive(Serialize, Deserialize)]
pub struct BenchExperiment {
    /// Experiment id.
    pub id: String,
    /// Wall-clock of this experiment alone.
    pub seconds: f64,
    /// v2: thread CPU seconds the experiment consumed (0 in v1 files).
    #[serde(default)]
    pub cpu_seconds: f64,
    /// The report's typed headline metrics.
    pub metrics: BTreeMap<String, f64>,
}

/// Assemble the benchmark record for a finished suite run. Pass the
/// wall-clock measured around the whole run and, optionally, a prior
/// emission to compute a measured speedup against.
pub fn bench_report(
    runs: &[ExpRun],
    scale: Scale,
    seed: u64,
    jobs: usize,
    wall_seconds: f64,
    baseline: Option<&BenchReport>,
) -> BenchReport {
    let cpu_seconds: f64 = runs.iter().map(|r| r.seconds).sum();
    let thread_cpu_seconds: f64 = runs.iter().map(|r| r.cpu_seconds).sum();
    let longest = runs.iter().map(|r| r.seconds).fold(0.0, f64::max);
    let workers = jobs.clamp(1, runs.len().max(1));
    let mut merged = MetricsRegistry::new();
    for r in runs {
        merged.merge(&r.metrics);
    }
    let baseline_wall = baseline.map(|b| b.wall_seconds);
    BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        command: runs.iter().map(|r| r.id.to_string()).collect(),
        scale: scale.label().to_string(),
        seed,
        jobs,
        wall_seconds,
        cpu_seconds,
        speedup_estimate: cpu_seconds / wall_seconds.max(1e-9),
        thread_cpu_seconds,
        worker_utilization: cpu_seconds / (workers as f64 * wall_seconds.max(1e-9)),
        amdahl_bound: cpu_seconds / longest.max(1e-9),
        baseline_wall_seconds: baseline_wall,
        speedup_vs_baseline: baseline_wall.map(|b| b / wall_seconds.max(1e-9)),
        experiments: runs
            .iter()
            .map(|r| BenchExperiment {
                id: r.id.to_string(),
                seconds: r.seconds,
                cpu_seconds: r.cpu_seconds,
                metrics: r
                    .report
                    .metrics
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), *v))
                    .collect(),
            })
            .collect(),
        obs: merged.snapshot(),
    }
}

/// Read a previously written benchmark emission (the `--bench-baseline`
/// input). Rejects files with a different schema tag.
pub fn read_bench(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let b: BenchReport =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    if b.schema != BENCH_SCHEMA && b.schema != BENCH_SCHEMA_V1 {
        return Err(format!(
            "{path}: schema '{}' is neither '{BENCH_SCHEMA}' nor '{BENCH_SCHEMA_V1}'",
            b.schema
        ));
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn sweep_aggregation_computes_percentiles() {
        let runs: Vec<SeedRun> = (1..=5)
            .map(|seed| SeedRun {
                seed,
                report: Report::new(String::new()).metric("gain", seed as f64),
                seconds: 0.0,
            })
            .collect();
        let table = aggregate_sweep(&runs);
        assert!(table.contains("gain"), "{table}");
        assert!(table.contains("3.000"), "median of 1..5 is 3: {table}");
    }

    #[test]
    fn bench_report_round_trips_through_json() {
        let runs = run_experiments(
            vec![experiments::find("table2").unwrap()],
            Scale::Laptop,
            1.0,
            42,
            2,
            |_| {},
        );
        let b = bench_report(&runs, Scale::Laptop, 42, 2, 1.0, None);
        assert_eq!(b.command, vec!["table2"]);
        assert!(b.cpu_seconds > 0.0);
        assert!(b.speedup_vs_baseline.is_none());

        let json = serde_json::to_string_pretty(&b).unwrap();
        let dir = std::env::temp_dir().join(format!("tetris-bench-{}.json", std::process::id()));
        std::fs::write(&dir, &json).unwrap();
        let back = read_bench(dir.to_str().unwrap()).unwrap();
        assert_eq!(back.schema, BENCH_SCHEMA);
        assert_eq!(back.experiments.len(), 1);
        assert_eq!(back.experiments[0].id, "table2");
        std::fs::remove_file(&dir).ok();

        // A second run benchmarked against the first reports a measured
        // speedup of baseline_wall / wall.
        let b2 = bench_report(&runs, Scale::Laptop, 42, 4, 0.5, Some(&back));
        assert_eq!(b2.baseline_wall_seconds, Some(1.0));
        assert!((b2.speedup_vs_baseline.unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn read_bench_rejects_wrong_schema() {
        let dir =
            std::env::temp_dir().join(format!("tetris-badschema-{}.json", std::process::id()));
        std::fs::write(&dir, "{\"schema\":\"nope\"}").unwrap();
        assert!(read_bench(dir.to_str().unwrap()).is_err());
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn read_bench_accepts_v1_files() {
        // A v1 emission has no cpu-accounting fields; they must default
        // to zero rather than fail the parse (back-compat for committed
        // baselines).
        let v1 = format!(
            "{{\"schema\":\"{BENCH_SCHEMA_V1}\",\"command\":[\"fig7\"],\
             \"scale\":\"laptop\",\"seed\":42,\"jobs\":4,\
             \"wall_seconds\":211.7,\"cpu_seconds\":789.1,\
             \"speedup_estimate\":3.73,\"baseline_wall_seconds\":null,\
             \"speedup_vs_baseline\":null,\
             \"experiments\":[{{\"id\":\"fig7\",\"seconds\":203.1,\"metrics\":{{}}}}],\
             \"obs\":{{\"counters\":{{}},\"gauges\":{{}},\"histograms\":{{}}}}}}"
        );
        let dir = std::env::temp_dir().join(format!("tetris-benchv1-{}.json", std::process::id()));
        std::fs::write(&dir, v1).unwrap();
        let b = read_bench(dir.to_str().unwrap()).unwrap();
        std::fs::remove_file(&dir).ok();
        assert_eq!(b.schema, BENCH_SCHEMA_V1);
        assert_eq!(b.thread_cpu_seconds, 0.0);
        assert_eq!(b.worker_utilization, 0.0);
        assert_eq!(b.experiments[0].cpu_seconds, 0.0);
        assert_eq!(b.experiments[0].seconds, 203.1);
    }

    #[test]
    fn thread_cpu_time_is_monotonic_and_advances_under_load() {
        let a = thread_cpu_seconds();
        // Burn ~30 ms of CPU (3 USER_HZ ticks) so the counter must move.
        let t = std::time::Instant::now();
        let mut x = 0u64;
        while t.elapsed().as_millis() < 30 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(x);
        let b = thread_cpu_seconds();
        assert!(b >= a, "thread cpu time went backwards: {a} -> {b}");
        assert!(b > a, "thread cpu time did not advance under load");
    }
}
