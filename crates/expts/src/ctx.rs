//! The per-run experiment context.
//!
//! `RunCtx` replaces the old environment-variable seed channel: the seed
//! used to be process-global mutable state (set by the binary, read back
//! by the library), which is thread-unsafe and made parallel multi-seed
//! sweeps unsound by construction. Here the
//! seed is plain data — every worker thread owns its own `RunCtx`, so
//! concurrent runs with different seeds cannot interfere, and a run is a
//! pure function of `(scale, seed)`.
//!
//! The context also accumulates observability metrics: every simulation an
//! experiment launches through [`crate::setup`] runs with a noop-recorder
//! [`Obs`] attached, and its registry (heartbeat/schedule latency
//! histograms, placement counters — the continuous Table-8 measurement)
//! is folded into the context. The parallel runner merges per-worker
//! registries into the suite-wide benchmark snapshot.

use std::cell::RefCell;

use tetris_obs::MetricsRegistry;
use tetris_sim::{ClusterConfig, SimConfig};
use tetris_workload::Workload;

use crate::setup::{Scale, DEFAULT_SEED};

/// Everything an experiment needs to run: the scale and the master seed,
/// plus the metrics accumulator. Cheap to construct; one per run.
#[derive(Debug)]
pub struct RunCtx {
    /// Cluster/workload scale.
    pub scale: Scale,
    /// Master seed. Workload generation offsets it per use so experiments
    /// are independent but reproducible.
    pub seed: u64,
    /// Workload-size multiplier (`--scale F`, default 1.0). Experiments
    /// that generate their own workloads (e.g. `churn`) multiply job
    /// counts by it, which is how CI smokes run them in seconds.
    pub scale_factor: f64,
    /// Metrics folded in from every simulation this context ran.
    /// `RefCell` keeps `run(&RunCtx)` a shared borrow for the experiment
    /// code while the setup helpers record into it; a context is owned by
    /// exactly one worker thread, never shared across threads.
    collected: RefCell<MetricsRegistry>,
}

impl RunCtx {
    /// Context for `scale` with the given master seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        RunCtx {
            scale,
            seed,
            scale_factor: 1.0,
            collected: RefCell::new(MetricsRegistry::new()),
        }
    }

    /// Builder: set the workload-size multiplier (must be positive).
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        self.scale_factor = factor;
        self
    }

    /// The same scale under a different master seed (sweeps).
    pub fn with_seed(&self, seed: u64) -> Self {
        RunCtx::new(self.scale, seed).scaled(self.scale_factor)
    }

    /// The deployment cluster for this scale.
    pub fn cluster(&self) -> ClusterConfig {
        self.scale.cluster()
    }

    /// Cluster with a load multiplier (Fig-11 load sweep).
    pub fn cluster_with_load(&self, load: f64) -> ClusterConfig {
        self.scale.cluster_with_load(load)
    }

    /// The §5.1 deployment workload suite at this scale and seed.
    pub fn suite(&self) -> Workload {
        self.scale.suite_seeded(self.seed)
    }

    /// The Facebook-like trace at this scale (simulation experiments).
    pub fn facebook(&self) -> Workload {
        self.scale.facebook_seeded(self.seed + 1)
    }

    /// Seeds used by multi-seed sweep experiments (tail-dominated metrics
    /// like zero-arrival makespan are noisy on a single workload draw).
    pub fn sweep_seeds(&self) -> Vec<u64> {
        vec![self.seed + 1, self.seed + 11, self.seed + 21]
    }

    /// Default simulator configuration for experiments at this seed.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::default();
        cfg.seed = self.seed;
        if self.scale == Scale::Full {
            // Keep memory bounded on quarter-million-task runs.
            cfg.record_machine_samples = false;
            cfg.sample_period = Some(20.0);
        }
        cfg
    }

    /// Fold a finished simulation's metrics registry into this context.
    pub fn absorb(&self, metrics: &MetricsRegistry) {
        self.collected.borrow_mut().merge(metrics);
    }

    /// Take the accumulated metrics, leaving the context empty (the
    /// runner calls this once per finished experiment).
    pub fn take_metrics(&self) -> MetricsRegistry {
        self.collected.take()
    }
}

impl Default for RunCtx {
    /// Laptop scale, seed 42 — the configuration every checked-in
    /// reference output was produced under.
    fn default() -> Self {
        RunCtx::new(Scale::Laptop, DEFAULT_SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workloads() {
        let a = RunCtx::new(Scale::Laptop, 7);
        let b = RunCtx::new(Scale::Laptop, 7);
        assert_eq!(
            serde_json::to_string(&a.suite()).unwrap(),
            serde_json::to_string(&b.suite()).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&a.facebook()).unwrap(),
            serde_json::to_string(&b.facebook()).unwrap()
        );
        assert_eq!(a.sim_config().seed, 7);
        assert_eq!(a.sweep_seeds(), vec![8, 18, 28]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RunCtx::new(Scale::Laptop, 7);
        let b = a.with_seed(8);
        assert_ne!(
            serde_json::to_string(&a.suite()).unwrap(),
            serde_json::to_string(&b.suite()).unwrap()
        );
    }

    #[test]
    fn concurrent_contexts_do_not_interfere() {
        // The exact failure mode the old env-var seed had: one thread
        // setting the seed changed what another thread's runs meant.
        // With RunCtx the seed is owned data, so workloads generated
        // concurrently under different seeds must match their serial
        // counterparts byte for byte.
        let serial_7 = serde_json::to_string(&RunCtx::new(Scale::Laptop, 7).suite()).unwrap();
        let serial_8 = serde_json::to_string(&RunCtx::new(Scale::Laptop, 8).suite()).unwrap();
        let handles: Vec<_> = [7u64, 8, 7, 8]
            .into_iter()
            .map(|seed| {
                std::thread::spawn(move || {
                    let ctx = RunCtx::new(Scale::Laptop, seed);
                    let mut out = Vec::new();
                    for _ in 0..4 {
                        out.push(serde_json::to_string(&ctx.suite()).unwrap());
                    }
                    (seed, out)
                })
            })
            .collect();
        for h in handles {
            let (seed, outs) = h.join().unwrap();
            let want = if seed == 7 { &serial_7 } else { &serial_8 };
            for got in outs {
                assert_eq!(&got, want, "seed {seed} run diverged under concurrency");
            }
        }
    }

    #[test]
    fn absorb_accumulates_metrics() {
        let ctx = RunCtx::default();
        let mut m = MetricsRegistry::new();
        m.counter_add("placements", 3);
        ctx.absorb(&m);
        ctx.absorb(&m);
        let taken = ctx.take_metrics();
        assert_eq!(taken.counter("placements"), 6);
        assert_eq!(ctx.take_metrics().counter("placements"), 0);
    }
}
