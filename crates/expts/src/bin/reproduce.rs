//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```sh
//! reproduce all            # every experiment, laptop scale
//! reproduce fig4 table7    # selected experiments
//! reproduce --full fig7    # paper-scale cluster & workload (slow)
//! reproduce --list         # what exists
//! ```

use std::time::Instant;

use tetris_expts::experiments::registry;
use tetris_expts::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Laptop;
    let mut ids: Vec<String> = Vec::new();
    let mut list = false;
    let mut take_seed = false;
    for a in &args {
        if take_seed {
            take_seed = false;
            match a.parse::<u64>() {
                Ok(_) => std::env::set_var("TETRIS_SEED", a),
                Err(_) => {
                    eprintln!("--seed expects an integer");
                    std::process::exit(2);
                }
            }
            continue;
        }
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--laptop" => scale = Scale::Laptop,
            "--seed" => take_seed = true,
            "--list" => list = true,
            "-h" | "--help" => {
                print_help();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    let reg = registry();
    if list || (ids.is_empty()) {
        print_help();
        println!("\nexperiments:");
        for e in &reg {
            println!("  {:<8} {}", e.id, e.what);
        }
        if !list {
            println!("\nrun `reproduce all` for the full battery.");
        }
        return;
    }

    let selected: Vec<&_> = if ids.iter().any(|i| i == "all") {
        reg.iter().collect()
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match reg.iter().find(|e| e.id == *id) {
                Some(e) => out.push(e),
                None => {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    for e in selected {
        let start = Instant::now();
        println!("{}", "=".repeat(74));
        println!("[{}] {}", e.id, e.what);
        println!("{}", "=".repeat(74));
        let report = (e.run)(scale);
        println!("{report}");
        println!("({} finished in {:.1}s)\n", e.id, start.elapsed().as_secs_f64());
    }
}

fn print_help() {
    println!(
        "reproduce — regenerate the Tetris paper's tables and figures\n\n\
         usage: reproduce [--full|--laptop] [--seed N] [--list] <experiment>... | all\n\n\
         --laptop  20-machine cluster, scaled workloads (default; seconds\n\
                   per experiment)\n\
         --full    250-machine cluster, paper-scale workloads (roughly ten\n\
                   minutes per simulation run — pick experiments singly)"
    );
}
