//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```sh
//! reproduce all            # every experiment, laptop scale
//! reproduce all --jobs 4   # same output, on 4 worker threads
//! reproduce fig4 table7    # selected experiments
//! reproduce --full fig7    # paper-scale cluster & workload (slow)
//! reproduce sweep fig4 --seeds 1..8
//!                          # one experiment across seeds; median/p10/p90
//! reproduce all --jobs 4 --bench BENCH_reproduce.json
//!                          # machine-readable timing + heartbeat record
//! reproduce --list         # what exists
//! reproduce --trace run.jsonl --metrics run.json
//!                          # instrumented reference run: JSONL decision
//!                          # trace + metrics snapshot + summary table
//! reproduce --trace run.jsonl --trace-verbose --timeseries ts.jsonl
//!                          # + decision provenance on TaskPlaced events
//!                          # and a per-heartbeat telemetry stream
//! reproduce --journal run.wal --checkpoint-every 4 --crash-at 6 --outcome o.json
//!                          # journaled run killed at heartbeat 6, then
//!                          # recovered from the journal; the recovered
//!                          # outcome must be byte-identical to an
//!                          # uninterrupted run
//! ```

use std::time::Instant;

use tetris_expts::cli::{self, Cmd};
use tetris_expts::experiments::{self, registry};
use tetris_expts::{instrument, runner};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let default_jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let p = match cli::parse(&args, default_jobs) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    match p.cmd {
        Cmd::Help => cli::print_help(),
        Cmd::List => {
            cli::print_help();
            print_registry();
        }
        Cmd::Instrument {
            trace,
            metrics,
            verbose,
            timeseries,
            crash_frac,
            shards,
            journal,
            checkpoint_every,
            crash_at,
            outcome,
        } => {
            let ctx = tetris_expts::RunCtx::new(p.scale, p.seed).scaled(p.scale_factor);
            let opts = instrument::InstrumentOpts {
                trace,
                metrics,
                verbose,
                timeseries,
                crash_frac,
                shards,
                journal,
                checkpoint_every,
                crash_at,
                outcome,
            };
            match instrument::instrumented_run(&ctx, &opts) {
                Ok(report) => println!("{report}"),
                Err(e) => {
                    eprintln!("instrumented run failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Cmd::Run { ids } if ids.is_empty() => {
            cli::print_help();
            print_registry();
            println!("\nrun `reproduce all` for the full battery.");
        }
        Cmd::Run { ids } => {
            let selected: Vec<_> = if ids.iter().any(|i| i == "all") {
                registry()
            } else {
                // Ids were validated by the parser; keep first-mention order.
                ids.iter()
                    .map(|id| experiments::find(id).expect("validated id"))
                    .collect()
            };

            let baseline = p.bench_baseline.as_deref().map(|path| {
                runner::read_bench(path).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            });

            let start = Instant::now();
            let runs =
                runner::run_experiments(selected, p.scale, p.scale_factor, p.seed, p.jobs, |r| {
                    println!("{}", "=".repeat(74));
                    println!("[{}] {}", r.id, r.what);
                    println!("{}", "=".repeat(74));
                    println!("{}", r.report);
                    println!("({} finished in {:.1}s)\n", r.id, r.seconds);
                });
            let wall = start.elapsed().as_secs_f64();

            if p.bench.is_some() || baseline.is_some() {
                let b =
                    runner::bench_report(&runs, p.scale, p.seed, p.jobs, wall, baseline.as_ref());
                println!(
                    "suite: {} experiments in {:.1}s wall ({:.1}s cpu, jobs={}, \
                     estimated speedup {:.2}x)",
                    b.experiments.len(),
                    b.wall_seconds,
                    b.cpu_seconds,
                    b.jobs,
                    b.speedup_estimate
                );
                let longest = b
                    .experiments
                    .iter()
                    .max_by(|a, c| a.seconds.partial_cmp(&c.seconds).unwrap())
                    .map(|e| (e.id.as_str(), e.seconds))
                    .unwrap_or(("-", 0.0));
                println!(
                    "parallelism: Amdahl bound {:.2}x (longest experiment '{}' at {:.1}s), \
                     worker utilization {:.0}%, thread cpu {:.1}s of {:.1}s wall-sum",
                    b.amdahl_bound,
                    longest.0,
                    longest.1,
                    b.worker_utilization * 100.0,
                    b.thread_cpu_seconds,
                    b.cpu_seconds
                );
                if b.jobs > 1 && b.thread_cpu_seconds < 0.6 * b.cpu_seconds {
                    println!(
                        "note: workers were descheduled for {:.0}% of their runtime — the \
                         machine has fewer free cores than --jobs; expect no speedup from \
                         parallelism here",
                        100.0 * (1.0 - b.thread_cpu_seconds / b.cpu_seconds.max(1e-9))
                    );
                }
                if let (Some(bw), Some(s)) = (b.baseline_wall_seconds, b.speedup_vs_baseline) {
                    println!("measured speedup vs baseline ({bw:.1}s wall): {s:.2}x");
                }
                if let Some(base) = baseline.as_ref() {
                    for e in &b.experiments {
                        // Rows are matched by experiment id; ids absent
                        // from the baseline (experiments added after it
                        // was written) are skipped, not an error.
                        let prev = base.experiments.iter().find(|p| p.id == e.id);
                        match prev {
                            Some(prev) => {
                                if prev.seconds.max(e.seconds) >= 0.5 {
                                    println!(
                                        "  {:>10}: {:.1}s -> {:.1}s ({:.2}x)",
                                        e.id,
                                        prev.seconds,
                                        e.seconds,
                                        prev.seconds / e.seconds.max(1e-9)
                                    );
                                }
                            }
                            None => {
                                println!("  {:>10}: not in baseline, skipped", e.id);
                            }
                        }
                    }
                }
                if let Some(path) = &p.bench {
                    let json = serde_json::to_string_pretty(&b).expect("bench serializes");
                    if let Err(e) = std::fs::write(path, json + "\n") {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("bench -> {path}");
                }
            }
        }
        Cmd::Sweep { id, seeds } => {
            let exp = experiments::find(&id).expect("validated id");
            println!("{}", "=".repeat(74));
            println!(
                "[sweep {}] {} — seeds {}..{} ({} seeds, jobs={})",
                exp.id,
                exp.what,
                seeds.first().unwrap(),
                seeds.last().unwrap(),
                seeds.len(),
                p.jobs
            );
            println!("{}", "=".repeat(74));
            let start = Instant::now();
            let runs = runner::run_sweep(exp, p.scale, p.scale_factor, seeds, p.jobs, |r| {
                println!("  seed {:<4} finished in {:.1}s", r.seed, r.seconds);
            });
            println!(
                "\nper-seed headline metrics, aggregated over {} seeds:\n",
                runs.len()
            );
            println!("{}", runner::aggregate_sweep(&runs));
            println!(
                "(sweep {} finished in {:.1}s)",
                id,
                start.elapsed().as_secs_f64()
            );
        }
    }
}

fn print_registry() {
    println!("\nexperiments:");
    for e in &registry() {
        println!("  {:<8} {}", e.id, e.what);
    }
}
