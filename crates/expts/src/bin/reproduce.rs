//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```sh
//! reproduce all            # every experiment, laptop scale
//! reproduce fig4 table7    # selected experiments
//! reproduce --full fig7    # paper-scale cluster & workload (slow)
//! reproduce --list         # what exists
//! reproduce --trace run.jsonl --metrics run.json
//!                          # instrumented reference run: JSONL decision
//!                          # trace + metrics snapshot + summary table
//! ```

use std::time::Instant;

use tetris_expts::experiments::registry;
use tetris_expts::instrument;
use tetris_expts::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Laptop;
    let mut ids: Vec<String> = Vec::new();
    let mut list = false;
    let mut take_seed = false;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut take_trace = false;
    let mut take_metrics = false;
    for a in &args {
        if take_seed {
            take_seed = false;
            match a.parse::<u64>() {
                Ok(_) => std::env::set_var("TETRIS_SEED", a),
                Err(_) => {
                    eprintln!("--seed expects an integer");
                    std::process::exit(2);
                }
            }
            continue;
        }
        if take_trace {
            take_trace = false;
            trace_path = Some(a.clone());
            continue;
        }
        if take_metrics {
            take_metrics = false;
            metrics_path = Some(a.clone());
            continue;
        }
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--laptop" => scale = Scale::Laptop,
            "--seed" => take_seed = true,
            "--trace" => take_trace = true,
            "--metrics" => take_metrics = true,
            "--list" => list = true,
            "-h" | "--help" => {
                print_help();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if take_trace || take_metrics {
        eprintln!("--trace/--metrics expect a file path");
        std::process::exit(2);
    }

    let instrumenting = trace_path.is_some() || metrics_path.is_some();
    if instrumenting && !ids.is_empty() {
        eprintln!(
            "--trace/--metrics run the instrumented reference run and cannot \
             be combined with experiment ids (got: {})",
            ids.join(" ")
        );
        std::process::exit(2);
    }
    if instrumenting {
        match instrument::instrumented_run(scale, trace_path.as_deref(), metrics_path.as_deref()) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("instrumented run failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let reg = registry();
    if list || (ids.is_empty()) {
        print_help();
        println!("\nexperiments:");
        for e in &reg {
            println!("  {:<8} {}", e.id, e.what);
        }
        if !list {
            println!("\nrun `reproduce all` for the full battery.");
        }
        return;
    }

    let selected: Vec<&_> = if ids.iter().any(|i| i == "all") {
        reg.iter().collect()
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match reg.iter().find(|e| e.id == *id) {
                Some(e) => out.push(e),
                None => {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    for e in selected {
        let start = Instant::now();
        println!("{}", "=".repeat(74));
        println!("[{}] {}", e.id, e.what);
        println!("{}", "=".repeat(74));
        let report = (e.run)(scale);
        println!("{report}");
        println!(
            "({} finished in {:.1}s)\n",
            e.id,
            start.elapsed().as_secs_f64()
        );
    }
}

fn print_help() {
    println!(
        "reproduce — regenerate the Tetris paper's tables and figures\n\n\
         usage: reproduce [--full|--laptop] [--seed N] [--list] <experiment>... | all\n\
         \x20      reproduce [--trace FILE.jsonl] [--metrics FILE.json]\n\n\
         --laptop  20-machine cluster, scaled workloads (default; seconds\n\
                   per experiment)\n\
         --full    250-machine cluster, paper-scale workloads (roughly ten\n\
                   minutes per simulation run — pick experiments singly)\n\
         --trace   instrumented reference run; stream every scheduling\n\
                   decision to FILE.jsonl as JSON Lines\n\
         --metrics instrumented reference run; write the metrics snapshot\n\
                   (counters + latency histograms) to FILE.json"
    );
}
