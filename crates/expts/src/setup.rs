//! Shared experiment setup: clusters, workloads, scheduler construction.
//!
//! Seeding is explicit everywhere: the master seed lives in
//! [`RunCtx`](crate::RunCtx) and flows into workload generation and
//! scheduler construction as plain data. (It used to arrive through a
//! process-wide environment variable — global mutable state that made
//! concurrent runs unsound; that channel is gone.)

use tetris_baselines::{
    CapacityScheduler, DrfScheduler, FairScheduler, RandomScheduler, SrtfScheduler,
};
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_obs::Obs;
use tetris_resources::MachineSpec;
use tetris_sim::{ClusterConfig, SchedulerPolicy, SimConfig, SimOutcome, Simulation};
use tetris_workload::{FacebookTraceConfig, Workload, WorkloadSuiteConfig};

use crate::RunCtx;

/// Default master seed shared by all experiments (workload generation
/// offsets it per use so experiments are independent but reproducible).
pub const DEFAULT_SEED: u64 = 42;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop scale: 20 machines, task counts scaled to preserve
    /// per-machine load. Every experiment finishes in seconds.
    Laptop,
    /// Paper scale: 250 machines, full §5.1 workload. Minutes per run.
    Full,
}

impl Scale {
    /// The deployment cluster for this scale.
    pub fn cluster(self) -> ClusterConfig {
        match self {
            Scale::Laptop => ClusterConfig::uniform(20, MachineSpec::paper_large()),
            Scale::Full => ClusterConfig::paper_large(),
        }
    }

    /// Cluster with a load multiplier (for the Fig-11 load sweep: the
    /// paper varies load by shrinking the cluster).
    pub fn cluster_with_load(self, load: f64) -> ClusterConfig {
        let base = self.cluster().len() as f64;
        let n = ((base / load).round() as usize).max(2);
        ClusterConfig::uniform(n, MachineSpec::paper_large())
    }

    /// The §5.1 deployment workload suite at this scale with an explicit
    /// seed.
    pub fn suite_seeded(self, seed: u64) -> Workload {
        match self {
            Scale::Laptop => WorkloadSuiteConfig::scaled(50, 0.08).generate(seed),
            Scale::Full => WorkloadSuiteConfig::paper().generate(seed),
        }
    }

    /// The Facebook-like trace at this scale with an explicit seed.
    pub fn facebook_seeded(self, seed: u64) -> Workload {
        let cfg = match self {
            Scale::Laptop => FacebookTraceConfig {
                n_jobs: 120,
                scale: 0.06,
                mean_interarrival: 12.0,
                ..FacebookTraceConfig::default()
            },
            Scale::Full => FacebookTraceConfig {
                n_jobs: 350,
                scale: 0.8,
                mean_interarrival: 6.0,
                ..FacebookTraceConfig::default()
            },
        };
        cfg.generate(seed)
    }

    /// Short label ("laptop" / "full"), used in benchmark emissions.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Laptop => "laptop",
            Scale::Full => "full",
        }
    }
}

/// The schedulers experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedName {
    /// Tetris at the paper's operating point.
    Tetris,
    /// Slot-based Fair scheduler.
    Fair,
    /// Slot-based Capacity scheduler.
    Capacity,
    /// Shipped DRF (cpu + memory).
    Drf,
    /// Multi-resource SRTF without packing.
    Srtf,
    /// Pure packing (no SRTF, no fairness, no barrier hints).
    PackingOnly,
    /// Tetris masked to cpu+mem (over-allocation ablation).
    TetrisCpuMemOnly,
    /// Seeded random placement.
    Random,
}

impl SchedName {
    /// Construct the policy. `seed` feeds the stochastic schedulers
    /// (currently only [`SchedName::Random`]); deterministic policies
    /// ignore it.
    pub fn build(self, seed: u64) -> Box<dyn SchedulerPolicy> {
        match self {
            SchedName::Tetris => Box::new(TetrisScheduler::new(TetrisConfig::default())),
            SchedName::Fair => Box::new(FairScheduler::new()),
            SchedName::Capacity => Box::new(CapacityScheduler::new()),
            SchedName::Drf => Box::new(DrfScheduler::new()),
            SchedName::Srtf => Box::new(SrtfScheduler::new()),
            SchedName::PackingOnly => Box::new(TetrisScheduler::new(TetrisConfig::packing_only())),
            SchedName::TetrisCpuMemOnly => {
                let mut cfg = TetrisConfig::default();
                cfg.consider_io_dims = false;
                Box::new(TetrisScheduler::new(cfg))
            }
            SchedName::Random => Box::new(RandomScheduler::seeded(seed)),
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            SchedName::Tetris => "tetris",
            SchedName::Fair => "fair",
            SchedName::Capacity => "capacity",
            SchedName::Drf => "drf",
            SchedName::Srtf => "srtf",
            SchedName::PackingOnly => "packing-only",
            SchedName::TetrisCpuMemOnly => "tetris-cpumem",
            SchedName::Random => "random",
        }
    }
}

/// Run a fully-built simulation with the context's observability attached
/// (noop recorder: metrics accumulate, no event stream) and fold the
/// run's metrics into the context. Observability never perturbs outcomes
/// (enforced by an integration test in `tetris-sim`), so results are
/// byte-identical to an unobserved run.
pub fn run_observed(ctx: &RunCtx, sim: Simulation<'_>) -> SimOutcome {
    let mut obs = Obs::noop();
    let outcome = sim.observe(&mut obs).run();
    ctx.absorb(&obs.metrics);
    outcome
}

/// Run one `(cluster, workload, scheduler)` combination.
pub fn run(
    ctx: &RunCtx,
    cluster: &ClusterConfig,
    workload: &Workload,
    sched: SchedName,
    cfg: &SimConfig,
) -> SimOutcome {
    run_observed(
        ctx,
        Simulation::build(cluster.clone(), workload.clone())
            .scheduler(sched.build(cfg.seed))
            .config(cfg.clone()),
    )
}

/// Run a custom Tetris configuration.
pub fn run_tetris(
    ctx: &RunCtx,
    cluster: &ClusterConfig,
    workload: &Workload,
    tetris: TetrisConfig,
    cfg: &SimConfig,
) -> SimOutcome {
    run_observed(
        ctx,
        Simulation::build(cluster.clone(), workload.clone())
            .scheduler(TetrisScheduler::new(tetris))
            .config(cfg.clone()),
    )
}

/// Zero all arrivals (the paper's makespan measurements assume "all jobs
/// arrived at the beginning of the trace", §5.3.1).
pub fn with_zero_arrivals(mut w: Workload) -> Workload {
    for j in &mut w.jobs {
        j.arrival = 0.0;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laptop_setup_is_consistent() {
        let ctx = RunCtx::default();
        assert_eq!(ctx.cluster().len(), 20);
        let w = ctx.suite();
        assert!(w.validate().is_ok());
        assert_eq!(w.jobs.len(), 50);
        let fb = ctx.facebook();
        assert!(fb.validate().is_ok());
    }

    #[test]
    fn load_multiplier_shrinks_cluster() {
        let base = Scale::Laptop.cluster_with_load(1.0).len();
        let double = Scale::Laptop.cluster_with_load(2.0).len();
        assert_eq!(base, 20);
        assert_eq!(double, 10);
        assert!(Scale::Laptop.cluster_with_load(100.0).len() >= 2);
    }

    #[test]
    fn all_schedulers_build() {
        for s in [
            SchedName::Tetris,
            SchedName::Fair,
            SchedName::Capacity,
            SchedName::Drf,
            SchedName::Srtf,
            SchedName::PackingOnly,
            SchedName::TetrisCpuMemOnly,
            SchedName::Random,
        ] {
            let p = s.build(DEFAULT_SEED);
            assert!(!p.name().is_empty());
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn zero_arrivals() {
        let w = with_zero_arrivals(RunCtx::default().suite());
        assert!(w.jobs.iter().all(|j| j.arrival == 0.0));
    }

    #[test]
    fn runs_feed_metrics_into_the_context() {
        let ctx = RunCtx::default();
        let cluster = ctx.cluster();
        let w = ctx.suite();
        let cfg = ctx.sim_config();
        let _ = run(&ctx, &cluster, &w, SchedName::Tetris, &cfg);
        let m = ctx.take_metrics();
        assert!(m.counter(tetris_obs::names::PLACEMENTS) > 0);
        assert!(m.histogram(tetris_obs::names::HEARTBEAT_NS).is_some());
    }
}
