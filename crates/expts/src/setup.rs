//! Shared experiment setup: clusters, workloads, scheduler construction.

use tetris_baselines::{
    CapacityScheduler, DrfScheduler, FairScheduler, RandomScheduler, SrtfScheduler,
};
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_resources::MachineSpec;
use tetris_sim::{ClusterConfig, SchedulerPolicy, SimConfig, SimOutcome, Simulation};
use tetris_workload::{FacebookTraceConfig, Workload, WorkloadSuiteConfig};

/// Default master seed shared by all experiments (workload generation
/// offsets it per use so experiments are independent but reproducible).
pub const DEFAULT_SEED: u64 = 42;

/// The master seed: `DEFAULT_SEED` unless overridden via the `TETRIS_SEED`
/// environment variable (set by `reproduce --seed N`) — rerunning the
/// battery under a few seeds is the cheapest robustness check.
pub fn seed() -> u64 {
    std::env::var("TETRIS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop scale: 20 machines, task counts scaled to preserve
    /// per-machine load. Every experiment finishes in seconds.
    Laptop,
    /// Paper scale: 250 machines, full §5.1 workload. Minutes per run.
    Full,
}

impl Scale {
    /// The deployment cluster for this scale.
    pub fn cluster(self) -> ClusterConfig {
        match self {
            Scale::Laptop => ClusterConfig::uniform(20, MachineSpec::paper_large()),
            Scale::Full => ClusterConfig::paper_large(),
        }
    }

    /// Cluster with a load multiplier (for the Fig-11 load sweep: the
    /// paper varies load by shrinking the cluster).
    pub fn cluster_with_load(self, load: f64) -> ClusterConfig {
        let base = self.cluster().len() as f64;
        let n = ((base / load).round() as usize).max(2);
        ClusterConfig::uniform(n, MachineSpec::paper_large())
    }

    /// The §5.1 deployment workload suite at this scale.
    pub fn suite(self) -> Workload {
        self.suite_seeded(seed())
    }

    /// The suite with an explicit seed (multi-seed sweeps).
    pub fn suite_seeded(self, seed: u64) -> Workload {
        match self {
            Scale::Laptop => WorkloadSuiteConfig::scaled(50, 0.08).generate(seed),
            Scale::Full => WorkloadSuiteConfig::paper().generate(seed),
        }
    }

    /// The Facebook-like trace at this scale (simulation experiments).
    pub fn facebook(self) -> Workload {
        self.facebook_seeded(seed() + 1)
    }

    /// The trace with an explicit seed (multi-seed sweeps).
    pub fn facebook_seeded(self, seed: u64) -> Workload {
        let cfg = match self {
            Scale::Laptop => FacebookTraceConfig {
                n_jobs: 120,
                scale: 0.06,
                mean_interarrival: 12.0,
                ..FacebookTraceConfig::default()
            },
            Scale::Full => FacebookTraceConfig {
                n_jobs: 350,
                scale: 0.8,
                mean_interarrival: 6.0,
                ..FacebookTraceConfig::default()
            },
        };
        cfg.generate(seed)
    }

    /// Seeds used by multi-seed sweep experiments (tail-dominated metrics
    /// like zero-arrival makespan are noisy on a single workload draw).
    pub fn sweep_seeds(self) -> Vec<u64> {
        vec![seed() + 1, seed() + 11, seed() + 21]
    }

    /// Default simulator configuration for experiments.
    pub fn sim_config(self) -> SimConfig {
        let mut cfg = SimConfig::default();
        cfg.seed = seed();
        if self == Scale::Full {
            // Keep memory bounded on quarter-million-task runs.
            cfg.record_machine_samples = false;
            cfg.sample_period = Some(20.0);
        }
        cfg
    }
}

/// The schedulers experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedName {
    /// Tetris at the paper's operating point.
    Tetris,
    /// Slot-based Fair scheduler.
    Fair,
    /// Slot-based Capacity scheduler.
    Capacity,
    /// Shipped DRF (cpu + memory).
    Drf,
    /// Multi-resource SRTF without packing.
    Srtf,
    /// Pure packing (no SRTF, no fairness, no barrier hints).
    PackingOnly,
    /// Tetris masked to cpu+mem (over-allocation ablation).
    TetrisCpuMemOnly,
    /// Seeded random placement.
    Random,
}

impl SchedName {
    /// Construct the policy.
    pub fn build(self) -> Box<dyn SchedulerPolicy> {
        match self {
            SchedName::Tetris => Box::new(TetrisScheduler::new(TetrisConfig::default())),
            SchedName::Fair => Box::new(FairScheduler::new()),
            SchedName::Capacity => Box::new(CapacityScheduler::new()),
            SchedName::Drf => Box::new(DrfScheduler::new()),
            SchedName::Srtf => Box::new(SrtfScheduler::new()),
            SchedName::PackingOnly => Box::new(TetrisScheduler::new(TetrisConfig::packing_only())),
            SchedName::TetrisCpuMemOnly => {
                let mut cfg = TetrisConfig::default();
                cfg.consider_io_dims = false;
                Box::new(TetrisScheduler::new(cfg))
            }
            SchedName::Random => Box::new(RandomScheduler::seeded(seed())),
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            SchedName::Tetris => "tetris",
            SchedName::Fair => "fair",
            SchedName::Capacity => "capacity",
            SchedName::Drf => "drf",
            SchedName::Srtf => "srtf",
            SchedName::PackingOnly => "packing-only",
            SchedName::TetrisCpuMemOnly => "tetris-cpumem",
            SchedName::Random => "random",
        }
    }
}

/// Run one `(cluster, workload, scheduler)` combination.
pub fn run(
    cluster: &ClusterConfig,
    workload: &Workload,
    sched: SchedName,
    cfg: &SimConfig,
) -> SimOutcome {
    Simulation::build(cluster.clone(), workload.clone())
        .scheduler_boxed(sched.build())
        .config(cfg.clone())
        .run()
}

/// Run a custom Tetris configuration.
pub fn run_tetris(
    cluster: &ClusterConfig,
    workload: &Workload,
    tetris: TetrisConfig,
    cfg: &SimConfig,
) -> SimOutcome {
    Simulation::build(cluster.clone(), workload.clone())
        .scheduler(TetrisScheduler::new(tetris))
        .config(cfg.clone())
        .run()
}

/// Zero all arrivals (the paper's makespan measurements assume "all jobs
/// arrived at the beginning of the trace", §5.3.1).
pub fn with_zero_arrivals(mut w: Workload) -> Workload {
    for j in &mut w.jobs {
        j.arrival = 0.0;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laptop_setup_is_consistent() {
        let s = Scale::Laptop;
        assert_eq!(s.cluster().len(), 20);
        let w = s.suite();
        assert!(w.validate().is_ok());
        assert_eq!(w.jobs.len(), 50);
        let fb = s.facebook();
        assert!(fb.validate().is_ok());
    }

    #[test]
    fn load_multiplier_shrinks_cluster() {
        let base = Scale::Laptop.cluster_with_load(1.0).len();
        let double = Scale::Laptop.cluster_with_load(2.0).len();
        assert_eq!(base, 20);
        assert_eq!(double, 10);
        assert!(Scale::Laptop.cluster_with_load(100.0).len() >= 2);
    }

    #[test]
    fn all_schedulers_build() {
        for s in [
            SchedName::Tetris,
            SchedName::Fair,
            SchedName::Capacity,
            SchedName::Drf,
            SchedName::Srtf,
            SchedName::PackingOnly,
            SchedName::TetrisCpuMemOnly,
            SchedName::Random,
        ] {
            let p = s.build();
            assert!(!p.name().is_empty());
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn zero_arrivals() {
        let w = with_zero_arrivals(Scale::Laptop.suite());
        assert!(w.jobs.iter().all(|j| j.arrival == 0.0));
    }
}
