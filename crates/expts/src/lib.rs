//! # tetris-expts
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each regenerating the corresponding rows/series from the
//! simulator. Run via the `reproduce` binary:
//!
//! ```sh
//! cargo run -p tetris-expts --release --bin reproduce -- all
//! cargo run -p tetris-expts --release --bin reproduce -- all --jobs 4
//! cargo run -p tetris-expts --release --bin reproduce -- fig4 fig8
//! cargo run -p tetris-expts --release --bin reproduce -- --full fig7
//! cargo run -p tetris-expts --release --bin reproduce -- sweep fig4 --seeds 1..9
//! ```
//!
//! The default scale runs every experiment on a 20-machine cluster with
//! task counts scaled to keep per-machine load comparable to the paper's
//! 250-machine deployment (`--full` uses the paper-scale cluster and
//! workload — minutes, not seconds). Absolute numbers are not expected to
//! match the paper (our substrate is a simulator, and the supplied paper
//! text lost its digits); the *shape* — who wins, by roughly what factor,
//! where the knees fall — is the reproduction target. EXPERIMENTS.md
//! records both.
//!
//! Every experiment is a pure function `fn(&RunCtx) -> Report`: the
//! [`RunCtx`] carries the scale and master seed as plain data (no global
//! state), and the [`Report`] carries the rendered text plus typed
//! headline metrics. That purity is what lets [`runner`] execute the
//! suite — or a multi-seed sweep — on a thread pool with byte-identical
//! results to serial execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod ctx;
pub mod experiments;
pub mod instrument;
pub mod report;
pub mod runner;
pub mod setup;

pub use ctx::RunCtx;
pub use report::Report;
pub use setup::{Scale, SchedName};
