//! # tetris-expts
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each regenerating the corresponding rows/series from the
//! simulator. Run via the `reproduce` binary:
//!
//! ```sh
//! cargo run -p tetris-expts --release --bin reproduce -- all
//! cargo run -p tetris-expts --release --bin reproduce -- fig4 fig8
//! cargo run -p tetris-expts --release --bin reproduce -- --full fig7
//! ```
//!
//! The default scale runs every experiment on a 20-machine cluster with
//! task counts scaled to keep per-machine load comparable to the paper's
//! 250-machine deployment (`--full` uses the paper-scale cluster and
//! workload — minutes, not seconds). Absolute numbers are not expected to
//! match the paper (our substrate is a simulator, and the supplied paper
//! text lost its digits); the *shape* — who wins, by roughly what factor,
//! where the knees fall — is the reproduction target. EXPERIMENTS.md
//! records both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod instrument;
pub mod setup;

pub use setup::{Scale, SchedName};
