//! Argument parsing for the `reproduce` binary.
//!
//! Strict by design: unrecognized `--flags` are rejected up front with a
//! pointer at `--help` (the old parser swallowed them as experiment ids
//! and failed with a misleading "unknown experiment '--trcae'"), and
//! every flag value is validated where it is parsed. The parser is a pure
//! function of the argument vector so the whole grammar is unit-testable
//! without spawning the binary.

use crate::experiments;
use crate::setup::{Scale, DEFAULT_SEED};

/// What the binary should do, as parsed from the command line.
#[derive(Debug, PartialEq)]
pub enum Cmd {
    /// `--help` / `-h`.
    Help,
    /// `--list`.
    List,
    /// Run the named experiments (empty = print help + the registry).
    Run {
        /// Experiment ids, already validated against the registry
        /// ("all" expands later).
        ids: Vec<String>,
    },
    /// `sweep <id> --seeds A..B`: one experiment across seeds.
    Sweep {
        /// The experiment id, validated.
        id: String,
        /// The seeds to fan out over (inclusive range, ascending).
        seeds: Vec<u64>,
    },
    /// `--trace` / `--metrics` / `--timeseries`: the instrumented
    /// reference run.
    Instrument {
        /// JSONL decision-trace path.
        trace: Option<String>,
        /// Metrics-snapshot path.
        metrics: Option<String>,
        /// `--trace-verbose`: attach decision provenance (runner-up
        /// candidates, incremental-cache state) to every `TaskPlaced`
        /// trace event. Requires `--trace`.
        verbose: bool,
        /// `--timeseries FILE.jsonl`: stream one telemetry sample per
        /// heartbeat (utilization, fragmentation, packing efficiency,
        /// backlog, suspect machines).
        timeseries: Option<String>,
        /// `--crash-frac F`: fraction of machines undergoing
        /// crash/recover cycles (churn-style fault injection), so the
        /// telemetry curves can be read against cluster churn.
        crash_frac: f64,
        /// `--shards N`: run the reference configuration under the
        /// Omega-style sharded multi-scheduler (`N` optimistic scheduler
        /// instances over shared state, DESIGN.md §14). 1 = the plain
        /// single-scheduler path.
        shards: usize,
        /// `--journal FILE`: append a write-ahead decision journal
        /// (checkpoints + committed batches, DESIGN.md §15) and save it
        /// here.
        journal: Option<String>,
        /// `--checkpoint-every K`: snapshot cadence of the journal, in
        /// scheduling heartbeats (requires `--journal`).
        checkpoint_every: Option<u64>,
        /// `--crash-at N`: kill the scheduler at heartbeat `N`, then
        /// recover it from the journal and continue to completion
        /// (requires `--journal`).
        crash_at: Option<u64>,
        /// `--outcome FILE`: write the run's final `SimOutcome` as JSON —
        /// the byte-identity artifact crash-recovery smokes `cmp` against.
        outcome: Option<String>,
    },
}

/// A fully parsed command line.
#[derive(Debug, PartialEq)]
pub struct Parsed {
    /// Cluster/workload scale.
    pub scale: Scale,
    /// Workload-size multiplier (`--scale F`, validated positive; 1.0 =
    /// the experiment's own default sizing). Used by CI smokes to shrink
    /// self-sizing experiments like `churn`.
    pub scale_factor: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread count (validated ≥ 1).
    pub jobs: usize,
    /// `--bench FILE`: write the benchmark JSON here.
    pub bench: Option<String>,
    /// `--bench-baseline FILE`: prior emission to measure speedup against.
    pub bench_baseline: Option<String>,
    /// The subcommand.
    pub cmd: Cmd,
}

/// Seeds swept when `sweep` is given without `--seeds` (1..8 inclusive).
const DEFAULT_SWEEP: (u64, u64) = (1, 8);

/// Parse the argument vector (without argv[0]). `default_jobs` is the
/// machine's available parallelism, injected so tests are deterministic.
pub fn parse(args: &[String], default_jobs: usize) -> Result<Parsed, String> {
    let mut scale = Scale::Laptop;
    let mut scale_factor = 1.0f64;
    let mut seed = DEFAULT_SEED;
    let mut jobs = default_jobs.max(1);
    let mut bench = None;
    let mut bench_baseline = None;
    let mut trace = None;
    let mut metrics = None;
    let mut verbose = false;
    let mut timeseries = None;
    let mut crash_frac = 0.0f64;
    let mut crash_frac_given = false;
    let mut shards = 1usize;
    let mut shards_given = false;
    let mut journal = None;
    let mut checkpoint_every = None;
    let mut crash_at = None;
    let mut outcome = None;
    let mut seeds_range = None;
    let mut list = false;
    let mut help = false;
    let mut positional: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--laptop" => scale = Scale::Laptop,
            "--list" => list = true,
            "-h" | "--help" => help = true,
            "--seed" => {
                seed = value("--seed")?
                    .parse::<u64>()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--scale" => {
                let v = value("--scale")?;
                scale_factor = v
                    .parse::<f64>()
                    .ok()
                    .filter(|f| f.is_finite() && *f > 0.0)
                    .ok_or(format!("--scale expects a positive number (got '{v}')"))?;
            }
            "--jobs" | "-j" => {
                let v = value("--jobs")?;
                jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--jobs expects an integer >= 1 (got '{v}')"))?;
            }
            "--seeds" => {
                let v = value("--seeds")?;
                seeds_range = Some(parse_seed_range(&v)?);
            }
            "--trace" => trace = Some(value("--trace")?),
            "--trace-verbose" => verbose = true,
            "--metrics" => metrics = Some(value("--metrics")?),
            "--timeseries" => timeseries = Some(value("--timeseries")?),
            "--crash-frac" => {
                let v = value("--crash-frac")?;
                crash_frac = v
                    .parse::<f64>()
                    .ok()
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or(format!(
                        "--crash-frac expects a fraction in [0,1] (got '{v}')"
                    ))?;
                crash_frac_given = true;
            }
            "--shards" => {
                let v = value("--shards")?;
                shards = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--shards expects an integer >= 1 (got '{v}')"))?;
                shards_given = true;
            }
            "--journal" => journal = Some(value("--journal")?),
            "--checkpoint-every" => {
                let v = value("--checkpoint-every")?;
                checkpoint_every = Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or(
                    format!("--checkpoint-every expects an integer >= 1 (got '{v}')"),
                )?);
            }
            "--crash-at" => {
                let v = value("--crash-at")?;
                crash_at = Some(
                    v.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--crash-at expects an integer >= 1 (got '{v}')"))?,
                );
            }
            "--outcome" => outcome = Some(value("--outcome")?),
            "--bench" => bench = Some(value("--bench")?),
            "--bench-baseline" => bench_baseline = Some(value("--bench-baseline")?),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}' (try --help)"));
            }
            other => positional.push(other.to_string()),
        }
    }

    let cmd = if help {
        Cmd::Help
    } else if list {
        Cmd::List
    } else if trace.is_some()
        || metrics.is_some()
        || timeseries.is_some()
        || journal.is_some()
        || outcome.is_some()
    {
        if !positional.is_empty() {
            return Err(format!(
                "--trace/--metrics/--timeseries/--journal/--outcome run the instrumented \
                 reference run and cannot be combined with experiment ids (got: {})",
                positional.join(" ")
            ));
        }
        if verbose && trace.is_none() {
            return Err("--trace-verbose requires --trace FILE.jsonl".to_string());
        }
        if checkpoint_every.is_some() && journal.is_none() {
            return Err("--checkpoint-every requires --journal FILE".to_string());
        }
        if crash_at.is_some() && journal.is_none() {
            return Err(
                "--crash-at requires --journal FILE (recovery needs the journal)".to_string(),
            );
        }
        Cmd::Instrument {
            trace,
            metrics,
            verbose,
            timeseries,
            crash_frac,
            shards,
            journal,
            checkpoint_every,
            crash_at,
            outcome,
        }
    } else if positional.first().map(String::as_str) == Some("sweep") {
        let id = match positional.len() {
            2 => positional.pop().unwrap(),
            _ => return Err("usage: reproduce sweep <experiment> [--seeds A..B]".to_string()),
        };
        if id != "all" && experiments::find(&id).is_none() {
            return Err(format!("unknown experiment '{id}' (try --list)"));
        }
        if id == "all" {
            return Err("sweep takes a single experiment id, not 'all'".to_string());
        }
        let (lo, hi) = seeds_range.unwrap_or(DEFAULT_SWEEP);
        Cmd::Sweep {
            id,
            seeds: (lo..=hi).collect(),
        }
    } else {
        for id in &positional {
            if id != "all" && experiments::find(id).is_none() {
                return Err(format!("unknown experiment '{id}' (try --list)"));
            }
        }
        Cmd::Run { ids: positional }
    };

    if seeds_range.is_some() && !matches!(cmd, Cmd::Sweep { .. }) {
        return Err("--seeds only applies to `reproduce sweep <id>`".to_string());
    }
    if (bench.is_some() || bench_baseline.is_some()) && !matches!(cmd, Cmd::Run { .. }) {
        return Err("--bench/--bench-baseline only apply to experiment runs".to_string());
    }
    if (verbose
        || crash_frac_given
        || shards_given
        || checkpoint_every.is_some()
        || crash_at.is_some())
        && !matches!(cmd, Cmd::Instrument { .. })
    {
        return Err(
            "--trace-verbose/--crash-frac/--shards/--checkpoint-every/--crash-at only \
             apply to the instrumented run (--trace/--metrics/--timeseries/--journal)"
                .to_string(),
        );
    }

    Ok(Parsed {
        scale,
        scale_factor,
        seed,
        jobs,
        bench,
        bench_baseline,
        cmd,
    })
}

/// Parse `A..B` (inclusive, ascending) into a seed range.
fn parse_seed_range(v: &str) -> Result<(u64, u64), String> {
    let err = || format!("--seeds expects an inclusive range like 1..8 (got '{v}')");
    let (lo, hi) = v.split_once("..").ok_or_else(err)?;
    let lo = lo.parse::<u64>().map_err(|_| err())?;
    let hi = hi.parse::<u64>().map_err(|_| err())?;
    if lo > hi {
        return Err(err());
    }
    Ok((lo, hi))
}

/// The `--help` text.
pub fn print_help() {
    println!(
        "reproduce — regenerate the Tetris paper's tables and figures\n\n\
         usage: reproduce [options] <experiment>... | all\n\
         \x20      reproduce sweep <experiment> [--seeds A..B]\n\
         \x20      reproduce [--trace FILE.jsonl [--trace-verbose]] [--metrics FILE.json]\n\
         \x20                [--timeseries FILE.jsonl] [--crash-frac F] [--shards N]\n\
         \x20                [--journal FILE [--checkpoint-every K] [--crash-at N]]\n\
         \x20                [--outcome FILE.json]\n\n\
         --laptop  20-machine cluster, scaled workloads (default; seconds\n\
                   per experiment)\n\
         --full    250-machine cluster, paper-scale workloads (roughly ten\n\
                   minutes per simulation run — pick experiments singly)\n\
         --seed N  master seed (default 42; workloads derive from it)\n\
         --scale F workload-size multiplier for self-sizing experiments\n\
                   like churn (default 1.0; CI smokes use e.g. 0.05)\n\
         --jobs N  worker threads for running experiments/seeds in\n\
                   parallel (default: available cores; output is\n\
                   byte-identical to --jobs 1)\n\
         sweep     run one experiment across a seed range and aggregate\n\
                   its headline metrics (median/p10/p90); --seeds A..B is\n\
                   inclusive and defaults to 1..8\n\
         --bench FILE\n\
                   write a machine-readable benchmark record (wall-clock,\n\
                   per-experiment seconds, merged heartbeat histograms)\n\
         --bench-baseline FILE\n\
                   prior --bench emission to measure the speedup against\n\
         --trace   instrumented reference run; stream every scheduling\n\
                   decision to FILE.jsonl as JSON Lines\n\
         --metrics instrumented reference run; write the metrics snapshot\n\
                   (counters + latency histograms + telemetry samples) to\n\
                   FILE.json\n\
         --trace-verbose\n\
                   attach decision provenance to every TaskPlaced trace\n\
                   event: top rejected candidates with their score\n\
                   breakdown plus incremental-cache state (requires\n\
                   --trace; default traces stay byte-identical)\n\
         --timeseries FILE.jsonl\n\
                   stream one cluster telemetry sample per heartbeat\n\
                   (utilization, fragmentation, packing efficiency,\n\
                   backlog, suspect machines) as JSON Lines\n\
         --crash-frac F\n\
                   churn-style fault injection for the instrumented run:\n\
                   fraction of machines crash/recover-cycling in [0,1]\n\
         --shards N\n\
                   run the instrumented reference configuration under the\n\
                   Omega-style sharded multi-scheduler: N optimistic\n\
                   scheduler instances over shared cluster state with\n\
                   commit-time conflict resolution (default 1 = the plain\n\
                   single-scheduler path; decisions are byte-identical\n\
                   only at N=1)\n\
         --journal FILE\n\
                   write-ahead decision journal for the instrumented run:\n\
                   CRC-framed checkpoints + committed placement batches\n\
                   (DESIGN.md §15), saved to FILE for crash recovery\n\
         --checkpoint-every K\n\
                   full-state snapshot cadence of the journal in\n\
                   scheduling heartbeats (default 32; bounds recovery's\n\
                   replay to at most K batches; requires --journal)\n\
         --crash-at N\n\
                   kill the scheduler at heartbeat N, then recover it from\n\
                   the journal and continue — the final outcome must be\n\
                   byte-identical to the uninterrupted run (requires\n\
                   --journal)\n\
         --outcome FILE.json\n\
                   write the run's final SimOutcome as JSON; recovery\n\
                   smokes `cmp` a crashed-and-recovered outcome against an\n\
                   uninterrupted one"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Parsed, String> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>(), 4)
    }

    #[test]
    fn defaults() {
        let got = p(&["all"]).unwrap();
        assert_eq!(got.scale, Scale::Laptop);
        assert_eq!(got.seed, DEFAULT_SEED);
        assert_eq!(got.jobs, 4);
        assert_eq!(
            got.cmd,
            Cmd::Run {
                ids: vec!["all".into()]
            }
        );
    }

    #[test]
    fn unknown_flags_are_rejected_up_front() {
        let e = p(&["--trcae", "out.jsonl"]).unwrap_err();
        assert!(e.contains("unknown flag '--trcae'"), "{e}");
        assert!(e.contains("--help"), "{e}");
    }

    #[test]
    fn unknown_experiment_is_rejected() {
        let e = p(&["fig99"]).unwrap_err();
        assert!(e.contains("unknown experiment 'fig99'"), "{e}");
    }

    #[test]
    fn jobs_validation() {
        assert_eq!(p(&["all", "--jobs", "2"]).unwrap().jobs, 2);
        assert_eq!(p(&["all", "-j", "9"]).unwrap().jobs, 9);
        assert!(p(&["all", "--jobs", "0"]).unwrap_err().contains(">= 1"));
        assert!(p(&["all", "--jobs", "x"]).unwrap_err().contains(">= 1"));
        assert!(p(&["all", "--jobs"]).unwrap_err().contains("value"));
    }

    #[test]
    fn sweep_grammar() {
        let got = p(&["sweep", "fig4", "--seeds", "3..6"]).unwrap();
        assert_eq!(
            got.cmd,
            Cmd::Sweep {
                id: "fig4".into(),
                seeds: vec![3, 4, 5, 6],
            }
        );
        // Default range.
        match p(&["sweep", "fig4"]).unwrap().cmd {
            Cmd::Sweep { seeds, .. } => assert_eq!(seeds, (1..=8).collect::<Vec<_>>()),
            c => panic!("{c:?}"),
        }
        assert!(p(&["sweep"]).unwrap_err().contains("usage"));
        assert!(p(&["sweep", "fig4", "fig5"]).unwrap_err().contains("usage"));
        assert!(p(&["sweep", "nope"])
            .unwrap_err()
            .contains("unknown experiment"));
        assert!(p(&["sweep", "all"])
            .unwrap_err()
            .contains("single experiment"));
        assert!(p(&["sweep", "fig4", "--seeds", "6..3"])
            .unwrap_err()
            .contains("inclusive"));
        assert!(p(&["fig4", "--seeds", "1..3"])
            .unwrap_err()
            .contains("sweep"));
    }

    #[test]
    fn seed_and_scale_flags() {
        let got = p(&["--full", "--seed", "7", "fig7"]).unwrap();
        assert_eq!(got.scale, Scale::Full);
        assert_eq!(got.seed, 7);
        assert_eq!(got.scale_factor, 1.0);
        assert!(p(&["--seed", "x"]).unwrap_err().contains("integer"));
    }

    #[test]
    fn scale_factor_flag() {
        assert_eq!(p(&["all"]).unwrap().scale_factor, 1.0);
        assert_eq!(p(&["all", "--scale", "0.05"]).unwrap().scale_factor, 0.05);
        assert!(p(&["all", "--scale", "0"])
            .unwrap_err()
            .contains("positive"));
        assert!(p(&["all", "--scale", "-1"])
            .unwrap_err()
            .contains("positive"));
        assert!(p(&["all", "--scale", "x"])
            .unwrap_err()
            .contains("positive"));
        assert!(p(&["all", "--scale"]).unwrap_err().contains("value"));
    }

    #[test]
    fn instrument_mode() {
        let got = p(&["--trace", "t.jsonl", "--metrics", "m.json"]).unwrap();
        assert_eq!(
            got.cmd,
            Cmd::Instrument {
                trace: Some("t.jsonl".into()),
                metrics: Some("m.json".into()),
                verbose: false,
                timeseries: None,
                crash_frac: 0.0,
                shards: 1,
                journal: None,
                checkpoint_every: None,
                crash_at: None,
                outcome: None,
            }
        );
        assert!(p(&["--trace", "t.jsonl", "fig4"])
            .unwrap_err()
            .contains("cannot"));
        assert!(p(&["--trace"]).unwrap_err().contains("value"));
    }

    #[test]
    fn telemetry_flags() {
        let got = p(&[
            "--trace",
            "t.jsonl",
            "--trace-verbose",
            "--timeseries",
            "ts.jsonl",
            "--crash-frac",
            "0.1",
        ])
        .unwrap();
        assert_eq!(
            got.cmd,
            Cmd::Instrument {
                trace: Some("t.jsonl".into()),
                metrics: None,
                verbose: true,
                timeseries: Some("ts.jsonl".into()),
                crash_frac: 0.1,
                shards: 1,
                journal: None,
                checkpoint_every: None,
                crash_at: None,
                outcome: None,
            }
        );
        // --timeseries alone selects instrument mode.
        match p(&["--timeseries", "ts.jsonl"]).unwrap().cmd {
            Cmd::Instrument {
                timeseries: Some(ts),
                verbose: false,
                ..
            } => assert_eq!(ts, "ts.jsonl"),
            c => panic!("{c:?}"),
        }
        // Verbose needs a trace to attach provenance to.
        assert!(p(&["--metrics", "m.json", "--trace-verbose"])
            .unwrap_err()
            .contains("--trace-verbose requires --trace"));
        // Instrument-only flags are rejected on experiment runs.
        assert!(p(&["fig4", "--trace-verbose"])
            .unwrap_err()
            .contains("only apply"));
        assert!(p(&["fig4", "--crash-frac", "0.1"])
            .unwrap_err()
            .contains("only apply"));
        // Fraction validation.
        assert!(p(&["--trace", "t.jsonl", "--crash-frac", "1.5"])
            .unwrap_err()
            .contains("[0,1]"));
        assert!(p(&["--trace", "t.jsonl", "--crash-frac", "x"])
            .unwrap_err()
            .contains("[0,1]"));
        assert!(p(&["--timeseries", "ts.jsonl", "fig4"])
            .unwrap_err()
            .contains("cannot"));
    }

    #[test]
    fn shards_flag() {
        match p(&["--metrics", "m.json", "--shards", "4"]).unwrap().cmd {
            Cmd::Instrument { shards, .. } => assert_eq!(shards, 4),
            c => panic!("{c:?}"),
        }
        // Defaults to the plain single-scheduler path.
        match p(&["--metrics", "m.json"]).unwrap().cmd {
            Cmd::Instrument { shards, .. } => assert_eq!(shards, 1),
            c => panic!("{c:?}"),
        }
        assert!(p(&["--metrics", "m.json", "--shards", "0"])
            .unwrap_err()
            .contains(">= 1"));
        assert!(p(&["--metrics", "m.json", "--shards", "x"])
            .unwrap_err()
            .contains(">= 1"));
        assert!(p(&["--metrics", "m.json", "--shards"])
            .unwrap_err()
            .contains("value"));
        // Instrument-only, like the other telemetry flags.
        assert!(p(&["fig4", "--shards", "2"])
            .unwrap_err()
            .contains("only apply"));
    }

    #[test]
    fn journal_flags() {
        // --journal alone selects instrument mode.
        match p(&["--journal", "j.wal"]).unwrap().cmd {
            Cmd::Instrument {
                journal: Some(j),
                checkpoint_every: None,
                crash_at: None,
                ..
            } => assert_eq!(j, "j.wal"),
            c => panic!("{c:?}"),
        }
        match p(&[
            "--journal",
            "j.wal",
            "--checkpoint-every",
            "4",
            "--crash-at",
            "6",
            "--outcome",
            "o.json",
        ])
        .unwrap()
        .cmd
        {
            Cmd::Instrument {
                journal: Some(j),
                checkpoint_every: Some(k),
                crash_at: Some(n),
                outcome: Some(o),
                ..
            } => {
                assert_eq!(j, "j.wal");
                assert_eq!(k, 4);
                assert_eq!(n, 6);
                assert_eq!(o, "o.json");
            }
            c => panic!("{c:?}"),
        }
        // --outcome alone also selects instrument mode (the golden side
        // of a recovery smoke).
        match p(&["--outcome", "o.json"]).unwrap().cmd {
            Cmd::Instrument {
                outcome: Some(o), ..
            } => assert_eq!(o, "o.json"),
            c => panic!("{c:?}"),
        }
        // The journal-dependent knobs need the journal.
        assert!(p(&["--metrics", "m.json", "--checkpoint-every", "4"])
            .unwrap_err()
            .contains("requires --journal"));
        assert!(p(&["--metrics", "m.json", "--crash-at", "3"])
            .unwrap_err()
            .contains("requires --journal"));
        // Value validation.
        assert!(p(&["--journal", "j", "--checkpoint-every", "0"])
            .unwrap_err()
            .contains(">= 1"));
        assert!(p(&["--journal", "j", "--crash-at", "0"])
            .unwrap_err()
            .contains(">= 1"));
        assert!(p(&["--journal", "j", "--crash-at", "x"])
            .unwrap_err()
            .contains(">= 1"));
        // Instrument-only, like the other telemetry flags.
        assert!(p(&["fig4", "--crash-at", "3"])
            .unwrap_err()
            .contains("only apply"));
        assert!(p(&["fig4", "--journal", "j.wal"])
            .unwrap_err()
            .contains("cannot be combined"));
    }

    #[test]
    fn bench_flags() {
        let got = p(&["all", "--bench", "b.json", "--bench-baseline", "a.json"]).unwrap();
        assert_eq!(got.bench.as_deref(), Some("b.json"));
        assert_eq!(got.bench_baseline.as_deref(), Some("a.json"));
        assert!(p(&["--list", "--bench", "b.json"])
            .unwrap_err()
            .contains("runs"));
    }

    #[test]
    fn help_and_list() {
        assert_eq!(p(&["--help"]).unwrap().cmd, Cmd::Help);
        assert_eq!(p(&["-h", "all"]).unwrap().cmd, Cmd::Help);
        assert_eq!(p(&["--list"]).unwrap().cmd, Cmd::List);
        assert_eq!(p(&[]).unwrap().cmd, Cmd::Run { ids: vec![] });
    }
}
