//! Structured experiment output: rendered text plus typed headline
//! metrics.
//!
//! Experiments used to return a bare `String`, which forced anything
//! downstream (sweep aggregation, benchmark emission, tests) to re-parse
//! printed tables. A [`Report`] carries the rendered text unchanged —
//! `Display` reproduces exactly what the CLI printed before — alongside a
//! flat list of named numbers the aggregators consume directly.

/// The result of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The rendered report, byte-identical to the pre-`Report` CLI output.
    pub text: String,
    /// Headline numbers, in presentation order. Names are `&'static str`
    /// so sweep aggregation can group by pointer-cheap keys and typos in
    /// metric names fail at compile time, not at aggregation time.
    pub metrics: Vec<(&'static str, f64)>,
}

impl Report {
    /// Report with text and no metrics (yet).
    pub fn new(text: impl Into<String>) -> Self {
        Report {
            text: text.into(),
            metrics: Vec::new(),
        }
    }

    /// Builder-style: append one named metric.
    #[must_use]
    pub fn metric(mut self, name: &'static str, value: f64) -> Self {
        self.push(name, value);
        self
    }

    /// Append one named metric.
    pub fn push(&mut self, name: &'static str, value: f64) {
        debug_assert!(
            !self.metrics.iter().any(|(n, _)| *n == name),
            "duplicate metric {name}"
        );
        self.metrics.push((name, value));
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_exactly_the_text() {
        let r = Report::new("line one\nline two\n").metric("x", 1.5);
        assert_eq!(format!("{r}"), "line one\nline two\n");
    }

    #[test]
    fn metrics_accumulate_in_order_and_look_up() {
        let mut r = Report::new("t");
        r.push("a", 1.0);
        r.push("b", -2.0);
        assert_eq!(r.metrics, vec![("a", 1.0), ("b", -2.0)]);
        assert_eq!(r.get("b"), Some(-2.0));
        assert_eq!(r.get("missing"), None);
    }
}
