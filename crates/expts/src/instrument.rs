//! The `--trace` / `--metrics` / `--timeseries` instrumented reference
//! run.
//!
//! `reproduce --trace run.jsonl --metrics run.json` executes the §5.1
//! deployment suite under Tetris with a [`tetris_obs::Obs`] context
//! attached: every scheduling decision streams to the JSONL trace, the
//! metrics registry accumulates counters and latency histograms (the
//! continuous version of the paper's Table-8 heartbeat measurement), and
//! an end-of-run table summarises both. A second, unobserved run of the
//! same configuration cross-checks that attaching observability did not
//! perturb the simulation.
//!
//! Three telemetry extensions ride on the same run:
//!
//! * `--trace-verbose` attaches decision provenance to every `TaskPlaced`
//!   event — the top rejected candidates with their alignment/SRTF/
//!   combined scores plus the incremental-policy cache state — consumed by
//!   `trace-tool explain`. Off by default, so default traces stay
//!   byte-identical.
//! * `--timeseries FILE.jsonl` streams one [`tetris_obs::TelemetrySample`]
//!   per heartbeat (utilization, fragmentation, packing efficiency,
//!   backlog, suspect machines); the samples also land in the metrics
//!   snapshot, and the summary table gains the series' headline stats plus
//!   an end-of-run packing-efficiency comparison against the one-big-bin
//!   `upper_bound` oracle.
//! * `--crash-frac F` injects churn-style machine crash/recover cycles so
//!   the telemetry curves can be read against cluster churn.
//! * `--journal FILE` attaches the write-ahead decision journal
//!   (DESIGN.md §15) to the run, `--checkpoint-every K` sets its snapshot
//!   cadence, and `--crash-at N` kills the scheduler at heartbeat N and
//!   recovers it from that journal. The recovered outcome feeds the same
//!   traced-vs-control identity cross-check, so a crashed run only passes
//!   if recovery reproduced the uninterrupted run byte-for-byte.
//!   `--outcome FILE.json` writes the final `SimOutcome` so shell smokes
//!   can `cmp` a recovered run against an uninterrupted one.

use tetris_baselines::UpperBoundScheduler;
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_metrics::table::TextTable;
use tetris_obs::timeseries::SeriesSummary;
use tetris_obs::{names, Histogram, JsonlRecorder, NoopRecorder, Obs, Recorder, TimeSeries};
use tetris_sim::{
    Journal, RecoveryStats, RunResult, SchedulerCrash, SchedulerPolicy, ShardedScheduler,
    Simulation,
};

use crate::setup::{self, SchedName};
use crate::RunCtx;

/// What the instrumented run should produce (all outputs optional).
#[derive(Debug, Clone, Default)]
pub struct InstrumentOpts {
    /// JSONL decision-trace path.
    pub trace: Option<String>,
    /// Metrics-snapshot path.
    pub metrics: Option<String>,
    /// Attach decision provenance to `TaskPlaced` events (needs `trace`).
    pub verbose: bool,
    /// JSONL telemetry time-series path.
    pub timeseries: Option<String>,
    /// Fraction of machines undergoing crash/recover cycles, in [0,1].
    pub crash_frac: f64,
    /// Omega-style scheduler shard count (DESIGN.md §14). `0` and `1`
    /// both mean the plain single-scheduler path; `> 1` wraps the
    /// reference scheduler in a [`ShardedScheduler`] — optimistic
    /// parallel per-partition passes over shared state, conflicts
    /// resolved at a serialized commit stage — and surfaces the conflict
    /// counters and per-shard pass latencies in the summary table.
    pub shards: usize,
    /// Write-ahead decision-journal path (DESIGN.md §15). The journal is
    /// kept for the whole run and saved here after it (and any recovery)
    /// finishes.
    pub journal: Option<String>,
    /// Checkpoint cadence of the journal in scheduling heartbeats
    /// (`None` keeps [`tetris_sim::SimConfig`]'s default; needs
    /// `journal`).
    pub checkpoint_every: Option<u64>,
    /// Kill the scheduler at this heartbeat (1-based), then recover from
    /// the journal and continue to completion (needs `journal`).
    pub crash_at: Option<u64>,
    /// Write the run's final `SimOutcome` as compact JSON to this path.
    pub outcome: Option<String>,
}

/// Fault-plan shape used when `--crash-frac` is nonzero: the `churn`
/// experiment's cycling profile (crash/recover cycles with a flake lead
/// so the tracker's suspicion score gets a warning window).
const CRASH_CYCLES: u32 = 3;
const CRASH_DOWNTIME: f64 = 150.0;
const CRASH_WINDOW: (f64, f64) = (60.0, 1500.0);
const CRASH_FLAKE_LEAD: f64 = 90.0;

/// Run the reference configuration (suite workload, Tetris scheduler)
/// with observability attached, writing the requested artifacts. Returns
/// the rendered summary report.
pub fn instrumented_run(ctx: &RunCtx, opts: &InstrumentOpts) -> Result<String, String> {
    let cluster = ctx.cluster();
    let workload = ctx.suite();
    let mut cfg = ctx.sim_config();
    if opts.crash_frac > 0.0 {
        cfg.faults.crash_frac = opts.crash_frac;
        cfg.faults.crash_cycles = CRASH_CYCLES;
        cfg.faults.downtime = CRASH_DOWNTIME;
        cfg.faults.window = CRASH_WINDOW;
        cfg.faults.flake_lead = CRASH_FLAKE_LEAD;
    }
    if let Some(k) = opts.checkpoint_every {
        cfg.checkpoint_every = k;
    }
    // The scheduler crash goes on the traced run only; the control run
    // stays uninterrupted so the identity cross-check doubles as the
    // recovery-equivalence gate.
    let mut traced_cfg = cfg.clone();
    if let Some(n) = opts.crash_at {
        traced_cfg.faults.sched_crash = Some(SchedulerCrash {
            at_heartbeat: n,
            mid_commit: false,
        });
    }
    let sched = SchedName::Tetris;
    let shards = opts.shards.max(1);
    // Both the traced run and the unobserved control run must go through
    // the same construction path, sharded or not — the identity
    // cross-check below is only meaningful against the same pipeline.
    let build = |seed: u64| -> Box<dyn SchedulerPolicy> {
        if shards > 1 {
            Box::new(ShardedScheduler::new(shards, seed, |_| {
                Box::new(TetrisScheduler::new(TetrisConfig::default()))
            }))
        } else {
            sched.build(seed)
        }
    };

    let recorder: Box<dyn Recorder> = match &opts.trace {
        Some(path) => {
            Box::new(JsonlRecorder::create(path).map_err(|e| format!("cannot create {path}: {e}"))?)
        }
        None => Box::new(NoopRecorder),
    };
    let mut obs = Obs::with_recorder(recorder);
    obs.set_verbose(opts.verbose);
    match &opts.timeseries {
        Some(path) => {
            let sink =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            obs.set_timeseries(TimeSeries::streaming(Box::new(std::io::BufWriter::new(
                sink,
            ))));
        }
        // Collect in memory anyway when a metrics snapshot wants the
        // samples.
        None if opts.metrics.is_some() => obs.set_timeseries(TimeSeries::in_memory()),
        None => {}
    }

    let mut journal = opts.journal.as_ref().map(|_| Journal::new());
    let result = Simulation::build(cluster.clone(), workload.clone())
        .scheduler(build(cfg.seed))
        .config(traced_cfg)
        .observe(&mut obs)
        .run_result(journal.as_mut());
    let mut crash_heartbeat = None;
    let mut recovery: Option<RecoveryStats> = None;
    let traced = match result {
        RunResult::Completed(outcome) => *outcome,
        RunResult::Crashed { heartbeat } => {
            crash_heartbeat = Some(heartbeat);
            let j = journal
                .as_ref()
                .expect("the CLI rejects --crash-at without --journal");
            // A fresh scheduler process: new builder, crash-free config,
            // state rebuilt from the journal alone.
            let rec = Simulation::build(cluster.clone(), workload.clone())
                .scheduler(build(cfg.seed))
                .config(cfg.clone())
                .observe(&mut obs)
                .recover(j)
                .map_err(|e| format!("recovery from the journal failed: {e}"))?;
            recovery = Some(rec.stats);
            rec.outcome
        }
    };
    obs.flush();
    let samples = obs
        .take_timeseries()
        .map(TimeSeries::into_samples)
        .unwrap_or_default();

    // The no-recorder control run: observability must be a pure read.
    let plain = setup::run_observed(
        ctx,
        Simulation::build(cluster.clone(), workload.clone())
            .scheduler(build(cfg.seed))
            .config(cfg.clone()),
    );
    let identical = serde_json::to_string(&plain).map_err(|e| e.to_string())?
        == serde_json::to_string(&traced).map_err(|e| e.to_string())?;

    if let Some(path) = &opts.metrics {
        let mut snap = obs.metrics.snapshot();
        snap.timeseries = samples.clone();
        let json = serde_json::to_string_pretty(&snap).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    // Save the journal and re-verify the bytes that actually hit disk:
    // the strict reader must accept what the engine wrote.
    let journal_stats = match (&opts.journal, &journal) {
        (Some(path), Some(j)) => {
            j.save(std::path::Path::new(path))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            Some(
                Journal::load(std::path::Path::new(path))
                    .map_err(|e| format!("cannot read back {path}: {e}"))?
                    .verify()
                    .map_err(|e| format!("journal {path} failed verification: {e}"))?,
            )
        }
        _ => None,
    };
    if let Some(path) = &opts.outcome {
        let json = serde_json::to_string(&traced).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec!["scheduler".into(), sched.label().to_string()]);
    if shards > 1 {
        t.row(vec!["scheduler shards".into(), shards.to_string()]);
    }
    t.row(vec!["machines".into(), cluster.len().to_string()]);
    t.row(vec!["jobs".into(), workload.jobs.len().to_string()]);
    if opts.crash_frac > 0.0 {
        t.row(vec!["crash frac".into(), format!("{:.2}", opts.crash_frac)]);
        t.row(vec![
            "machine crashes".into(),
            traced.stats.machine_crashes.to_string(),
        ]);
    }
    if let Some(hb) = crash_heartbeat {
        t.row(vec!["scheduler crash heartbeat".into(), hb.to_string()]);
    }
    if let Some(rs) = &recovery {
        t.row(vec![
            "recovered from checkpoint".into(),
            rs.checkpoint_heartbeat.to_string(),
        ]);
        t.row(vec![
            "replayed batches".into(),
            rs.replayed_batches.to_string(),
        ]);
        t.row(vec![
            "replayed placements".into(),
            rs.replayed_placements.to_string(),
        ]);
        t.row(vec![
            "recovery wall (us)".into(),
            rs.recovery_wall_us.to_string(),
        ]);
        if rs.discarded_records > 0 {
            t.row(vec![
                "discarded journal records".into(),
                rs.discarded_records.to_string(),
            ]);
        }
    }
    if let Some(js) = &journal_stats {
        t.row(vec!["journal records".into(), js.records.to_string()]);
        t.row(vec!["journal bytes".into(), js.bytes.to_string()]);
        t.row(vec![
            "journal checkpoints".into(),
            js.checkpoints.to_string(),
        ]);
    }
    t.row(vec![
        "makespan (s)".into(),
        format!("{:.1}", traced.makespan()),
    ]);
    t.row(vec![
        "avg JCT (s)".into(),
        format!("{:.1}", traced.avg_jct()),
    ]);
    // End-of-run packing efficiency against the fluid one-big-bin oracle
    // (§3.1's upper bound): how close the whole run came to the best any
    // packing could do on this workload.
    let oracle = UpperBoundScheduler::new().simulate(&workload, cluster.total_capacity());
    if oracle.complete() && traced.makespan() > 0.0 {
        t.row(vec![
            "oracle makespan (s)".into(),
            format!("{:.1}", oracle.makespan()),
        ]);
        t.row(vec![
            "packing efficiency vs oracle".into(),
            format!("{:.3}", (oracle.makespan() / traced.makespan()).min(1.0)),
        ]);
    }
    for name in [
        names::ENGINE_EVENTS,
        names::PLACEMENTS,
        names::REJECTED_ASSIGNMENTS,
        names::TASK_RETRIES,
        names::TRACKER_REPORTS,
    ] {
        t.row(vec![name.into(), obs.metrics.counter(name).to_string()]);
    }
    if shards > 1 {
        // The sharded driver's commit-stage outcome: rejected proposals
        // and how many intra-heartbeat retry rounds they triggered.
        for name in [names::SCHED_CONFLICTS, names::CONFLICT_RETRY_ROUNDS] {
            t.row(vec![name.into(), obs.metrics.counter(name).to_string()]);
        }
        t.row(vec![
            names::CONFLICT_RETRY_PEAK.into(),
            format!(
                "{:.0}",
                obs.metrics.gauge(names::CONFLICT_RETRY_PEAK).unwrap_or(0.0)
            ),
        ]);
    }
    for name in [names::HEARTBEAT_NS, names::SCHEDULE_NS] {
        if let Some(h) = obs.metrics.histogram(name) {
            t.row(vec![format!("{name} (us)"), hist_us(h)]);
        }
    }
    // Per-shard pass wall-times, already in µs (only the sharded driver
    // records these).
    if let Some(h) = obs.metrics.histogram(names::SHARD_HEARTBEAT_US) {
        t.row(vec![
            format!("{} (us)", names::SHARD_HEARTBEAT_US),
            tetris_obs::summary::histogram_line(h, 1.0, ""),
        ]);
    }
    t.row(vec![
        "noop run identical".to_string(),
        String::from(if identical { "yes" } else { "NO (BUG)" }),
    ]);

    let mut out = String::new();
    if let Some(path) = &opts.trace {
        out.push_str(&format!("trace      -> {path}\n"));
    }
    if let Some(path) = &opts.metrics {
        out.push_str(&format!("metrics    -> {path}\n"));
    }
    if let Some(path) = &opts.timeseries {
        out.push_str(&format!("timeseries -> {path}\n"));
    }
    if let Some(path) = &opts.journal {
        out.push_str(&format!("journal    -> {path}\n"));
    }
    if let Some(path) = &opts.outcome {
        out.push_str(&format!("outcome    -> {path}\n"));
    }
    out.push('\n');
    out.push_str(&t.render());
    if !samples.is_empty() {
        out.push_str("\ntelemetry\n");
        out.push_str(&SeriesSummary::compute(&samples).render());
    }
    if !identical {
        return Err(format!(
            "observed run diverged from unobserved control run\n{out}"
        ));
    }
    Ok(out)
}

fn hist_us(h: &Histogram) -> String {
    tetris_obs::summary::histogram_line(h, 1e3, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(trace: &std::path::Path, metrics: &std::path::Path) -> InstrumentOpts {
        InstrumentOpts {
            trace: Some(trace.to_str().unwrap().into()),
            metrics: Some(metrics.to_str().unwrap().into()),
            ..InstrumentOpts::default()
        }
    }

    #[test]
    fn instrumented_run_writes_parseable_outputs() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("tetris-instr-{}.jsonl", std::process::id()));
        let metrics = dir.join(format!("tetris-instr-{}.json", std::process::id()));
        let report = instrumented_run(&RunCtx::default(), &opts(&trace, &metrics)).unwrap();
        assert!(report.contains("noop run identical"), "{report}");
        assert!(report.contains("yes"), "{report}");

        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            let rec: tetris_obs::event::TraceRecord = serde_json::from_str(line).unwrap();
            // Default traces never carry provenance.
            assert!(!line.contains("\"provenance\""), "{line}");
            let _ = rec;
        }

        let snap: tetris_obs::MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(snap.counters["placements"] > 0);
        let hb = &snap.histograms["heartbeat_ns"];
        assert!(hb.count > 0);
        assert!(hb.p50.unwrap() > 0 && hb.p99.unwrap() > 0);
        // --metrics implies in-memory telemetry: one sample per heartbeat.
        assert!(!snap.timeseries.is_empty());
        assert!(snap.timeseries.windows(2).all(|p| p[0].t <= p[1].t));

        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn sharded_run_is_deterministic_and_surfaces_conflict_metrics() {
        // shards=2 routes the reference run through the Omega-style
        // sharded driver. The in-run identity cross-check (traced vs
        // unobserved control) is the determinism gate; here we also pin
        // that the commit-stage metrics reach the summary table.
        let o = InstrumentOpts {
            shards: 2,
            ..InstrumentOpts::default()
        };
        let report = instrumented_run(&RunCtx::default(), &o).unwrap();
        assert!(report.contains("noop run identical"), "{report}");
        assert!(!report.contains("NO (BUG)"), "{report}");
        assert!(report.contains("scheduler shards"), "{report}");
        assert!(report.contains(names::SCHED_CONFLICTS), "{report}");
        assert!(report.contains(names::CONFLICT_RETRY_ROUNDS), "{report}");
        assert!(report.contains(names::SHARD_HEARTBEAT_US), "{report}");
    }

    #[test]
    fn journaled_crash_recovers_to_the_uninterrupted_outcome() {
        // Kill the scheduler at heartbeat 5, recover from the journal,
        // and lean on the in-run identity cross-check: instrumented_run
        // errors out unless the recovered outcome is byte-identical to
        // the uninterrupted control run.
        let dir = std::env::temp_dir();
        let journal = dir.join(format!("tetris-instr-{}.wal", std::process::id()));
        let outcome = dir.join(format!("tetris-instr-rec-{}.json", std::process::id()));
        let o = InstrumentOpts {
            journal: Some(journal.to_str().unwrap().into()),
            checkpoint_every: Some(3),
            crash_at: Some(5),
            outcome: Some(outcome.to_str().unwrap().into()),
            ..InstrumentOpts::default()
        };
        let report = instrumented_run(&RunCtx::default(), &o).unwrap();
        assert!(report.contains("scheduler crash heartbeat"), "{report}");
        assert!(report.contains("recovered from checkpoint"), "{report}");
        assert!(report.contains("replayed batches"), "{report}");
        assert!(report.contains("journal records"), "{report}");
        assert!(!report.contains("NO (BUG)"), "{report}");

        // The saved journal round-trips through the strict reader.
        let stats = tetris_sim::Journal::load(&journal)
            .unwrap()
            .verify()
            .unwrap();
        assert!(stats.checkpoints >= 1);
        // Replay is bounded by the checkpoint interval on a clean journal.
        let line = report
            .lines()
            .find(|l| l.contains("replayed batches"))
            .unwrap();
        let replayed: u64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .expect("numeric cell");
        assert!(
            replayed <= 3,
            "replay must be <= checkpoint interval: {line}"
        );

        // The outcome file is the recovered run's SimOutcome, parseable
        // and complete — shell smokes `cmp` it against a crash-free one.
        let text = std::fs::read_to_string(&outcome).unwrap();
        let parsed: tetris_sim::SimOutcome = serde_json::from_str(text.trim()).unwrap();
        assert!(parsed.stats.placements > 0);

        std::fs::remove_file(&journal).ok();
        std::fs::remove_file(&outcome).ok();
    }

    #[test]
    fn journaled_run_without_crash_writes_a_verifiable_journal() {
        let dir = std::env::temp_dir();
        let journal = dir.join(format!("tetris-instr-nc-{}.wal", std::process::id()));
        let o = InstrumentOpts {
            journal: Some(journal.to_str().unwrap().into()),
            checkpoint_every: Some(4),
            ..InstrumentOpts::default()
        };
        let report = instrumented_run(&RunCtx::default(), &o).unwrap();
        assert!(report.contains("journal records"), "{report}");
        assert!(!report.contains("scheduler crash heartbeat"), "{report}");
        let stats = tetris_sim::Journal::load(&journal)
            .unwrap()
            .verify()
            .unwrap();
        assert!(stats.committed_batches > 0);
        assert!(stats.placements > 0);
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn verbose_run_attaches_provenance_and_streams_timeseries() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("tetris-instr-v-{}.jsonl", std::process::id()));
        let ts = dir.join(format!("tetris-instr-ts-{}.jsonl", std::process::id()));
        let o = InstrumentOpts {
            trace: Some(trace.to_str().unwrap().into()),
            metrics: None,
            verbose: true,
            timeseries: Some(ts.to_str().unwrap().into()),
            ..InstrumentOpts::default()
        };
        let report = instrumented_run(&RunCtx::default(), &o).unwrap();
        assert!(report.contains("telemetry"), "{report}");
        assert!(report.contains("fragmentation"), "{report}");

        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(
            text.contains("\"provenance\""),
            "verbose trace must carry provenance"
        );
        assert!(text.contains("\"rejected\""));

        let ts_text = std::fs::read_to_string(&ts).unwrap();
        assert!(!ts_text.is_empty());
        for line in ts_text.lines() {
            let _: tetris_obs::TelemetrySample = serde_json::from_str(line).unwrap();
        }

        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&ts).ok();
    }
}
