//! The `--trace` / `--metrics` instrumented reference run.
//!
//! `reproduce --trace run.jsonl --metrics run.json` executes the §5.1
//! deployment suite under Tetris with a [`tetris_obs::Obs`] context
//! attached: every scheduling decision streams to the JSONL trace, the
//! metrics registry accumulates counters and latency histograms (the
//! continuous version of the paper's Table-8 heartbeat measurement), and
//! an end-of-run table summarises both. A second, unobserved run of the
//! same configuration cross-checks that attaching observability did not
//! perturb the simulation.

use tetris_metrics::table::TextTable;
use tetris_obs::{names, Histogram, JsonlRecorder, NoopRecorder, Obs, Recorder};
use tetris_sim::Simulation;

use crate::setup::{self, SchedName};
use crate::RunCtx;

/// Run the reference configuration (suite workload, Tetris scheduler)
/// with observability attached, writing the JSONL trace and/or metrics
/// snapshot to the given paths. Returns the rendered summary report.
pub fn instrumented_run(
    ctx: &RunCtx,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> Result<String, String> {
    let cluster = ctx.cluster();
    let workload = ctx.suite();
    let cfg = ctx.sim_config();
    let sched = SchedName::Tetris;

    let recorder: Box<dyn Recorder> = match trace {
        Some(path) => {
            Box::new(JsonlRecorder::create(path).map_err(|e| format!("cannot create {path}: {e}"))?)
        }
        None => Box::new(NoopRecorder),
    };
    let mut obs = Obs::with_recorder(recorder);

    let traced = Simulation::build(cluster.clone(), workload.clone())
        .scheduler(sched.build(cfg.seed))
        .config(cfg.clone())
        .observe(&mut obs)
        .run();

    // The no-recorder control run: observability must be a pure read.
    let plain = setup::run(ctx, &cluster, &workload, sched, &cfg);
    let identical = serde_json::to_string(&plain).map_err(|e| e.to_string())?
        == serde_json::to_string(&traced).map_err(|e| e.to_string())?;

    if let Some(path) = metrics {
        let json =
            serde_json::to_string_pretty(&obs.metrics.snapshot()).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec!["scheduler".into(), sched.label().to_string()]);
    t.row(vec!["machines".into(), cluster.len().to_string()]);
    t.row(vec!["jobs".into(), workload.jobs.len().to_string()]);
    t.row(vec![
        "makespan (s)".into(),
        format!("{:.1}", traced.makespan()),
    ]);
    t.row(vec![
        "avg JCT (s)".into(),
        format!("{:.1}", traced.avg_jct()),
    ]);
    for name in [
        names::ENGINE_EVENTS,
        names::PLACEMENTS,
        names::REJECTED_ASSIGNMENTS,
        names::TASK_RETRIES,
        names::TRACKER_REPORTS,
    ] {
        t.row(vec![name.into(), obs.metrics.counter(name).to_string()]);
    }
    for name in [names::HEARTBEAT_NS, names::SCHEDULE_NS] {
        if let Some(h) = obs.metrics.histogram(name) {
            t.row(vec![format!("{name} (us)"), hist_us(h)]);
        }
    }
    t.row(vec![
        "noop run identical".to_string(),
        String::from(if identical { "yes" } else { "NO (BUG)" }),
    ]);

    let mut out = String::new();
    if let Some(path) = trace {
        out.push_str(&format!("trace   -> {path}\n"));
    }
    if let Some(path) = metrics {
        out.push_str(&format!("metrics -> {path}\n"));
    }
    out.push('\n');
    out.push_str(&t.render());
    if !identical {
        return Err(format!(
            "observed run diverged from unobserved control run\n{out}"
        ));
    }
    Ok(out)
}

fn hist_us(h: &Histogram) -> String {
    tetris_obs::summary::histogram_line(h, 1e3, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_run_writes_parseable_outputs() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("tetris-instr-{}.jsonl", std::process::id()));
        let metrics = dir.join(format!("tetris-instr-{}.json", std::process::id()));
        let report = instrumented_run(
            &RunCtx::default(),
            Some(trace.to_str().unwrap()),
            Some(metrics.to_str().unwrap()),
        )
        .unwrap();
        assert!(report.contains("noop run identical"), "{report}");
        assert!(report.contains("yes"), "{report}");

        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            let _: tetris_obs::event::TraceRecord = serde_json::from_str(line).unwrap();
        }

        let snap: tetris_obs::MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(snap.counters["placements"] > 0);
        let hb = &snap.histograms["heartbeat_ns"];
        assert!(hb.count > 0);
        assert!(hb.p50.unwrap() > 0 && hb.p99.unwrap() > 0);

        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&metrics).ok();
    }
}
