//! §5.3.3 sensitivity analyses: remote penalty and the ε (alignment vs
//! SRTF) weighting.
//!
//! Gains are averaged over three workload seeds: zero-arrival makespan is
//! tail-dominated (whichever job happens to finish last sets it), so
//! single-draw numbers are noisy.

use tetris_core::TetrisConfig;
use tetris_metrics::pct_improvement;
use tetris_metrics::table::TextTable;
use tetris_workload::stats::mean;

use crate::setup::{run, run_tetris, with_zero_arrivals, SchedName};
use crate::{Report, RunCtx};

/// Mean (JCT gain, makespan gain) of a Tetris config vs the fair
/// scheduler over the sweep seeds.
fn mean_gains(ctx: &RunCtx, make: impl Fn() -> TetrisConfig) -> (f64, f64) {
    let cluster = ctx.cluster();
    let cfg = ctx.sim_config();
    let mut jct = Vec::new();
    let mut mk = Vec::new();
    for seed in ctx.sweep_seeds() {
        let w = ctx.scale.facebook_seeded(seed);
        let w0 = with_zero_arrivals(w.clone());
        let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);
        let fair0 = run(ctx, &cluster, &w0, SchedName::Fair, &cfg);
        let o = run_tetris(ctx, &cluster, &w, make(), &cfg);
        let o0 = run_tetris(ctx, &cluster, &w0, make(), &cfg);
        jct.push(pct_improvement(fair.avg_jct(), o.avg_jct()));
        mk.push(pct_improvement(fair0.makespan(), o0.makespan()));
    }
    (mean(&jct), mean(&mk))
}

/// The remote penalties swept.
const PENALTIES: [f64; 6] = [0.0, 0.05, 0.10, 0.20, 0.35, 0.5];
/// Per-penalty JCT-gain metric names, same order as `PENALTIES`.
const RP_JCT: [&str; 6] = [
    "rp0_jct_gain_vs_fair",
    "rp5_jct_gain_vs_fair",
    "rp10_jct_gain_vs_fair",
    "rp20_jct_gain_vs_fair",
    "rp35_jct_gain_vs_fair",
    "rp50_jct_gain_vs_fair",
];

/// Remote-penalty sweep. Paper: completion time and makespan change little
/// for penalties between ~8 % and ~20 %; both extremes (0: over-use remote
/// resources; large: let them lie fallow) drop moderately.
pub fn remote_penalty(ctx: &RunCtx) -> Report {
    let mut report = Report::new(String::new());
    let mut t = TextTable::new(vec![
        "remote penalty",
        "avg JCT gain vs fair",
        "makespan gain vs fair",
    ]);
    for (i, p) in PENALTIES.into_iter().enumerate() {
        let (jct, mk) = mean_gains(ctx, || {
            let mut tc = TetrisConfig::default();
            tc.remote_penalty = p;
            tc
        });
        t.row(vec![
            format!("{:.0}%", p * 100.0),
            format!("{jct:+.1}%"),
            format!("{mk:+.1}%"),
        ]);
        report.push(RP_JCT[i], jct);
    }
    report.text = format!(
        "§5.3.3 — remote-penalty sensitivity (mean of 3 workload seeds)\n\
         paper: plateau for ~8-20%. In our setup the JCT gain is flat across the\n\
         whole range; makespan differences are within seed noise (±8%).\n\n{}",
        t.render()
    );
    report
}

/// The ε multipliers swept.
const MULTIPLIERS: [f64; 6] = [0.0, 0.1, 0.5, 1.0, 2.0, 4.0];
/// Per-multiplier JCT-gain metric names, same order as `MULTIPLIERS`.
const EPS_JCT: [&str; 6] = [
    "m0.0_jct_gain_vs_fair",
    "m0.1_jct_gain_vs_fair",
    "m0.5_jct_gain_vs_fair",
    "m1.0_jct_gain_vs_fair",
    "m2.0_jct_gain_vs_fair",
    "m4.0_jct_gain_vs_fair",
];

/// ε multiplier sweep (`m` in ε = m·ā/p̄). Paper: JCT needs m > 0 and
/// plateaus quickly (m ≈ 1 right); makespan is best at small m and loses a
/// few percent beyond.
pub fn epsilon(ctx: &RunCtx) -> Report {
    let mut report = Report::new(String::new());
    let mut t = TextTable::new(vec!["m", "avg JCT gain", "makespan gain"]);
    for (i, m) in MULTIPLIERS.into_iter().enumerate() {
        let (jct, mk) = mean_gains(ctx, || {
            let mut tc = TetrisConfig::default();
            tc.srtf_multiplier = m;
            tc
        });
        t.row(vec![
            format!("{m:.1}"),
            format!("{jct:+.1}%"),
            format!("{mk:+.1}%"),
        ]);
        report.push(EPS_JCT[i], jct);
    }
    report.text = format!(
        "§5.3.3 — weighting alignment vs SRTF (m = 0 is pure packing;\n\
         mean of 3 workload seeds)\n\
         paper: completion time plateaus near m = 1; makespan prefers small m.\n\
         In our setup the JCT gain is flat (rank-saturated SRTF term);\n\
         makespan differences are within seed noise (±8%).\n\n{}",
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_render() {
        let r = remote_penalty(&RunCtx::default());
        assert!(r.text.contains("10%"));
        assert_eq!(r.metrics.len(), 6);
        let e = epsilon(&RunCtx::default());
        assert!(e.text.contains("1.0"));
        assert!(e.get("m1.0_jct_gain_vs_fair").is_some());
    }
}
