//! Omega — sharded multi-scheduler heartbeat scaling (DESIGN.md §14).
//!
//! Sweeps the Omega-style [`ShardedScheduler`] over shards ∈ {1, 2, 4, 8}
//! on the saturated 10 k-machine [`ColdPassProbe`] scenario (4 empty
//! machines, a 10×-machines pending backlog split into 2-task jobs so
//! the candidate set is wide enough to partition), timing one full
//! sharded heartbeat — parallel fan-out, serialized commit, bounded
//! intra-heartbeat retries — per rep.
//!
//! Two internal gates ride along:
//!
//! * `shards = 1` must propose the byte-identical assignment stream as
//!   the bare inner `TetrisScheduler` (the transparent-delegate
//!   contract);
//! * every committed batch must carry as many placements as the free
//!   slots allow regardless of shard count (conflict resolution loses
//!   proposals, never capacity).
//!
//! The timed quantity is the heartbeat's fan-out **critical path**
//! ([`ShardedScheduler::last_heartbeat_critical_ns`]): serial partition
//! bucketing, plus per round the *slowest* shard pass and the serialized
//! commit stage. That is the heartbeat wall-clock of a deployment with
//! one core per shard, and it stays measurable on any host core count —
//! per-pass timings are taken inside each pass, so pool time-sharing on
//! a small host cannot smear them.
//!
//! Latencies and the headline `omega_speedup_10k` (shards=1 over
//! shards=4 heartbeat critical path) go to the bench metrics; the report
//! text carries only deterministic counts — placements, proposals,
//! conflicts, retry rounds — so `reproduce all` output stays
//! byte-stable.
//!
//! [`ColdPassProbe`]: tetris_sim::probe::ColdPassProbe
//! [`ShardedScheduler`]: tetris_sim::ShardedScheduler

use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_metrics::table::TextTable;
use tetris_obs::Obs;
use tetris_sim::probe::ColdPassProbe;
use tetris_sim::{SchedulerPolicy, ShardedScheduler, ShardedStats};

use crate::{Report, RunCtx};

/// Shard counts swept.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Machines at `--scale 1.0`.
const MACHINES: usize = 10_000;
/// Pending backlog per machine (10 k machines → 100 k pending tasks).
const PENDING_PER_MACHINE: usize = 10;
/// Tasks per job: small, so the backlog becomes many jobs and the
/// partitioner has something to spread (one scoring candidate per job).
const TASKS_PER_JOB: usize = 2;
/// Timed heartbeats per shard count; the reported latency is the median.
/// Fresh unsynced schedulers per rep keep every pass genuinely cold.
const REPS: usize = 3;

/// Static metric keys per sweep point: median sharded-heartbeat
/// critical path (milliseconds) and commit conflicts.
fn metric_names(shards: usize) -> [&'static str; 2] {
    match shards {
        1 => ["omega_heartbeat_ms_s1", "omega_conflicts_s1"],
        2 => ["omega_heartbeat_ms_s2", "omega_conflicts_s2"],
        4 => ["omega_heartbeat_ms_s4", "omega_conflicts_s4"],
        _ => ["omega_heartbeat_ms_s8", "omega_conflicts_s8"],
    }
}

fn median(xs: &mut [u64]) -> f64 {
    xs.sort_unstable();
    xs[xs.len() / 2] as f64
}

fn sharded(shards: usize, seed: u64) -> ShardedScheduler {
    ShardedScheduler::new(shards, seed, |_| {
        Box::new(TetrisScheduler::new(TetrisConfig::default()))
    })
}

/// Run the omega shard-count sweep.
pub fn omega(ctx: &RunCtx) -> Report {
    let mut out = String::new();
    out.push_str(
        "Omega — sharded multi-scheduler: optimistic parallel placement over\n\
         shared cluster state, conflicts resolved at a serialized commit stage\n\
         (DESIGN.md 14). One saturated 10k-machine snapshot (4 machines empty,\n\
         10x-machines backlog in 2-task jobs); per shard count, one full\n\
         sharded heartbeat per rep: parallel per-partition schedule() passes,\n\
         commit in shard order, losing shards retry within the heartbeat.\n\
         Timed as the fan-out critical path (bucketing + slowest pass +\n\
         serialized commit per round) - the heartbeat wall-clock of a\n\
         one-core-per-shard deployment, measurable on any host. Latencies\n\
         land in the bench metrics (omega_heartbeat_ms_s*, headline\n\
         omega_speedup_10k = s1/s4); the table below is the deterministic\n\
         part. expectation: critical path drops with shard count while\n\
         conflicts stay bounded by the free capacity one heartbeat hands out.\n\n",
    );
    let n = ((MACHINES as f64 * ctx.scale_factor).round() as usize).max(16);
    let probe = ColdPassProbe::with_tasks_per_job(n, n * PENDING_PER_MACHINE, TASKS_PER_JOB);

    // Transparent-delegate gate: one shard must be byte-identical to the
    // bare inner policy on the same snapshot.
    {
        let mut one = sharded(1, ctx.seed);
        let mut bare = TetrisScheduler::new(TetrisConfig::default());
        let a = probe.cold_assignments_indexed(&mut one);
        let b = probe.cold_assignments_indexed(&mut bare);
        assert_eq!(
            a, b,
            "shards=1 diverged from the unsharded scheduler's assignment stream"
        );
    }

    let mut t = TextTable::new(vec![
        "shards",
        "placed",
        "committed",
        "conflicts",
        "retry_rounds",
        "retry_peak",
    ]);
    let mut report = Report::new(String::new());
    let mut obs = Obs::noop();
    let mut medians: Vec<(usize, f64)> = Vec::new();
    let mut placed_at_one = None;
    for &shards in &SHARD_COUNTS {
        let mut wall_ns = Vec::new();
        let mut placed = 0usize;
        let mut stats = ShardedStats::default();
        for rep in 0..REPS {
            let mut sched = sharded(shards, ctx.seed);
            placed = probe.cold_schedule_indexed(&mut sched);
            wall_ns.push(sched.last_heartbeat_critical_ns());
            if rep == REPS - 1 {
                stats = sched.stats();
                sched.drain_metrics(&mut obs.metrics);
            }
        }
        // Conflict resolution loses proposals, never capacity: every
        // shard count must fill the same free slots.
        match placed_at_one {
            None => placed_at_one = Some(placed),
            Some(p1) => assert_eq!(
                placed, p1,
                "shards={shards} committed a different placement count"
            ),
        }
        let med = median(&mut wall_ns);
        medians.push((shards, med));
        let keys = metric_names(shards);
        report.push(keys[0], med / 1e6);
        report.push(keys[1], stats.conflicts as f64);
        t.row(vec![
            format!("{shards}"),
            format!("{placed}"),
            format!("{}", stats.committed),
            format!("{}", stats.conflicts),
            format!("{}", stats.retry_rounds),
            format!("{}", stats.retry_rounds_peak),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmachines {n} | pending {} | free {} | reps {REPS}\n",
        probe.pending(),
        probe.free().len(),
    ));

    let ms = |want: usize| {
        medians
            .iter()
            .find(|(s, _)| *s == want)
            .map(|(_, m)| *m)
            .expect("swept shard count")
    };
    report.push("omega_speedup_10k", ms(1) / ms(4).max(1.0));
    // Conflict rate at shards=4: rejected proposals per commit-stage
    // proposal (deterministic — counts, not latencies).
    let s4_conflicts = report.get("omega_conflicts_s4").unwrap_or(0.0);
    let s4_total = s4_conflicts + placed_at_one.unwrap_or(0) as f64;
    report.push(
        "omega_conflict_rate_s4",
        if s4_total > 0.0 {
            s4_conflicts / s4_total
        } else {
            0.0
        },
    );
    ctx.absorb(&obs.metrics);
    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::DEFAULT_SEED;
    use crate::Scale;

    #[test]
    fn omega_sweeps_and_reports_headline() {
        // The in-experiment asserts are the real gates (shards=1
        // equivalence, placement-count invariance); here we pin report
        // shape.
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.02);
        let r = omega(&ctx);
        assert_eq!(
            r.metrics.len(),
            SHARD_COUNTS.len() * 2 + 2,
            "2 metrics per shard count + speedup + conflict rate"
        );
        for &s in &SHARD_COUNTS {
            for name in metric_names(s) {
                assert!(r.get(name).is_some(), "missing {name}");
            }
        }
        assert!(r.get("omega_speedup_10k").unwrap() > 0.0);
        let rate = r.get("omega_conflict_rate_s4").unwrap();
        assert!((0.0..=1.0).contains(&rate), "conflict rate {rate}");
        assert!(r.text.contains("conflicts"), "{}", r.text);
    }

    #[test]
    fn omega_text_is_deterministic_across_runs() {
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.02);
        assert_eq!(omega(&ctx).text, omega(&ctx).text);
    }
}
