//! Churn — graceful degradation under machine crash/recover cycling
//! (robustness extension; paper §3.1 "failures", §4.3 evacuation).
//!
//! Sweeps the fraction of machines undergoing crash/recover cycles
//! (0%, 2%, 10%) and compares Tetris against the Capacity baseline and
//! SRTF-only on makespan and average-JCT **inflation**: the metric at
//! fraction `f` divided by the same scheduler's metric with faults off.
//! Inflation isolates *degradation* from absolute speed — Tetris is
//! faster in absolute terms everywhere; the claim under test is that it
//! also degrades no worse than the slot baseline when machines churn.
//! Crashes kill resident tasks (re-queued after a restart backoff, capped
//! by `max_task_attempts`) and trigger block re-replication off the dead
//! machine through the §4.3 external-load machinery, so the surviving
//! cluster is busier exactly when capacity is scarcest. Failing machines
//! flake before they die: their tracker goes stale [`FLAKE_LEAD`] seconds
//! ahead of the crash, and the suspicion score turns that into a warning
//! only tracker-aware scheduling can act on.

use tetris_metrics::table::TextTable;
use tetris_resources::MachineSpec;
use tetris_sim::{ClusterConfig, ExpandedFaultPlan, SimConfig, SimOutcome, Simulation};
use tetris_workload::{Workload, WorkloadSuiteConfig};

use crate::setup::{run_observed, SchedName};
use crate::{Report, RunCtx};

/// Failure sweep: fraction of machines that crash/recover-cycle.
pub const CRASH_FRACS: [f64; 3] = [0.0, 0.02, 0.10];
/// Cluster size at `--scale 1.0`. Scaled with the workload (below) so a
/// smoke run keeps the same jobs-per-machine load — the degradation
/// comparison only means something in the experiment's operating regime.
const MACHINES: usize = 50;
/// Crash/recover cycles per affected machine.
const CYCLES: u32 = 3;
/// Independent fault-plan draws averaged per sweep point.
const DRAWS: u64 = 2;
/// Seconds a crashed machine stays down.
const DOWNTIME: f64 = 150.0;
/// Window of simulated seconds in which crashes begin.
const WINDOW: (f64, f64) = (60.0, 1500.0);
/// Failing machines flake first: seconds of stale tracker reports before
/// each crash. Tracker-aware scheduling turns this into a warning —
/// suspicion crosses the threshold within a few report periods and Tetris
/// stops placing new work on the doomed machine (§4.1's tracker as a
/// health signal); slot scheduling never reads usage and keeps piling on.
const FLAKE_LEAD: f64 = 90.0;
/// Jobs at `--scale 1.0`; the CLI multiplier shrinks this for smokes.
const BASE_JOBS: f64 = 75.0;

/// The schedulers compared, in presentation order.
const SCHEDS: [SchedName; 3] = [SchedName::Tetris, SchedName::Capacity, SchedName::Srtf];

/// Headline metric names per scheduler: baseline makespan, then makespan
/// and mean-JCT inflation at the 2% and 10% sweep points. `&'static`
/// because [`Report`] metrics are static keys.
fn metric_names(s: SchedName) -> [&'static str; 5] {
    match s {
        SchedName::Tetris => [
            "tetris_makespan_s",
            "tetris_makespan_infl_2pct",
            "tetris_makespan_infl_10pct",
            "tetris_jct_infl_2pct",
            "tetris_jct_infl_10pct",
        ],
        SchedName::Capacity => [
            "capacity_makespan_s",
            "capacity_makespan_infl_2pct",
            "capacity_makespan_infl_10pct",
            "capacity_jct_infl_2pct",
            "capacity_jct_infl_10pct",
        ],
        SchedName::Srtf => [
            "srtf_makespan_s",
            "srtf_makespan_infl_2pct",
            "srtf_makespan_infl_10pct",
            "srtf_jct_infl_2pct",
            "srtf_jct_infl_10pct",
        ],
        other => unreachable!("churn does not run {other:?}"),
    }
}

fn workload(ctx: &RunCtx) -> Workload {
    let n_jobs = ((BASE_JOBS * ctx.scale_factor).round() as usize).max(3);
    WorkloadSuiteConfig {
        n_jobs,
        scale: 0.08,
        arrival_horizon: 400.0,
        machine_profile: MachineSpec::paper_large(),
        ..WorkloadSuiteConfig::default()
    }
    .generate(ctx.seed + 60)
}

fn cluster(ctx: &RunCtx) -> ClusterConfig {
    let n_machines = ((MACHINES as f64 * ctx.scale_factor).round() as usize).max(10);
    ClusterConfig::uniform(n_machines, MachineSpec::paper_large())
}

fn sweep_cfg(ctx: &RunCtx, frac: f64, salt: u64) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.seed = ctx.seed + salt * 1009;
    if frac > 0.0 {
        cfg.faults.crash_frac = frac;
        cfg.faults.crash_cycles = CYCLES;
        cfg.faults.downtime = DOWNTIME;
        cfg.faults.window = WINDOW;
        cfg.faults.flake_lead = FLAKE_LEAD;
        // Evacuation rides along at the plan's default re-replication
        // constants: lost replicas stream off through §4.3 external-load
        // flows the moment a machine dies. Slowdown windows exist in the
        // FaultPlan but stay off here — churn isolates crash/recover
        // cycling; stragglers hit every scheduler's IO equally and only
        // blur the degradation comparison.
    }
    cfg
}

/// Expand the fault plan for one `(crash fraction, draw)` sweep point
/// once, so every scheduler compared at that point receives the identical
/// drawn plan *object* — not three per-run re-expansions that merely
/// happen to agree (guards against expansion ever reading config order).
fn expand_point(ctx: &RunCtx, frac: f64, salt: u64) -> Option<ExpandedFaultPlan> {
    Simulation::build(cluster(ctx), workload(ctx))
        .config(sweep_cfg(ctx, frac, salt))
        .expand_fault_plan()
}

/// One `(scheduler, crash fraction, draw)` run. All fault randomness flows
/// from the sim seed, so a sweep point is a pure function of its inputs.
fn run_one(
    ctx: &RunCtx,
    sched: SchedName,
    frac: f64,
    salt: u64,
    plan: Option<&ExpandedFaultPlan>,
) -> SimOutcome {
    let cfg = sweep_cfg(ctx, frac, salt);
    let mut sim = Simulation::build(cluster(ctx), workload(ctx))
        .scheduler(sched.build(cfg.seed))
        .config(cfg);
    if let Some(plan) = plan {
        sim = sim.faults_pre_expanded(plan.clone());
    }
    run_observed(ctx, sim)
}

/// A sweep point averages [`DRAWS`] independent fault-plan draws so one
/// unlucky crash placement does not decide the verdict. The faults-off
/// baseline is averaged over the same salts (the scheduler tie-break RNG
/// is salted too), keeping numerator and denominator comparable.
fn run_point(
    ctx: &RunCtx,
    sched: SchedName,
    frac: f64,
    plans: &[Option<ExpandedFaultPlan>],
) -> (f64, f64, u64, u64) {
    let (mut mk, mut jct, mut crashes, mut abandoned) = (0.0, 0.0, 0, 0);
    for salt in 0..DRAWS {
        let o = run_one(ctx, sched, frac, salt, plans[salt as usize].as_ref());
        mk += o.makespan();
        jct += o.avg_jct();
        crashes += o.stats.machine_crashes;
        abandoned += o.stats.tasks_abandoned;
    }
    let n = DRAWS as f64;
    (mk / n, jct / n, crashes, abandoned)
}

/// Run the churn degradation sweep.
pub fn churn(ctx: &RunCtx) -> Report {
    let mut out = String::new();
    out.push_str(&format!(
        "Churn — graceful degradation: {CYCLES} crash/recover cycles on a sweep of\n\
         machine fractions ({} machines, {DOWNTIME:.0}s downtime, crashes in \
         [{:.0}s, {:.0}s]).\n\
         Inflation = metric under churn / same scheduler's metric with faults off.\n\
         expectation: Tetris's inflation stays at or below the Capacity baseline's\n\
         at every sweep point — packing + SRTF re-absorb the lost work faster than\n\
         slot scheduling, which also ignores the re-replication traffic (§4.3).\n\n",
        MACHINES, WINDOW.0, WINDOW.1,
    ));
    let mut t = TextTable::new(vec![
        "scheduler",
        "fail%",
        "makespan(s)",
        "infl",
        "meanJCT(s)",
        "infl",
        "crashes",
        "abandoned",
    ]);
    let mut report = Report::new(String::new());
    // One fault-plan expansion per (fraction, draw), shared by all three
    // schedulers at that sweep point.
    let plans: Vec<Vec<Option<ExpandedFaultPlan>>> = CRASH_FRACS
        .iter()
        .map(|&frac| {
            (0..DRAWS)
                .map(|salt| expand_point(ctx, frac, salt))
                .collect()
        })
        .collect();
    for sched in SCHEDS {
        let names = metric_names(sched);
        let mut base: Option<(f64, f64)> = None;
        for (fi, &frac) in CRASH_FRACS.iter().enumerate() {
            let (mk, jct, crashes, abandoned) = run_point(ctx, sched, frac, &plans[fi]);
            let (b_mk, b_jct) = *base.get_or_insert((mk, jct));
            let (mk_infl, jct_infl) = (mk / b_mk, jct / b_jct);
            t.row(vec![
                sched.label().to_string(),
                format!("{:.0}", frac * 100.0),
                format!("{mk:.0}"),
                format!("{mk_infl:.3}"),
                format!("{jct:.0}"),
                format!("{jct_infl:.3}"),
                format!("{crashes}"),
                format!("{abandoned}"),
            ]);
            match fi {
                0 => report.push(names[0], mk),
                1 => {
                    report.push(names[1], mk_infl);
                    report.push(names[3], jct_infl);
                }
                _ => {
                    report.push(names[2], mk_infl);
                    report.push(names[4], jct_infl);
                }
            }
        }
    }
    out.push_str(&t.render());
    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::DEFAULT_SEED;
    use crate::Scale;

    /// The acceptance check, twice under two seeds: Tetris's makespan and
    /// JCT inflation stay at or below Capacity's at every sweep point.
    #[test]
    fn tetris_degrades_no_worse_than_capacity_under_two_seeds() {
        for seed in [DEFAULT_SEED, DEFAULT_SEED + 7] {
            let ctx = RunCtx::new(Scale::Laptop, seed).scaled(0.5);
            let r = churn(&ctx);
            for (t_name, c_name) in [
                ("tetris_makespan_infl_2pct", "capacity_makespan_infl_2pct"),
                ("tetris_makespan_infl_10pct", "capacity_makespan_infl_10pct"),
                ("tetris_jct_infl_2pct", "capacity_jct_infl_2pct"),
                ("tetris_jct_infl_10pct", "capacity_jct_infl_10pct"),
            ] {
                let t = r.get(t_name).unwrap();
                let c = r.get(c_name).unwrap();
                assert!(
                    t <= c + 1e-9,
                    "seed {seed}: {t_name} = {t:.3} exceeds {c_name} = {c:.3}"
                );
            }
        }
    }

    #[test]
    fn churn_report_covers_all_schedulers_and_sweep_points() {
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.2);
        let r = churn(&ctx);
        assert_eq!(r.metrics.len(), 15, "5 metrics x 3 schedulers");
        for s in SCHEDS {
            for name in metric_names(s) {
                let v = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
                assert!(v.is_finite() && v > 0.0, "{name} = {v}");
            }
        }
        // Faults actually fired: inflation is computed against a run that
        // really had crashes (2% of 20 machines = 1, 10% = 2, cycling).
        assert!(r.text.contains("crashes"), "{}", r.text);
    }
}
