//! Serving — diurnal service load over a batch backlog (§16 extension).
//!
//! The 26th experiment caps the typed spec API: a mixed workload of
//! [`ServingMixConfig`] replica waves (elevated [`PriorityClass`], spread
//! constraints, an SLO on placement latency) over an all-batch backlog
//! that saturates the cluster from t = 0. With `SimConfig::preemption`
//! on, schedulers may evict strictly-lower-priority batch tasks when a
//! service wave cannot place — the question is who turns that license
//! into met SLOs without wrecking the backlog.
//!
//! Per diurnal sample point (wave) we measure the fraction of replicas
//! whose placement latency (task start − wave arrival) exceeds the SLO,
//! plus the latency CDF, preemption counts, and the batch backlog's
//! makespan. The §16 acceptance gate: Tetris's SLO-violation rate stays
//! at or below the Capacity baseline's at **every** diurnal load point.

use tetris_metrics::table::TextTable;
use tetris_sim::{SimConfig, SimOutcome};
use tetris_workload::{ServingMixConfig, Workload};

use crate::setup::{run, SchedName};
use crate::{Report, RunCtx, Scale};

/// Diurnal sample points per service (fixed by the generator default;
/// asserted at run time so metric names stay in sync with the config).
pub const WAVES: usize = 8;

/// The schedulers compared, in presentation order.
const SCHEDS: [SchedName; 3] = [SchedName::Tetris, SchedName::Drf, SchedName::Capacity];

/// Per-wave SLO-violation-rate metric names (the §16 gate reads these).
fn viol_names(s: SchedName) -> [&'static str; WAVES] {
    match s {
        SchedName::Tetris => [
            "tetris_viol_w0",
            "tetris_viol_w1",
            "tetris_viol_w2",
            "tetris_viol_w3",
            "tetris_viol_w4",
            "tetris_viol_w5",
            "tetris_viol_w6",
            "tetris_viol_w7",
        ],
        SchedName::Drf => [
            "drf_viol_w0",
            "drf_viol_w1",
            "drf_viol_w2",
            "drf_viol_w3",
            "drf_viol_w4",
            "drf_viol_w5",
            "drf_viol_w6",
            "drf_viol_w7",
        ],
        SchedName::Capacity => [
            "capacity_viol_w0",
            "capacity_viol_w1",
            "capacity_viol_w2",
            "capacity_viol_w3",
            "capacity_viol_w4",
            "capacity_viol_w5",
            "capacity_viol_w6",
            "capacity_viol_w7",
        ],
        other => unreachable!("serving does not run {other:?}"),
    }
}

/// Summary metric names: overall violation rate, p99 placement latency,
/// preemption count, batch-backlog makespan.
fn summary_names(s: SchedName) -> [&'static str; 4] {
    match s {
        SchedName::Tetris => [
            "tetris_slo_viol_rate",
            "tetris_slo_p99_s",
            "tetris_preemptions",
            "tetris_batch_makespan_s",
        ],
        SchedName::Drf => [
            "drf_slo_viol_rate",
            "drf_slo_p99_s",
            "drf_preemptions",
            "drf_batch_makespan_s",
        ],
        SchedName::Capacity => [
            "capacity_slo_viol_rate",
            "capacity_slo_p99_s",
            "capacity_preemptions",
            "capacity_batch_makespan_s",
        ],
        other => unreachable!("serving does not run {other:?}"),
    }
}

/// The serving mix at this context's scale. Full scale multiplies the
/// laptop mix to keep per-machine pressure comparable on the 250-machine
/// cluster.
fn mix(ctx: &RunCtx) -> ServingMixConfig {
    let mult = match ctx.scale {
        Scale::Laptop => 1.0,
        Scale::Full => 10.0,
    };
    ServingMixConfig::laptop(ctx.scale_factor * mult)
}

/// Sim config: the shared default plus preemption. Taints stay empty —
/// the mix exercises priority/spread; taints are covered by unit and
/// property tests.
fn sim_cfg(ctx: &RunCtx) -> SimConfig {
    let mut cfg = ctx.sim_config();
    cfg.seed = ctx.seed + 77;
    cfg.preemption = true;
    cfg
}

/// Per-replica placement latencies grouped by wave, plus the batch
/// makespan. Replicas that never started count as violations with an
/// effectively-infinite latency (the run's final time stands in so CDFs
/// stay finite).
struct ServingStats {
    /// `[wave] -> (violations, replicas)`.
    wave_viol: Vec<(usize, usize)>,
    /// All replica placement latencies, unsorted.
    latencies: Vec<f64>,
    /// Overall violation count.
    violations: usize,
    /// Latest finish over batch (non-service) jobs.
    batch_makespan: f64,
}

fn wave_of(mixcfg: &ServingMixConfig, arrival: f64) -> usize {
    let step = mixcfg.period / mixcfg.waves as f64;
    ((arrival / step).round() as usize).min(mixcfg.waves - 1)
}

fn stats(mixcfg: &ServingMixConfig, w: &Workload, o: &SimOutcome) -> ServingStats {
    let mut s = ServingStats {
        wave_viol: vec![(0, 0); mixcfg.waves],
        latencies: Vec::new(),
        violations: 0,
        batch_makespan: 0.0,
    };
    for t in &o.tasks {
        let spec = &w.jobs[t.job.index()];
        let Some(slo) = spec.class.slo_latency() else {
            // Batch task: fold into the backlog makespan.
            if let Some(f) = t.finish {
                s.batch_makespan = s.batch_makespan.max(f);
            }
            continue;
        };
        let k = wave_of(mixcfg, spec.arrival);
        let latency = t.start.unwrap_or(o.final_time) - spec.arrival;
        let violated = t.start.is_none() || latency > slo;
        s.wave_viol[k].1 += 1;
        if violated {
            s.wave_viol[k].0 += 1;
            s.violations += 1;
        }
        s.latencies.push(latency);
    }
    s
}

/// Quantile of an unsorted latency sample (nearest-rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[i]
}

/// Run the serving SLO experiment.
pub fn serving(ctx: &RunCtx) -> Report {
    let mixcfg = mix(ctx);
    assert_eq!(mixcfg.waves, WAVES, "metric names assume {WAVES} waves");
    let w = mixcfg.generate(ctx.seed + 33);
    let cluster = ctx.cluster();
    let cfg = sim_cfg(ctx);

    let mut out = String::new();
    out.push_str(&format!(
        "Serving — {} services x {} diurnal waves (period {:.0}s, peak {} \
         replicas,\nSLO {:.0}s, spread floor {:?}) over a {}-job batch backlog, \
         preemption on.\nSLO violation: replica start - wave arrival > SLO (never-started \
         counts).\nexpectation: Tetris's violation rate <= Capacity's at every wave — \
         packing\nfinds room the slot baselines must preempt for, and both preempt \
         under the\nsame priority rules.\n\n",
        mixcfg.n_services,
        mixcfg.waves,
        mixcfg.period,
        mixcfg.peak_replicas,
        mixcfg.slo_latency,
        mixcfg.spread,
        mixcfg.batch_jobs,
    ));

    let mut waves_t = TextTable::new(vec![
        "scheduler",
        "wave",
        "t(s)",
        "load",
        "replicas",
        "viol%",
    ]);
    let mut summary_t = TextTable::new(vec![
        "scheduler",
        "viol%",
        "p50(s)",
        "p90(s)",
        "p99(s)",
        "preempt",
        "batch-mk(s)",
    ]);
    let mut report = Report::new(String::new());

    for sched in SCHEDS {
        let o = run(ctx, &cluster, &w, sched, &cfg);
        let s = stats(&mixcfg, &w, &o);
        let vn = viol_names(sched);
        for (k, &(viol, total)) in s.wave_viol.iter().enumerate() {
            let rate = if total == 0 {
                0.0
            } else {
                viol as f64 / total as f64
            };
            let t_k = mixcfg.wave_arrival(k);
            waves_t.row(vec![
                sched.label().to_string(),
                format!("{k}"),
                format!("{t_k:.0}"),
                format!("{:.2}", mixcfg.curve.load_at(t_k)),
                format!("{total}"),
                format!("{:.1}", rate * 100.0),
            ]);
            report.push(vn[k], rate);
        }
        let mut lat = s.latencies.clone();
        lat.sort_unstable_by(f64::total_cmp);
        let overall = if lat.is_empty() {
            0.0
        } else {
            s.violations as f64 / lat.len() as f64
        };
        let (p50, p90, p99) = (
            quantile(&lat, 0.50),
            quantile(&lat, 0.90),
            quantile(&lat, 0.99),
        );
        summary_t.row(vec![
            sched.label().to_string(),
            format!("{:.1}", overall * 100.0),
            format!("{p50:.1}"),
            format!("{p90:.1}"),
            format!("{p99:.1}"),
            format!("{}", o.stats.preemptions),
            format!("{:.0}", s.batch_makespan),
        ]);
        let sn = summary_names(sched);
        report.push(sn[0], overall);
        report.push(sn[1], p99);
        report.push(sn[2], o.stats.preemptions as f64);
        report.push(sn[3], s.batch_makespan);
    }

    out.push_str("placement-latency SLO violations per diurnal wave:\n");
    out.push_str(&waves_t.render());
    out.push_str("\nlatency CDF and preemption summary:\n");
    out.push_str(&summary_t.render());
    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::DEFAULT_SEED;

    /// The §16 acceptance gate: Tetris's SLO-violation rate stays at or
    /// below the Capacity baseline's at every diurnal load point.
    #[test]
    fn tetris_meets_slo_no_worse_than_capacity_at_every_wave() {
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED);
        let r = serving(&ctx);
        for k in 0..WAVES {
            let t = r.get(viol_names(SchedName::Tetris)[k]).unwrap();
            let c = r.get(viol_names(SchedName::Capacity)[k]).unwrap();
            assert!(
                t <= c + 1e-9,
                "wave {k}: tetris viol {t:.3} exceeds capacity viol {c:.3}\n{}",
                r.text
            );
        }
        assert!(
            r.get("tetris_slo_viol_rate").unwrap()
                <= r.get("capacity_slo_viol_rate").unwrap() + 1e-9
        );
    }

    /// Preemption actually fires in this regime (the backlog saturates
    /// the cluster before the first peak), and the report carries every
    /// typed headline the bench emission expects.
    #[test]
    fn serving_reports_all_headlines_and_preempts() {
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.5);
        let r = serving(&ctx);
        assert_eq!(
            r.metrics.len(),
            SCHEDS.len() * (WAVES + 4),
            "per-wave + summary metrics per scheduler"
        );
        for s in SCHEDS {
            for name in viol_names(s) {
                let v = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
                assert!((0.0..=1.0).contains(&v), "{name} = {v}");
            }
            for name in summary_names(s) {
                let v = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
                assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
            }
        }
        let preempts: f64 = SCHEDS
            .iter()
            .map(|&s| r.get(summary_names(s)[2]).unwrap())
            .sum();
        assert!(
            preempts > 0.0,
            "no scheduler preempted — regime too idle?\n{}",
            r.text
        );
    }

    /// The experiment is a pure function of its context.
    #[test]
    fn serving_is_deterministic() {
        let a = serving(&RunCtx::new(Scale::Laptop, 7).scaled(0.3));
        let b = serving(&RunCtx::new(Scale::Laptop, 7).scaled(0.3));
        assert_eq!(a.text, b.text);
        assert_eq!(a.metrics, b.metrics);
    }
}
