//! Extension experiments beyond the paper's figures: the §3.5 future-work
//! starvation reservations and the §4.1 estimation-robustness story,
//! quantified.

use tetris_core::{EstimationMode, StarvationConfig, TetrisConfig, TetrisScheduler};
use tetris_metrics::pct_improvement;
use tetris_metrics::table::TextTable;
use tetris_resources::{units::GB, MachineSpec};
use tetris_sim::{ClusterConfig, SimConfig, Simulation};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::JobId;

use crate::setup::{run, run_observed, run_tetris, SchedName};
use crate::{Report, RunCtx};

/// The estimate-noise levels swept (multiplicative log-normal ln-σ).
const SIGMAS: [f64; 3] = [0.2, 0.5, 1.0];
/// Per-σ JCT-gain metric names, same order as `SIGMAS`.
const SIGMA_JCT: [&str; 3] = [
    "sigma0.2_jct_gain_vs_fair",
    "sigma0.5_jct_gain_vs_fair",
    "sigma1.0_jct_gain_vs_fair",
];

/// §4.1 robustness: Tetris's gains vs the fair scheduler as the demand
/// estimates degrade (multiplicative log-normal error of ln-σ `sigma`).
/// The paper's claim: estimation error is survivable because allocations
/// are enforced and the tracker reclaims what over-estimates strand.
pub fn estimation(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let w = ctx.facebook();
    let cfg = ctx.sim_config();
    let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);
    let oracle = run(ctx, &cluster, &w, SchedName::Tetris, &cfg);
    let oracle_gain = pct_improvement(fair.avg_jct(), oracle.avg_jct());

    let mut report = Report::new(String::new()).metric("oracle_jct_gain_vs_fair", oracle_gain);
    let mut t = TextTable::new(vec![
        "estimate error (ln-σ)",
        "avg JCT gain vs fair",
        "fraction of oracle gain",
    ]);
    t.row(vec![
        "0.0 (oracle)".to_string(),
        format!("{oracle_gain:+.1}%"),
        "100%".to_string(),
    ]);
    for (i, sigma) in SIGMAS.into_iter().enumerate() {
        let mut tc = TetrisConfig::default();
        tc.estimation = EstimationMode::Noisy { sigma };
        let o = run_tetris(ctx, &cluster, &w, tc, &cfg);
        let gain = pct_improvement(fair.avg_jct(), o.avg_jct());
        t.row(vec![
            format!("{sigma:.1}"),
            format!("{gain:+.1}%"),
            format!("{:.0}%", 100.0 * gain / oracle_gain.max(1e-9)),
        ]);
        report.push(SIGMA_JCT[i], gain);
    }
    report.text = format!(
        "Extension — sensitivity to demand-estimation error (§4.1 robustness\n\
         claim quantified). ln-σ = 0.5 means a typical estimate is off by\n\
         ~1.6× either way.\n\n{}",
        t.render()
    );
    report
}

/// §3.5 future work: starvation-prevention reservations, demonstrated on
/// the adversarial churn workload (small tasks perpetually backfill the
/// cores a large task needs). The workload is hand-built and the sim seed
/// fixed, so the demonstration is identical at every scale and seed.
pub fn starvation(ctx: &RunCtx) -> Report {
    let spec = MachineSpec::new()
        .cores(16.0)
        .memory(32.0 * GB)
        .disks(4, 50e6)
        .nic(125e6);
    let mut b = WorkloadBuilder::new();
    let churn = b.begin_job("churn", None, 0.0);
    b.add_stage(churn, "small", vec![], 200, |i| TaskParams {
        cores: 2.0,
        mem: 2.0 * GB,
        duration: 8.0 + (i % 7) as f64 * 1.3,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let big = b.begin_job("big", None, 5.0);
    b.add_stage(big, "large", vec![], 1, |_| TaskParams {
        cores: 14.0,
        mem: 8.0 * GB,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let w = b.finish();

    let run_one = |starve: Option<StarvationConfig>| {
        let mut tc = TetrisConfig::default();
        tc.srtf_multiplier = 0.0;
        tc.fairness_knob = 0.0;
        tc.starvation = starve;
        let mut cfg = SimConfig::default();
        cfg.seed = 1;
        run_observed(
            ctx,
            Simulation::build(ClusterConfig::uniform(1, spec), w.clone())
                .scheduler(TetrisScheduler::new(tc))
                .config(cfg),
        )
    };

    let mut report = Report::new(String::new());
    let mut t = TextTable::new(vec!["config", "large-task JCT", "churn JCT", "makespan"]);
    for (name, starve, m_large, m_mk) in [
        (
            "no reservations (paper §3.5)",
            None,
            "large_jct_no_reservation_s",
            "makespan_no_reservation_s",
        ),
        (
            "reservations, patience 60s",
            Some(StarvationConfig {
                patience: 60.0,
                max_reservations: 1,
            }),
            "large_jct_with_reservation_s",
            "makespan_with_reservation_s",
        ),
    ] {
        let o = run_one(starve);
        t.row(vec![
            name.to_string(),
            format!("{:.0}s", o.jct(JobId(1)).unwrap()),
            format!("{:.0}s", o.jct(JobId(0)).unwrap()),
            format!("{:.0}s", o.makespan()),
        ]);
        report.push(m_large, o.jct(JobId(1)).unwrap());
        report.push(m_mk, o.makespan());
    }
    report.text = format!(
        "Extension — starvation prevention by reservation (the paper's §3.5\n\
         future-work item). One machine, a churn of 2-core tasks, and one\n\
         14-core task that plain packing starves: freed cores are re-taken\n\
         before 14 accumulate. A reservation drains the machine once the\n\
         task has waited past the patience threshold.\n\n{}",
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimation_report_degrades_gracefully() {
        let r = estimation(&RunCtx::default());
        assert!(r.text.contains("oracle"));
        assert!(r.text.contains("0.5"));
        assert!(r.get("oracle_jct_gain_vs_fair").is_some());
    }

    #[test]
    fn starvation_report_shows_both_rows() {
        let r = starvation(&RunCtx::default());
        assert!(r.text.contains("no reservations"));
        assert!(r.text.contains("patience 60s"));
        // Reservations must un-starve the large task.
        assert!(
            r.get("large_jct_with_reservation_s").unwrap()
                < r.get("large_jct_no_reservation_s").unwrap()
        );
    }
}
