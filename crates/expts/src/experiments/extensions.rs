//! Extension experiments beyond the paper's figures: the §3.5 future-work
//! starvation reservations and the §4.1 estimation-robustness story,
//! quantified.

use tetris_core::{EstimationMode, StarvationConfig, TetrisConfig, TetrisScheduler};
use tetris_metrics::pct_improvement;
use tetris_metrics::table::TextTable;
use tetris_resources::{units::GB, MachineSpec};
use tetris_sim::{ClusterConfig, SimConfig, Simulation};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::JobId;

use crate::setup::{run, run_tetris, SchedName};
use crate::Scale;

/// §4.1 robustness: Tetris's gains vs the fair scheduler as the demand
/// estimates degrade (multiplicative log-normal error of ln-σ `sigma`).
/// The paper's claim: estimation error is survivable because allocations
/// are enforced and the tracker reclaims what over-estimates strand.
pub fn estimation(scale: Scale) -> String {
    let cluster = scale.cluster();
    let w = scale.facebook();
    let cfg = scale.sim_config();
    let fair = run(&cluster, &w, SchedName::Fair, &cfg);
    let oracle = run(&cluster, &w, SchedName::Tetris, &cfg);
    let oracle_gain = pct_improvement(fair.avg_jct(), oracle.avg_jct());

    let mut t = TextTable::new(vec![
        "estimate error (ln-σ)",
        "avg JCT gain vs fair",
        "fraction of oracle gain",
    ]);
    t.row(vec![
        "0.0 (oracle)".to_string(),
        format!("{oracle_gain:+.1}%"),
        "100%".to_string(),
    ]);
    for sigma in [0.2, 0.5, 1.0] {
        let mut tc = TetrisConfig::default();
        tc.estimation = EstimationMode::Noisy { sigma };
        let o = run_tetris(&cluster, &w, tc, &cfg);
        let gain = pct_improvement(fair.avg_jct(), o.avg_jct());
        t.row(vec![
            format!("{sigma:.1}"),
            format!("{gain:+.1}%"),
            format!("{:.0}%", 100.0 * gain / oracle_gain.max(1e-9)),
        ]);
    }
    format!(
        "Extension — sensitivity to demand-estimation error (§4.1 robustness\n\
         claim quantified). ln-σ = 0.5 means a typical estimate is off by\n\
         ~1.6× either way.\n\n{}",
        t.render()
    )
}

/// §3.5 future work: starvation-prevention reservations, demonstrated on
/// the adversarial churn workload (small tasks perpetually backfill the
/// cores a large task needs).
pub fn starvation(_scale: Scale) -> String {
    let spec = MachineSpec::new()
        .cores(16.0)
        .memory(32.0 * GB)
        .disks(4, 50e6)
        .nic(125e6);
    let mut b = WorkloadBuilder::new();
    let churn = b.begin_job("churn", None, 0.0);
    b.add_stage(churn, "small", vec![], 200, |i| TaskParams {
        cores: 2.0,
        mem: 2.0 * GB,
        duration: 8.0 + (i % 7) as f64 * 1.3,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let big = b.begin_job("big", None, 5.0);
    b.add_stage(big, "large", vec![], 1, |_| TaskParams {
        cores: 14.0,
        mem: 8.0 * GB,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let w = b.finish();

    let run_one = |starve: Option<StarvationConfig>| {
        let mut tc = TetrisConfig::default();
        tc.srtf_multiplier = 0.0;
        tc.fairness_knob = 0.0;
        tc.starvation = starve;
        let mut cfg = SimConfig::default();
        cfg.seed = 1;
        Simulation::build(ClusterConfig::uniform(1, spec), w.clone())
            .scheduler(TetrisScheduler::new(tc))
            .config(cfg)
            .run()
    };

    let mut t = TextTable::new(vec!["config", "large-task JCT", "churn JCT", "makespan"]);
    for (name, starve) in [
        ("no reservations (paper §3.5)", None),
        (
            "reservations, patience 60s",
            Some(StarvationConfig {
                patience: 60.0,
                max_reservations: 1,
            }),
        ),
    ] {
        let o = run_one(starve);
        t.row(vec![
            name.to_string(),
            format!("{:.0}s", o.jct(JobId(1)).unwrap()),
            format!("{:.0}s", o.jct(JobId(0)).unwrap()),
            format!("{:.0}s", o.makespan()),
        ]);
    }
    format!(
        "Extension — starvation prevention by reservation (the paper's §3.5\n\
         future-work item). One machine, a churn of 2-core tasks, and one\n\
         14-core task that plain packing starves: freed cores are re-taken\n\
         before 14 accumulate. A reservation drains the machine once the\n\
         task has waited past the patience threshold.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimation_report_degrades_gracefully() {
        let s = estimation(Scale::Laptop);
        assert!(s.contains("oracle"));
        assert!(s.contains("0.5"));
    }

    #[test]
    fn starvation_report_shows_both_rows() {
        let s = starvation(Scale::Laptop);
        assert!(s.contains("no reservations"));
        assert!(s.contains("patience 60s"));
    }
}
