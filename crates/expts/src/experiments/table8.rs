//! Table 8 — scheduler overheads at heartbeat scale (paper §5.4), on the
//! redesigned event-driven `SchedulerPolicy` API.
//!
//! The paper reports the resource manager's time to process one
//! node-manager heartbeat with 10 k/50 k tasks pending and finds Tetris's
//! packing adds nothing measurable over stock YARN — because YARN matches
//! *incrementally*: a heartbeat touches what changed, not the whole
//! backlog. This experiment reproduces that operating point with the
//! incremental core: a cluster is packed solid
//! ([`IncrementalProbe::settle`]), then each measured heartbeat drains
//! one machine, delivers the engine's [`SchedulerEvent`]s, and times one
//! `schedule()` call for
//!
//! * **full** — [`MarkAllDirty`]-wrapped Tetris, which ignores events and
//!   rebuilds every job's remaining-work score, demand estimates, and
//!   placement preferences from the view (the pre-redesign cost); and
//! * **incremental** — the same Tetris synced by events, whose per-job
//!   candidate caches stay valid except for the jobs the drain touched.
//!
//! Both must propose byte-identical assignments every heartbeat (the
//! probe asserts it); the sweep over 2.5 k/11 k/51 k/100 k pending tasks
//! then shows the incremental decision cost growing with the *delta*
//! while the full rebuild grows with the backlog. The report text carries
//! only deterministic counts (latencies go to metrics), so `reproduce
//! all` output stays byte-stable run to run.
//!
//! [`SchedulerEvent`]: tetris_sim::SchedulerEvent
//! [`MarkAllDirty`]: tetris_sim::MarkAllDirty
//! [`IncrementalProbe::settle`]: tetris_sim::probe::IncrementalProbe::settle

use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_metrics::table::TextTable;
use tetris_obs::{names, Obs};
use tetris_resources::MachineSpec;
use tetris_sim::probe::IncrementalProbe;
use tetris_sim::{ClusterConfig, MarkAllDirty, SimConfig};
use tetris_workload::{Workload, WorkloadSuiteConfig};

use crate::{Report, RunCtx};

/// Pending-task backlogs swept at `--scale 1.0` (the paper's 10 k/50 k
/// bracketed by a light and an extreme point).
pub const BACKLOGS: [usize; 4] = [2_500, 11_000, 51_000, 100_000];
/// Cluster size at `--scale 1.0` (matches the Table 8 bench cluster).
const MACHINES: usize = 100;
/// Timed warm heartbeats per backlog; the reported latency is the median.
const REPS: usize = 8;

/// Metric names per sweep point, `&'static` because [`Report`] metrics
/// are static keys: cold full-pass and warm full-rebuild / incremental
/// latencies (milliseconds), the full/incremental warm ratio, and the
/// headline `decision_speedup_*` — cold full-rescan over warm
/// incremental, i.e. how much cheaper one decision got at this backlog
/// under the event-driven API (Table 8's ≥5× target at 51 k).
fn metric_names(i: usize) -> [&'static str; 5] {
    match i {
        0 => [
            "cold_ms_2500",
            "warm_full_ms_2500",
            "warm_inc_ms_2500",
            "warm_speedup_2500",
            "decision_speedup_2500",
        ],
        1 => [
            "cold_ms_11000",
            "warm_full_ms_11000",
            "warm_inc_ms_11000",
            "warm_speedup_11000",
            "decision_speedup_11000",
        ],
        2 => [
            "cold_ms_51000",
            "warm_full_ms_51000",
            "warm_inc_ms_51000",
            "warm_speedup_51000",
            "decision_speedup_51000",
        ],
        _ => [
            "cold_ms_100000",
            "warm_full_ms_100000",
            "warm_inc_ms_100000",
            "warm_speedup_100000",
            "decision_speedup_100000",
        ],
    }
}

/// A workload whose stage-0 maps alone reach `n` pending tasks, every
/// job arrived at t = 0 (mirrors `tetris-bench`'s backlog construction;
/// duplicated here because the bench crate depends on this one).
fn pending_workload(n: usize, seed: u64) -> Workload {
    let mut jobs = (n / 90).max(1);
    loop {
        let mut cfg = WorkloadSuiteConfig::scaled(jobs, 0.125);
        cfg.arrival_horizon = 1.0; // everyone pending together
        let w = cfg.generate(seed);
        let maps: usize = w.jobs.iter().map(|j| j.stages[0].len()).sum();
        if maps >= n {
            return w;
        }
        jobs += (jobs / 4).max(1);
    }
}

fn median(xs: &mut [u64]) -> f64 {
    xs.sort_unstable();
    xs[xs.len() / 2] as f64
}

/// Run the Table 8 overhead sweep.
pub fn table8(ctx: &RunCtx) -> Report {
    let n_machines = ((MACHINES as f64 * ctx.scale_factor).round() as usize).max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "Table 8 — scheduler overheads on {n_machines} machines: one warm heartbeat\n\
         (drain a machine, deliver its events, schedule) under the event-synced\n\
         incremental Tetris vs the same policy rebuilding from scratch\n\
         (mark-all-dirty), asserted decision-identical at every heartbeat.\n\
         Latencies land in the bench metrics (cold_ms_*, warm_full_ms_*,\n\
         warm_inc_ms_*, warm_speedup_*); the table below is the deterministic\n\
         part. expectation: warm_speedup grows with backlog — the full rebuild\n\
         pays O(pending), the incremental pass pays O(changed).\n\n",
    ));
    let mut t = TextTable::new(vec![
        "backlog", "pending", "jobs", "settled", "drained", "replaced", "events",
    ]);
    let mut report = Report::new(String::new());
    let mut obs = Obs::noop();
    for (i, &backlog) in BACKLOGS.iter().enumerate() {
        let target = ((backlog as f64 * ctx.scale_factor).round() as usize).max(60);
        let w = pending_workload(target, ctx.seed + 80);
        let n_jobs = w.jobs.len();
        let mut cfg = SimConfig::default();
        cfg.seed = ctx.seed + 80;
        let mut probe = IncrementalProbe::new(
            ClusterConfig::uniform(n_machines, MachineSpec::paper_large()),
            w,
            cfg,
        );
        let pending = probe.pending();
        let mut inc = TetrisScheduler::new(TetrisConfig::default());
        let mut full = MarkAllDirty(TetrisScheduler::new(TetrisConfig::default()));
        let (settled, cold_inc, _cold_full) = probe.settle(&mut inc, &mut full);
        let (mut inc_ns, mut full_ns) = (Vec::new(), Vec::new());
        let (mut drained, mut replaced) = (0, 0);
        for _ in 0..REPS {
            let hb = probe.warm_heartbeat(&mut inc, &mut full);
            inc_ns.push(hb.inc_ns);
            full_ns.push(hb.oracle_ns);
            drained += hb.drained;
            replaced += hb.placements;
        }
        let events = probe.events_delivered();
        obs.metrics.counter_add(names::SCHED_EVENTS, events);
        let (inc_med, full_med) = (median(&mut inc_ns), median(&mut full_ns));
        let names = metric_names(i);
        report.push(names[0], cold_inc as f64 / 1e6);
        report.push(names[1], full_med / 1e6);
        report.push(names[2], inc_med / 1e6);
        report.push(names[3], full_med / inc_med.max(1.0));
        report.push(names[4], cold_inc as f64 / inc_med.max(1.0));
        t.row(vec![
            format!("{backlog}"),
            format!("{pending}"),
            format!("{n_jobs}"),
            format!("{settled}"),
            format!("{drained}"),
            format!("{replaced}"),
            format!("{events}"),
        ]);
    }
    ctx.absorb(&obs.metrics);
    out.push_str(&t.render());
    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::DEFAULT_SEED;
    use crate::Scale;

    #[test]
    fn table8_reports_full_sweep_with_identical_decisions() {
        // The probe panics if the incremental and full paths ever propose
        // different assignments, so a completed run *is* the equivalence
        // assertion; here we pin the report shape on a small scale.
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.02);
        let r = table8(&ctx);
        assert_eq!(r.metrics.len(), 20, "5 metrics x 4 sweep points");
        for i in 0..BACKLOGS.len() {
            for name in metric_names(i) {
                let v = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
                assert!(v.is_finite() && v > 0.0, "{name} = {v}");
            }
        }
        assert!(r.text.contains("events"), "{}", r.text);
    }

    #[test]
    fn table8_text_is_deterministic_across_runs() {
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.02);
        assert_eq!(table8(&ctx).text, table8(&ctx).text);
    }
}
