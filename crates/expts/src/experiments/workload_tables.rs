//! Tables 2 and 3 and Figure 2 — the workload-analysis artifacts (§2.2.2).

use tetris_metrics::tightness::TightnessTable;
use tetris_resources::Resource;
use tetris_workload::analysis::{within_stage_cov, CorrelationMatrix, DemandDiversity, Heatmap};

use crate::setup::{run, SchedName};
use crate::{Report, RunCtx};

/// Table 2: correlation matrix of per-task resource demands over the
/// Facebook-like trace. Paper finding: little cross-resource correlation;
/// the largest (cores↔memory) only moderate.
pub fn table2(ctx: &RunCtx) -> Report {
    let w = ctx.facebook();
    let m = CorrelationMatrix::compute(&w);
    Report::new(format!(
        "Table 2 — correlation of per-task demands ({} tasks)\n\
         paper: all pairs weak; max (cores↔memory) moderate.\n\n{}\n\
         max off-diagonal |r| = {:.2}\n",
        w.num_tasks(),
        m.render(),
        m.max_off_diagonal()
    ))
    .metric("tasks", w.num_tasks() as f64)
    .metric("max_abs_offdiag_corr", m.max_off_diagonal())
}

/// Figure 2: demand heat-maps (cores vs memory / disk / network) with
/// log-scale counts, plus the min/median/max/CoV summary the paper
/// narrates ("minimum values are 5–10× lower than the median, which in
/// turn is ~50× lower than the maximum").
pub fn fig2(ctx: &RunCtx) -> Report {
    let w = ctx.facebook();
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 2 — task demand diversity over the Facebook-like trace ({} tasks)\n\n",
        w.num_tasks()
    ));
    out.push_str(&DemandDiversity::compute(&w).render());
    let within = within_stage_cov(&w);
    out.push_str(&format!(
        "\nwithin-stage CoV (§4.1; basis for phase-based estimation): \
         cores {:.2}, memory {:.2}, disk {:.2}, network {:.2}\n",
        within[0], within[1], within[2], within[3]
    ));
    for (dim, name) in [(1usize, "memory"), (2, "disk"), (3, "network")] {
        let h = Heatmap::compute(&w, dim, 24);
        out.push_str(&format!(
            "\ncores (→) vs {name} (↑), log-scale counts; {} of {} cells occupied:\n{}",
            h.occupied_cells(),
            24 * 24,
            h.render()
        ));
    }
    Report::new(out)
        .metric("within_stage_cov_cores", within[0])
        .metric("within_stage_cov_memory", within[1])
        .metric("within_stage_cov_disk", within[2])
        .metric("within_stage_cov_network", within[3])
}

/// Table 3: probability that a resource is used above {50, 80, 99} % of
/// aggregate capacity while replaying the trace. We replay under Tetris:
/// the table is about the *workload's* pressure on each resource, and a
/// melting slot scheduler (tasks crawling under interference) depresses
/// the measured IO usage. Paper finding: multiple resources become tight,
/// at different times.
pub fn table3(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let total = cluster.total_capacity();
    let w = ctx.facebook();
    let cfg = ctx.sim_config();
    let o = run(ctx, &cluster, &w, SchedName::Tetris, &cfg);
    let t = TightnessTable::cluster(&o, &total, &[0.5, 0.8, 0.99]);
    Report::new(format!(
        "Table 3 — tightness of cluster resources (Facebook-like trace replay;\n\
         fraction of samples with aggregate usage above the threshold)\n\
         paper: several resources tight, at different times.\n\n{}",
        t.render()
    ))
    .metric("p_cpu_over_80", t.get(Resource::Cpu, 1))
    .metric("p_mem_over_80", t.get(Resource::Mem, 1))
    .metric("p_netin_over_80", t.get(Resource::NetIn, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reports_weak_correlation() {
        let r = table2(&RunCtx::default());
        assert!(r.text.contains("max off-diagonal"));
        // The typed metric carries the paper's qualitative claim.
        let v = r.get("max_abs_offdiag_corr").unwrap();
        assert!(v < 0.6, "correlation too strong: {v}");
        // And it matches what the text renders.
        assert!(r.text.contains(&format!("max off-diagonal |r| = {v:.2}")));
    }

    #[test]
    fn fig2_renders_three_heatmaps() {
        let r = fig2(&RunCtx::default());
        assert!(r.text.contains("memory"));
        assert!(r.text.contains("disk"));
        assert!(r.text.contains("network"));
        assert!(r.text.matches("cells occupied").count() == 3);
        assert_eq!(r.metrics.len(), 4);
    }

    #[test]
    fn table3_multiple_resources_get_tight() {
        let r = table3(&RunCtx::default());
        assert!(r.text.contains("cpu"));
        assert!(r.text.contains("net_in"));
    }
}
