//! Tables 2 and 3 and Figure 2 — the workload-analysis artifacts (§2.2.2).

use tetris_metrics::tightness::TightnessTable;
use tetris_workload::analysis::{within_stage_cov, CorrelationMatrix, DemandDiversity, Heatmap};

use crate::setup::{run, SchedName};
use crate::Scale;

/// Table 2: correlation matrix of per-task resource demands over the
/// Facebook-like trace. Paper finding: little cross-resource correlation;
/// the largest (cores↔memory) only moderate.
pub fn table2(scale: Scale) -> String {
    let w = scale.facebook();
    let m = CorrelationMatrix::compute(&w);
    format!(
        "Table 2 — correlation of per-task demands ({} tasks)\n\
         paper: all pairs weak; max (cores↔memory) moderate.\n\n{}\n\
         max off-diagonal |r| = {:.2}\n",
        w.num_tasks(),
        m.render(),
        m.max_off_diagonal()
    )
}

/// Figure 2: demand heat-maps (cores vs memory / disk / network) with
/// log-scale counts, plus the min/median/max/CoV summary the paper
/// narrates ("minimum values are 5–10× lower than the median, which in
/// turn is ~50× lower than the maximum").
pub fn fig2(scale: Scale) -> String {
    let w = scale.facebook();
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 2 — task demand diversity over the Facebook-like trace ({} tasks)\n\n",
        w.num_tasks()
    ));
    out.push_str(&DemandDiversity::compute(&w).render());
    let within = within_stage_cov(&w);
    out.push_str(&format!(
        "\nwithin-stage CoV (§4.1; basis for phase-based estimation): \
         cores {:.2}, memory {:.2}, disk {:.2}, network {:.2}\n",
        within[0], within[1], within[2], within[3]
    ));
    for (dim, name) in [(1usize, "memory"), (2, "disk"), (3, "network")] {
        let h = Heatmap::compute(&w, dim, 24);
        out.push_str(&format!(
            "\ncores (→) vs {name} (↑), log-scale counts; {} of {} cells occupied:\n{}",
            h.occupied_cells(),
            24 * 24,
            h.render()
        ));
    }
    out
}

/// Table 3: probability that a resource is used above {50, 80, 99} % of
/// aggregate capacity while replaying the trace. We replay under Tetris:
/// the table is about the *workload's* pressure on each resource, and a
/// melting slot scheduler (tasks crawling under interference) depresses
/// the measured IO usage. Paper finding: multiple resources become tight,
/// at different times.
pub fn table3(scale: Scale) -> String {
    let cluster = scale.cluster();
    let total = cluster.total_capacity();
    let w = scale.facebook();
    let cfg = scale.sim_config();
    let o = run(&cluster, &w, SchedName::Tetris, &cfg);
    let t = TightnessTable::cluster(&o, &total, &[0.5, 0.8, 0.99]);
    format!(
        "Table 3 — tightness of cluster resources (Facebook-like trace replay;\n\
         fraction of samples with aggregate usage above the threshold)\n\
         paper: several resources tight, at different times.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reports_weak_correlation() {
        let s = table2(Scale::Laptop);
        assert!(s.contains("max off-diagonal"));
        // Extract the number and check the paper's qualitative claim.
        let v: f64 = s
            .split("max off-diagonal |r| = ")
            .nth(1)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(v < 0.6, "correlation too strong: {v}");
    }

    #[test]
    fn fig2_renders_three_heatmaps() {
        let s = fig2(Scale::Laptop);
        assert!(s.contains("memory"));
        assert!(s.contains("disk"));
        assert!(s.contains("network"));
        assert!(s.matches("cells occupied").count() == 3);
    }

    #[test]
    fn table3_multiple_resources_get_tight() {
        let s = table3(Scale::Laptop);
        assert!(s.contains("cpu"));
        assert!(s.contains("net_in"));
    }
}
