//! Figure 6 — the resource-tracker micro-benchmark (§5.2.1).
//!
//! Data ingestion starts writing at full disk bandwidth on one machine of
//! the small cluster. Tetris's tracker observes the rising disk usage and
//! stops scheduling tasks there until ingestion ends; the Capacity
//! scheduler proceeds unaware, and the resulting contention lowers disk
//! throughput, slowing both its tasks and the ingestion itself.

use tetris_metrics::timeline;
use tetris_resources::units::MB;
use tetris_resources::{MachineSpec, Resource, ResourceVec};
use tetris_sim::{ClusterConfig, ExternalLoad, MachineId, SimConfig, SimOutcome, Simulation};
use tetris_workload::WorkloadSuiteConfig;

use crate::setup::{run_observed, SchedName};
use crate::{Report, RunCtx};

/// The loaded machine.
pub const LOADED: MachineId = MachineId(0);
/// Ingestion window (seconds).
pub const INGEST_START: f64 = 150.0;
/// Ingestion duration (seconds).
pub const INGEST_LEN: f64 = 300.0;

fn setup(seed: u64) -> (ClusterConfig, tetris_workload::Workload, SimConfig) {
    // The paper's small cluster with a steady stream of small jobs.
    let cluster = ClusterConfig::paper_small();
    let w = WorkloadSuiteConfig {
        n_jobs: 40,
        scale: 0.02,
        arrival_horizon: 600.0,
        machine_profile: MachineSpec::paper_small(),
        ..WorkloadSuiteConfig::default()
    }
    .generate(seed + 6);
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    cfg.sample_period = Some(5.0);
    // Ingestion at the machine's full disk-write bandwidth.
    cfg.external_loads.push(ExternalLoad {
        machine: LOADED,
        start: INGEST_START,
        duration: INGEST_LEN,
        load: ResourceVec::zero().with(Resource::DiskWrite, 100.0 * MB),
    });
    (cluster, w, cfg)
}

fn run_one(ctx: &RunCtx, sched: SchedName) -> SimOutcome {
    let (cluster, w, cfg) = setup(ctx.seed);
    run_observed(
        ctx,
        Simulation::build(cluster, w)
            .scheduler(sched.build(cfg.seed))
            .config(cfg),
    )
}

/// Mean number of tasks running on the loaded machine during the
/// ingestion window.
pub fn tasks_during_ingestion(o: &SimOutcome) -> f64 {
    let vals: Vec<f64> = o
        .samples
        .iter()
        .filter(|s| s.t >= INGEST_START + 20.0 && s.t <= INGEST_START + INGEST_LEN)
        .filter_map(|s| {
            s.machines
                .as_ref()
                .map(|m| m[LOADED.index()].running as f64)
        })
        .collect();
    tetris_workload::stats::mean(&vals)
}

/// Run Figure 6 (fixed-size micro-benchmark; scale-independent).
pub fn fig6(ctx: &RunCtx) -> Report {
    let cap = MachineSpec::paper_small().capacity();
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 6 — ingestion starts on {LOADED} at t={INGEST_START}s for {INGEST_LEN}s,\n\
         writing at the machine's full disk bandwidth. Timeline of that machine\n\
         (tasks running; dskU% includes the ingestion stream).\n\
         paper: Tetris stops scheduling onto the loaded machine; CS does not, and\n\
         contention lowers disk throughput for tasks and ingestion alike.\n",
    ));
    let mut report = Report::new(String::new());
    for (sched, m_tasks, m_stretch) in [
        (
            SchedName::Tetris,
            "tetris_tasks_during_ingestion",
            "tetris_mean_stretch",
        ),
        (
            SchedName::Capacity,
            "capacity_tasks_during_ingestion",
            "capacity_mean_stretch",
        ),
    ] {
        let o = run_one(ctx, sched);
        let tl = timeline::machine_timeline(&o, LOADED, &cap).expect("machine samples");
        let tasks = tasks_during_ingestion(&o);
        out.push_str(&format!(
            "\n== {} — mean tasks on {LOADED} during ingestion: {:.1}; mean stretch {:.2} ==\n{}",
            o.scheduler,
            tasks,
            o.mean_task_stretch(),
            timeline::render(&timeline::decimate(&tl, 16))
        ));
        report.push(m_tasks, tasks);
        report.push(m_stretch, o.mean_task_stretch());
    }
    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tetris_backs_off_the_loaded_machine() {
        let ctx = RunCtx::default();
        let tetris = run_one(&ctx, SchedName::Tetris);
        let cs = run_one(&ctx, SchedName::Capacity);
        let t_tasks = tasks_during_ingestion(&tetris);
        let c_tasks = tasks_during_ingestion(&cs);
        assert!(
            t_tasks < c_tasks * 0.6,
            "tetris kept scheduling onto the loaded machine: {t_tasks:.2} vs CS {c_tasks:.2}"
        );
    }

    #[test]
    fn cs_tasks_get_stretched_by_contention() {
        let ctx = RunCtx::default();
        let tetris = run_one(&ctx, SchedName::Tetris);
        let cs = run_one(&ctx, SchedName::Capacity);
        assert!(
            cs.mean_task_stretch() > tetris.mean_task_stretch() + 0.05,
            "CS {:.3} vs tetris {:.3}",
            cs.mean_task_stretch(),
            tetris.mean_task_stretch()
        );
    }
}
