//! Figure 1 — the motivating example (§2.1).
//!
//! Three jobs with barrier-separated map and reduce phases on an 18-core /
//! 36 GB / 3 Gbps cluster (three machines of one third each). The paper's
//! arithmetic: DRF finishes every job at `6t`; a packing schedule finishes
//! them at `{2t, 3t, 4t}` in some order — makespan −33 %, average JCT
//! −33 %, and *every* job earlier.

use tetris_metrics::table::TextTable;
use tetris_resources::units::{gbps, GB, MB};
use tetris_resources::MachineSpec;
use tetris_sim::{ClusterConfig, Interference, SimConfig, Simulation};
use tetris_workload::gen::motivating_example;

use crate::setup::{run_observed, SchedName};
use crate::{Report, RunCtx};

/// The Fig-1 cluster: 3 machines of 6 cores / 12 GB / 1 Gbps, with disks
/// oversized so the example stays network-bound as in the paper.
fn fig1_cluster() -> ClusterConfig {
    let spec = MachineSpec::new()
        .cores(6.0)
        .memory(12.0 * GB)
        .disks(8, 100.0 * MB)
        .nic(gbps(1.0));
    ClusterConfig::uniform(3, spec)
}

/// Run Figure 1 (seed/scale-independent: the example is fixed-size and
/// the paper's worked arithmetic fixes the simulator seed).
pub fn fig1(ctx: &RunCtx) -> Report {
    let ex = motivating_example(10.0);
    let cluster = fig1_cluster();
    let mut cfg = SimConfig::default();
    cfg.seed = 1;
    // The paper's worked example assumes idealized proportional sharing
    // (three co-located reduces stream at exactly 1/3 Gbps each).
    cfg.interference = Interference::none();

    let mut report = Report::new(String::new());
    let mut table = TextTable::new(vec!["scheduler", "A", "B", "C", "avg JCT", "makespan"]);
    for (sched, m_jct, m_mk) in [
        (SchedName::Tetris, "tetris_avg_jct_t", "tetris_makespan_t"),
        (SchedName::Drf, "drf_avg_jct_t", "drf_makespan_t"),
    ] {
        let o = run_observed(
            ctx,
            Simulation::build(cluster.clone(), ex.workload.clone())
                .scheduler(sched.build(cfg.seed))
                .config(cfg.clone()),
        );
        assert!(o.all_jobs_completed(), "fig1 run did not complete");
        let t = |x: f64| format!("{:.1}t", x / ex.t);
        table.row(vec![
            sched.label().to_string(),
            t(o.jobs[0].jct().unwrap()),
            t(o.jobs[1].jct().unwrap()),
            t(o.jobs[2].jct().unwrap()),
            t(o.avg_jct()),
            t(o.makespan()),
        ]);
        report.push(m_jct, o.avg_jct() / ex.t);
        report.push(m_mk, o.makespan() / ex.t);
    }

    report.text = format!(
        "Figure 1 — motivating example (task length t; 3 machines × 6 cores/12 GB/1 Gbps)\n\
         paper (idealized): packing = {{2t, 3t, 4t}} in some job order, makespan 4t;\n\
         DRF = 6t for every job (reduces contend 3-per-NIC). Our DRF lands at or\n\
         above 6t because simulated map placement skews shuffle sources — the\n\
         paper's idealized arithmetic assumes perfectly uniform map output.\n\n{}",
        table.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_workload::JobId;

    #[test]
    fn tetris_matches_paper_packing_schedule() {
        let ex = motivating_example(10.0);
        let mut cfg = SimConfig::default();
        cfg.seed = 1;
        cfg.interference = Interference::none();
        let o = Simulation::build(fig1_cluster(), ex.workload.clone())
            .scheduler(SchedName::Tetris.build(cfg.seed))
            .config(cfg)
            .run();
        assert!(o.all_jobs_completed());
        // Completion times are {2t, 3t, 4t} in some order.
        let mut jcts: Vec<f64> = (0..3).map(|i| o.jct(JobId(i)).unwrap() / ex.t).collect();
        jcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in jcts.iter().zip([2.0, 3.0, 4.0]) {
            assert!(
                (got - want).abs() < 0.15,
                "expected {{2,3,4}}t, got {jcts:?}"
            );
        }
        assert!((o.makespan() / ex.t - 4.0).abs() < 0.15);
    }

    #[test]
    fn drf_is_at_least_the_papers_6t() {
        let ex = motivating_example(10.0);
        let mut cfg = SimConfig::default();
        cfg.seed = 1;
        cfg.interference = Interference::none();
        let o = Simulation::build(fig1_cluster(), ex.workload.clone())
            .scheduler(SchedName::Drf.build(cfg.seed))
            .config(cfg)
            .run();
        assert!(o.all_jobs_completed());
        for i in 0..3 {
            let jct = o.jct(JobId(i)).unwrap() / ex.t;
            assert!(jct >= 6.0 - 0.15, "job {i} finished at {jct}t < 6t");
        }
        // Every job does better under packing (the paper's headline).
        assert!(o.makespan() / ex.t >= 6.0 - 0.15);
    }

    #[test]
    fn report_renders() {
        let r = fig1(&RunCtx::default());
        assert!(r.text.contains("tetris"));
        assert!(r.text.contains("drf"));
        // Typed headline: packing beats DRF on makespan.
        assert!(r.get("tetris_makespan_t").unwrap() < r.get("drf_makespan_t").unwrap());
    }
}
