//! Recovery — scheduler crash-recovery via checkpoint + write-ahead
//! decision journal (robustness extension; DESIGN.md §15).
//!
//! The engine journals every commit decision and snapshots its full state
//! every `checkpoint_every` heartbeats. This experiment kills the
//! scheduler at {¼, ½, ¾} of the run's heartbeats, for checkpoint
//! intervals K ∈ {4, 16, 64}, recovers each crashed run from its journal
//! alone, and gates on the §15 contract:
//!
//! * **Equivalence** — the recovered outcome is byte-identical (as
//!   serialized JSON) to the same configuration run uninterrupted; an
//!   in-experiment assert fails the suite otherwise.
//! * **Bounded replay** — on an untruncated journal, recovery replays at
//!   most K committed batches (the checkpoint cadence is the replay
//!   bound).
//!
//! Crash points alternate between clean heartbeat-boundary kills and
//! mid-commit kills (the scheduler dies after applying only half of a
//! batch's placements, leaving the journal's last batch torn and
//! uncommitted). One mid-commit point runs under the Omega-style
//! [`ShardedScheduler`] so the re-derived commit frontier is exercised
//! where some shard plans landed in the journal and others did not.
//!
//! The report table carries only deterministic counts (crash heartbeat,
//! checkpoint restored, batches/placements replayed); recovery wall-clock
//! goes to the bench metrics (`recovery_latency_us_p50`) alongside the
//! engine's own `recovery_*` counters, so `reproduce all` output stays
//! byte-stable.
//!
//! [`ShardedScheduler`]: tetris_sim::ShardedScheduler

use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_metrics::table::TextTable;
use tetris_obs::Obs;
use tetris_resources::MachineSpec;
use tetris_sim::{
    ClusterConfig, Journal, RunResult, SchedulerCrash, SchedulerPolicy, ShardedScheduler,
    SimConfig, SimOutcome, Simulation,
};
use tetris_workload::{Workload, WorkloadSuiteConfig};

use crate::{Report, RunCtx};

/// Checkpoint intervals swept (heartbeats between snapshots).
pub const CHECKPOINT_INTERVALS: [u64; 3] = [4, 16, 64];
/// Crash points as fractions of the uninterrupted run's heartbeat count.
const CRASH_FRACS: [(u64, u64); 3] = [(1, 4), (1, 2), (3, 4)];
/// Cluster size at `--scale 1.0`.
const MACHINES: usize = 40;
/// Jobs at `--scale 1.0`; the CLI multiplier shrinks this for smokes.
const BASE_JOBS: f64 = 60.0;

fn workload(ctx: &RunCtx) -> Workload {
    let n_jobs = ((BASE_JOBS * ctx.scale_factor).round() as usize).max(3);
    WorkloadSuiteConfig {
        n_jobs,
        scale: 0.08,
        arrival_horizon: 300.0,
        machine_profile: MachineSpec::paper_large(),
        ..WorkloadSuiteConfig::default()
    }
    .generate(ctx.seed + 90)
}

fn cluster(ctx: &RunCtx) -> ClusterConfig {
    let n_machines = ((MACHINES as f64 * ctx.scale_factor).round() as usize).max(8);
    ClusterConfig::uniform(n_machines, MachineSpec::paper_large())
}

/// Scheduler construction shared by every run at one sweep point: the
/// crashed process and the recovering process must build the same policy,
/// exactly as a restarted deployment would.
fn build(shards: usize, seed: u64) -> Box<dyn SchedulerPolicy> {
    if shards > 1 {
        Box::new(ShardedScheduler::new(shards, seed, |_| {
            Box::new(TetrisScheduler::new(TetrisConfig::default()))
        }))
    } else {
        Box::new(TetrisScheduler::new(TetrisConfig::default()))
    }
}

fn sim(
    cluster: &ClusterConfig,
    workload: &Workload,
    cfg: SimConfig,
    shards: usize,
) -> Simulation<'static> {
    Simulation::build(cluster.clone(), workload.clone())
        .scheduler(build(shards, cfg.seed))
        .config(cfg)
}

fn wire(o: &SimOutcome) -> String {
    serde_json::to_string(o).expect("outcome serializes")
}

/// Run the crash-recovery sweep.
pub fn recovery(ctx: &RunCtx) -> Report {
    let mut out = String::new();
    out.push_str(
        "Recovery — scheduler crash-recovery from a write-ahead decision\n\
         journal with periodic checkpoints (DESIGN.md 15). The scheduler is\n\
         killed at 1/4, 1/2 and 3/4 of the run's heartbeats for checkpoint\n\
         intervals K in {4, 16, 64}, alternating clean heartbeat-boundary\n\
         kills with mid-commit kills (half a batch applied, journal tail\n\
         torn); one mid-commit point runs the Omega-style sharded scheduler.\n\
         Each crashed run is recovered from its journal alone and must\n\
         reproduce the uninterrupted run's outcome byte-for-byte (asserted\n\
         in-experiment), replaying at most K committed batches. Recovery\n\
         wall-clock goes to the bench metrics; the table below is the\n\
         deterministic part.\n\n",
    );
    let cluster = cluster(ctx);
    let workload = workload(ctx);
    let mut cfg = SimConfig::default();
    cfg.seed = ctx.seed + 90;

    let mut obs = Obs::noop();

    // Uninterrupted golden runs per scheduler pipeline (the sharded
    // mid-commit point compares against a sharded golden). The golden
    // runs are journaled too: a journal of a completed run must verify,
    // and its committed-batch count is the run's heartbeat count H, which
    // anchors the crash points.
    let mut goldens: Vec<(usize, String, u64)> = Vec::new();
    for shards in [1usize, 2] {
        let mut j = Journal::new();
        let outcome = match sim(&cluster, &workload, cfg.clone(), shards)
            .observe(&mut obs)
            .run_result(Some(&mut j))
        {
            RunResult::Completed(o) => *o,
            RunResult::Crashed { heartbeat } => {
                unreachable!("no crash configured, yet died at heartbeat {heartbeat}")
            }
        };
        let stats = j.verify().expect("golden journal verifies");
        goldens.push((shards, wire(&outcome), stats.committed_batches));
    }
    let golden = |shards: usize| -> (&str, u64) {
        goldens
            .iter()
            .find(|(s, _, _)| *s == shards)
            .map(|(_, w, h)| (w.as_str(), *h))
            .expect("golden run for shard count")
    };

    let mut t = TextTable::new(vec![
        "K",
        "crash_hb",
        "mid_commit",
        "shards",
        "restored_from",
        "replayed",
        "replayed_placements",
        "identical",
    ]);
    let mut latencies: Vec<u64> = Vec::new();
    let mut max_replayed = 0u64;
    let mut points = 0u64;
    for (ki, &k) in CHECKPOINT_INTERVALS.iter().enumerate() {
        for (fi, &(num, den)) in CRASH_FRACS.iter().enumerate() {
            let idx = ki * CRASH_FRACS.len() + fi;
            let mid_commit = idx % 2 == 1;
            // One mid-commit point exercises the sharded commit frontier.
            let shards = if k == 16 && (num, den) == (1, 2) {
                2
            } else {
                1
            };
            let (golden_wire, h) = golden(shards);
            let crash_hb = (h * num / den).max(1);

            let mut crash_cfg = cfg.clone();
            crash_cfg.checkpoint_every = k;
            crash_cfg.faults.sched_crash = Some(SchedulerCrash {
                at_heartbeat: crash_hb,
                mid_commit,
            });
            let mut j = Journal::new();
            match sim(&cluster, &workload, crash_cfg, shards)
                .observe(&mut obs)
                .run_result(Some(&mut j))
            {
                RunResult::Crashed { heartbeat } => {
                    assert_eq!(heartbeat, crash_hb, "crash fired at the wrong heartbeat")
                }
                RunResult::Completed(_) => {
                    unreachable!("crash at heartbeat {crash_hb} of {h} never fired")
                }
            }

            // A fresh scheduler process: rebuild everything from the
            // journal alone and continue to completion.
            let mut rec_cfg = cfg.clone();
            rec_cfg.checkpoint_every = k;
            let rec = sim(&cluster, &workload, rec_cfg, shards)
                .observe(&mut obs)
                .recover(&j)
                .expect("recovery from the crash journal");
            let identical = wire(&rec.outcome) == golden_wire;
            assert!(
                identical,
                "recovered outcome diverged from the uninterrupted run \
                 (K={k}, crash_hb={crash_hb}, mid_commit={mid_commit}, shards={shards})"
            );
            assert!(
                rec.stats.replayed_batches <= k,
                "replayed {} batches with checkpoint interval {k}",
                rec.stats.replayed_batches
            );
            if mid_commit {
                assert!(
                    rec.stats.discarded_records > 0,
                    "a mid-commit kill must leave a torn batch to discard"
                );
            }
            latencies.push(rec.stats.recovery_wall_us);
            max_replayed = max_replayed.max(rec.stats.replayed_batches);
            points += 1;
            t.row(vec![
                format!("{k}"),
                format!("{crash_hb}"),
                String::from(if mid_commit { "yes" } else { "no" }),
                format!("{shards}"),
                format!("{}", rec.stats.checkpoint_heartbeat),
                format!("{}", rec.stats.replayed_batches),
                format!("{}", rec.stats.replayed_placements),
                String::from(if identical { "yes" } else { "NO (BUG)" }),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nheartbeats {} (unsharded golden) | crash points {points} | all recovered exactly\n",
        golden(1).1,
    ));

    let mut report = Report::new(out);
    // Every point passed the byte-identity assert above, or we never got
    // here — the headline records the gate for the bench trend line.
    report.push("recovery_equivalence", 1.0);
    report.push("recovery_points", points as f64);
    report.push("recovery_max_replay_batches", max_replayed as f64);
    latencies.sort_unstable();
    report.push(
        "recovery_latency_us_p50",
        latencies[latencies.len() / 2] as f64,
    );
    ctx.absorb(&obs.metrics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::DEFAULT_SEED;
    use crate::Scale;

    #[test]
    fn recovery_sweeps_and_reports_headlines() {
        // The in-experiment asserts (byte-identity at every point,
        // replay <= K, torn tails on mid-commit kills) are the real
        // gates; here we pin report shape.
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.02);
        let r = recovery(&ctx);
        assert_eq!(r.get("recovery_equivalence"), Some(1.0));
        assert_eq!(
            r.get("recovery_points"),
            Some((CHECKPOINT_INTERVALS.len() * CRASH_FRACS.len()) as f64)
        );
        let max_replay = r.get("recovery_max_replay_batches").unwrap();
        assert!(max_replay <= 64.0, "replay bound: {max_replay}");
        assert!(r.get("recovery_latency_us_p50").is_some());
        assert!(r.text.contains("mid_commit"), "{}", r.text);
        assert!(!r.text.contains("NO (BUG)"), "{}", r.text);
    }

    #[test]
    fn recovery_text_is_deterministic_across_runs() {
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.02);
        assert_eq!(recovery(&ctx).text, recovery(&ctx).text);
    }
}
