//! Figures 8–10 and §5.3.2 — the fairness and barrier knobs.

use tetris_core::TetrisConfig;
use tetris_metrics::improvement::ImprovementSummary;
use tetris_metrics::pct_improvement;
use tetris_metrics::slowdown::{relative_integral_unfairness, SlowdownSummary};
use tetris_metrics::table::TextTable;
use tetris_workload::JobId;

use crate::setup::{run, run_tetris, with_zero_arrivals, SchedName};
use crate::{Report, RunCtx};

/// The knob values swept (paper Figs. 8/9 use {0, 0.25, 0.5, 0.75, →1}).
pub const FAIRNESS_KNOBS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.99];

/// Metric names for the per-knob vs-fair JCT gains (same order as
/// [`FAIRNESS_KNOBS`]).
const F_JCT_VS_FAIR: [&str; 5] = [
    "f0.00_jct_gain_vs_fair",
    "f0.25_jct_gain_vs_fair",
    "f0.50_jct_gain_vs_fair",
    "f0.75_jct_gain_vs_fair",
    "f0.99_jct_gain_vs_fair",
];

/// Metric names for the per-knob vs-fair makespan gains.
const F_MK_VS_FAIR: [&str; 5] = [
    "f0.00_makespan_gain_vs_fair",
    "f0.25_makespan_gain_vs_fair",
    "f0.50_makespan_gain_vs_fair",
    "f0.75_makespan_gain_vs_fair",
    "f0.99_makespan_gain_vs_fair",
];

/// Metric names for the per-knob fraction of jobs slowed vs fair.
const F_SLOWED_VS_FAIR: [&str; 5] = [
    "f0.00_frac_slowed_vs_fair",
    "f0.25_frac_slowed_vs_fair",
    "f0.50_frac_slowed_vs_fair",
    "f0.75_frac_slowed_vs_fair",
    "f0.99_frac_slowed_vs_fair",
];

/// Figure 8: JCT and makespan gains vs the fairness knob. Paper: f ≈ 0.25
/// achieves nearly the best efficiency; even f → 1 retains sizeable gains
/// (a fair job choice still leaves many tasks to pick from).
pub fn fig8(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let w = ctx.suite();
    let w0 = with_zero_arrivals(w.clone());
    let cfg = ctx.sim_config();

    let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);
    let drf = run(ctx, &cluster, &w, SchedName::Drf, &cfg);
    let fair0 = run(ctx, &cluster, &w0, SchedName::Fair, &cfg);
    let drf0 = run(ctx, &cluster, &w0, SchedName::Drf, &cfg);

    let mut report = Report::new(String::new());
    let mut t = TextTable::new(vec![
        "f",
        "JCT gain vs fair",
        "JCT gain vs drf",
        "makespan vs fair",
        "makespan vs drf",
    ]);
    for (i, f) in FAIRNESS_KNOBS.into_iter().enumerate() {
        let mut tc = TetrisConfig::default();
        tc.fairness_knob = f;
        let o = run_tetris(ctx, &cluster, &w, tc.clone(), &cfg);
        let o0 = run_tetris(ctx, &cluster, &w0, tc, &cfg);
        let jct_fair = pct_improvement(fair.avg_jct(), o.avg_jct());
        let mk_fair = pct_improvement(fair0.makespan(), o0.makespan());
        t.row(vec![
            format!("{f:.2}"),
            format!("{jct_fair:+.1}%"),
            format!("{:+.1}%", pct_improvement(drf.avg_jct(), o.avg_jct())),
            format!("{mk_fair:+.1}%"),
            format!("{:+.1}%", pct_improvement(drf0.makespan(), o0.makespan())),
        ]);
        report.push(F_JCT_VS_FAIR[i], jct_fair);
        report.push(F_MK_VS_FAIR[i], mk_fair);
    }
    report.text = format!(
        "Figure 8 — fairness knob sweep (f = 0 most efficient, f → 1 most fair)\n\
         paper: f ≈ 0.25 gives nearly the best efficiency; even f → 1 retains\n\
         sizeable gains.\n\n{}",
        t.render()
    );
    report
}

/// Figure 9: the unfairness side of the sweep — fraction of jobs slowed vs
/// the fair baselines and their average/worst slowdown. Paper: for
/// f ∈ [0.25, 0.5] only a few percent of jobs slow down, by a few percent.
pub fn fig9(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let w = ctx.suite();
    let cfg = ctx.sim_config();
    let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);
    let drf = run(ctx, &cluster, &w, SchedName::Drf, &cfg);

    let mut report = Report::new(String::new());
    let mut t = TextTable::new(vec![
        "f",
        "slowed vs fair",
        "avg (max) slowdown",
        "slowed vs drf",
        "avg (max) slowdown ",
    ]);
    for (i, f) in FAIRNESS_KNOBS.into_iter().enumerate() {
        let mut tc = TetrisConfig::default();
        tc.fairness_knob = f;
        let o = run_tetris(ctx, &cluster, &w, tc, &cfg);
        let sf = SlowdownSummary::compare(&o, &fair);
        let sd = SlowdownSummary::compare(&o, &drf);
        t.row(vec![
            format!("{f:.2}"),
            format!("{:.0}%", sf.frac_slowed * 100.0),
            format!("{:.0}% ({:.0}%)", sf.avg_slowdown_pct, sf.max_slowdown_pct),
            format!("{:.0}%", sd.frac_slowed * 100.0),
            format!("{:.0}% ({:.0}%)", sd.avg_slowdown_pct, sd.max_slowdown_pct),
        ]);
        report.push(F_SLOWED_VS_FAIR[i], sf.frac_slowed);
    }
    report.text = format!(
        "Figure 9 — job slowdown vs fair baselines across the fairness knob\n\
         paper: f ∈ [0.25, 0.5] slows only a few percent of jobs, by little.\n\n{}",
        t.render()
    );
    report
}

/// §5.3.2 — relative integral unfairness under the default knob. Paper:
/// only a few jobs have negative values, and the average negative value is
/// small (violations of fair allocation are transient).
pub fn riu(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let w = ctx.suite();
    let mut cfg = ctx.sim_config();
    cfg.record_job_samples = true;
    let o = run(ctx, &cluster, &w, SchedName::Tetris, &cfg);

    let values: Vec<f64> = (0..o.jobs.len())
        .filter_map(|i| relative_integral_unfairness(&o, JobId(i)))
        .collect();
    let negatives: Vec<f64> = values.iter().copied().filter(|&v| v < -0.05).collect();
    let avg_neg = tetris_workload::stats::mean(&negatives);
    let frac_underserved = negatives.len() as f64 / values.len().max(1) as f64;
    let worst = values.iter().copied().fold(0.0f64, f64::min);
    Report::new(format!(
        "§5.3.2 — relative integral unfairness of Tetris (f = 0.25)\n\
         per-job ∫(actual − fair share)/fair dt, normalized by job lifetime;\n\
         negative ⇒ the job was underserved relative to a fair allocation.\n\
         paper: only a few jobs negative, and only slightly.\n\n\
         jobs measured: {}\n\
         underserved (< −0.05): {} ({:.0}%)\n\
         average underservice among those: {:.2}\n\
         worst: {:.2}\n",
        values.len(),
        negatives.len(),
        100.0 * frac_underserved,
        avg_neg,
        worst,
    ))
    .metric("jobs_measured", values.len() as f64)
    .metric("frac_underserved", frac_underserved)
    .metric("avg_underservice", avg_neg)
    .metric("worst_underservice", worst)
}

/// The barrier knob values swept in Figure 10.
pub const BARRIER_KNOBS: [f64; 6] = [0.5, 0.75, 0.85, 0.9, 0.95, 1.0];

/// Metric names for the per-knob vs-drf JCT gains (same order as
/// [`BARRIER_KNOBS`]).
const B_JCT_VS_DRF: [&str; 6] = [
    "b0.50_jct_gain_vs_drf",
    "b0.75_jct_gain_vs_drf",
    "b0.85_jct_gain_vs_drf",
    "b0.90_jct_gain_vs_drf",
    "b0.95_jct_gain_vs_drf",
    "b1.00_jct_gain_vs_drf",
];

/// Metric names for the per-knob vs-drf makespan gains.
const B_MK_VS_DRF: [&str; 6] = [
    "b0.50_makespan_gain_vs_drf",
    "b0.75_makespan_gain_vs_drf",
    "b0.85_makespan_gain_vs_drf",
    "b0.90_makespan_gain_vs_drf",
    "b0.95_makespan_gain_vs_drf",
    "b1.00_makespan_gain_vs_drf",
];

/// Figure 10 — barrier knob sweep. Paper: b ≈ 0.9 is net positive on both
/// metrics; very small b (promote too early) is worse than no promotion.
/// Gains are averaged over three workload seeds (zero-arrival makespan is
/// tail-dominated and noisy on a single draw).
pub fn fig10(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let cfg = ctx.sim_config();

    let mut report = Report::new(String::new());
    let mut t = TextTable::new(vec!["b", "JCT gain vs drf", "makespan vs drf"]);
    for (i, b) in BARRIER_KNOBS.into_iter().enumerate() {
        let mut jct = Vec::new();
        let mut mk = Vec::new();
        for seed in ctx.sweep_seeds() {
            // Deep DAGs make barrier handling matter: the Facebook-like
            // trace has map-only, 2- and 3-stage jobs.
            let w = ctx.scale.facebook_seeded(seed);
            let w0 = with_zero_arrivals(w.clone());
            let drf = run(ctx, &cluster, &w, SchedName::Drf, &cfg);
            let drf0 = run(ctx, &cluster, &w0, SchedName::Drf, &cfg);
            let mut tc = TetrisConfig::default();
            tc.barrier_knob = b;
            let o = run_tetris(ctx, &cluster, &w, tc.clone(), &cfg);
            let o0 = run_tetris(ctx, &cluster, &w0, tc, &cfg);
            jct.push(pct_improvement(drf.avg_jct(), o.avg_jct()));
            mk.push(pct_improvement(drf0.makespan(), o0.makespan()));
        }
        let jct_mean = tetris_workload::stats::mean(&jct);
        let mk_mean = tetris_workload::stats::mean(&mk);
        t.row(vec![
            format!("{b:.2}"),
            format!("{jct_mean:+.1}%"),
            format!("{mk_mean:+.1}%"),
        ]);
        report.push(B_JCT_VS_DRF[i], jct_mean);
        report.push(B_MK_VS_DRF[i], mk_mean);
    }
    report.text = format!(
        "Figure 10 — barrier knob sweep (b = 1 disables straggler promotion;\n\
         mean of 3 workload seeds)\n\
         paper: b ≈ 0.9 balances stagnation-avoidance against picking\n\
         worse-packing tasks; b below ~0.85 hurts.\n\n{}",
        t.render()
    );
    report
}

/// Convenience for tests: tetris-vs-fair JCT gain at one knob value.
pub fn jct_gain_at_f(ctx: &RunCtx, f: f64) -> f64 {
    let cluster = ctx.cluster();
    let w = ctx.suite();
    let cfg = ctx.sim_config();
    let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);
    let mut tc = TetrisConfig::default();
    tc.fairness_knob = f;
    let o = run_tetris(ctx, &cluster, &w, tc, &cfg);
    let imp = ImprovementSummary::compare(&o, &fair);
    imp.avg_jct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_all_knobs_still_beat_fair() {
        // Paper: "even with f → 1 ... Tetris offers sizable gains".
        for f in [0.0, 0.5, 0.99] {
            let gain = jct_gain_at_f(&RunCtx::default(), f);
            assert!(gain > 10.0, "f={f}: gain {gain}");
        }
    }

    #[test]
    fn fig9_moderate_knob_limits_slowdowns() {
        let ctx = RunCtx::default();
        let cluster = ctx.cluster();
        let w = ctx.suite();
        let cfg = ctx.sim_config();
        let fair = run(&ctx, &cluster, &w, SchedName::Fair, &cfg);
        let mut tc = TetrisConfig::default();
        tc.fairness_knob = 0.25;
        let o = run_tetris(&ctx, &cluster, &w, tc, &cfg);
        let s = SlowdownSummary::compare(&o, &fair);
        assert!(
            s.frac_slowed < 0.25,
            "too many jobs slowed at f=0.25: {:.2}",
            s.frac_slowed
        );
    }

    #[test]
    fn riu_reports() {
        let r = riu(&RunCtx::default());
        assert!(r.text.contains("underserved"));
        assert!(r.get("jobs_measured").unwrap() > 0.0);
    }

    #[test]
    fn fig10_has_six_rows() {
        let r = fig10(&RunCtx::default());
        assert!(r.text.contains("0.90"));
        assert!(r.text.contains("1.00"));
        assert_eq!(r.metrics.len(), 12);
    }
}
