//! §2.2.3 — the aggregate-bin upper bound on packing gains.
//!
//! The paper's motivation analysis: an idealized packer with one big bin
//! per resource, no fragmentation and no over-allocation, improves
//! makespan/avg-JCT over the production schedulers by tens of percent —
//! and the gains are lopsided (a fraction of jobs slow down under the
//! SRTF-flavoured order).

use tetris_baselines::UpperBoundScheduler;
use tetris_metrics::pct_improvement;
use tetris_metrics::table::TextTable;

use crate::setup::{run, with_zero_arrivals, SchedName};
use crate::{Report, RunCtx};

/// Run the upper-bound comparison.
pub fn ub(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let total = cluster.total_capacity();
    let w = ctx.facebook();
    let cfg = ctx.sim_config();

    let ub = UpperBoundScheduler::new().simulate(&w, total);
    let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);
    let drf = run(ctx, &cluster, &w, SchedName::Drf, &cfg);

    // Makespan on the all-at-zero variant (§5.3.1 convention).
    let w0 = with_zero_arrivals(w.clone());
    let ub0 = UpperBoundScheduler::new().simulate(&w0, cluster.total_capacity());
    let fair0 = run(ctx, &cluster, &w0, SchedName::Fair, &cfg);
    let drf0 = run(ctx, &cluster, &w0, SchedName::Drf, &cfg);

    let mut report = Report::new(String::new());
    let mut t = TextTable::new(vec![
        "baseline",
        "UB avg-JCT gain",
        "UB makespan gain",
        "jobs slowed",
    ]);
    for (name, base, base0, m_jct, m_mk) in [
        (
            "fair",
            &fair,
            &fair0,
            "ub_jct_gain_vs_fair",
            "ub_makespan_gain_vs_fair",
        ),
        (
            "drf",
            &drf,
            &drf0,
            "ub_jct_gain_vs_drf",
            "ub_makespan_gain_vs_drf",
        ),
    ] {
        let jct_gain = pct_improvement(base.avg_jct(), ub.avg_jct());
        let mk_gain = pct_improvement(base0.makespan(), ub0.makespan());
        // Fraction of jobs that would slow down under the bound's order.
        let slowed = base
            .jobs
            .iter()
            .filter(|j| {
                let jb = j.jct();
                let ju = ub.jct(j.id);
                matches!((jb, ju), (Some(b), Some(u)) if u > b)
            })
            .count() as f64
            / base.jobs.len() as f64;
        t.row(vec![
            name.to_string(),
            format!("{jct_gain:+.1}%"),
            format!("{mk_gain:+.1}%"),
            format!("{:.0}%", slowed * 100.0),
        ]);
        report.push(m_jct, jct_gain);
        report.push(m_mk, mk_gain);
    }

    report.text = format!(
        "§2.2.3 — simple upper bound (one aggregate bin, no fragmentation, no\n\
         over-allocation, SRTF order) vs production schedulers, Facebook-like trace\n\
         paper: makespan/avg-JCT gains of tens of percent; gains lopsided (some\n\
         jobs slow down under the bound).\n\n{}",
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_beats_both_baselines() {
        let r = ub(&RunCtx::default());
        // Every gain row must be positive (the bound dominates).
        for line in r
            .text
            .lines()
            .filter(|l| l.starts_with("fair") || l.starts_with("drf"))
        {
            let plus = line.matches('+').count();
            assert!(plus >= 2, "non-positive upper-bound gain: {line}");
        }
        assert!(r.get("ub_jct_gain_vs_fair").unwrap() > 0.0);
        assert!(r.get("ub_makespan_gain_vs_drf").unwrap() > 0.0);
    }
}
