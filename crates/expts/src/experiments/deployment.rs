//! Figures 4 and 5 and Table 6 — the deployment experiments (§5.2):
//! the §5.1 workload suite under Tetris, the Capacity scheduler and DRF.

use tetris_metrics::improvement::ImprovementSummary;
use tetris_metrics::table::TextTable;
use tetris_metrics::tightness::TightnessTable;
use tetris_metrics::timeline;
use tetris_metrics::RunMetrics;
use tetris_resources::{MachineSpec, Resource};

use crate::setup::{run, with_zero_arrivals, SchedName};
use crate::{Report, RunCtx};

/// Figure 4(a): CDF of per-job JCT change of Tetris vs CS and vs DRF;
/// Figure 4(b): makespan reduction. Paper: median ≈ +30–40 %, top decile
/// > 50 %, makespan ≈ +30 %; gains slightly larger vs CS than vs DRF.
pub fn fig4(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let w = ctx.suite();
    let cfg = ctx.sim_config();

    let tetris = run(ctx, &cluster, &w, SchedName::Tetris, &cfg);
    let cs = run(ctx, &cluster, &w, SchedName::Capacity, &cfg);
    let drf = run(ctx, &cluster, &w, SchedName::Drf, &cfg);
    let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);

    // Makespan convention: all jobs at t=0 (§5.3.1). The zero-arrival
    // makespan is tail-dominated (whichever job finishes last sets it), so
    // it is averaged over three workload seeds.
    let makespan_gain = |base: SchedName| {
        let mut gains = Vec::new();
        for seed in ctx.sweep_seeds() {
            let w0 = with_zero_arrivals(ctx.scale.suite_seeded(seed));
            let t0 = run(ctx, &cluster, &w0, SchedName::Tetris, &cfg);
            let b0 = run(ctx, &cluster, &w0, base, &cfg);
            gains.push(tetris_metrics::pct_improvement(
                b0.makespan(),
                t0.makespan(),
            ));
        }
        tetris_workload::stats::mean(&gains)
    };

    let mut out = String::new();
    out.push_str(
        "Figure 4 — deployment workload suite: Tetris vs baselines\n\
         paper: median job ≈ +30–40%, top decile > +50%, makespan ≈ +30%.\n\n",
    );
    out.push_str(&format!("{}\n", RunMetrics::header()));
    for o in [&tetris, &cs, &drf, &fair] {
        out.push_str(&format!("{}\n", RunMetrics::of(o).row()));
    }
    out.push('\n');

    let mut report = Report::new(String::new());
    for (base, base_name) in [(&cs, SchedName::Capacity), (&drf, SchedName::Drf)] {
        let imp = ImprovementSummary::compare(&tetris, base);
        let mk = makespan_gain(base_name);
        out.push_str(&format!(
            "vs {:<16} median {:+.1}%  p90 {:+.1}%  avg-of-JCTs {:+.1}%  \
             makespan(4b) {:+.1}%  jobs slowed {:.0}%\n",
            base.scheduler,
            imp.median(),
            imp.percentile(0.9),
            imp.avg_jct,
            mk,
            imp.frac_slowed() * 100.0,
        ));
        out.push('\n');
        out.push_str(&imp.render_cdf(10));
        out.push('\n');
        let (m_med, m_p90, m_avg, m_mk, m_slow) = match base_name {
            SchedName::Capacity => (
                "median_jct_gain_vs_cs",
                "p90_jct_gain_vs_cs",
                "avg_jct_gain_vs_cs",
                "makespan_gain_vs_cs",
                "frac_slowed_vs_cs",
            ),
            _ => (
                "median_jct_gain_vs_drf",
                "p90_jct_gain_vs_drf",
                "avg_jct_gain_vs_drf",
                "makespan_gain_vs_drf",
                "frac_slowed_vs_drf",
            ),
        };
        report.push(m_med, imp.median());
        report.push(m_p90, imp.percentile(0.9));
        report.push(m_avg, imp.avg_jct);
        report.push(m_mk, mk);
        report.push(m_slow, imp.frac_slowed());
    }
    report.text = out;
    report
}

/// Figure 5: number of running tasks and cluster utilization over time for
/// Tetris, CS and DRF. Paper: Tetris sustains consistently more running
/// tasks, rotates which resource is the bottleneck, and never drives
/// allocation above capacity; CS/DRF fragment (under-use what they
/// schedule on) and over-allocate disk/network (allocation > 100 %).
pub fn fig5(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let total = cluster.total_capacity();
    let w = with_zero_arrivals(ctx.suite());
    let cfg = ctx.sim_config();

    let mut out = String::new();
    out.push_str(
        "Figure 5 — running tasks & utilization (A% = allocated, U% = used;\n\
         allocation above 100% is over-allocation)\n",
    );
    let mut report = Report::new(String::new());
    for (sched, metric) in [
        (SchedName::Tetris, "tetris_makespan_s"),
        (SchedName::Capacity, "capacity_makespan_s"),
        (SchedName::Drf, "drf_makespan_s"),
    ] {
        let o = run(ctx, &cluster, &w, sched, &cfg);
        let tl = timeline::cluster_timeline(&o, &total);
        out.push_str(&format!(
            "\n== {} (makespan {:.0}s) ==\n{}",
            o.scheduler,
            o.makespan(),
            timeline::render(&timeline::decimate(&tl, 12))
        ));
        report.push(metric, o.makespan());
    }
    report.text = out;
    report
}

/// Table 6: probability that a machine's committed demand exceeds {80, 90,
/// 100} % of a resource's capacity, per scheduler. Paper: Tetris drives
/// higher utilization yet the >100 % column is empty; baselines both
/// under-use (fragmentation) and over-allocate disk/network.
pub fn table6(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let w = with_zero_arrivals(ctx.suite());
    let mut cfg = ctx.sim_config();
    cfg.record_machine_samples = true; // needed even at full scale
    let cap = MachineSpec::paper_large().capacity();

    let mut out = String::new();
    out.push_str(
        "Table 6 — P(machine committed above fraction of capacity); the >100%\n\
         column is over-allocation, impossible under Tetris's feasibility checks\n\
         (up to idle-reclamation of observed-unused resources).\n",
    );
    let mut report = Report::new(String::new());
    for (sched, metric) in [
        (SchedName::Tetris, "tetris_p_mem_over_100"),
        (SchedName::Capacity, "capacity_p_mem_over_100"),
        (SchedName::Drf, "drf_p_mem_over_100"),
    ] {
        let o = run(ctx, &cluster, &w, sched, &cfg);
        let t =
            TightnessTable::machines(&o, &cap, &[0.8, 0.9, 1.0]).expect("machine samples enabled");
        out.push_str(&format!("\n### {}\n{}", o.scheduler, t.render()));
        report.push(metric, t.get(Resource::Mem, 2));
    }
    report.text = out;
    report
}

/// Shared summary row for EXPERIMENTS.md.
pub fn headline(ctx: &RunCtx) -> TextTable {
    let cluster = ctx.cluster();
    let w = ctx.suite();
    let cfg = ctx.sim_config();
    let tetris = run(ctx, &cluster, &w, SchedName::Tetris, &cfg);
    let mut t = TextTable::new(vec!["comparison", "median JCT", "avg JCT", "makespan"]);
    for base in [SchedName::Capacity, SchedName::Drf] {
        let b = run(ctx, &cluster, &w, base, &cfg);
        let imp = ImprovementSummary::compare(&tetris, &b);
        t.row(vec![
            format!("tetris vs {}", base.label()),
            format!("{:+.1}%", imp.median()),
            format!("{:+.1}%", imp.avg_jct),
            format!("{:+.1}%", imp.makespan),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_tetris_wins_median_and_makespan() {
        let r = fig4(&RunCtx::default());
        let s = &r.text;
        for line in s.lines().filter(|l| l.starts_with("vs ")) {
            // median and makespan improvements must be positive.
            let median: f64 = line
                .split("median ")
                .nth(1)
                .unwrap()
                .split('%')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            let makespan: f64 = line
                .split("makespan(4b) ")
                .nth(1)
                .unwrap()
                .split('%')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(median > 5.0, "median gain too small: {line}");
            assert!(makespan > 5.0, "makespan gain too small: {line}");
        }
        // Typed metrics agree with the rendered text.
        assert!(r.get("median_jct_gain_vs_cs").unwrap() > 5.0);
        assert!(r.get("makespan_gain_vs_drf").unwrap() > 5.0);
    }

    #[test]
    fn table6_tetris_never_overcommits_memory() {
        let r = table6(&RunCtx::default());
        // The Tetris block's mem row must show 0 probability above 100 %.
        let tetris_block: String = r
            .text
            .split("### tetris")
            .nth(1)
            .unwrap()
            .split("###")
            .next()
            .unwrap()
            .to_string();
        let mem_row = tetris_block
            .lines()
            .find(|l| l.trim_start().starts_with("mem"))
            .unwrap();
        let last: f64 = mem_row.split_whitespace().last().unwrap().parse().unwrap();
        assert_eq!(last, 0.0, "Tetris over-committed memory: {mem_row}");
        assert_eq!(r.get("tetris_p_mem_over_100"), Some(0.0));
    }

    #[test]
    fn fig5_renders_three_blocks() {
        let r = fig5(&RunCtx::default());
        assert_eq!(r.text.matches("==").count(), 6);
        assert!(r.get("tetris_makespan_s").unwrap() > 0.0);
    }
}
