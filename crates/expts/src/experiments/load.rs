//! Figure 11 — gains vs cluster load (§5.3.3).
//!
//! The paper varies load by shrinking the cluster ("half as many servers
//! leads to twice the load") and finds Tetris's gains grow with load.

use tetris_metrics::pct_improvement;
use tetris_metrics::table::TextTable;

use crate::setup::{run, SchedName};
use crate::{Report, RunCtx};

/// The load multipliers swept. The base point (1×) is a deliberately
/// lightly-loaded 40-machine cluster; the paper's own base was "only
/// moderately loaded". At extreme load every work-conserving scheduler
/// converges to the capacity bound, so gains must eventually compress —
/// the interesting regime is the rise before that.
pub const LOADS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// Per-load metric names (vs fair, vs drf), same order as [`LOADS`].
const LOAD_JCT_VS_FAIR: [&str; 4] = [
    "load1x_jct_gain_vs_fair",
    "load2x_jct_gain_vs_fair",
    "load4x_jct_gain_vs_fair",
    "load8x_jct_gain_vs_fair",
];
const LOAD_JCT_VS_DRF: [&str; 4] = [
    "load1x_jct_gain_vs_drf",
    "load2x_jct_gain_vs_drf",
    "load4x_jct_gain_vs_drf",
    "load8x_jct_gain_vs_drf",
];

/// Gains of Tetris over fair and DRF at one load multiplier.
pub fn gains_at(ctx: &RunCtx, load: f64) -> (f64, f64) {
    let cluster = ctx.cluster_with_load(load);
    let w = ctx.facebook();
    let mut cfg = ctx.sim_config();
    // High-load runs last long in simulated time; keep sampling light.
    cfg.record_machine_samples = false;
    cfg.record_job_samples = false;
    let tetris = run(ctx, &cluster, &w, SchedName::Tetris, &cfg);
    let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);
    let drf = run(ctx, &cluster, &w, SchedName::Drf, &cfg);
    (
        pct_improvement(fair.avg_jct(), tetris.avg_jct()),
        pct_improvement(drf.avg_jct(), tetris.avg_jct()),
    )
}

/// Run the Figure-11 sweep.
pub fn fig11(ctx: &RunCtx) -> Report {
    let mut report = Report::new(String::new());
    let mut t = TextTable::new(vec![
        "load multiplier",
        "machines",
        "JCT gain vs fair",
        "JCT gain vs drf",
    ]);
    for (i, load) in LOADS.into_iter().enumerate() {
        let (vs_fair, vs_drf) = gains_at(ctx, load);
        t.row(vec![
            format!("{:.0}x", load / LOADS[0]),
            format!("{}", ctx.cluster_with_load(load).len()),
            format!("{vs_fair:+.1}%"),
            format!("{vs_drf:+.1}%"),
        ]);
        report.push(LOAD_JCT_VS_FAIR[i], vs_fair);
        report.push(LOAD_JCT_VS_DRF[i], vs_drf);
    }
    report.text = format!(
        "Figure 11 — gains vs cluster load (load varied by shrinking the cluster)\n\
         paper: gains grow with load; packing matters little on an idle cluster.\n\n{}",
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_grow_with_load() {
        let ctx = RunCtx::default();
        let (fair_light, drf_light) = gains_at(&ctx, LOADS[0]);
        let (fair_heavy, drf_heavy) = gains_at(&ctx, LOADS[2]);
        // At laptop scale even the base point can sit in the compressed
        // high-load regime (see the LOADS doc comment), so assert gains
        // hold up rather than strictly grow.
        assert!(
            fair_heavy > fair_light - 5.0,
            "vs fair: {fair_heavy} at {}x should not collapse vs {fair_light} at 1x",
            LOADS[2] / LOADS[0]
        );
        assert!(
            drf_heavy > drf_light - 5.0,
            "vs drf: {drf_heavy} vs {drf_light}"
        );
    }
}
