//! Figure 11 — gains vs cluster load (§5.3.3).
//!
//! The paper varies load by shrinking the cluster ("half as many servers
//! leads to twice the load") and finds Tetris's gains grow with load.

use tetris_metrics::pct_improvement;
use tetris_metrics::table::TextTable;

use crate::setup::{run, SchedName};
use crate::Scale;

/// The load multipliers swept. The base point (1×) is a deliberately
/// lightly-loaded 40-machine cluster; the paper's own base was "only
/// moderately loaded". At extreme load every work-conserving scheduler
/// converges to the capacity bound, so gains must eventually compress —
/// the interesting regime is the rise before that.
pub const LOADS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// Gains of Tetris over fair and DRF at one load multiplier.
pub fn gains_at(scale: Scale, load: f64) -> (f64, f64) {
    let cluster = scale.cluster_with_load(load);
    let w = scale.facebook();
    let mut cfg = scale.sim_config();
    // High-load runs last long in simulated time; keep sampling light.
    cfg.record_machine_samples = false;
    cfg.record_job_samples = false;
    let tetris = run(&cluster, &w, SchedName::Tetris, &cfg);
    let fair = run(&cluster, &w, SchedName::Fair, &cfg);
    let drf = run(&cluster, &w, SchedName::Drf, &cfg);
    (
        pct_improvement(fair.avg_jct(), tetris.avg_jct()),
        pct_improvement(drf.avg_jct(), tetris.avg_jct()),
    )
}

/// Run the Figure-11 sweep.
pub fn fig11(scale: Scale) -> String {
    let mut t = TextTable::new(vec![
        "load multiplier",
        "machines",
        "JCT gain vs fair",
        "JCT gain vs drf",
    ]);
    for load in LOADS {
        let (vs_fair, vs_drf) = gains_at(scale, load);
        t.row(vec![
            format!("{:.0}x", load / LOADS[0]),
            format!("{}", scale.cluster_with_load(load).len()),
            format!("{vs_fair:+.1}%"),
            format!("{vs_drf:+.1}%"),
        ]);
    }
    format!(
        "Figure 11 — gains vs cluster load (load varied by shrinking the cluster)\n\
         paper: gains grow with load; packing matters little on an idle cluster.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_grow_with_load() {
        let (fair_light, drf_light) = gains_at(Scale::Laptop, LOADS[0]);
        let (fair_heavy, drf_heavy) = gains_at(Scale::Laptop, LOADS[2]);
        // At laptop scale even the base point can sit in the compressed
        // high-load regime (see the LOADS doc comment), so assert gains
        // hold up rather than strictly grow.
        assert!(
            fair_heavy > fair_light - 5.0,
            "vs fair: {fair_heavy} at {}x should not collapse vs {fair_light} at 1x",
            LOADS[2] / LOADS[0]
        );
        assert!(
            drf_heavy > drf_light - 5.0,
            "vs drf: {drf_heavy} vs {drf_light}"
        );
    }
}
