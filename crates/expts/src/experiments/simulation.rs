//! Figure 7 and Table 7 — the trace-driven simulation experiments (§5.3.1)
//! on the Facebook-like trace: improvement CDFs, gain decomposition
//! ablations, and the alignment-heuristic comparison.

use tetris_baselines::UpperBoundScheduler;
use tetris_core::{AlignmentKind, TetrisConfig};
use tetris_metrics::improvement::ImprovementSummary;
use tetris_metrics::pct_improvement;
use tetris_metrics::table::TextTable;

use crate::setup::{run, run_tetris, with_zero_arrivals, SchedName};
use crate::{Report, RunCtx};

/// Figure 7 + the §5.3.1 decomposition. Paper: Tetris speeds jobs up ~40 %
/// vs Fair and ~35 % vs DRF on average; gains ≈ 90 % of the simple upper
/// bound; masking disk/network (over-allocation returns) forfeits about
/// two thirds of the gains; SRTF-only and packing-only each do worse than
/// the combination.
pub fn fig7(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let w = ctx.facebook();
    let cfg = ctx.sim_config();

    let tetris = run(ctx, &cluster, &w, SchedName::Tetris, &cfg);
    let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);
    let drf = run(ctx, &cluster, &w, SchedName::Drf, &cfg);

    let mut report = Report::new(String::new());
    let mut out = String::new();
    out.push_str("Figure 7 — simulation on the Facebook-like trace\n\n");
    for (base, m_med, m_avg) in [
        (&fair, "median_jct_gain_vs_fair", "avg_jct_gain_vs_fair"),
        (&drf, "median_jct_gain_vs_drf", "avg_jct_gain_vs_drf"),
    ] {
        let imp = ImprovementSummary::compare(&tetris, base);
        out.push_str(&format!(
            "tetris vs {:<14} median {:+.1}%  p90 {:+.1}%  avg {:+.1}%  slowed {:.0}%\n",
            base.scheduler,
            imp.median(),
            imp.percentile(0.9),
            imp.avg_jct,
            imp.frac_slowed() * 100.0
        ));
        out.push_str(&imp.render_cdf(10));
        out.push('\n');
        report.push(m_med, imp.median());
        report.push(m_avg, imp.avg_jct);
    }

    // Fraction of the upper bound achieved (paper: ≈ 90 %).
    let ub = UpperBoundScheduler::new().simulate(&w, cluster.total_capacity());
    let t_gain = pct_improvement(fair.avg_jct(), tetris.avg_jct());
    let ub_gain = pct_improvement(fair.avg_jct(), ub.avg_jct());
    let ub_frac = 100.0 * t_gain / ub_gain.max(1e-9);
    out.push_str(&format!(
        "upper-bound check: tetris gains {:.1}% vs fair; the aggregate bound gains\n\
         {:.1}% → tetris achieves {:.0}% of the bound (paper: ≈90%).\n\n",
        t_gain, ub_gain, ub_frac
    ));
    report.push("pct_of_upper_bound", ub_frac);

    // Decomposition ablations (makespan measured with all-at-zero
    // arrivals, §5.3.1; slowdowns measured vs the fair baseline).
    let w0 = with_zero_arrivals(w.clone());
    let fair0 = run(ctx, &cluster, &w0, SchedName::Fair, &cfg);
    let variants = [
        (SchedName::Tetris, "tetris_avg_jct_gain"),
        (SchedName::TetrisCpuMemOnly, "cpumem_avg_jct_gain"),
        (SchedName::Srtf, "srtf_avg_jct_gain"),
        (SchedName::PackingOnly, "packing_only_avg_jct_gain"),
    ];
    let mut t = TextTable::new(vec![
        "variant",
        "avg JCT vs fair",
        "makespan vs fair",
        "jobs slowed",
    ]);
    for (name, metric) in variants {
        let o = run(ctx, &cluster, &w, name, &cfg);
        let o0 = run(ctx, &cluster, &w0, name, &cfg);
        let slowed = ImprovementSummary::compare(&o, &fair).frac_slowed();
        let jct_gain = pct_improvement(fair.avg_jct(), o.avg_jct());
        t.row(vec![
            o.scheduler.clone(),
            format!("{jct_gain:+.1}%"),
            format!("{:+.1}%", pct_improvement(fair0.makespan(), o0.makespan())),
            format!("{:.0}%", slowed * 100.0),
        ]);
        report.push(metric, jct_gain);
    }
    out.push_str(
        "gain decomposition. Paper: masking disk/network (over-allocation\n\
         returns) forfeits ~2/3 of the gains; in our simulator it inverts them\n\
         entirely, an even stronger form of the same claim. SRTF-only is\n\
         competitive on average JCT but maximally unfair (most jobs slowed)\n\
         and weaker on makespan; the combination is strong on every column:\n\n",
    );
    out.push_str(&t.render());
    report.text = out;
    report
}

/// Per-alignment-kind metric names (JCT gain, makespan gain).
fn alignment_metric_names(kind: AlignmentKind) -> (&'static str, &'static str) {
    match kind {
        AlignmentKind::Cosine => ("cosine_jct_gain", "cosine_makespan_gain"),
        AlignmentKind::L2NormDiff => ("l2_norm_diff_jct_gain", "l2_norm_diff_makespan_gain"),
        AlignmentKind::L2NormRatio => ("l2_norm_ratio_jct_gain", "l2_norm_ratio_makespan_gain"),
        AlignmentKind::FfdProd => ("ffd_prod_jct_gain", "ffd_prod_makespan_gain"),
        AlignmentKind::FfdSum => ("ffd_sum_jct_gain", "ffd_sum_makespan_gain"),
    }
}

/// Table 7 — alignment heuristics. Paper: cosine similarity best on both
/// metrics; L2-Norm-Diff close on makespan but behind on JCT; FFD variants
/// trail.
pub fn table7(ctx: &RunCtx) -> Report {
    let cluster = ctx.cluster();
    let w = ctx.facebook();
    let w0 = with_zero_arrivals(w.clone());
    let cfg = ctx.sim_config();

    let fair = run(ctx, &cluster, &w, SchedName::Fair, &cfg);
    let fair0 = run(ctx, &cluster, &w0, SchedName::Fair, &cfg);

    let mut report = Report::new(String::new());
    let mut t = TextTable::new(vec!["alignment", "avg JCT gain", "makespan gain"]);
    for kind in AlignmentKind::ALL {
        let mut tc = TetrisConfig::default();
        tc.alignment = kind;
        let o = run_tetris(ctx, &cluster, &w, tc.clone(), &cfg);
        let o0 = run_tetris(ctx, &cluster, &w0, tc, &cfg);
        let jct_gain = pct_improvement(fair.avg_jct(), o.avg_jct());
        let mk_gain = pct_improvement(fair0.makespan(), o0.makespan());
        t.row(vec![
            kind.label().to_string(),
            format!("{jct_gain:+.1}%"),
            format!("{mk_gain:+.1}%"),
        ]);
        let (m_jct, m_mk) = alignment_metric_names(kind);
        report.push(m_jct, jct_gain);
        report.push(m_mk, mk_gain);
    }
    report.text = format!(
        "Table 7 — alignment heuristics vs the fair scheduler (Facebook-like trace)\n\
         paper: cosine best on both; L2-Norm-Diff does well on makespan but lags\n\
         on completion time.\n\n{}",
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract_pct(line: &str, key: &str) -> f64 {
        line.split(key)
            .nth(1)
            .unwrap()
            .split('%')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    }

    #[test]
    fn fig7_tetris_beats_both_baselines() {
        let r = fig7(&RunCtx::default());
        for line in r.text.lines().filter(|l| l.starts_with("tetris vs")) {
            let median = extract_pct(line, "median ");
            assert!(median > 5.0, "median gain too small: {line}");
        }
        // Ablation forfeits gains: tetris-cpumem row must be below tetris.
        assert!(r.text.contains("cpu-mem-only"));
        assert!(r.get("cpumem_avg_jct_gain").unwrap() < r.get("tetris_avg_jct_gain").unwrap());
    }

    #[test]
    fn fig7_ablation_forfeits_most_gains() {
        let ctx = RunCtx::default();
        let cluster = ctx.cluster();
        let w = ctx.facebook();
        let cfg = ctx.sim_config();
        let fair = run(&ctx, &cluster, &w, SchedName::Fair, &cfg);
        let tetris = run(&ctx, &cluster, &w, SchedName::Tetris, &cfg);
        let cpumem = run(&ctx, &cluster, &w, SchedName::TetrisCpuMemOnly, &cfg);
        let full_gain = pct_improvement(fair.avg_jct(), tetris.avg_jct());
        let masked_gain = pct_improvement(fair.avg_jct(), cpumem.avg_jct());
        assert!(
            masked_gain < full_gain,
            "masking IO should forfeit gains: {masked_gain} vs {full_gain}"
        );
    }

    #[test]
    fn table7_has_all_five_heuristics() {
        let r = table7(&RunCtx::default());
        for k in AlignmentKind::ALL {
            assert!(r.text.contains(k.label()), "missing {}", k.label());
            let (m_jct, _) = alignment_metric_names(k);
            assert!(r.get(m_jct).is_some(), "missing metric {m_jct}");
        }
    }
}
