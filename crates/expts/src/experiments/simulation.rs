//! Figure 7 and Table 7 — the trace-driven simulation experiments (§5.3.1)
//! on the Facebook-like trace: improvement CDFs, gain decomposition
//! ablations, and the alignment-heuristic comparison.

use tetris_baselines::UpperBoundScheduler;
use tetris_core::{AlignmentKind, TetrisConfig};
use tetris_metrics::improvement::ImprovementSummary;
use tetris_metrics::pct_improvement;
use tetris_metrics::table::TextTable;

use crate::setup::{run, run_tetris, with_zero_arrivals, SchedName};
use crate::Scale;

/// Figure 7 + the §5.3.1 decomposition. Paper: Tetris speeds jobs up ~40 %
/// vs Fair and ~35 % vs DRF on average; gains ≈ 90 % of the simple upper
/// bound; masking disk/network (over-allocation returns) forfeits about
/// two thirds of the gains; SRTF-only and packing-only each do worse than
/// the combination.
pub fn fig7(scale: Scale) -> String {
    let cluster = scale.cluster();
    let w = scale.facebook();
    let cfg = scale.sim_config();

    let tetris = run(&cluster, &w, SchedName::Tetris, &cfg);
    let fair = run(&cluster, &w, SchedName::Fair, &cfg);
    let drf = run(&cluster, &w, SchedName::Drf, &cfg);

    let mut out = String::new();
    out.push_str("Figure 7 — simulation on the Facebook-like trace\n\n");
    for base in [&fair, &drf] {
        let imp = ImprovementSummary::compare(&tetris, base);
        out.push_str(&format!(
            "tetris vs {:<14} median {:+.1}%  p90 {:+.1}%  avg {:+.1}%  slowed {:.0}%\n",
            base.scheduler,
            imp.median(),
            imp.percentile(0.9),
            imp.avg_jct,
            imp.frac_slowed() * 100.0
        ));
        out.push_str(&imp.render_cdf(10));
        out.push('\n');
    }

    // Fraction of the upper bound achieved (paper: ≈ 90 %).
    let ub = UpperBoundScheduler::new().simulate(&w, cluster.total_capacity());
    let t_gain = pct_improvement(fair.avg_jct(), tetris.avg_jct());
    let ub_gain = pct_improvement(fair.avg_jct(), ub.avg_jct());
    out.push_str(&format!(
        "upper-bound check: tetris gains {:.1}% vs fair; the aggregate bound gains\n\
         {:.1}% → tetris achieves {:.0}% of the bound (paper: ≈90%).\n\n",
        t_gain,
        ub_gain,
        100.0 * t_gain / ub_gain.max(1e-9)
    ));

    // Decomposition ablations (makespan measured with all-at-zero
    // arrivals, §5.3.1; slowdowns measured vs the fair baseline).
    let w0 = with_zero_arrivals(w.clone());
    let fair0 = run(&cluster, &w0, SchedName::Fair, &cfg);
    let variants = [
        SchedName::Tetris,
        SchedName::TetrisCpuMemOnly,
        SchedName::Srtf,
        SchedName::PackingOnly,
    ];
    let mut t = TextTable::new(vec![
        "variant",
        "avg JCT vs fair",
        "makespan vs fair",
        "jobs slowed",
    ]);
    for name in variants {
        let o = run(&cluster, &w, name, &cfg);
        let o0 = run(&cluster, &w0, name, &cfg);
        let slowed = ImprovementSummary::compare(&o, &fair).frac_slowed();
        t.row(vec![
            o.scheduler.clone(),
            format!("{:+.1}%", pct_improvement(fair.avg_jct(), o.avg_jct())),
            format!("{:+.1}%", pct_improvement(fair0.makespan(), o0.makespan())),
            format!("{:.0}%", slowed * 100.0),
        ]);
    }
    out.push_str(
        "gain decomposition. Paper: masking disk/network (over-allocation\n\
         returns) forfeits ~2/3 of the gains; in our simulator it inverts them\n\
         entirely, an even stronger form of the same claim. SRTF-only is\n\
         competitive on average JCT but maximally unfair (most jobs slowed)\n\
         and weaker on makespan; the combination is strong on every column:\n\n",
    );
    out.push_str(&t.render());
    out
}

/// Table 7 — alignment heuristics. Paper: cosine similarity best on both
/// metrics; L2-Norm-Diff close on makespan but behind on JCT; FFD variants
/// trail.
pub fn table7(scale: Scale) -> String {
    let cluster = scale.cluster();
    let w = scale.facebook();
    let w0 = with_zero_arrivals(w.clone());
    let cfg = scale.sim_config();

    let fair = run(&cluster, &w, SchedName::Fair, &cfg);
    let fair0 = run(&cluster, &w0, SchedName::Fair, &cfg);

    let mut t = TextTable::new(vec!["alignment", "avg JCT gain", "makespan gain"]);
    for kind in AlignmentKind::ALL {
        let mut tc = TetrisConfig::default();
        tc.alignment = kind;
        let o = run_tetris(&cluster, &w, tc.clone(), &cfg);
        let o0 = run_tetris(&cluster, &w0, tc, &cfg);
        t.row(vec![
            kind.label().to_string(),
            format!("{:+.1}%", pct_improvement(fair.avg_jct(), o.avg_jct())),
            format!("{:+.1}%", pct_improvement(fair0.makespan(), o0.makespan())),
        ]);
    }
    format!(
        "Table 7 — alignment heuristics vs the fair scheduler (Facebook-like trace)\n\
         paper: cosine best on both; L2-Norm-Diff does well on makespan but lags\n\
         on completion time.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract_pct(line: &str, key: &str) -> f64 {
        line.split(key)
            .nth(1)
            .unwrap()
            .split('%')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    }

    #[test]
    fn fig7_tetris_beats_both_baselines() {
        let s = fig7(Scale::Laptop);
        for line in s.lines().filter(|l| l.starts_with("tetris vs")) {
            let median = extract_pct(line, "median ");
            assert!(median > 5.0, "median gain too small: {line}");
        }
        // Ablation forfeits gains: tetris-cpumem row must be below tetris.
        assert!(s.contains("cpu-mem-only"));
    }

    #[test]
    fn fig7_ablation_forfeits_most_gains() {
        let scale = Scale::Laptop;
        let cluster = scale.cluster();
        let w = scale.facebook();
        let cfg = scale.sim_config();
        let fair = run(&cluster, &w, SchedName::Fair, &cfg);
        let tetris = run(&cluster, &w, SchedName::Tetris, &cfg);
        let cpumem = run(&cluster, &w, SchedName::TetrisCpuMemOnly, &cfg);
        let full_gain = pct_improvement(fair.avg_jct(), tetris.avg_jct());
        let masked_gain = pct_improvement(fair.avg_jct(), cpumem.avg_jct());
        assert!(
            masked_gain < full_gain,
            "masking IO should forfeit gains: {masked_gain} vs {full_gain}"
        );
    }

    #[test]
    fn table7_has_all_five_heuristics() {
        let s = table7(Scale::Laptop);
        for k in AlignmentKind::ALL {
            assert!(s.contains(k.label()), "missing {}", k.label());
        }
    }
}
