//! One module per paper artifact. Every experiment is a pure function of
//! its [`RunCtx`] returning a [`Report`] — rendered text for the CLI plus
//! typed headline metrics for sweep aggregation and benchmark emission.

pub mod churn;
pub mod deployment;
pub mod extensions;
pub mod ingestion;
pub mod knobs;
pub mod load;
pub mod motivating;
pub mod omega;
pub mod recovery;
pub mod scale;
pub mod sensitivity;
pub mod serving;
pub mod simulation;
pub mod table8;
pub mod upper_bound;
pub mod workload_tables;

use crate::{Report, RunCtx};

/// An experiment: id, what it reproduces, runner.
pub struct Experiment {
    /// Short id used on the command line ("fig4", "table2", ...).
    pub id: &'static str,
    /// One-line description of the paper artifact.
    pub what: &'static str,
    /// Runner. A plain `fn` (no captured state): experiments are pure
    /// functions of the context, which is what makes running them on a
    /// thread pool sound.
    pub run: fn(&RunCtx) -> Report,
    /// Rough serial cost in seconds at laptop scale. Only the relative
    /// magnitudes matter: the parallel runner starts the most expensive
    /// experiments first (longest-processing-time-first), which is what
    /// keeps the suite's critical path from being one big experiment
    /// queued last.
    pub cost: u32,
}

/// The full registry, in the paper's order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            what: "Figure 1 — motivating example: packing vs DRF on 3 jobs",
            run: motivating::fig1,
            cost: 1,
        },
        Experiment {
            id: "table2",
            what: "Table 2 — cross-resource demand correlation matrix",
            run: workload_tables::table2,
            cost: 1,
        },
        Experiment {
            id: "fig2",
            what: "Figure 2 — heat-map of task resource demands",
            run: workload_tables::fig2,
            cost: 1,
        },
        Experiment {
            id: "table3",
            what: "Table 3 — resource tightness probabilities",
            run: workload_tables::table3,
            cost: 1,
        },
        Experiment {
            id: "ub",
            what: "§2.2.3 — aggregate upper bound on packing gains",
            run: upper_bound::ub,
            cost: 6,
        },
        Experiment {
            id: "fig4",
            what: "Figure 4 — deployment: JCT improvement CDF + makespan",
            run: deployment::fig4,
            cost: 6,
        },
        Experiment {
            id: "fig5",
            what: "Figure 5 — running tasks and utilization timelines",
            run: deployment::fig5,
            cost: 1,
        },
        Experiment {
            id: "table6",
            what: "Table 6 — machine high-usage probabilities per scheduler",
            run: deployment::table6,
            cost: 1,
        },
        Experiment {
            id: "fig6",
            what: "Figure 6 — resource tracker vs data ingestion",
            run: ingestion::fig6,
            cost: 1,
        },
        Experiment {
            id: "fig7",
            what: "Figure 7 — simulation: JCT improvement CDFs + ablations",
            run: simulation::fig7,
            cost: 110,
        },
        Experiment {
            id: "table7",
            what: "Table 7 — alignment heuristic comparison",
            run: simulation::table7,
            cost: 8,
        },
        Experiment {
            id: "fig8",
            what: "Figure 8 — fairness knob sweep (efficiency side)",
            run: knobs::fig8,
            cost: 4,
        },
        Experiment {
            id: "fig9",
            what: "Figure 9 — fairness knob sweep (job slowdowns)",
            run: knobs::fig9,
            cost: 2,
        },
        Experiment {
            id: "riu",
            what: "§5.3.2 — relative integral unfairness",
            run: knobs::riu,
            cost: 1,
        },
        Experiment {
            id: "fig10",
            what: "Figure 10 — barrier knob sweep",
            run: knobs::fig10,
            cost: 4,
        },
        Experiment {
            id: "rp",
            what: "§5.3.3 — remote-penalty sensitivity",
            run: sensitivity::remote_penalty,
            cost: 25,
        },
        Experiment {
            id: "eps",
            what: "§5.3.3 — alignment-vs-SRTF weighting sensitivity",
            run: sensitivity::epsilon,
            cost: 25,
        },
        Experiment {
            id: "fig11",
            what: "Figure 11 — gains vs cluster load",
            run: load::fig11,
            cost: 15,
        },
        Experiment {
            id: "ext-est",
            what: "Extension — robustness to demand-estimation error (§4.1)",
            run: extensions::estimation,
            cost: 8,
        },
        Experiment {
            id: "ext-starve",
            what: "Extension — starvation prevention by reservation (§3.5)",
            run: extensions::starvation,
            cost: 1,
        },
        Experiment {
            id: "churn",
            what: "Extension — graceful degradation under machine churn (§3.1/§4.3)",
            run: churn::churn,
            cost: 30,
        },
        Experiment {
            id: "table8",
            what: "Table 8 — heartbeat overheads: incremental vs full-rebuild scheduling",
            run: table8::table8,
            cost: 20,
        },
        Experiment {
            id: "scale",
            what:
                "Extension — indexed MachineQuery: sublinear cold-pass placement at 100k machines",
            run: scale::scale,
            cost: 40,
        },
        Experiment {
            id: "omega",
            what: "Extension — Omega-style sharded multi-scheduler: heartbeat scaling vs shards",
            run: omega::omega,
            cost: 20,
        },
        Experiment {
            id: "recovery",
            what: "Extension — crash-recovery: checkpoint + WAL replay, byte-identical resume",
            run: recovery::recovery,
            cost: 15,
        },
        Experiment {
            id: "serving",
            what:
                "Extension — serving SLOs: diurnal services + preemption over a batch backlog (§16)",
            run: serving::serving,
            cost: 12,
        },
    ]
}

/// Look up one experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_nonempty() {
        let reg = registry();
        assert_eq!(reg.len(), 26);
        let mut ids: Vec<_> = reg.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 26);
    }

    #[test]
    fn find_looks_up_by_id() {
        assert_eq!(find("fig4").unwrap().id, "fig4");
        assert!(find("nope").is_none());
    }
}
