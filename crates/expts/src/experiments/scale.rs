//! Scale — sublinear cold-pass placement behind the indexed
//! `MachineQuery` (DESIGN.md §13).
//!
//! The paper's Table 8 shows heartbeat *matching* staying cheap because
//! it is incremental; the cold pass — a scheduling round with no freed
//! hint, e.g. a burst of arrivals hitting a packed cluster — still
//! scanned every machine. This experiment measures that pass at cluster
//! sizes where the linear scan hurts: a saturated cluster of 1 k / 10 k /
//! 100 k machines with a 10×-machines pending backlog and four empty
//! machines ([`ColdPassProbe`]), timing one cold `schedule()` of the
//! same `TetrisScheduler` against
//!
//! * **indexed** — `MachineQuery` answered by the per-resource bucketed
//!   free-capacity index (`SimConfig::machine_index = true`), and
//! * **linear** — the flat scan oracle (`machine_index = false`),
//!
//! asserting byte-identical assignment streams every rep. A second,
//! size-independent point pushes the candidate count past the sharded
//! scorer's minimum batch (`shards = 2` on the indexed side only) to
//! pin that the worker-pool fan-out is decision-neutral too.
//!
//! Latencies go to the bench metrics (`cold_pass_*_ms_*`, headline
//! `cold_pass_speedup_100k`); the report text carries only deterministic
//! counts so `reproduce all` output stays byte-stable.
//!
//! [`ColdPassProbe`]: tetris_sim::probe::ColdPassProbe

use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_metrics::table::TextTable;
use tetris_obs::{names, Obs};
use tetris_sim::probe::ColdPassProbe;

use crate::{Report, RunCtx};

/// Cluster sizes swept at `--scale 1.0`.
pub const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
/// Pending backlog per machine (100 k machines → 1 M pending tasks).
const PENDING_PER_MACHINE: usize = 10;
/// Timed cold passes per size; the reported latency is the median. Each
/// rep uses fresh unsynced schedulers so every pass is genuinely cold.
const REPS: usize = 3;

/// Static metric keys per sweep point: indexed / linear cold-pass median
/// latency (milliseconds) and the linear-over-indexed speedup. The 100 k
/// speedup is the PR's acceptance headline.
fn metric_names(i: usize) -> [&'static str; 3] {
    match i {
        0 => [
            "cold_pass_indexed_ms_1k",
            "cold_pass_linear_ms_1k",
            "cold_pass_speedup_1k",
        ],
        1 => [
            "cold_pass_indexed_ms_10k",
            "cold_pass_linear_ms_10k",
            "cold_pass_speedup_10k",
        ],
        _ => [
            "cold_pass_indexed_ms_100k",
            "cold_pass_linear_ms_100k",
            "cold_pass_speedup_100k",
        ],
    }
}

fn median(xs: &mut [u64]) -> f64 {
    xs.sort_unstable();
    xs[xs.len() / 2] as f64
}

/// Run the cold-pass scale sweep.
pub fn scale(ctx: &RunCtx) -> Report {
    let mut out = String::new();
    out.push_str(
        "Scale — cold-pass placement cost, indexed MachineQuery vs linear scan.\n\
         A saturated cluster (4 tasks/machine, 4 machines left empty) with a\n\
         10x-machines pending backlog; one cold schedule() per rep per backend\n\
         on identical snapshots, assignment streams asserted identical.\n\
         Latencies land in the bench metrics (cold_pass_indexed_ms_*,\n\
         cold_pass_linear_ms_*, cold_pass_speedup_*); the table below is the\n\
         deterministic part. expectation: the linear pass grows with cluster\n\
         size while the indexed pass tracks the handful of feasible machines,\n\
         so the speedup widens with scale.\n\n",
    );
    let mut t = TextTable::new(vec![
        "machines",
        "pending",
        "free",
        "placed",
        "queries",
        "pruned",
        "returned",
        "env_visits",
    ]);
    let mut report = Report::new(String::new());
    let mut obs = Obs::noop();
    for (i, &size) in SIZES.iter().enumerate() {
        let n = ((size as f64 * ctx.scale_factor).round() as usize).max(16);
        let probe = ColdPassProbe::new(n, n * PENDING_PER_MACHINE);
        let (mut idx_ns, mut lin_ns) = (Vec::new(), Vec::new());
        let mut placed = 0;
        for _ in 0..REPS {
            let mut idx = TetrisScheduler::new(TetrisConfig::default());
            let mut lin = TetrisScheduler::new(TetrisConfig::default());
            let s = probe.measure(&mut idx, &mut lin);
            idx_ns.push(s.indexed_ns);
            lin_ns.push(s.linear_ns);
            placed = s.placements;
        }
        let st = probe.take_index_stats();
        obs.metrics.counter_add(names::INDEX_QUERIES, st.queries);
        obs.metrics.counter_add(names::INDEX_PRUNED, st.pruned);
        obs.metrics.counter_add(names::INDEX_RETURNED, st.returned);
        obs.metrics
            .counter_add(names::INDEX_ENV_VISITS, st.env_visits);
        let (idx_med, lin_med) = (median(&mut idx_ns), median(&mut lin_ns));
        let keys = metric_names(i);
        report.push(keys[0], idx_med / 1e6);
        report.push(keys[1], lin_med / 1e6);
        report.push(keys[2], lin_med / idx_med.max(1.0));
        t.row(vec![
            format!("{n}"),
            format!("{}", probe.pending()),
            format!("{}", probe.free().len()),
            format!("{placed}"),
            format!("{}", st.queries),
            format!("{}", st.pruned),
            format!("{}", st.returned),
            format!("{}", st.env_visits),
        ]);
    }
    out.push_str(&t.render());

    // Sharded-scorer smoke: enough one-candidate-per-job backlog to clear
    // the sharded scan's minimum batch, shards=2 on the indexed side vs
    // the serial linear oracle — placements must still match exactly.
    // Size-independent of --scale: the point exists to exercise the
    // fan-out path, not to time it.
    // 2-task jobs → ~12 k candidate jobs, comfortably past the minimum
    // batch even after the fairness cutoff trims the candidate set.
    let probe = ColdPassProbe::with_tasks_per_job(64, 24_000, 2);
    let mut sharded = TetrisScheduler::new({
        let mut c = TetrisConfig::default();
        c.score_shards = 2;
        c
    });
    let mut serial = TetrisScheduler::new(TetrisConfig::default());
    let s = probe.measure(&mut sharded, &mut serial);
    let (batches, items) = sharded.take_shard_stats();
    obs.metrics.counter_add(names::SHARD_BATCHES, batches);
    obs.metrics.counter_add(names::SHARD_ITEMS, items);
    out.push_str(&format!(
        "\nsharded scorer smoke (shards=2 vs serial, identical snapshots):\n\
         placements {} | shard batches {batches} | shard items {items}\n",
        s.placements,
    ));
    ctx.absorb(&obs.metrics);
    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::DEFAULT_SEED;
    use crate::Scale;

    #[test]
    fn scale_reports_sweep_with_identical_decisions() {
        // ColdPassProbe panics if the indexed and linear backends ever
        // propose different assignments, so a completed run *is* the
        // equivalence gate; here we pin report shape and index activity.
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.02);
        let r = scale(&ctx);
        assert_eq!(r.metrics.len(), 9, "3 metrics x 3 sweep points");
        for i in 0..SIZES.len() {
            for name in metric_names(i) {
                let v = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
                assert!(v.is_finite() && v > 0.0, "{name} = {v}");
            }
        }
        assert!(r.text.contains("shard batches"), "{}", r.text);
        // The sharded smoke must actually dispatch batches.
        let batches: u64 = r
            .text
            .split("shard batches ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("shard batches in text");
        assert!(batches > 0, "sharded path never fired:\n{}", r.text);
    }

    #[test]
    fn scale_text_is_deterministic_across_runs() {
        let ctx = RunCtx::new(Scale::Laptop, DEFAULT_SEED).scaled(0.02);
        assert_eq!(scale(&ctx).text, scale(&ctx).text);
    }
}
