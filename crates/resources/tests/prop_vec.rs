//! Property-based tests for the resource-vector algebra.
//!
//! These invariants underpin every scheduler score in the workspace: if
//! vector arithmetic misbehaves (NaN leakage, broken normalization,
//! asymmetric dot products) every downstream heuristic silently degrades.

use proptest::prelude::*;
use tetris_resources::{Resource, ResourceVec, NUM_RESOURCES};

fn arb_component() -> impl Strategy<Value = f64> {
    // Realistic magnitudes: cores (units), bytes (up to ~1e12), rates.
    prop_oneof![0.0..=64.0, 0.0..=1e12, Just(0.0),]
}

fn arb_vec() -> impl Strategy<Value = ResourceVec> {
    proptest::array::uniform6(arb_component()).prop_map(ResourceVec)
}

fn arb_capacity() -> impl Strategy<Value = ResourceVec> {
    // Strictly positive capacities.
    proptest::array::uniform6(1e-3..=1e12).prop_map(ResourceVec)
}

proptest! {
    #[test]
    fn add_commutes(a in arb_vec(), b in arb_vec()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn sub_then_add_roundtrips(a in arb_vec(), b in arb_vec()) {
        let r = a - b + b;
        for i in 0..NUM_RESOURCES {
            let tol = 1e-9 * a.0[i].abs().max(b.0[i].abs()).max(1.0);
            prop_assert!((r.0[i] - a.0[i]).abs() <= tol);
        }
    }

    #[test]
    fn dot_symmetric(a in arb_vec(), b in arb_vec()) {
        prop_assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn dot_nonnegative_for_nonnegative(a in arb_vec(), b in arb_vec()) {
        prop_assert!(a.dot(&b) >= 0.0);
    }

    #[test]
    fn normalize_then_scale_roundtrips(a in arb_vec(), cap in arb_capacity()) {
        let n = a.normalized_by(&cap).scaled_by(&cap);
        for i in 0..NUM_RESOURCES {
            let tol = 1e-9 * a.0[i].abs().max(1.0);
            prop_assert!((n.0[i] - a.0[i]).abs() <= tol,
                "component {i}: {} vs {}", n.0[i], a.0[i]);
        }
    }

    #[test]
    fn normalized_never_nan(a in arb_vec(), cap in arb_capacity()) {
        prop_assert!(!a.normalized_by(&cap).has_nan());
    }

    #[test]
    fn fits_within_reflexive(a in arb_vec()) {
        prop_assert!(a.fits_within(&a));
    }

    #[test]
    fn fits_within_monotone(a in arb_vec(), b in arb_vec(), extra in arb_vec()) {
        // If a fits in b, then a fits in b + extra (extra >= 0).
        if a.fits_within(&b) {
            prop_assert!(a.fits_within(&(b + extra)));
        }
    }

    #[test]
    fn clamp_non_negative_idempotent(a in arb_vec(), b in arb_vec()) {
        let d = (a - b).clamp_non_negative();
        prop_assert_eq!(d.clamp_non_negative(), d);
        prop_assert!(d.min_component() >= 0.0);
    }

    #[test]
    fn dominant_share_bounded_by_max_ratio(a in arb_vec(), cap in arb_capacity()) {
        let all = Resource::ALL;
        let ds = a.dominant_share(&cap, &all);
        let max_ratio = a.normalized_by(&cap).max_component();
        prop_assert!((ds - max_ratio).abs() <= 1e-9 * max_ratio.abs().max(1.0));
    }

    #[test]
    fn projection_fits_within_original(a in arb_vec()) {
        let p = a.project(&[Resource::Cpu, Resource::Mem]);
        prop_assert!(p.fits_within(&a));
    }

    #[test]
    fn sum_matches_componentwise(a in arb_vec(), b in arb_vec(), c in arb_vec()) {
        let s: ResourceVec = vec![a, b, c].into_iter().sum();
        prop_assert_eq!(s, a + b + c);
    }

    #[test]
    fn scalar_mul_distributes(a in arb_vec(), b in arb_vec(), k in 0.0..1e3f64) {
        let lhs = (a + b) * k;
        let rhs = a * k + b * k;
        for i in 0..NUM_RESOURCES {
            let tol = 1e-6 * lhs.0[i].abs().max(1.0);
            prop_assert!((lhs.0[i] - rhs.0[i]).abs() <= tol);
        }
    }
}
