//! The six resource dimensions of the Tetris model.

use std::fmt;

/// Number of resource dimensions tracked by the scheduler.
pub const NUM_RESOURCES: usize = 6;

/// A resource dimension (paper Tables 4 and 5).
///
/// CPU and memory are allocated only at the machine a task runs on; disk and
/// network bandwidth may additionally be consumed at *remote* machines that
/// hold the task's input (paper §3.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Resource {
    /// CPU, measured in cores (fractional cores allowed).
    Cpu,
    /// Memory, measured in bytes. A *space* resource: held at peak for the
    /// task's whole lifetime (paper §3.1 — allocating less than peak risks
    /// thrashing, so Tetris always allocates peak memory).
    Mem,
    /// Disk read bandwidth in bytes/second.
    DiskRead,
    /// Disk write bandwidth in bytes/second.
    DiskWrite,
    /// Network ingress bandwidth (into the machine) in bytes/second.
    NetIn,
    /// Network egress bandwidth (out of the machine) in bytes/second.
    NetOut,
}

/// Whether a resource is consumed over time or merely occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Occupied for the task's lifetime (memory). The amount held does not
    /// determine how fast the task runs.
    Space,
    /// Consumed at a rate; the allocated rate divides the task's total work
    /// along this dimension to yield a completion-time term (paper eqn. 5).
    Rate,
}

impl Resource {
    /// All resources, in canonical index order.
    pub const ALL: [Resource; NUM_RESOURCES] = [
        Resource::Cpu,
        Resource::Mem,
        Resource::DiskRead,
        Resource::DiskWrite,
        Resource::NetIn,
        Resource::NetOut,
    ];

    /// Canonical index of this resource in a [`crate::ResourceVec`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Resource::Cpu => 0,
            Resource::Mem => 1,
            Resource::DiskRead => 2,
            Resource::DiskWrite => 3,
            Resource::NetIn => 4,
            Resource::NetOut => 5,
        }
    }

    /// Inverse of [`Resource::index`]. Panics if `i >= NUM_RESOURCES`.
    #[inline]
    pub const fn from_index(i: usize) -> Resource {
        Self::ALL[i]
    }

    /// Space vs rate classification.
    #[inline]
    pub const fn kind(self) -> ResourceKind {
        match self {
            Resource::Mem => ResourceKind::Space,
            _ => ResourceKind::Rate,
        }
    }

    /// True for the dimensions current-generation schedulers (slot-based
    /// Fair/Capacity, shipped DRF) actually look at when placing tasks.
    /// The paper's central critique is that ignoring the remaining
    /// dimensions causes over-allocation (§1, §2.1).
    #[inline]
    pub const fn is_explicitly_scheduled_by_baselines(self) -> bool {
        matches!(self, Resource::Cpu | Resource::Mem)
    }

    /// Short machine-readable label ("cpu", "mem", ...).
    pub const fn label(self) -> &'static str {
        match self {
            Resource::Cpu => "cpu",
            Resource::Mem => "mem",
            Resource::DiskRead => "disk_r",
            Resource::DiskWrite => "disk_w",
            Resource::NetIn => "net_in",
            Resource::NetOut => "net_out",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, r) in Resource::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Resource::from_index(i), *r);
        }
    }

    #[test]
    fn only_memory_is_space() {
        for r in Resource::ALL {
            match r {
                Resource::Mem => assert_eq!(r.kind(), ResourceKind::Space),
                _ => assert_eq!(r.kind(), ResourceKind::Rate),
            }
        }
    }

    #[test]
    fn baselines_see_cpu_and_mem_only() {
        let seen: Vec<_> = Resource::ALL
            .iter()
            .filter(|r| r.is_explicitly_scheduled_by_baselines())
            .collect();
        assert_eq!(seen, vec![&Resource::Cpu, &Resource::Mem]);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Resource::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NUM_RESOURCES);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Resource::DiskRead.to_string(), "disk_r");
    }
}
