//! # tetris-resources
//!
//! Multi-dimensional resource model shared by every crate in the Tetris
//! workspace.
//!
//! The SIGCOMM'14 Tetris paper schedules tasks along **six** resource
//! dimensions (paper Tables 4 and 5): CPU cores, memory, disk read
//! bandwidth, disk write bandwidth, network-in bandwidth and network-out
//! bandwidth. This crate provides:
//!
//! * [`Resource`] — the dimension enum, including the distinction between
//!   *space* resources (memory: held for a task's whole lifetime) and *rate*
//!   resources (everything else: consumed at some rate over time);
//! * [`ResourceVec`] — a fixed-size vector over the six dimensions with the
//!   arithmetic the packing heuristics need (dot products, normalization,
//!   fits-within tests, max–min helpers);
//! * [`MachineSpec`] — a builder that turns a human-readable machine
//!   description ("16 cores, 32 GB, 4 disks at 50 MB/s, 1 Gbps NIC") into a
//!   capacity vector;
//! * [`units`] — unit constants and pretty-printing helpers.
//!
//! ## Conventions
//!
//! All quantities are `f64` in base units: CPU in **cores**, memory in
//! **bytes**, all bandwidths in **bytes/second**. Total *work* (the `f`
//! terms of paper eqn. 5) uses core-seconds for CPU and bytes for IO, so
//! `work / rate` is always seconds.
//!
//! ## Example
//!
//! ```
//! use tetris_resources::{MachineSpec, ResourceVec, Resource, units};
//!
//! let machine = MachineSpec::new()
//!     .cores(16.0)
//!     .memory(32.0 * units::GB)
//!     .disks(4, 50.0 * units::MB)
//!     .nic(units::gbps(1.0))
//!     .capacity();
//!
//! let task = ResourceVec::zero()
//!     .with(Resource::Cpu, 2.0)
//!     .with(Resource::Mem, 4.0 * units::GB);
//!
//! assert!(task.fits_within(&machine));
//! let norm = task.normalized_by(&machine);
//! assert!((norm.get(Resource::Cpu) - 0.125).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine_spec;
mod resource;
pub mod units;
mod vec;

pub use machine_spec::MachineSpec;
pub use resource::{Resource, ResourceKind, NUM_RESOURCES};
pub use vec::ResourceVec;
