//! Unit constants and human-readable formatting.
//!
//! Base units across the workspace: cores, bytes, bytes/second. These
//! helpers keep call sites legible (`32.0 * units::GB`, `units::gbps(1.0)`).

use crate::Resource;

/// One kilobyte (10^3 bytes). Decimal units, matching disk/NIC marketing
/// figures used in the paper's machine profiles.
pub const KB: f64 = 1e3;
/// One megabyte (10^6 bytes).
pub const MB: f64 = 1e6;
/// One gigabyte (10^9 bytes).
pub const GB: f64 = 1e9;
/// One terabyte (10^12 bytes).
pub const TB: f64 = 1e12;

/// Convert a link speed in gigabits/second to bytes/second.
#[inline]
pub fn gbps(g: f64) -> f64 {
    g * 1e9 / 8.0
}

/// Convert a link speed in megabits/second to bytes/second.
#[inline]
pub fn mbps(m: f64) -> f64 {
    m * 1e6 / 8.0
}

/// Format a byte count with a binary-friendly decimal suffix.
pub fn human_bytes(b: f64) -> String {
    let (v, suffix) = scale(b);
    format!("{v:.3}{suffix}B")
}

/// Format a rate in bytes/second.
pub fn human_rate(r: f64) -> String {
    let (v, suffix) = scale(r);
    format!("{v:.3}{suffix}B/s")
}

fn scale(x: f64) -> (f64, &'static str) {
    let a = x.abs();
    if a >= TB {
        (x / TB, "T")
    } else if a >= GB {
        (x / GB, "G")
    } else if a >= MB {
        (x / MB, "M")
    } else if a >= KB {
        (x / KB, "K")
    } else {
        (x, "")
    }
}

/// Format a quantity of resource `r` in its natural unit.
pub fn human(r: Resource, v: f64) -> String {
    match r {
        Resource::Cpu => format!("{v:.2}c"),
        Resource::Mem => human_bytes(v),
        _ => human_rate(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_speed_conversions() {
        assert_eq!(gbps(1.0), 125e6);
        assert_eq!(mbps(800.0), 1e8);
    }

    #[test]
    fn humanize_bytes() {
        assert_eq!(human_bytes(2.0 * GB), "2.000GB");
        assert_eq!(human_bytes(512.0), "512.000B");
        assert_eq!(human_bytes(3.5 * TB), "3.500TB");
    }

    #[test]
    fn humanize_rate() {
        assert_eq!(human_rate(50.0 * MB), "50.000MB/s");
    }

    #[test]
    fn humanize_per_resource() {
        assert_eq!(human(Resource::Cpu, 2.0), "2.00c");
        assert_eq!(human(Resource::Mem, GB), "1.000GB");
        assert!(human(Resource::NetIn, 125e6).ends_with("B/s"));
    }
}
