//! Builder for machine capacity vectors from hardware-style descriptions.

use crate::{Resource, ResourceVec};

/// Hardware description of one machine class, convertible into a capacity
/// [`ResourceVec`].
///
/// The disk dimensions model the *aggregate* bandwidth of the machine's
/// drives (the paper's simulator uses "4 disks operating at 50 MBps each
/// for read/write"); the NIC is full duplex, so the same figure feeds both
/// `NetIn` and `NetOut` (§4.1 considers only the last-hop link).
///
/// ```
/// use tetris_resources::{MachineSpec, Resource, units};
/// let cap = MachineSpec::new()
///     .cores(16.0)
///     .memory(32.0 * units::GB)
///     .disks(4, 50.0 * units::MB)
///     .nic(units::gbps(1.0))
///     .capacity();
/// assert_eq!(cap.get(Resource::DiskRead), 200.0 * units::MB);
/// assert_eq!(cap.get(Resource::NetIn), 125.0 * units::MB);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MachineSpec {
    /// Number of CPU cores.
    pub cores: f64,
    /// Memory in bytes.
    pub memory: f64,
    /// Aggregate disk read bandwidth, bytes/s.
    pub disk_read: f64,
    /// Aggregate disk write bandwidth, bytes/s.
    pub disk_write: f64,
    /// NIC ingress bandwidth, bytes/s.
    pub net_in: f64,
    /// NIC egress bandwidth, bytes/s.
    pub net_out: f64,
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec {
            cores: 0.0,
            memory: 0.0,
            disk_read: 0.0,
            disk_write: 0.0,
            net_in: 0.0,
            net_out: 0.0,
        }
    }
}

impl MachineSpec {
    /// Empty spec; chain builder methods to fill it in.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set core count.
    #[must_use]
    pub fn cores(mut self, c: f64) -> Self {
        self.cores = c;
        self
    }

    /// Set memory in bytes.
    #[must_use]
    pub fn memory(mut self, bytes: f64) -> Self {
        self.memory = bytes;
        self
    }

    /// Set disk bandwidth from `count` drives of `per_drive` bytes/s each
    /// (applied to both read and write).
    #[must_use]
    pub fn disks(mut self, count: u32, per_drive: f64) -> Self {
        let agg = count as f64 * per_drive;
        self.disk_read = agg;
        self.disk_write = agg;
        self
    }

    /// Set a full-duplex NIC bandwidth in bytes/s (both directions).
    #[must_use]
    pub fn nic(mut self, bytes_per_sec: f64) -> Self {
        self.net_in = bytes_per_sec;
        self.net_out = bytes_per_sec;
        self
    }

    /// Materialize the capacity vector.
    pub fn capacity(&self) -> ResourceVec {
        ResourceVec::zero()
            .with(Resource::Cpu, self.cores)
            .with(Resource::Mem, self.memory)
            .with(Resource::DiskRead, self.disk_read)
            .with(Resource::DiskWrite, self.disk_write)
            .with(Resource::NetIn, self.net_in)
            .with(Resource::NetOut, self.net_out)
    }

    /// The large-cluster machine profile used throughout the evaluation
    /// (paper §5.1): 16 cores, 32 GB RAM, 4 disks × 50 MB/s, 1 Gbps NIC.
    pub fn paper_large() -> Self {
        use crate::units::{gbps, GB, MB};
        MachineSpec::new()
            .cores(16.0)
            .memory(32.0 * GB)
            .disks(4, 50.0 * MB)
            .nic(gbps(1.0))
    }

    /// The small-cluster machine profile (paper §5.1): 4 cores, 16 GB RAM,
    /// 2 disks × 50 MB/s, 1 Gbps NIC.
    pub fn paper_small() -> Self {
        use crate::units::{gbps, GB, MB};
        MachineSpec::new()
            .cores(4.0)
            .memory(16.0 * GB)
            .disks(2, 50.0 * MB)
            .nic(gbps(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GB, MB};

    #[test]
    fn builder_fills_all_dims() {
        let cap = MachineSpec::paper_large().capacity();
        assert_eq!(cap.get(Resource::Cpu), 16.0);
        assert_eq!(cap.get(Resource::Mem), 32.0 * GB);
        assert_eq!(cap.get(Resource::DiskRead), 200.0 * MB);
        assert_eq!(cap.get(Resource::DiskWrite), 200.0 * MB);
        assert_eq!(cap.get(Resource::NetIn), 125.0 * MB);
        assert_eq!(cap.get(Resource::NetOut), 125.0 * MB);
    }

    #[test]
    fn small_profile_is_smaller() {
        let big = MachineSpec::paper_large().capacity();
        let small = MachineSpec::paper_small().capacity();
        assert!(small.fits_within(&big));
        assert!(!big.fits_within(&small));
    }

    #[test]
    fn default_is_zero() {
        assert!(MachineSpec::new().capacity().is_zero());
    }

    #[test]
    fn serde_roundtrip() {
        let spec = MachineSpec::paper_large();
        let json = serde_json::to_string(&spec).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
