//! Fixed-size vector over the six resource dimensions, with the arithmetic
//! used by the packing heuristics.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

use crate::resource::{Resource, NUM_RESOURCES};

/// A point in the 6-dimensional resource space.
///
/// Used for machine capacities, machine availabilities, task peak demands
/// and task total work. Supports the vector algebra of the paper's
/// heuristics: the alignment score is a dot product of *normalized* vectors
/// (§3.2); SRTF scoring sums normalized demands (§3.3.1).
///
/// Values are plain `f64`s. Negative components are representable (they
/// arise transiently from subtraction) but most call sites clamp via
/// [`ResourceVec::clamp_non_negative`]; the simulator's invariant tests
/// check availability never goes negative under Tetris.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ResourceVec(pub [f64; NUM_RESOURCES]);

impl ResourceVec {
    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        ResourceVec([0.0; NUM_RESOURCES])
    }

    /// A vector with every component set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        ResourceVec([v; NUM_RESOURCES])
    }

    /// Builder: return a copy with `r` set to `v`.
    #[inline]
    #[must_use]
    pub fn with(mut self, r: Resource, v: f64) -> Self {
        self.0[r.index()] = v;
        self
    }

    /// Component for resource `r`.
    #[inline]
    pub fn get(&self, r: Resource) -> f64 {
        self.0[r.index()]
    }

    /// Set component for resource `r`.
    #[inline]
    pub fn set(&mut self, r: Resource, v: f64) {
        self.0[r.index()] = v;
    }

    /// Add `v` to component `r`.
    #[inline]
    pub fn add_to(&mut self, r: Resource, v: f64) {
        self.0[r.index()] += v;
    }

    /// Iterate `(resource, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Resource, f64)> + '_ {
        Resource::ALL.iter().map(move |&r| (r, self.0[r.index()]))
    }

    /// True if every component is (numerically) zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0.0)
    }

    /// True if any component is NaN.
    pub fn has_nan(&self) -> bool {
        self.0.iter().any(|v| v.is_nan())
    }

    /// Sum of all components. Meaningful for *normalized* vectors (the
    /// SRTF resource-consumption score of §3.3.1 sums normalized demands).
    #[inline]
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Largest component.
    #[inline]
    pub fn max_component(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(&self) -> f64 {
        self.0.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Dot product. The heart of Tetris's alignment score (§3.2):
    /// `alignment(task, machine) = demand̂ · avail̂` where both vectors are
    /// normalized by machine capacity.
    #[inline]
    pub fn dot(&self, other: &ResourceVec) -> f64 {
        let mut acc = 0.0;
        for i in 0..NUM_RESOURCES {
            acc += self.0[i] * other.0[i];
        }
        acc
    }

    /// Component-wise `self / capacity`, with `0/0 = 0` (a machine with no
    /// capacity on a dimension a task does not use should not poison the
    /// score with NaN).
    ///
    /// This is the normalization the paper applies before every score so
    /// that numerical ranges of different resources (16 cores vs 32 GB)
    /// cannot dominate each other (§3.2, "All the resources are weighed
    /// equally").
    #[must_use]
    pub fn normalized_by(&self, capacity: &ResourceVec) -> ResourceVec {
        let mut out = [0.0; NUM_RESOURCES];
        for i in 0..NUM_RESOURCES {
            out[i] = if capacity.0[i] > 0.0 {
                self.0[i] / capacity.0[i]
            } else if self.0[i] == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        ResourceVec(out)
    }

    /// Component-wise multiply (inverse of [`normalized_by`] for positive
    /// capacities).
    ///
    /// [`normalized_by`]: ResourceVec::normalized_by
    #[must_use]
    pub fn scaled_by(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = [0.0; NUM_RESOURCES];
        for i in 0..NUM_RESOURCES {
            out[i] = self.0[i] * other.0[i];
        }
        ResourceVec(out)
    }

    /// True iff `self ≤ other` component-wise (with a tiny tolerance for
    /// floating-point accumulation). The feasibility test: "only tasks whose
    /// peak demands are satisfiable are considered; so over-allocation is
    /// impossible" (§3.2).
    pub fn fits_within(&self, avail: &ResourceVec) -> bool {
        const EPS: f64 = 1e-9;
        for i in 0..NUM_RESOURCES {
            // Tolerance scales with magnitude so byte-ranged dims work too.
            let tol = EPS * avail.0[i].abs().max(1.0);
            if self.0[i] > avail.0[i] + tol {
                return false;
            }
        }
        true
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = [0.0; NUM_RESOURCES];
        for i in 0..NUM_RESOURCES {
            out[i] = self.0[i].max(other.0[i]);
        }
        ResourceVec(out)
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = [0.0; NUM_RESOURCES];
        for i in 0..NUM_RESOURCES {
            out[i] = self.0[i].min(other.0[i]);
        }
        ResourceVec(out)
    }

    /// Clamp all components to `>= 0`.
    #[must_use]
    pub fn clamp_non_negative(&self) -> ResourceVec {
        let mut out = self.0;
        for v in &mut out {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        ResourceVec(out)
    }

    /// Euclidean (L2) norm.
    pub fn l2_norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Dominant share of this usage against `capacity`: the maximum over
    /// dimensions of `usage_r / capacity_r` (DRF's core quantity, and the
    /// paper's fairness footnote in §3.1). Restricting to a dimension subset
    /// is what shipped DRF implementations do (cpu+mem only).
    pub fn dominant_share(&self, capacity: &ResourceVec, dims: &[Resource]) -> f64 {
        let mut share: f64 = 0.0;
        for &r in dims {
            let cap = capacity.get(r);
            if cap > 0.0 {
                share = share.max(self.get(r) / cap);
            }
        }
        share
    }

    /// Project onto a dimension subset: components outside `dims` zeroed.
    #[must_use]
    pub fn project(&self, dims: &[Resource]) -> ResourceVec {
        let mut out = ResourceVec::zero();
        for &r in dims {
            out.set(r, self.get(r));
        }
        out
    }

    /// Render a compact human-readable summary, e.g.
    /// `"cpu=2.0 mem=4.0GB disk_r=50MB/s"` (zero components omitted).
    pub fn pretty(&self) -> String {
        use crate::units::human;
        let mut parts = Vec::new();
        for (r, v) in self.iter() {
            if v != 0.0 {
                parts.push(format!("{}={}", r.label(), human(r, v)));
            }
        }
        if parts.is_empty() {
            "∅".to_string()
        } else {
            parts.join(" ")
        }
    }
}

impl Index<Resource> for ResourceVec {
    type Output = f64;
    #[inline]
    fn index(&self, r: Resource) -> &f64 {
        &self.0[r.index()]
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self.0;
        for i in 0..NUM_RESOURCES {
            out[i] += rhs.0[i];
        }
        ResourceVec(out)
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        for i in 0..NUM_RESOURCES {
            self.0[i] += rhs.0[i];
        }
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    fn sub(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self.0;
        for i in 0..NUM_RESOURCES {
            out[i] -= rhs.0[i];
        }
        ResourceVec(out)
    }
}

impl SubAssign for ResourceVec {
    fn sub_assign(&mut self, rhs: ResourceVec) {
        for i in 0..NUM_RESOURCES {
            self.0[i] -= rhs.0[i];
        }
    }
}

impl Mul<f64> for ResourceVec {
    type Output = ResourceVec;
    fn mul(self, k: f64) -> ResourceVec {
        let mut out = self.0;
        for v in &mut out {
            *v *= k;
        }
        ResourceVec(out)
    }
}

impl Div<f64> for ResourceVec {
    type Output = ResourceVec;
    fn div(self, k: f64) -> ResourceVec {
        let mut out = self.0;
        for v in &mut out {
            *v /= k;
        }
        ResourceVec(out)
    }
}

impl Neg for ResourceVec {
    type Output = ResourceVec;
    fn neg(self) -> ResourceVec {
        let mut out = self.0;
        for v in &mut out {
            *v = -*v;
        }
        ResourceVec(out)
    }
}

impl Sum for ResourceVec {
    fn sum<I: Iterator<Item = ResourceVec>>(iter: I) -> ResourceVec {
        iter.fold(ResourceVec::zero(), |acc, v| acc + v)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::GB;

    fn v(cpu: f64, mem: f64) -> ResourceVec {
        ResourceVec::zero()
            .with(Resource::Cpu, cpu)
            .with(Resource::Mem, mem)
    }

    #[test]
    fn zero_is_zero() {
        assert!(ResourceVec::zero().is_zero());
        assert!(!v(1.0, 0.0).is_zero());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = v(2.0, 4.0 * GB);
        let b = v(1.0, 1.0 * GB);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn dot_product_matches_manual() {
        let a = v(2.0, 3.0);
        let b = v(4.0, 5.0);
        assert_eq!(a.dot(&b), 2.0 * 4.0 + 3.0 * 5.0);
    }

    #[test]
    fn dot_is_symmetric() {
        let a = v(2.0, 3.0).with(Resource::NetIn, 7.0);
        let b = v(4.0, 5.0).with(Resource::DiskRead, 2.0);
        assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn normalization_divides_by_capacity() {
        let cap = v(16.0, 32.0 * GB);
        let task = v(4.0, 8.0 * GB);
        let n = task.normalized_by(&cap);
        assert!((n.get(Resource::Cpu) - 0.25).abs() < 1e-12);
        assert!((n.get(Resource::Mem) - 0.25).abs() < 1e-12);
        // Dimensions with zero capacity and zero demand normalize to zero.
        assert_eq!(n.get(Resource::NetIn), 0.0);
    }

    #[test]
    fn normalization_of_unsatisfiable_dim_is_infinite() {
        let cap = v(16.0, 0.0);
        let task = v(1.0, 1.0);
        let n = task.normalized_by(&cap);
        assert!(n.get(Resource::Mem).is_infinite());
    }

    #[test]
    fn fits_within_is_componentwise() {
        let avail = v(4.0, 8.0 * GB);
        assert!(v(4.0, 8.0 * GB).fits_within(&avail));
        assert!(v(0.0, 0.0).fits_within(&avail));
        assert!(!v(4.1, 1.0).fits_within(&avail));
        assert!(!v(1.0, 9.0 * GB).fits_within(&avail));
    }

    #[test]
    fn fits_within_tolerates_fp_dust() {
        let avail = v(1.0, GB);
        let dust = v(1.0 + 1e-12, GB * (1.0 + 1e-12));
        assert!(dust.fits_within(&avail));
    }

    #[test]
    fn dominant_share_picks_max_ratio() {
        let cap = v(10.0, 100.0);
        let use_ = v(5.0, 20.0);
        let all = Resource::ALL;
        assert_eq!(use_.dominant_share(&cap, &all), 0.5);
        assert_eq!(use_.dominant_share(&cap, &[Resource::Mem]), 0.2);
    }

    #[test]
    fn project_zeroes_other_dims() {
        let a = v(2.0, 3.0).with(Resource::NetOut, 9.0);
        let p = a.project(&[Resource::Cpu]);
        assert_eq!(p.get(Resource::Cpu), 2.0);
        assert_eq!(p.get(Resource::Mem), 0.0);
        assert_eq!(p.get(Resource::NetOut), 0.0);
    }

    #[test]
    fn clamp_non_negative_works() {
        let a = v(-1.0, 2.0);
        let c = a.clamp_non_negative();
        assert_eq!(c.get(Resource::Cpu), 0.0);
        assert_eq!(c.get(Resource::Mem), 2.0);
    }

    #[test]
    fn scalar_ops() {
        let a = v(2.0, 4.0);
        assert_eq!((a * 2.0).get(Resource::Cpu), 4.0);
        assert_eq!((a / 2.0).get(Resource::Mem), 2.0);
        assert_eq!((-a).get(Resource::Cpu), -2.0);
    }

    #[test]
    fn sum_iterator() {
        let total: ResourceVec = vec![v(1.0, 2.0), v(3.0, 4.0)].into_iter().sum();
        assert_eq!(total, v(4.0, 6.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = v(1.0, 5.0);
        let b = v(3.0, 2.0);
        assert_eq!(a.max(&b), v(3.0, 5.0));
        assert_eq!(a.min(&b), v(1.0, 2.0));
    }

    #[test]
    fn pretty_omits_zeros() {
        let a = v(2.0, 0.0);
        let s = a.pretty();
        assert!(s.contains("cpu"));
        assert!(!s.contains("mem"));
        assert_eq!(ResourceVec::zero().pretty(), "∅");
    }

    #[test]
    fn serde_roundtrip() {
        let a = v(2.0, 4.0 * GB).with(Resource::NetIn, 125e6);
        let json = serde_json::to_string(&a).unwrap();
        let back: ResourceVec = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
