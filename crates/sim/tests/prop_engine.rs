//! Property-based invariants of the simulation engine under randomly
//! generated workloads: conservation (every task completes exactly once on
//! feasible workloads), determinism, non-negative availability under a
//! feasibility-respecting policy, and monotonic sample times.

use proptest::prelude::*;
use tetris_resources::{units::GB, units::MB, MachineSpec, Resource};
use tetris_sim::{ClusterConfig, GreedyFifo, SimConfig, Simulation};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::Workload;

/// Random small workload: 1–4 jobs, 1–2 stages, 1–6 tasks per stage, with
/// demands guaranteed to fit the small machine profile.
fn arb_workload() -> impl Strategy<Value = Workload> {
    let job = (
        1usize..=2,          // stages
        1usize..=6,          // tasks per stage
        0.25f64..=2.0,       // cores
        0.25f64..=4.0,       // mem GB
        2.0f64..=30.0,       // duration
        0.0f64..=200.0,      // output MB
        0.0f64..=60.0,       // arrival
        proptest::bool::ANY, // io heavy?
    );
    proptest::collection::vec(job, 1..=4).prop_map(|jobs| {
        let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
        for (ji, (stages, n, cores, mem_gb, dur, out_mb, arrival, io_heavy)) in
            jobs.into_iter().enumerate()
        {
            let j = b.begin_job(format!("j{ji}"), None, arrival);
            let inputs: Vec<_> = (0..n).map(|_| b.stored_input(64.0 * MB)).collect();
            b.add_stage(j, "map", vec![], n, |i| TaskParams {
                cores,
                mem: mem_gb * GB,
                duration: dur,
                cpu_frac: if io_heavy { 0.3 } else { 1.0 },
                io_burst: 1.0,
                inputs: vec![inputs[i]],
                output_bytes: out_mb * MB,
                remote_frac: 1.0,
            });
            if stages == 2 && out_mb > 0.0 {
                let total_out = out_mb * MB * n as f64;
                b.add_stage(j, "reduce", vec![0], 1, |_| TaskParams {
                    cores,
                    mem: mem_gb * GB,
                    duration: dur,
                    cpu_frac: 0.5,
                    io_burst: 1.0,
                    inputs: vec![tetris_workload::InputSpec {
                        source: tetris_workload::InputSource::Shuffle { stage: 0 },
                        bytes: total_out,
                    }],
                    output_bytes: MB,
                    remote_frac: 1.0,
                });
            }
        }
        b.finish()
    })
}

fn run(w: Workload, seed: u64) -> tetris_sim::SimOutcome {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    cfg.max_time = 100_000.0;
    Simulation::build(ClusterConfig::uniform(3, MachineSpec::paper_small()), w)
        .scheduler(GreedyFifo::new())
        .config(cfg)
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_tasks_complete_exactly_once(w in arb_workload(), seed in 0u64..100) {
        let total = w.num_tasks();
        let o = run(w, seed);
        prop_assert!(o.all_jobs_completed(), "workload did not complete");
        let finished = o.tasks.iter().filter(|t| t.finish.is_some()).count();
        prop_assert_eq!(finished, total);
        for t in &o.tasks {
            prop_assert_eq!(t.attempts, 1);
        }
    }

    #[test]
    fn deterministic_given_seed(w in arb_workload(), seed in 0u64..100) {
        let a = run(w.clone(), seed);
        let b = run(w, seed);
        prop_assert_eq!(a.makespan(), b.makespan());
        prop_assert_eq!(a.stats.events, b.stats.events);
        prop_assert_eq!(
            a.tasks.iter().map(|t| t.finish).collect::<Vec<_>>(),
            b.tasks.iter().map(|t| t.finish).collect::<Vec<_>>()
        );
    }

    #[test]
    fn feasible_policy_never_overallocates(w in arb_workload(), seed in 0u64..100) {
        // GreedyFifo respects 6-dim feasibility, so allocation ledgers must
        // never exceed capacity → sampled allocation ≤ capacity.
        let o = run(w, seed);
        let cap = MachineSpec::paper_small().capacity();
        for s in &o.samples {
            for ms in s.machines.as_ref().unwrap() {
                for r in Resource::ALL {
                    prop_assert!(
                        ms.allocated.get(r) <= cap.get(r) * (1.0 + 1e-9) + 1e-6,
                        "over-allocated {r}: {}",
                        ms.allocated.get(r)
                    );
                }
            }
        }
    }

    #[test]
    fn task_durations_at_least_ideal(w in arb_workload(), seed in 0u64..100) {
        // No task can beat its peak-allocation lower bound (modulo µs
        // rounding).
        let o = run(w, seed);
        for t in &o.tasks {
            if let (Some(d), Some(planned)) = (t.duration(), t.planned_duration) {
                prop_assert!(
                    d >= planned * (1.0 - 1e-6) - 1e-3,
                    "task {} ran in {d}, planned lower bound {planned}",
                    t.uid
                );
                prop_assert!(t.stretch().unwrap() >= 1.0 - 1e-6);
            }
        }
    }

    #[test]
    fn samples_monotonic_and_jcts_positive(w in arb_workload(), seed in 0u64..100) {
        let o = run(w, seed);
        for pair in o.samples.windows(2) {
            prop_assert!(pair[1].t > pair[0].t);
        }
        for j in &o.jobs {
            let jct = j.jct().unwrap();
            prop_assert!(jct > 0.0);
            prop_assert!(j.first_start.unwrap() >= j.arrival);
        }
    }
}
