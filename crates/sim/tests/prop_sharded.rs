//! Property-based invariants of the Omega-style sharded multi-scheduler
//! (DESIGN.md §14): the serialized commit loop never overcommits a
//! machine no matter how the optimistic shard passes collide, full
//! engine runs conserve tasks at every shard count under fault churn,
//! and `shards = 1` is a transparent delegate — byte-identical outcomes
//! to the bare inner scheduler.

use proptest::prelude::*;
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_resources::{units::GB, units::MB, MachineSpec};
use tetris_sim::probe::ColdPassProbe;
use tetris_sim::{ClusterConfig, FaultPlan, ShardedScheduler, SimConfig, SimOutcome, Simulation};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::Workload;

fn sharded(shards: usize, seed: u64) -> ShardedScheduler {
    ShardedScheduler::new(shards, seed, |_| {
        Box::new(TetrisScheduler::new(TetrisConfig::default()))
    })
}

/// Random small workload for full engine runs; demands fit the small
/// machine profile so every task is placeable somewhere.
fn arb_workload() -> impl Strategy<Value = Workload> {
    let job = (
        1usize..=4,    // tasks
        0.25f64..=2.0, // cores
        0.5f64..=3.0,  // mem GB
        2.0f64..=20.0, // duration
        0.0f64..=30.0, // arrival
    );
    proptest::collection::vec(job, 1..=5).prop_map(|jobs| {
        let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
        for (ji, (n, cores, mem_gb, dur, arrival)) in jobs.into_iter().enumerate() {
            let j = b.begin_job(format!("j{ji}"), None, arrival);
            let inputs: Vec<_> = (0..n).map(|_| b.stored_input(16.0 * MB)).collect();
            b.add_stage(j, "map", vec![], n, |i| TaskParams {
                cores,
                mem: mem_gb * GB,
                duration: dur,
                cpu_frac: 0.7,
                io_burst: 1.0,
                inputs: vec![inputs[i]],
                output_bytes: 20.0 * MB,
                remote_frac: 1.0,
            });
        }
        b.finish()
    })
}

/// Cycling crash/recover churn so conservation is tested under the
/// fault taxonomy, not just the happy path.
fn churn_plan() -> FaultPlan {
    FaultPlan {
        crash_frac: 0.5,
        crash_cycles: 2,
        downtime: 15.0,
        window: (0.0, 120.0),
        restart_backoff: 2.0,
        flake_lead: 5.0,
        ..FaultPlan::default()
    }
}

fn run(w: Workload, shards: usize, seed: u64, faults: bool) -> SimOutcome {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    cfg.max_time = 100_000.0;
    if faults {
        cfg.faults = churn_plan();
        cfg.validate().expect("churn plan must be valid");
    }
    let sim = Simulation::build(ClusterConfig::uniform(4, MachineSpec::paper_small()), w);
    let sim = if shards > 1 {
        sim.scheduler(sharded(shards, seed))
    } else {
        sim.scheduler(TetrisScheduler::new(TetrisConfig::default()))
    };
    sim.config(cfg).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Commit-loop safety: however the optimistic per-shard passes
    /// collide on the handful of free machines, the serialized commit
    /// stage never admits more work than a machine holds. The cold-pass
    /// scenario runs 1-core/4-GB tasks on empty 4-core/16-GB
    /// `paper_small` machines, so a fifth task on any machine IS an
    /// overcommit; each task may be committed at most once and only
    /// onto one of the scenario's free machines.
    #[test]
    fn commit_loop_never_overcommits(
        n_machines in 16usize..=80,
        pending in 8usize..=160,
        tasks_per_job in 1usize..=4,
        shards in 1usize..=5,
        seed in 0u64..100,
    ) {
        const SLOTS_PER_MACHINE: usize = 4; // paper_small: 4 cores / 1-core tasks
        let probe = ColdPassProbe::with_tasks_per_job(n_machines, pending, tasks_per_job);
        let mut sched = sharded(shards, seed);
        let asg = probe.cold_assignments_indexed(&mut sched);
        let free: std::collections::HashSet<_> = probe.free().iter().copied().collect();
        let mut per_machine = std::collections::HashMap::new();
        let mut seen_tasks = std::collections::HashSet::new();
        for a in &asg {
            prop_assert!(
                free.contains(&a.machine),
                "task {:?} committed to busy machine {:?}",
                a.task,
                a.machine
            );
            prop_assert!(
                seen_tasks.insert(a.task),
                "task {:?} committed twice in one heartbeat",
                a.task
            );
            *per_machine.entry(a.machine).or_insert(0usize) += 1;
        }
        for (m, count) in per_machine {
            prop_assert!(
                count <= SLOTS_PER_MACHINE,
                "machine {m:?} overcommitted: {count} tasks on {SLOTS_PER_MACHINE} slots"
            );
        }
    }

    /// Conservation is shard-count-invariant: at shards ∈ {1, 2, 3} the
    /// engine run terminates under fault churn with every task in a
    /// terminal state (completed or abandoned) and the counters agreeing
    /// with the per-task records. Placements may differ across shard
    /// counts; conservation must not.
    #[test]
    fn terminal_conservation_at_every_shard_count(
        w in arb_workload(),
        seed in 0u64..50,
    ) {
        let total = w.num_tasks();
        for shards in [1usize, 2, 3] {
            let o = run(w.clone(), shards, seed, true);
            prop_assert!(o.completed, "shards={shards}: run must settle every job");
            let completed =
                o.tasks.iter().filter(|t| t.finish.is_some() && !t.abandoned).count();
            let abandoned = o.tasks.iter().filter(|t| t.abandoned).count();
            prop_assert_eq!(
                completed + abandoned,
                total,
                "shards={}: every task completes or is abandoned",
                shards
            );
            prop_assert_eq!(abandoned as u64, o.stats.tasks_abandoned);
        }
    }

    /// Transparent delegate: a `ShardedScheduler` with one shard drives
    /// the engine to the byte-identical outcome of the bare inner
    /// scheduler — same per-task machines, start/finish times, attempt
    /// counts, and makespan.
    #[test]
    fn one_shard_matches_unsharded_engine(
        w in arb_workload(),
        seed in 0u64..50,
    ) {
        let mut cfg = SimConfig::default();
        cfg.seed = seed;
        cfg.max_time = 100_000.0;
        let one = Simulation::build(
            ClusterConfig::uniform(4, MachineSpec::paper_small()),
            w.clone(),
        )
        .scheduler(sharded(1, seed))
        .config(cfg.clone())
        .run();
        let bare = Simulation::build(
            ClusterConfig::uniform(4, MachineSpec::paper_small()),
            w,
        )
        .scheduler(TetrisScheduler::new(TetrisConfig::default()))
        .config(cfg)
        .run();
        prop_assert_eq!(one.completed, bare.completed);
        prop_assert_eq!(one.final_time, bare.final_time);
        prop_assert_eq!(one.tasks.len(), bare.tasks.len());
        for (a, b) in one.tasks.iter().zip(bare.tasks.iter()) {
            prop_assert_eq!(a.uid, b.uid);
            prop_assert_eq!(a.machine, b.machine, "task {:?} machine diverged", a.uid);
            prop_assert_eq!(a.start, b.start, "task {:?} start diverged", a.uid);
            prop_assert_eq!(a.finish, b.finish, "task {:?} finish diverged", a.uid);
            prop_assert_eq!(a.attempts, b.attempts);
        }
    }
}

/// Regression for the retry-accounting audit (commit idempotence): under
/// forced intra-heartbeat contention — 16 commit slots, many more pending
/// tasks, four shards racing — a task is committed at most once however
/// many shards or retry rounds re-propose it. The committed-task guard
/// skips re-proposals without charging the overlay a second time and
/// without counting them as conflicts, so `stats.committed` equals the
/// accepted assignment count exactly, and the pass still fills every free
/// slot (a double charge would leave phantom demand and strand slots).
#[test]
fn reproposals_commit_once_without_double_charging() {
    const SLOTS: usize = 4 * 4; // 4 free paper_small machines × 4 slots
    let probe = ColdPassProbe::with_tasks_per_job(32, 64, 2);
    let mut sched = sharded(4, 11);
    let asg = probe.cold_assignments_indexed(&mut sched);
    let mut seen = std::collections::HashSet::new();
    for a in &asg {
        assert!(seen.insert(a.task), "task {:?} committed twice", a.task);
    }
    let stats = sched.stats();
    assert_eq!(
        stats.committed,
        asg.len() as u64,
        "committed tally disagrees with the accepted assignments"
    );
    assert_eq!(asg.len(), SLOTS, "free slots left stranded");
}
