//! Crash-recovery invariants (DESIGN.md §15): a run recovered from its
//! write-ahead journal is **byte-identical** to the uninterrupted run —
//! under random crash heartbeats, random checkpoint cadences, mid-commit
//! sharded crashes, and journals truncated at arbitrary byte offsets or
//! bit-flipped anywhere. Damage beyond repair surfaces as a typed
//! [`JournalError`]/[`RecoveryError`], never a panic and never a silently
//! divergent outcome.

use proptest::prelude::*;
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_resources::{units::GB, units::MB, MachineSpec};
use tetris_sim::{
    ClusterConfig, GreedyFifo, Journal, RecoveryError, RunResult, SchedulerCrash, ShardedScheduler,
    SimConfig, SimOutcome, Simulation,
};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::Workload;

const N_MACHINES: usize = 4;

/// A fixed two-wave workload with enough heartbeats to crash inside.
fn fixed_workload() -> Workload {
    let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
    for ji in 0..3 {
        let j = b.begin_job(format!("j{ji}"), None, ji as f64 * 8.0);
        let inputs: Vec<_> = (0..4).map(|_| b.stored_input(32.0 * MB)).collect();
        b.add_stage(j, "map", vec![], 4, |i| TaskParams {
            cores: 1.0,
            mem: 2.0 * GB,
            duration: 10.0,
            cpu_frac: 0.6,
            io_burst: 1.0,
            inputs: vec![inputs[i]],
            output_bytes: 40.0 * MB,
            remote_frac: 1.0,
        });
    }
    b.finish()
}

/// Random small workload whose demands fit the small machine profile.
fn arb_workload() -> impl Strategy<Value = Workload> {
    let job = (
        1usize..=4,    // tasks
        0.25f64..=2.0, // cores
        0.5f64..=3.0,  // mem GB
        2.0f64..=20.0, // duration
        0.0f64..=30.0, // arrival
    );
    proptest::collection::vec(job, 1..=4).prop_map(|jobs| {
        let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
        for (ji, (n, cores, mem_gb, dur, arrival)) in jobs.into_iter().enumerate() {
            let j = b.begin_job(format!("j{ji}"), None, arrival);
            let inputs: Vec<_> = (0..n).map(|_| b.stored_input(16.0 * MB)).collect();
            b.add_stage(j, "map", vec![], n, |i| TaskParams {
                cores,
                mem: mem_gb * GB,
                duration: dur,
                cpu_frac: 0.6,
                io_burst: 1.0,
                inputs: vec![inputs[i]],
                output_bytes: 10.0 * MB,
                remote_frac: 1.0,
            });
        }
        b.finish()
    })
}

fn cfg(seed: u64, checkpoint_every: u64, crash: Option<SchedulerCrash>) -> SimConfig {
    let mut c = SimConfig::default();
    c.seed = seed;
    c.checkpoint_every = checkpoint_every;
    c.faults.sched_crash = crash;
    c.validate().expect("valid config");
    c
}

fn cluster() -> ClusterConfig {
    ClusterConfig::uniform(N_MACHINES, MachineSpec::paper_small())
}

fn greedy_sim(w: Workload, c: SimConfig) -> Simulation<'static> {
    Simulation::build(cluster(), w)
        .scheduler(GreedyFifo::new())
        .config(c)
}

fn sharded_sim(w: Workload, c: SimConfig, shards: usize) -> Simulation<'static> {
    Simulation::build(cluster(), w)
        .scheduler(ShardedScheduler::new(shards, c.seed, |_| {
            Box::new(TetrisScheduler::new(TetrisConfig::default()))
        }))
        .config(c)
}

/// The byte-identity oracle: outcomes compared on their full wire form.
fn wire(o: &SimOutcome) -> String {
    serde_json::to_string(o).expect("outcome serializes")
}

#[test]
fn recovered_run_is_byte_identical_to_uninterrupted() {
    let golden = greedy_sim(fixed_workload(), cfg(7, 2, None)).run();

    let crash = SchedulerCrash {
        at_heartbeat: 5,
        mid_commit: false,
    };
    let mut journal = Journal::new();
    let res = greedy_sim(fixed_workload(), cfg(7, 2, Some(crash))).run_result(Some(&mut journal));
    assert!(matches!(res, RunResult::Crashed { heartbeat: 5 }));
    journal.verify().expect("crashed journal verifies clean");

    let rec = greedy_sim(fixed_workload(), cfg(7, 2, None))
        .recover(&journal)
        .expect("recovery succeeds");
    assert_eq!(wire(&rec.outcome), wire(&golden));
    // Replay never exceeds the checkpoint cadence on an untruncated
    // journal — the headline bound of the `recovery` experiment.
    assert!(rec.stats.replayed_batches <= 2);
    assert_eq!(rec.stats.checkpoint_heartbeat, 4);
}

#[test]
fn mid_commit_sharded_crash_recovers_exactly() {
    let golden = sharded_sim(fixed_workload(), cfg(11, 3, None), 2).run();

    let crash = SchedulerCrash {
        at_heartbeat: 4,
        mid_commit: true,
    };
    let mut journal = Journal::new();
    let res =
        sharded_sim(fixed_workload(), cfg(11, 3, Some(crash)), 2).run_result(Some(&mut journal));
    assert!(matches!(res, RunResult::Crashed { heartbeat: 4 }));
    // The torn batch (some shard plans journaled, no commit) still
    // verifies clean — it is the documented mid-commit crash artifact.
    journal.verify().expect("torn trailing batch is legal");

    let rec = sharded_sim(fixed_workload(), cfg(11, 3, None), 2)
        .recover(&journal)
        .expect("recovery succeeds");
    assert_eq!(wire(&rec.outcome), wire(&golden));
    // The torn batch was discarded, not replayed: at minimum its
    // BatchStart record is dropped.
    assert!(rec.stats.discarded_records >= 1);
}

#[test]
fn journal_of_completed_run_recovers_too() {
    let mut journal = Journal::new();
    let golden = greedy_sim(fixed_workload(), cfg(3, 4, None))
        .run_result(Some(&mut journal))
        .completed()
        .expect("no crash configured");
    let stats = journal.verify().expect("complete journal verifies");
    assert!(stats.checkpoints >= 1);

    let rec = greedy_sim(fixed_workload(), cfg(3, 4, None))
        .recover(&journal)
        .expect("recovery succeeds");
    assert_eq!(wire(&rec.outcome), wire(&golden));
}

#[test]
fn recovery_refuses_wrong_builder() {
    let mut journal = Journal::new();
    let _ = greedy_sim(fixed_workload(), cfg(3, 4, None)).run_result(Some(&mut journal));
    // Different seed → different fingerprint → typed refusal.
    let err = greedy_sim(fixed_workload(), cfg(4, 4, None))
        .recover(&journal)
        .expect_err("fingerprint must not match");
    assert!(matches!(
        err,
        RecoveryError::Journal(tetris_sim::JournalError::FingerprintMismatch { .. })
    ));
}

// --- corrupt-journal corpus -------------------------------------------------

fn crashed_journal(seed: u64) -> Journal {
    let crash = SchedulerCrash {
        at_heartbeat: 6,
        mid_commit: false,
    };
    let mut journal = Journal::new();
    let res =
        greedy_sim(fixed_workload(), cfg(seed, 2, Some(crash))).run_result(Some(&mut journal));
    assert!(matches!(res, RunResult::Crashed { .. }));
    journal
}

#[test]
fn empty_journal_is_a_typed_error() {
    let err = greedy_sim(fixed_workload(), cfg(7, 2, None))
        .recover(&Journal::new())
        .expect_err("empty journal cannot recover");
    assert!(matches!(
        err,
        RecoveryError::Journal(tetris_sim::JournalError::Empty)
    ));
}

#[test]
fn bit_flipped_crc_reports_the_failing_offset() {
    let journal = crashed_journal(7);
    let mut bytes = journal.bytes().to_vec();
    // Flip one payload bit of the second frame (the genesis checkpoint):
    // its CRC no longer matches, and strict verification names its offset.
    let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let second = 8 + first_len;
    bytes[second + 8] ^= 0x10;
    let err = Journal::from_bytes(bytes)
        .verify()
        .expect_err("flipped bit must fail CRC");
    match err {
        tetris_sim::JournalError::BadCrc { offset } => assert_eq!(offset, second as u64),
        other => panic!("expected BadCrc, got {other:?}"),
    }
}

#[test]
fn duplicated_record_is_a_typed_structural_error() {
    let journal = crashed_journal(7);
    let bytes = journal.bytes().to_vec();
    // Duplicate the header frame at the end: strict verify rejects the
    // second header at its exact offset.
    let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let mut dup = bytes.clone();
    dup.extend_from_slice(&bytes[0..8 + first_len]);
    let err = Journal::from_bytes(dup)
        .verify()
        .expect_err("duplicate header must be rejected");
    match err {
        tetris_sim::JournalError::DuplicateHeader { offset } => {
            assert_eq!(offset, bytes.len() as u64)
        }
        other => panic!("expected DuplicateHeader, got {other:?}"),
    }
}

// --- property tests ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: crash anywhere, at any checkpoint cadence,
    /// mid-commit or between batches, sharded or not — recovery
    /// reconstructs the uninterrupted outcome byte for byte, and replay
    /// stays within one checkpoint interval.
    #[test]
    fn random_crash_recovery_is_byte_identical(
        w in arb_workload(),
        seed in 0u64..20,
        at_heartbeat in 1u64..12,
        checkpoint_every in 1u64..6,
        mid_commit in proptest::bool::ANY,
        shards in 1usize..3,
    ) {
        let golden = sharded_sim(w.clone(), cfg(seed, checkpoint_every, None), shards).run();

        let crash = SchedulerCrash { at_heartbeat, mid_commit };
        let mut journal = Journal::new();
        let res = sharded_sim(w.clone(), cfg(seed, checkpoint_every, Some(crash)), shards)
            .run_result(Some(&mut journal));
        match res {
            RunResult::Crashed { heartbeat } => {
                prop_assert_eq!(heartbeat, at_heartbeat);
                journal.verify().expect("crashed journal verifies clean");
                let rec = sharded_sim(w, cfg(seed, checkpoint_every, None), shards)
                    .recover(&journal)
                    .expect("recovery succeeds");
                prop_assert_eq!(wire(&rec.outcome), wire(&golden));
                prop_assert!(rec.stats.replayed_batches <= checkpoint_every);
            }
            RunResult::Completed(o) => {
                // The run ended before the crash heartbeat: the journaled
                // run must already match the golden run.
                prop_assert_eq!(wire(&o), wire(&golden));
            }
        }
    }

    /// Truncating the journal at *any* byte offset never panics: recovery
    /// either reconstructs the exact uninterrupted outcome from the
    /// surviving prefix, or fails with a typed error. No third outcome.
    #[test]
    fn truncated_journal_recovers_exactly_or_fails_typed(
        seed in 0u64..6,
        frac in 0.0f64..1.0,
    ) {
        let golden = greedy_sim(fixed_workload(), cfg(seed, 2, None)).run();
        let journal = crashed_journal(seed);
        let cut = (journal.bytes().len() as f64 * frac) as usize;
        let truncated = Journal::from_bytes(journal.bytes()[..cut].to_vec());
        match greedy_sim(fixed_workload(), cfg(seed, 2, None)).recover(&truncated) {
            Ok(rec) => prop_assert_eq!(wire(&rec.outcome), wire(&golden)),
            Err(RecoveryError::Journal(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    /// Flipping any single bit never panics: the CRC framing catches the
    /// damage, the lenient scan discards from the damaged frame on, and
    /// recovery from the surviving prefix is still exact — or the journal
    /// is unusable and says so with a typed error.
    #[test]
    fn bit_flips_never_panic_and_never_diverge(
        seed in 0u64..6,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let golden = greedy_sim(fixed_workload(), cfg(seed, 2, None)).run();
        let journal = crashed_journal(seed);
        let mut bytes = journal.bytes().to_vec();
        let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[idx] ^= 1 << bit;
        let damaged = Journal::from_bytes(bytes);
        match greedy_sim(fixed_workload(), cfg(seed, 2, None)).recover(&damaged) {
            Ok(rec) => prop_assert_eq!(wire(&rec.outcome), wire(&golden)),
            Err(RecoveryError::Journal(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
