//! Property-based invariants of the fault-injection subsystem: every task
//! reaches a terminal state under arbitrary churn plans, down machines
//! host no work (usage drains to zero, nothing is placed on them), and
//! the obs trace covers every fault transition the engine performed.

use proptest::prelude::*;
use tetris_obs::{Event, Obs, VecRecorder};
use tetris_resources::{units::GB, units::MB, MachineSpec};
use tetris_sim::{ClusterConfig, FaultPlan, GreedyFifo, SimConfig, SimOutcome, Simulation};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::Workload;

const N_MACHINES: usize = 4;

/// Random small workload whose demands fit the small machine profile.
fn arb_workload() -> impl Strategy<Value = Workload> {
    let job = (
        1usize..=5,     // tasks
        0.25f64..=2.0,  // cores
        0.25f64..=3.0,  // mem GB
        2.0f64..=25.0,  // duration
        0.0f64..=40.0,  // arrival
        0.0f64..=150.0, // output MB
    );
    proptest::collection::vec(job, 1..=4).prop_map(|jobs| {
        let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
        for (ji, (n, cores, mem_gb, dur, arrival, out_mb)) in jobs.into_iter().enumerate() {
            let j = b.begin_job(format!("j{ji}"), None, arrival);
            let inputs: Vec<_> = (0..n).map(|_| b.stored_input(32.0 * MB)).collect();
            b.add_stage(j, "map", vec![], n, |i| TaskParams {
                cores,
                mem: mem_gb * GB,
                duration: dur,
                cpu_frac: 0.6,
                io_burst: 1.0,
                inputs: vec![inputs[i]],
                output_bytes: out_mb * MB,
                remote_frac: 1.0,
            });
        }
        b.finish()
    })
}

/// Random fault plan: crash/recover cycling with optional flake lead,
/// stragglers, and tracker misbehavior — the full taxonomy.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (
            0.05f64..=1.0,   // crash_frac
            1u32..=3,        // crash_cycles
            5.0f64..=60.0,   // downtime
            50.0f64..=300.0, // window end
            0.0f64..=10.0,   // restart_backoff
            0.0f64..=30.0,   // flake_lead
        ),
        (
            0.0f64..=1.0, // slowdown_frac
            0.2f64..=1.0, // slowdown_factor
            0.0f64..=0.5, // stale_frac
            0.0f64..=0.5, // misreport_frac
            0.5f64..=1.6, // misreport_factor
        ),
    )
        .prop_map(
            |((cf, cc, dt, wend, backoff, flake), (sf, sfac, stale, mis, misf))| FaultPlan {
                crash_frac: cf,
                crash_cycles: cc,
                downtime: dt,
                window: (0.0, wend),
                restart_backoff: backoff,
                flake_lead: flake,
                slowdown_frac: sf,
                slowdown_factor: sfac,
                slowdown_duration: 30.0,
                stale_frac: stale,
                misreport_frac: mis,
                misreport_factor: misf,
                ..FaultPlan::default()
            },
        )
}

fn run_with_faults(w: Workload, plan: FaultPlan, seed: u64, obs: &mut Obs) -> SimOutcome {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    cfg.max_time = 100_000.0;
    cfg.faults = plan;
    cfg.validate().expect("generated plan must be valid");
    Simulation::build(
        ClusterConfig::uniform(N_MACHINES, MachineSpec::paper_small()),
        w,
    )
    .scheduler(GreedyFifo::new())
    .config(cfg)
    .observe(obs)
    .run()
}

/// Per-machine down intervals reconstructed from the trace.
fn down_intervals(events: &[(f64, Event)]) -> Vec<Vec<(f64, f64)>> {
    let mut down_at = vec![None; N_MACHINES];
    let mut out = vec![Vec::new(); N_MACHINES];
    for &(t, ref e) in events {
        match *e {
            Event::MachineDown { machine, .. } => down_at[machine] = Some(t),
            Event::MachineUp { machine } => {
                let start = down_at[machine].take().expect("up without down");
                out[machine].push((start, t));
            }
            _ => {}
        }
    }
    for (m, start) in down_at.into_iter().enumerate() {
        if let Some(s) = start {
            out[m].push((s, f64::INFINITY));
        }
    }
    out
}

fn is_down_at(intervals: &[(f64, f64)], t: f64) -> bool {
    intervals.iter().any(|&(a, b)| t > a && t < b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation under churn: every task reaches a terminal state
    /// (completed or abandoned), jobs all finish, and the engine's
    /// counters agree with the per-task records.
    #[test]
    fn every_task_terminal_under_random_churn(
        w in arb_workload(),
        plan in arb_plan(),
        seed in 0u64..50,
    ) {
        let total = w.num_tasks();
        let mut obs = Obs::noop();
        let o = run_with_faults(w, plan, seed, &mut obs);
        prop_assert!(o.completed, "run must terminate with every job settled");
        let completed = o.tasks.iter().filter(|t| t.finish.is_some() && !t.abandoned).count();
        let abandoned = o.tasks.iter().filter(|t| t.abandoned).count();
        prop_assert_eq!(
            completed + abandoned,
            total,
            "every task completes or is abandoned"
        );
        prop_assert_eq!(abandoned as u64, o.stats.tasks_abandoned);
    }

    /// Down machines host nothing: no task is placed on a machine while
    /// it is down, and its sampled usage drains to zero for the whole
    /// downtime (resident flows were killed at the crash).
    #[test]
    fn down_machines_host_nothing(
        w in arb_workload(),
        plan in arb_plan(),
        seed in 0u64..50,
    ) {
        let rec = VecRecorder::shared();
        let mut obs = Obs::with_recorder(Box::new(rec.clone()));
        let o = run_with_faults(w, plan, seed, &mut obs);
        let events = rec.take();
        let down = down_intervals(&events);
        for (t, e) in &events {
            if let Event::TaskPlaced { machine, task, .. } = e {
                prop_assert!(
                    !is_down_at(&down[*machine], *t),
                    "task {task} placed on machine {machine} at {t} while down"
                );
            }
        }
        for s in &o.samples {
            let Some(machines) = &s.machines else { continue };
            for (m, ms) in machines.iter().enumerate() {
                if is_down_at(&down[m], s.t) {
                    // Tolerate ledger dust: releasing killed attempts is
                    // float subtraction, so "zero" is ~1e-6 of a byte.
                    for (r, v) in ms.usage.iter() {
                        prop_assert!(
                            v.abs() < 1e-3,
                            "machine {m} {r:?} usage {v} at {} while down",
                            s.t
                        );
                    }
                    prop_assert_eq!(ms.running, 0);
                }
            }
        }
    }

    /// Trace coverage: every fault transition the engine performed is in
    /// the trace, and counts match the engine's stats — crashes pair with
    /// recoveries, suspect transitions pair with clears (a machine can
    /// end the run suspect, so clears may lag by at most the fleet size).
    #[test]
    fn trace_covers_every_fault_transition(
        w in arb_workload(),
        plan in arb_plan(),
        seed in 0u64..50,
    ) {
        let rec = VecRecorder::shared();
        let mut obs = Obs::with_recorder(Box::new(rec.clone()));
        let o = run_with_faults(w, plan, seed, &mut obs);
        let events = rec.take();
        let count = |f: &dyn Fn(&Event) -> bool| events.iter().filter(|(_, e)| f(e)).count() as u64;
        let downs = count(&|e| matches!(e, Event::MachineDown { .. }));
        let ups = count(&|e| matches!(e, Event::MachineUp { .. }));
        prop_assert_eq!(downs, o.stats.machine_crashes, "every crash is traced");
        // The run ends when the workload settles, which can leave machines
        // mid-downtime — so recoveries trail crashes by at most the fleet.
        prop_assert!(
            ups <= downs && downs - ups <= N_MACHINES as u64,
            "recoveries pair with crashes ({downs} downs vs {ups} ups)"
        );
        let suspects = count(&|e| matches!(e, Event::MachineSuspected { .. }));
        let cleared = count(&|e| matches!(e, Event::MachineCleared { .. }));
        prop_assert!(
            suspects >= cleared && suspects <= cleared + N_MACHINES as u64,
            "suspect transitions pair with clears ({suspects} vs {cleared})"
        );
        let killed = events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::MachineDown { killed, .. } => Some(*killed as u64),
                _ => None,
            })
            .sum::<u64>();
        prop_assert_eq!(killed, o.stats.crash_killed_attempts);
    }
}

/// Terminal-failure regression: a cluster where every machine crash-cycles
/// and the attempt budget is tight must abandon at least one task and
/// still terminate with every job settled.
#[test]
fn abandonment_is_terminal_and_counted() {
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("doomed", None, 0.0);
    b.add_stage(j, "long", vec![], 6, |_| TaskParams {
        cores: 1.0,
        mem: GB,
        duration: 600.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 0.0,
    });
    let w = b.finish();
    let mut cfg = SimConfig::default();
    cfg.seed = 7;
    cfg.max_time = 100_000.0;
    cfg.max_task_attempts = 1;
    cfg.faults = FaultPlan {
        crash_frac: 1.0,
        crash_cycles: 3,
        downtime: 30.0,
        window: (10.0, 400.0),
        restart_backoff: 1.0,
        ..FaultPlan::default()
    };
    let o = Simulation::build(ClusterConfig::uniform(2, MachineSpec::paper_small()), w)
        .scheduler(GreedyFifo::new())
        .config(cfg)
        .run();
    assert!(o.completed, "abandonment must not wedge the run");
    assert!(
        o.stats.tasks_abandoned >= 1,
        "tight attempt budget under total churn must abandon something"
    );
    for t in &o.tasks {
        assert!(t.finish.is_some(), "task {:?} has no terminal state", t.uid);
    }
}
