//! Golden snapshot of `tetris-sim`'s scheduler-facing API surface.
//!
//! The `view` module *is* the contract between the engine and every
//! policy — the `SchedulerPolicy` trait, the `SchedulerEvent` taxonomy,
//! `ClusterView`'s read surface, `Assignment`. Changing any of it must be
//! an explicit, reviewed diff of `tests/snapshots/view_api.txt`, not a
//! silent break discovered by downstream policies.
//!
//! On mismatch the test prints the divergence; after an *intentional*
//! API change, regenerate with:
//!
//! ```sh
//! TETRIS_UPDATE_API=1 cargo test -p tetris-sim --test api_snapshot
//! ```

/// Extract the public declarations from a Rust source file: every
/// `pub ...` line (trait/struct/enum/fn/use/const headers and public
/// fields), multi-line `pub fn`/`pub trait` signatures joined to their
/// opening brace, and the full bodies of public enums and traits
/// (variants and required/provided method signatures are API; provided
/// method *bodies* are dropped by skipping nested blocks).
fn extract_api(src: &str) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut depth: usize = 0;
    let mut enum_at: Option<usize> = None;
    let mut trait_at: Option<usize> = None;
    let mut sig_open = false;
    for line in src.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with("//") || t.starts_with("#[") {
            continue;
        }
        let in_enum = enum_at.is_some();
        // Inside a trait, keep only item-level lines (depth == trait
        // body depth) so default-method bodies don't leak into the API.
        let in_trait = trait_at.is_some_and(|d| depth == d + 1);
        if sig_open {
            out.push(format!("    … {t}"));
            if t.ends_with('{') || t.ends_with(';') {
                sig_open = false;
            }
        } else if in_enum || in_trait {
            let closes_self = t.starts_with('}')
                && (enum_at == Some(depth.saturating_sub(1))
                    || trait_at == Some(depth.saturating_sub(1)));
            if !t.starts_with('}') || closes_self {
                out.push(t.to_string());
            }
            if in_trait && t.starts_with("fn ") && !(t.ends_with('{') || t.ends_with(';')) {
                sig_open = true;
            }
        } else if t.starts_with("pub ") || t.starts_with("pub(") {
            out.push(t.to_string());
            let is_item = ["pub fn ", "pub trait ", "pub struct ", "pub enum "]
                .iter()
                .any(|p| t.starts_with(p))
                || t.starts_with("pub(crate) fn ");
            if is_item && !(t.ends_with('{') || t.ends_with(';')) {
                sig_open = true;
            }
            if t.starts_with("pub enum ") && t.ends_with('{') {
                enum_at = Some(depth);
            }
            if t.starts_with("pub trait ") && t.ends_with('{') {
                trait_at = Some(depth);
            }
        }
        for c in t.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if let Some(d) = enum_at {
            if depth == d {
                enum_at = None;
            }
        }
        if let Some(d) = trait_at {
            if depth == d {
                trait_at = None;
            }
        }
    }
    out.join("\n") + "\n"
}

#[test]
fn view_module_public_api_matches_snapshot() {
    let current = extract_api(include_str!("../src/view.rs"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/snapshots/view_api.txt");
    if std::env::var_os("TETRIS_UPDATE_API").is_some() {
        std::fs::write(path, &current).expect("cannot write snapshot");
        return;
    }
    let golden = std::fs::read_to_string(path).expect(
        "missing tests/snapshots/view_api.txt — run \
         TETRIS_UPDATE_API=1 cargo test -p tetris-sim --test api_snapshot",
    );
    if current != golden {
        let cur: Vec<_> = current.lines().collect();
        let gold: Vec<_> = golden.lines().collect();
        let mut diff = String::new();
        for i in 0..cur.len().max(gold.len()) {
            let (c, g) = (cur.get(i), gold.get(i));
            if c != g {
                if let Some(g) = g {
                    diff.push_str(&format!("-{g}\n"));
                }
                if let Some(c) = c {
                    diff.push_str(&format!("+{c}\n"));
                }
            }
        }
        panic!(
            "tetris-sim view API changed (snapshot diff, -golden +current):\n{diff}\n\
             If intentional, review and regenerate:\n  \
             TETRIS_UPDATE_API=1 cargo test -p tetris-sim --test api_snapshot"
        );
    }
}
