//! End-to-end tests of the simulation engine with the reference policy.

use tetris_resources::{units::GB, units::MB, MachineSpec, Resource, ResourceVec};
use tetris_sim::{
    Assignment, ClusterConfig, ExternalLoad, GreedyFifo, MachineId, SchedulerPolicy, SimConfig,
    Simulation,
};
use tetris_workload::gen::{motivating_example, TaskParams, WorkloadBuilder};
use tetris_workload::{JobId, WorkloadSuiteConfig};

fn small_cluster(n: usize) -> ClusterConfig {
    ClusterConfig::uniform(n, MachineSpec::paper_small())
}

#[test]
fn single_task_runs_for_its_ideal_duration() {
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("j", None, 0.0);
    b.add_stage(j, "s", vec![], 1, |_| TaskParams {
        cores: 1.0,
        mem: GB,
        duration: 42.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let outcome = Simulation::build(small_cluster(1), b.finish())
        .scheduler(GreedyFifo::new())
        .run();
    assert!(outcome.all_jobs_completed());
    assert!((outcome.jct(JobId(0)).unwrap() - 42.0).abs() < 1e-3);
    assert_eq!(outcome.tasks[0].attempts, 1);
    assert!((outcome.tasks[0].stretch().unwrap() - 1.0).abs() < 1e-6);
}

#[test]
fn mapreduce_respects_barrier() {
    // One map (10s) then one reduce (10s): job takes ≥ 20s.
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("j", None, 0.0);
    let input = b.stored_input(10.0 * MB);
    b.add_stage(j, "map", vec![], 1, |_| TaskParams {
        cores: 1.0,
        mem: GB,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![input],
        output_bytes: 10.0 * MB,
        remote_frac: 1.0,
    });
    b.add_stage(j, "reduce", vec![0], 1, |_| TaskParams {
        cores: 1.0,
        mem: GB,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![tetris_workload::InputSpec {
            source: tetris_workload::InputSource::Shuffle { stage: 0 },
            bytes: 10.0 * MB,
        }],
        output_bytes: MB,
        remote_frac: 1.0,
    });
    let outcome = Simulation::build(small_cluster(2), b.finish())
        .scheduler(GreedyFifo::new())
        .run();
    assert!(outcome.all_jobs_completed());
    let jct = outcome.jct(JobId(0)).unwrap();
    assert!(jct >= 20.0 - 1e-3, "barrier violated: jct={jct}");
    // Reduce must start only after map finishes.
    assert!(outcome.tasks[1].start.unwrap() >= outcome.tasks[0].finish.unwrap() - 1e-6);
}

#[test]
fn suite_completes_and_is_deterministic() {
    let w = WorkloadSuiteConfig::small().generate(11);
    let run = |seed| {
        Simulation::build(small_cluster(8), w.clone())
            .scheduler(GreedyFifo::new())
            .seed(seed)
            .run()
    };
    let a = run(5);
    let b = run(5);
    let c = run(6);
    assert!(a.all_jobs_completed());
    // Bit-level determinism.
    assert_eq!(a.makespan(), b.makespan());
    assert_eq!(a.avg_jct(), b.avg_jct());
    assert_eq!(a.stats.events, b.stats.events);
    assert_eq!(
        a.tasks.iter().map(|t| t.finish).collect::<Vec<_>>(),
        b.tasks.iter().map(|t| t.finish).collect::<Vec<_>>()
    );
    // Different sim seed → different block placement → some task runs
    // differently.
    let finishes =
        |o: &tetris_sim::SimOutcome| o.tasks.iter().map(|t| t.finish).collect::<Vec<_>>();
    assert_ne!(
        finishes(&a),
        finishes(&c),
        "different seeds produced identical runs"
    );
}

#[test]
fn every_scheduled_task_completes_exactly_once() {
    let w = WorkloadSuiteConfig::small().generate(3);
    let total = w.num_tasks();
    let outcome = Simulation::build(small_cluster(6), w)
        .scheduler(GreedyFifo::new())
        .run();
    assert!(outcome.all_jobs_completed());
    let finished = outcome.tasks.iter().filter(|t| t.finish.is_some()).count();
    assert_eq!(finished, total);
    for t in &outcome.tasks {
        assert_eq!(t.attempts, 1);
        assert!(t.finish.unwrap() >= t.start.unwrap());
    }
}

#[test]
fn usage_samples_never_exceed_capacity_on_rate_dims() {
    let w = WorkloadSuiteConfig::small().generate(9);
    let cluster = small_cluster(4);
    let cap = cluster.capacity(MachineId(0));
    let outcome = Simulation::build(cluster, w)
        .scheduler(GreedyFifo::new())
        .run();
    for s in &outcome.samples {
        for ms in s.machines.as_ref().unwrap() {
            for r in Resource::ALL {
                if r == Resource::Mem {
                    continue;
                }
                assert!(
                    ms.usage.get(r) <= cap.get(r) * (1.0 + 1e-6),
                    "usage {} exceeds capacity on {r}",
                    ms.usage.get(r)
                );
            }
        }
    }
}

#[test]
fn contention_stretches_tasks() {
    // Policy that dumps 4 disk-hungry tasks on one machine: each demands
    // the full disk write bandwidth, so they take ~4× the ideal duration.
    struct DumpAll;
    impl SchedulerPolicy for DumpAll {
        fn name(&self) -> &str {
            "dump-all"
        }
        fn schedule(&mut self, view: &tetris_sim::ClusterView<'_>) -> Vec<Assignment> {
            let mut out = Vec::new();
            for j in view.active_jobs() {
                for t in view.job_pending(j) {
                    out.push(Assignment::new(t, MachineId(0)));
                }
            }
            out
        }
    }

    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("j", None, 0.0);
    b.add_stage(j, "s", vec![], 4, |_| TaskParams {
        cores: 0.5,
        mem: GB,
        duration: 10.0,
        cpu_frac: 0.1,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 1000.0 * MB, // 100 MB/s = the small profile's disk
        remote_frac: 1.0,
    });
    let outcome = Simulation::build(small_cluster(2), b.finish())
        .scheduler(DumpAll)
        .run();
    assert!(outcome.all_jobs_completed());
    // Four writers over-subscribe the 100 MB/s disk 4× (ρ = 4). With the
    // default interference model (α = 1, floor 0.25) the disk delivers
    // 100/4 = 25 MB/s, 6.25 MB/s per task → 1000 MB takes 160 s.
    let jct = outcome.jct(JobId(0)).unwrap();
    assert!((jct - 160.0).abs() < 1.0, "expected ~160s, got {jct}");
    let stretch = outcome.mean_task_stretch();
    assert!(stretch > 10.0, "stretch {stretch}");
}

#[test]
fn contention_without_interference_is_work_conserving() {
    // Same setup but with interference disabled: the disk still delivers
    // its full 100 MB/s, so 4000 MB finish in 40 s.
    struct DumpAll;
    impl SchedulerPolicy for DumpAll {
        fn name(&self) -> &str {
            "dump-all"
        }
        fn schedule(&mut self, view: &tetris_sim::ClusterView<'_>) -> Vec<Assignment> {
            let mut out = Vec::new();
            for j in view.active_jobs() {
                for t in view.job_pending(j) {
                    out.push(Assignment::new(t, MachineId(0)));
                }
            }
            out
        }
    }
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("j", None, 0.0);
    b.add_stage(j, "s", vec![], 4, |_| TaskParams {
        cores: 0.5,
        mem: GB,
        duration: 10.0,
        cpu_frac: 0.1,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 1000.0 * MB,
        remote_frac: 1.0,
    });
    let mut cfg = SimConfig::default();
    cfg.interference = tetris_sim::Interference::none();
    let outcome = Simulation::build(small_cluster(2), b.finish())
        .scheduler(DumpAll)
        .config(cfg)
        .run();
    let jct = outcome.jct(JobId(0)).unwrap();
    assert!((jct - 40.0).abs() < 0.5, "expected ~40s, got {jct}");
}

#[test]
fn external_load_contends_with_tasks() {
    // A disk-write task co-located with ingestion writing at full disk
    // bandwidth: the task runs at half speed while ingestion lasts.
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("j", None, 0.0);
    b.add_stage(j, "s", vec![], 1, |_| TaskParams {
        cores: 0.5,
        mem: GB,
        duration: 10.0,
        cpu_frac: 0.1,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 1000.0 * MB,
        remote_frac: 1.0,
    });
    let mut cfg = SimConfig::default();
    cfg.external_loads.push(ExternalLoad {
        machine: MachineId(0),
        start: 0.0,
        duration: 1000.0,
        load: ResourceVec::zero().with(Resource::DiskWrite, 100.0 * MB),
    });
    let outcome = Simulation::build(small_cluster(1), b.finish())
        .scheduler(GreedyFifo::new())
        .config(cfg)
        .run();
    assert!(outcome.all_jobs_completed());
    let jct = outcome.jct(JobId(0)).unwrap();
    // Demand 100 (task) + 100 (ingestion) over-subscribes the 100 MB/s
    // disk 2× → effective capacity 100/2 = 50, task share 25 MB/s → 40 s
    // instead of 10.
    assert!((jct - 40.0).abs() < 0.5, "expected ~40s, got {jct}");
}

#[test]
fn task_failures_rerun_and_still_complete() {
    let w = WorkloadSuiteConfig::small().generate(2);
    let mut cfg = SimConfig::default();
    cfg.task_failure_prob = 0.2;
    cfg.max_task_attempts = 5;
    cfg.seed = 3;
    let outcome = Simulation::build(small_cluster(8), w)
        .scheduler(GreedyFifo::new())
        .config(cfg)
        .run();
    assert!(outcome.all_jobs_completed());
    assert!(outcome.stats.task_failures > 0, "no failures triggered");
    assert!(outcome.tasks.iter().any(|t| t.attempts > 1));
}

#[test]
fn fig1_workload_runs_under_reference_policy() {
    let ex = motivating_example(10.0);
    // The Fig-1 cluster: 3 machines of 6 cores / 12 GB / 1 Gbps; disks
    // oversized so the example stays network-bound as in the paper.
    let spec = MachineSpec::new()
        .cores(6.0)
        .memory(12.0 * GB)
        .disks(8, 100.0 * MB)
        .nic(tetris_resources::units::gbps(1.0));
    let outcome = Simulation::build(ClusterConfig::uniform(3, spec), ex.workload)
        .scheduler(GreedyFifo::new())
        .run();
    assert!(outcome.all_jobs_completed());
    // Sanity: no job can finish faster than 2 phases × t.
    for j in &outcome.jobs {
        assert!(j.jct().unwrap() >= 20.0 - 1e-3);
    }
}

#[test]
fn unplaceable_task_times_out_gracefully() {
    // Task demands 64 GB on 16 GB machines; GreedyFifo never places it.
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("j", None, 0.0);
    b.add_stage(j, "s", vec![], 1, |_| TaskParams {
        cores: 1.0,
        mem: 64.0 * GB,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    let mut cfg = SimConfig::default();
    cfg.max_time = 1000.0;
    let outcome = Simulation::build(small_cluster(2), b.finish())
        .scheduler(GreedyFifo::new())
        .config(cfg)
        .run();
    assert!(!outcome.all_jobs_completed());
    assert!(outcome.jobs[0].finish.is_none());
}

#[test]
fn arrivals_are_respected() {
    let mut b = WorkloadBuilder::new();
    for (i, arr) in [0.0, 100.0].into_iter().enumerate() {
        let j = b.begin_job(format!("j{i}"), None, arr);
        b.add_stage(j, "s", vec![], 1, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
    }
    let outcome = Simulation::build(small_cluster(4), b.finish())
        .scheduler(GreedyFifo::new())
        .run();
    assert!(outcome.tasks[1].start.unwrap() >= 100.0);
    assert!((outcome.jct(JobId(1)).unwrap() - 10.0).abs() < 1e-3);
}

#[test]
fn diamond_dag_respects_multi_dependency_barrier() {
    // extract → {transform-a, transform-b} → join: the join stage must not
    // start until BOTH transforms completed.
    let w = tetris_workload::gen::diamond_dag(3, 10.0);
    let outcome = Simulation::build(small_cluster(4), w.clone())
        .scheduler(GreedyFifo::new())
        .seed(3)
        .run();
    assert!(outcome.all_jobs_completed());
    let stage_end = |si: usize| {
        w.jobs[0].stages[si]
            .tasks
            .iter()
            .map(|t| outcome.tasks[t.uid.index()].finish.unwrap())
            .fold(0.0f64, f64::max)
    };
    let stage_start = |si: usize| {
        w.jobs[0].stages[si]
            .tasks
            .iter()
            .map(|t| outcome.tasks[t.uid.index()].start.unwrap())
            .fold(f64::INFINITY, f64::min)
    };
    // Transforms start only after extract; join after both transforms.
    assert!(stage_start(1) >= stage_end(0) - 1e-6);
    assert!(stage_start(2) >= stage_end(0) - 1e-6);
    assert!(stage_start(3) >= stage_end(1).max(stage_end(2)) - 1e-6);
    // Four barrier-separated 10s waves ⇒ ≥ 40s... transforms run in
    // parallel, so three waves: extract, transforms, join ⇒ ≥ 30s.
    assert!(outcome.jct(JobId(0)).unwrap() >= 30.0 - 1e-3);
}

#[test]
fn evacuation_slows_remote_reads_from_the_evacuating_machine() {
    // Evacuation (§4.3) re-replicates a machine's data elsewhere: it
    // consumes DiskRead + NetOut on the source. A task on another machine
    // reading its input remotely from that source runs slower while the
    // evacuation lasts.
    let build = || {
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("reader", None, 0.0);
        let input = b.stored_input(500.0 * MB);
        b.add_stage(j, "read", vec![], 1, |_| TaskParams {
            cores: 0.5,
            mem: GB,
            duration: 10.0,
            cpu_frac: 0.05,
            io_burst: 1.0,
            inputs: vec![input],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        b.finish()
    };
    // Replication 1 and seed chosen so we can find the replica machine and
    // place the reader elsewhere via GreedyFifo-preferred... GreedyFifo
    // prefers fit, so pin the reader remotely with a custom policy.
    struct PlaceOn(MachineId);
    impl SchedulerPolicy for PlaceOn {
        fn name(&self) -> &str {
            "place-on"
        }
        fn schedule(&mut self, view: &tetris_sim::ClusterView<'_>) -> Vec<Assignment> {
            view.active_jobs()
                .flat_map(|j| view.job_pending(j))
                .map(|t| Assignment::new(t, self.0))
                .collect()
        }
    }

    let run = |evacuate: bool| {
        let mut cfg = SimConfig::default();
        cfg.seed = 5;
        cfg.replication = 1;
        // Find where the block landed by doing a dry run first: with
        // seed 5 / replication 1 the placement is deterministic, so run
        // once with the reader pinned to each machine and keep the remote
        // case (reader sees NetIn usage > 0).
        if evacuate {
            // Evacuation consumes most of every machine's DiskRead+NetOut
            // for the window (applied cluster-wide so it covers the source
            // wherever the block landed).
            for m in 0..2 {
                cfg.external_loads.push(ExternalLoad {
                    machine: MachineId(m),
                    start: 0.0,
                    duration: 60.0,
                    load: ResourceVec::zero()
                        .with(Resource::DiskRead, 80.0 * MB)
                        .with(Resource::NetOut, 100.0 * MB),
                });
            }
        }
        // Pin the reader to machine 1; with replication 1 the block is on
        // some machine — if it is machine 1 the read is local and the test
        // is vacuous, so assert remoteness below via task stretch > 1
        // under evacuation.
        Simulation::build(small_cluster(2), build())
            .scheduler(PlaceOn(MachineId(1)))
            .config(cfg)
            .run()
    };
    let quiet = run(false);
    let busy = run(true);
    assert!(quiet.all_jobs_completed() && busy.all_jobs_completed());
    let d_quiet = quiet.tasks[0].duration().unwrap();
    let d_busy = busy.tasks[0].duration().unwrap();
    assert!(
        d_busy > d_quiet * 1.3,
        "evacuation did not slow the remote read: {d_busy} vs {d_quiet}"
    );
}

#[test]
fn flow_throughput_matches_token_bucket_enforcement() {
    // §4.2: allocations are enforced by token buckets. The simulator's
    // flows are capped at their allocation, so a task's delivered
    // bytes/second must equal what an explicit token bucket at the same
    // rate would admit.
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("writer", None, 0.0);
    b.add_stage(j, "w", vec![], 1, |_| TaskParams {
        cores: 0.5,
        mem: GB,
        duration: 20.0,
        cpu_frac: 0.05,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 800.0 * MB, // 40 MB/s allocation
        remote_frac: 1.0,
    });
    let outcome = Simulation::build(small_cluster(1), b.finish())
        .scheduler(GreedyFifo::new())
        .run();
    let d = outcome.tasks[0].duration().unwrap();
    let simulated_rate = 800.0 * MB / d;
    let bucket_rate = tetris_sim::token_bucket::enforced_rate(40.0 * MB, 4.0 * MB, 64.0 * 1024.0);
    assert!(
        (simulated_rate - bucket_rate).abs() / bucket_rate < 0.01,
        "simulated {simulated_rate} vs enforced {bucket_rate}"
    );
}

#[test]
fn scheduler_accepts_boxed_policies() {
    // `.scheduler(...)` takes `impl Into<Box<dyn SchedulerPolicy>>`, so
    // already-boxed policies (the old `scheduler_boxed` callers) pass
    // straight through and behave identically to unboxed ones.
    let w = WorkloadSuiteConfig::small().generate(9);
    let via_scheduler = Simulation::build(small_cluster(3), w.clone())
        .scheduler(GreedyFifo::new())
        .seed(9)
        .run();
    let via_boxed = Simulation::build(small_cluster(3), w)
        .scheduler(Box::new(GreedyFifo::new()) as Box<dyn tetris_sim::SchedulerPolicy>)
        .seed(9)
        .run();
    assert_eq!(
        serde_json::to_string(&via_scheduler).unwrap(),
        serde_json::to_string(&via_boxed).unwrap(),
        "boxed and unboxed entry points diverged"
    );
}
