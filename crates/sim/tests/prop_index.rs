//! Property-based equivalence of the indexed `MachineQuery` backend and
//! the linear-scan oracle (DESIGN.md §13).
//!
//! Two angles, both under random workloads × random fault churn (the
//! churn is what moves machines between availability buckets, flips the
//! considered flag, and stales the per-bucket max caches):
//!
//! * **query-level** — an auditing policy recomputes every `MachineQuery`
//!   answer from view primitives (`iter_all` + `available`/`capacity`/
//!   `is_down`/`is_suspect`) on every scheduling round of an indexed run
//!   and asserts the indexed answers match: envelopes exactly, `fits`
//!   exactly, floor candidates as a sorted considered superset of the
//!   truly-feasible set;
//! * **outcome-level** — the same simulation run twice, index on and
//!   off, must produce byte-identical per-task placement histories.

use proptest::prelude::*;
use tetris_resources::{units::GB, units::MB, MachineSpec, Resource, ResourceVec};
use tetris_sim::{
    Assignment, ClusterConfig, ClusterView, FaultPlan, GreedyFifo, MachineId, SchedulerPolicy,
    SimConfig, SimOutcome, Simulation,
};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::Workload;

const N_MACHINES: usize = 5;

/// Random small workload whose demands fit the small machine profile.
fn arb_workload() -> impl Strategy<Value = Workload> {
    let job = (
        1usize..=4,     // tasks
        0.25f64..=2.0,  // cores
        0.25f64..=3.0,  // mem GB
        2.0f64..=20.0,  // duration
        0.0f64..=30.0,  // arrival
        0.0f64..=100.0, // output MB
    );
    proptest::collection::vec(job, 1..=4).prop_map(|jobs| {
        let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
        for (ji, (n, cores, mem_gb, dur, arrival, out_mb)) in jobs.into_iter().enumerate() {
            let j = b.begin_job(format!("j{ji}"), None, arrival);
            let inputs: Vec<_> = (0..n).map(|_| b.stored_input(32.0 * MB)).collect();
            b.add_stage(j, "map", vec![], n, |i| TaskParams {
                cores,
                mem: mem_gb * GB,
                duration: dur,
                cpu_frac: 0.6,
                io_burst: 1.0,
                inputs: vec![inputs[i]],
                output_bytes: out_mb * MB,
                remote_frac: 1.0,
            });
        }
        b.finish()
    })
}

/// Random fault plan: crashes, slowdowns and tracker misbehavior — every
/// lever that touches the index's refresh paths (ledger moves, crash
/// flags, suspicion flips).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..=1.0,    // crash_frac
        1u32..=2,        // crash_cycles
        5.0f64..=40.0,   // downtime
        50.0f64..=200.0, // window end
        0.0f64..=0.5,    // stale_frac
        0.0f64..=0.5,    // misreport_frac
        0.5f64..=1.6,    // misreport_factor
    )
        .prop_map(|(cf, cc, dt, wend, stale, mis, misf)| FaultPlan {
            crash_frac: cf,
            crash_cycles: cc,
            downtime: dt,
            window: (0.0, wend),
            stale_frac: stale,
            misreport_frac: mis,
            misreport_factor: misf,
            ..FaultPlan::default()
        })
}

fn config(seed: u64, plan: FaultPlan, machine_index: bool) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    cfg.max_time = 50_000.0;
    cfg.faults = plan;
    cfg.machine_index = machine_index;
    cfg.validate().expect("generated plan must be valid");
    cfg
}

/// The decision-carrying slice of an outcome: what ran where, when.
type Placement = (Option<MachineId>, Option<f64>, Option<f64>, bool);

fn placements(o: &SimOutcome) -> Vec<Placement> {
    o.tasks
        .iter()
        .map(|t| (t.machine, t.start, t.finish, t.abandoned))
        .collect()
}

/// Wraps [`GreedyFifo`] and audits every `MachineQuery` method against a
/// linear recomputation from view primitives before delegating.
struct QueryAudit {
    inner: GreedyFifo,
    rounds_audited: u64,
}

impl QueryAudit {
    fn new() -> Self {
        QueryAudit {
            inner: GreedyFifo::new(),
            rounds_audited: 0,
        }
    }

    fn audit(&mut self, view: &ClusterView<'_>) {
        let query = view.query();
        assert!(query.indexed(), "audit run must use the indexed backend");
        let considered: Vec<MachineId> = query
            .iter_all()
            .filter(|&m| !view.is_down(m) && !view.is_suspect(m))
            .collect();
        assert_eq!(query.considered_count(), considered.len());

        let mut cap_env = ResourceVec::zero();
        let mut avail_env = ResourceVec::zero();
        for &m in &considered {
            cap_env = cap_env.max(&view.capacity(m));
            avail_env = avail_env.max(&view.available(m).clamp_non_negative());
        }
        assert_eq!(query.capacity_envelope(), cap_env, "capacity envelope");
        assert_eq!(
            query.availability_envelope(),
            avail_env,
            "availability envelope must be exact, not a bound"
        );

        // `fits` is exact on both backends; probe demands bracketing the
        // envelope so both pruned and unpruned shapes are exercised.
        let probes = [
            ResourceVec::zero(),
            ResourceVec::splat(0.25),
            avail_env * 0.5,
            avail_env * 1.5,
            cap_env,
        ];
        for d in &probes {
            let oracle: Vec<MachineId> = considered
                .iter()
                .copied()
                .filter(|&m| d.fits_within(&view.available(m)))
                .collect();
            assert_eq!(query.fits(d), oracle, "fits({d:?})");
        }

        // `fits_constrained` (§16): this workload carries no constraints
        // and the config no taints, so the predicate must be vacuous —
        // pinning the unconstrained path to `fits` exactly. (The
        // constrained cases are prop_serving's oracle test.)
        for j in view.active_jobs() {
            let cons = view.job_constraints(j);
            for d in &probes {
                assert_eq!(
                    query.fits_constrained(d, j, cons),
                    query.fits(d),
                    "unconstrained fits_constrained must equal fits"
                );
            }
        }

        // Floor candidates: a sorted, considered superset of the machines
        // whose true availability meets the CPU+memory floors.
        for (fc, fm) in [
            (0.0, 0.0),
            (1.0, GB),
            (avail_env.get(Resource::Cpu), avail_env.get(Resource::Mem)),
        ] {
            let mut got = Vec::new();
            query.floor_candidates_into(fc, fm, &mut got);
            assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
            for &m in &got {
                assert!(
                    !view.is_down(m) && !view.is_suspect(m),
                    "floor result must be considered"
                );
            }
            for &m in &considered {
                let a = view.available(m);
                if a.get(Resource::Cpu) >= fc && a.get(Resource::Mem) >= fm {
                    assert!(
                        got.binary_search(&m).is_ok(),
                        "machine {m:?} meets floors ({fc}, {fm}) but was pruned"
                    );
                }
            }
        }
        self.rounds_audited += 1;
    }
}

impl SchedulerPolicy for QueryAudit {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.audit(view);
        self.inner.schedule(view)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every indexed query answer matches the linear oracle on every
    /// scheduling round, while churn exercises the refresh paths.
    #[test]
    fn indexed_queries_match_linear_oracle_under_churn(
        w in arb_workload(),
        plan in arb_plan(),
        seed in 0u64..32,
    ) {
        let o = Simulation::build(
            ClusterConfig::uniform(N_MACHINES, MachineSpec::paper_small()),
            w,
        )
        .scheduler(QueryAudit::new())
        .config(config(seed, plan, true))
        .run();
        prop_assert!(o.completed, "run must terminate with every job settled");
    }

    /// The index is invisible to decisions: identical per-task placement
    /// histories with the index on and off.
    #[test]
    fn outcomes_identical_with_index_on_and_off(
        w in arb_workload(),
        plan in arb_plan(),
        seed in 0u64..32,
    ) {
        let run = |machine_index: bool| {
            Simulation::build(
                ClusterConfig::uniform(N_MACHINES, MachineSpec::paper_small()),
                w.clone(),
            )
            .scheduler(GreedyFifo::new())
            .config(config(seed, plan.clone(), machine_index))
            .run()
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(placements(&on), placements(&off));
        prop_assert_eq!(on.final_time, off.final_time);
        prop_assert_eq!(on.completed, off.completed);
    }
}
