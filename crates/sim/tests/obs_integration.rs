//! Observability contract tests: the trace is well-formed and complete,
//! and attaching it never perturbs the simulation.

use tetris_obs::{names, Event, JsonlRecorder, Obs, VecRecorder};
use tetris_resources::MachineSpec;
use tetris_sim::{ClusterConfig, GreedyFifo, SimConfig, Simulation};
use tetris_workload::WorkloadSuiteConfig;

fn cluster() -> ClusterConfig {
    ClusterConfig::uniform(4, MachineSpec::paper_large())
}

#[test]
fn jsonl_trace_is_well_formed_and_taskplaced_matches_placements() {
    let w = WorkloadSuiteConfig::small().generate(11);
    let rec = VecRecorder::shared();
    // VecRecorder for counting; a JSONL pass below checks the wire format.
    let mut vec_obs = Obs::with_recorder(Box::new(rec.clone()));
    let outcome = Simulation::build(cluster(), w.clone())
        .scheduler(GreedyFifo::new())
        .seed(11)
        .observe(&mut vec_obs)
        .run();
    assert!(outcome.all_jobs_completed());

    let events = rec.take();
    assert!(!events.is_empty());
    let placed = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::TaskPlaced { .. }))
        .count() as u64;
    assert_eq!(
        placed, outcome.stats.placements,
        "every applied assignment must be traced exactly once"
    );
    let arrivals = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::JobArrived { .. }))
        .count();
    assert_eq!(arrivals, w.jobs.len());
    let completed = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::TaskCompleted { .. }))
        .count();
    assert_eq!(
        completed,
        w.jobs.iter().map(|j| j.num_tasks()).sum::<usize>()
    );
    // Timestamps are non-decreasing and heartbeats carry nonzero wall time.
    assert!(events.windows(2).all(|p| p[0].0 <= p[1].0));
    assert!(events
        .iter()
        .any(|(_, e)| matches!(e, Event::HeartbeatProcessed { wall_ns, .. } if *wall_ns > 0)));

    // Same run through the JSONL sink: every line parses back.
    let path = std::env::temp_dir().join(format!("tetris-obs-test-{}.jsonl", std::process::id()));
    {
        let mut obs2 = Obs::with_recorder(Box::new(JsonlRecorder::create(&path).unwrap()));
        Simulation::build(cluster(), w)
            .scheduler(GreedyFifo::new())
            .seed(11)
            .observe(&mut obs2)
            .run();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut parsed = 0u64;
    for line in text.lines() {
        let rec: tetris_obs::event::TraceRecord = serde_json::from_str(line).unwrap();
        assert!(rec.t >= 0.0);
        parsed += 1;
    }
    assert_eq!(parsed, events.len() as u64);

    // The metrics registry agrees with the engine's own stats.
    assert_eq!(
        vec_obs.metrics.counter(names::PLACEMENTS),
        outcome.stats.placements
    );
    let hb = vec_obs.metrics.histogram(names::HEARTBEAT_NS).unwrap();
    assert!(hb.count() > 0);
    assert!(hb.quantile(0.5).unwrap() > 0);
}

#[test]
fn noop_and_traced_runs_produce_identical_outcomes() {
    let w = WorkloadSuiteConfig::small().generate(13);
    let mut cfg = SimConfig::default();
    cfg.seed = 13;
    // Exercise the failure path too, so TaskPreempted events flow.
    cfg.task_failure_prob = 0.05;

    let plain = Simulation::build(cluster(), w.clone())
        .scheduler(GreedyFifo::new())
        .config(cfg.clone())
        .run();

    let rec = VecRecorder::shared();
    let mut obs = Obs::with_recorder(Box::new(rec.clone()));
    let traced = Simulation::build(cluster(), w)
        .scheduler(GreedyFifo::new())
        .config(cfg)
        .observe(&mut obs)
        .run();

    // Byte-identical serialized outcomes: observability must not perturb
    // the simulation in any way.
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&traced).unwrap()
    );
    // And the traced run did actually trace (including retries).
    let events = rec.take();
    assert!(events
        .iter()
        .any(|(_, e)| matches!(e, Event::TaskPlaced { .. })));
    if traced.stats.task_failures > 0 {
        assert_eq!(
            events
                .iter()
                .filter(|(_, e)| matches!(e, Event::TaskPreempted { .. }))
                .count() as u64,
            traced.stats.task_failures
        );
        assert_eq!(
            obs.metrics.counter(names::TASK_RETRIES),
            traced.stats.task_failures
        );
    }
}

#[test]
fn verbose_tracing_attaches_provenance_without_perturbing_the_run() {
    use tetris_core::{TetrisConfig, TetrisScheduler};
    let w = WorkloadSuiteConfig::small().generate(7);
    let plain = Simulation::build(cluster(), w.clone())
        .scheduler(TetrisScheduler::new(TetrisConfig::default()))
        .seed(7)
        .run();

    let rec = VecRecorder::shared();
    let mut obs = Obs::with_recorder(Box::new(rec.clone()));
    obs.set_verbose(true);
    let verbose = Simulation::build(cluster(), w.clone())
        .scheduler(TetrisScheduler::new(TetrisConfig::default()))
        .seed(7)
        .observe(&mut obs)
        .run();

    // Provenance capture is read-only bookkeeping: the verbose run must be
    // byte-identical to the unobserved one.
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&verbose).unwrap()
    );

    let events = rec.take();
    let provs: Vec<_> = events
        .iter()
        .filter_map(|(_, e)| match e {
            Event::TaskPlaced {
                provenance: Some(p),
                ..
            } => Some(p.as_ref()),
            _ => None,
        })
        .collect();
    assert!(
        !provs.is_empty(),
        "verbose Tetris runs must attach provenance"
    );
    // A contended cluster sees multiple candidates compete for the same
    // machine, so some placement records runner-ups with full scores.
    assert!(
        provs.iter().any(|p| p.rejected.len() >= 2),
        "expected a placement with at least two rejected candidates"
    );
    for p in &provs {
        assert!(p.candidates as usize > p.rejected.len() || p.rejected.is_empty());
        for r in &p.rejected {
            assert!(r.alignment.is_some() && r.srtf.is_some());
            assert!(r.score.is_finite());
        }
    }
    // Incremental-cache provenance: once synced, later rounds hit the cache.
    assert!(provs
        .iter()
        .any(|p| p.cache_hits > 0 || p.cache_rebuilds > 0));

    // Default traces carry no provenance at all.
    let rec2 = VecRecorder::shared();
    let mut obs2 = Obs::with_recorder(Box::new(rec2.clone()));
    Simulation::build(cluster(), w)
        .scheduler(TetrisScheduler::new(TetrisConfig::default()))
        .seed(7)
        .observe(&mut obs2)
        .run();
    assert!(rec2.take().iter().all(|(_, e)| !matches!(
        e,
        Event::TaskPlaced {
            provenance: Some(_),
            ..
        }
    )));
}

#[test]
fn telemetry_sampler_is_deterministic_and_sane() {
    use tetris_obs::TimeSeries;
    let w = WorkloadSuiteConfig::small().generate(13);
    let run = || {
        let rec = VecRecorder::shared();
        let mut obs = Obs::with_recorder(Box::new(rec));
        obs.set_timeseries(TimeSeries::in_memory());
        let outcome = Simulation::build(cluster(), w.clone())
            .scheduler(GreedyFifo::new())
            .seed(13)
            .observe(&mut obs)
            .run();
        assert!(outcome.all_jobs_completed());
        let samples = obs.take_timeseries().unwrap().into_samples();
        (outcome, samples)
    };
    let (outcome, a) = run();
    let (_, b) = run();
    // One sample per heartbeat, pure function of simulated state: repeated
    // runs yield identical streams (no wall clocks anywhere).
    assert_eq!(a, b);
    assert!(!a.is_empty());
    assert!(a.windows(2).all(|p| p[0].t <= p[1].t));
    for s in &a {
        for v in [
            s.alloc.cpu,
            s.alloc.mem,
            s.alloc.max(),
            s.fragmentation,
            s.packing_efficiency,
        ] {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "out of range: {v}");
        }
    }
    // The stream actually saw the workload: some sample has running tasks
    // and nonzero allocation.
    assert!(a.iter().any(|s| s.running_tasks > 0 && s.alloc.max() > 0.0));
    // Telemetry never perturbs the run either.
    let plain = Simulation::build(cluster(), w)
        .scheduler(GreedyFifo::new())
        .seed(13)
        .run();
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&outcome).unwrap()
    );
}
