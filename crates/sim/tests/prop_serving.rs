//! Property tests for the §16 typed spec layer: priority preemption and
//! placement constraints (DESIGN.md §16).
//!
//! Three invariants, all under random mixed-priority workloads with
//! random constraints (affinity, anti-affinity, spread floors, taints)
//! and random fault churn:
//!
//! * **no priority inversion** — every applied priority preemption
//!   evicts a victim whose job priority is *strictly below* the placing
//!   job's, even when the policy proposes adversarial eviction lists
//!   (the engine rejects invalid ones whole, nothing is torn down);
//! * **terminal-state conservation** — with preemption, churn and
//!   constraints all active, every run still settles: all jobs finish,
//!   every task record is terminal, and the preemption counter agrees
//!   with the emitted `TaskPreempted(priority_preemption)` events;
//! * **constrained-vs-oracle identity** — `MachineQuery::fits_constrained`
//!   (indexed and linear alike) returns exactly the machines a scan of
//!   view primitives (`available` + `constraints_allow` over considered
//!   machines) selects, on every scheduling round.

use proptest::prelude::*;
use tetris_obs::{Event, Obs, VecRecorder};
use tetris_resources::{units::GB, MachineSpec, ResourceVec};
use tetris_sim::{
    plan_priority_preemption, Assignment, ClusterConfig, ClusterView, FaultPlan, GreedyFifo,
    MachineId, SchedulerEvent, SchedulerPolicy, SimConfig, Simulation,
};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::{JobId, PlacementConstraints, PriorityClass, Workload};

const N_MACHINES: usize = 5;

/// One generated job: sizing plus the typed spec knobs under test.
type JobTuple = (usize, f64, f64, f64, f64, u8, usize, usize, u64);

/// Random mixed-priority workload with random constraints. Constraint
/// references point at the *previous* job so validation always holds;
/// spread floors stay below the machine count so nothing deadlocks.
fn arb_workload() -> impl Strategy<Value = Workload> {
    let job = (
        1usize..=4,    // tasks
        0.25f64..=2.0, // cores
        0.25f64..=3.0, // mem GB
        2.0f64..=20.0, // duration
        0.0f64..=30.0, // arrival
        0u8..=9,       // priority class
        0usize..=4,    // constraint kind
        1usize..=3,    // spread floor
        0u64..=3,      // toleration mask
    );
    proptest::collection::vec(job, 2..=5).prop_map(|jobs: Vec<JobTuple>| {
        let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
        for (ji, (n, cores, mem_gb, dur, arrival, prio, kind, spread, tol)) in
            jobs.into_iter().enumerate()
        {
            let j = b.begin_job(format!("j{ji}"), None, arrival);
            b.set_priority(j, PriorityClass(prio));
            let cons = match kind {
                1 if ji > 0 => PlacementConstraints::none().with_affinity(JobId(ji - 1)),
                2 if ji > 0 => PlacementConstraints::none().with_anti_affinity(JobId(ji - 1)),
                3 => PlacementConstraints::none().with_spread(spread),
                4 => PlacementConstraints::none().with_tolerations(tol),
                _ => PlacementConstraints::none(),
            };
            b.set_constraints(j, cons);
            b.add_stage(j, "work", vec![], n, |_| TaskParams {
                cores,
                mem: mem_gb * GB,
                duration: dur,
                cpu_frac: 1.0,
                io_burst: 1.0,
                inputs: vec![],
                output_bytes: 0.0,
                remote_frac: 0.0,
            });
        }
        b.finish()
    })
}

/// Random taint assignment: at most two of the five machines tainted, so
/// zero-toleration jobs always have somewhere to land.
fn arb_taints() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        Just(Vec::new()),
        (0usize..N_MACHINES, 1u64..=3, 0usize..N_MACHINES, 1u64..=3).prop_map(|(a, ma, bm, mb)| {
            let mut t = vec![0u64; N_MACHINES];
            t[a] = ma;
            t[bm] = mb;
            // Keep at least three machines untainted.
            t
        }),
    ]
}

/// Crash churn: machines cycle down and back up, moving tasks through
/// the preemption/requeue paths while constraints keep filtering.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (0.0f64..=0.6, 1u32..=2, 5.0f64..=40.0, 50.0f64..=200.0).prop_map(|(cf, cc, dt, wend)| {
        FaultPlan {
            crash_frac: cf,
            crash_cycles: cc,
            downtime: dt,
            window: (0.0, wend),
            ..FaultPlan::default()
        }
    })
}

fn config(seed: u64, plan: FaultPlan, taints: Vec<u64>, machine_index: bool) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    cfg.max_time = 50_000.0;
    cfg.faults = plan;
    cfg.preemption = true;
    cfg.machine_taints = taints;
    cfg.machine_index = machine_index;
    cfg.validate().expect("generated config must be valid");
    cfg
}

/// Map every task uid to its owning job id (spec-side, for checking
/// event streams without a view).
fn job_of_task(w: &Workload) -> Vec<JobId> {
    let mut map = vec![JobId(0); w.num_tasks()];
    for (ji, j) in w.jobs.iter().enumerate() {
        for s in &j.stages {
            for t in &s.tasks {
                map[t.uid.index()] = JobId(ji);
            }
        }
    }
    map
}

/// Greedy policy that exercises the preemption machinery from both
/// sides: the shared [`plan_priority_preemption`] epilogue (legal by
/// construction) plus one *adversarial* eviction proposal per call — the
/// first running task anywhere, evicted for the first pending task,
/// with no regard for priority order. The engine must apply it only
/// when the victim's priority is strictly below the placer's.
struct EvictProbe {
    inner: GreedyFifo,
}

impl SchedulerPolicy for EvictProbe {
    fn name(&self) -> &str {
        "evict-probe"
    }

    fn on_event(&mut self, view: &ClusterView<'_>, event: &SchedulerEvent) {
        self.inner.on_event(view, event);
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let mut out = self.inner.schedule(view);
        if let Some(pre) = plan_priority_preemption(view, &out) {
            out.push(pre);
        }
        // Adversarial proposal: pending head of the first active job,
        // evicting the first running task found. Often illegal (equal or
        // higher victim priority, or the task already placed above) —
        // the engine's validation, not this policy, is under test.
        'probe: for j in view.active_jobs() {
            let Some(t) = view.job_pending(j).next() else {
                continue;
            };
            for m in view.query().iter_all() {
                if let Some(&v) = view.machine_tasks(m).first() {
                    out.push(Assignment::new(t, m).with_evictions(vec![v]));
                    break 'probe;
                }
            }
        }
        out
    }
}

/// Wraps [`GreedyFifo`] and audits `fits_constrained` against the
/// primitive-scan oracle for every active job on every round.
struct ConstraintAudit {
    inner: GreedyFifo,
    rounds: u64,
}

impl ConstraintAudit {
    fn audit(&mut self, view: &ClusterView<'_>) {
        let query = view.query();
        let considered: Vec<MachineId> = query
            .iter_all()
            .filter(|&m| !view.is_down(m) && !view.is_suspect(m))
            .collect();
        let mut avail_env = ResourceVec::zero();
        for &m in &considered {
            avail_env = avail_env.max(&view.available(m).clamp_non_negative());
        }
        let probes = [
            ResourceVec::zero(),
            ResourceVec::splat(0.25),
            avail_env * 0.5,
            avail_env * 1.5,
        ];
        for j in view.active_jobs() {
            let cons = view.job_constraints(j);
            for d in &probes {
                let oracle: Vec<MachineId> = considered
                    .iter()
                    .copied()
                    .filter(|&m| d.fits_within(&view.available(m)) && view.constraints_allow(j, m))
                    .collect();
                assert_eq!(
                    query.fits_constrained(d, j, cons),
                    oracle,
                    "fits_constrained({d:?}, {j:?}, {cons:?})"
                );
            }
        }
        self.rounds += 1;
    }
}

impl SchedulerPolicy for ConstraintAudit {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.audit(view);
        self.inner.schedule(view)
    }
}

/// Non-vacuity pin for the properties below: on a deterministically
/// saturated cluster, a late high-priority arrival *does* preempt — so
/// the inversion/conservation proptests exercise live preemptions, not
/// an idle path.
#[test]
fn probe_preempts_on_a_saturated_cluster() {
    let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
    let cap = MachineSpec::paper_small().capacity();
    let (cores, mem) = (
        cap.get(tetris_resources::Resource::Cpu),
        cap.get(tetris_resources::Resource::Mem),
    );
    // Low-priority backlog: 2 machine-filling tasks per machine's worth.
    let j0 = b.begin_job("backlog", None, 0.0);
    b.add_stage(j0, "fill", vec![], 2 * N_MACHINES, |_| TaskParams {
        cores,
        mem,
        duration: 200.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 0.0,
    });
    // High-priority latecomer: must evict to start before the backlog drains.
    let j1 = b.begin_job("urgent", None, 5.0);
    b.set_priority(j1, PriorityClass::SERVICE);
    b.add_stage(j1, "serve", vec![], 2, |_| TaskParams {
        cores: cores / 2.0,
        mem: mem / 2.0,
        duration: 10.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 0.0,
        remote_frac: 0.0,
    });
    let o = Simulation::build(
        ClusterConfig::uniform(N_MACHINES, MachineSpec::paper_small()),
        b.finish(),
    )
    .scheduler(EvictProbe {
        inner: GreedyFifo::new(),
    })
    .config(config(0, FaultPlan::default(), Vec::new(), true))
    .run();
    assert!(o.completed);
    assert!(
        o.stats.preemptions > 0,
        "saturated cluster + high-priority arrival must preempt"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No priority inversion + terminal-state conservation: every applied
    /// preemption (epilogue-planned or adversarially proposed) evicts
    /// strictly downward, every job still settles, and the counter
    /// matches the event stream.
    #[test]
    fn preemption_never_inverts_and_conserves_terminal_states(
        w in arb_workload(),
        taints in arb_taints(),
        plan in arb_plan(),
        seed in 0u64..32,
    ) {
        let uid_job = job_of_task(&w);
        let rec = VecRecorder::shared();
        let mut obs = Obs::with_recorder(Box::new(rec.clone()));
        let o = Simulation::build(
            ClusterConfig::uniform(N_MACHINES, MachineSpec::paper_small()),
            w.clone(),
        )
        .scheduler(EvictProbe { inner: GreedyFifo::new() })
        .config(config(seed, plan, taints, true))
        .observe(&mut obs)
        .run();

        // Conservation: the run settles with every record terminal.
        prop_assert!(o.completed, "run must terminate with every job settled");
        for j in &o.jobs {
            prop_assert!(j.finish.is_some(), "job {:?} never finished", j.id);
        }
        for t in &o.tasks {
            prop_assert!(
                t.finish.is_some() || t.abandoned,
                "task {:?} is not terminal", t.uid
            );
        }

        // No inversion: victims are strictly lower-priority than their
        // preemptor, and the counter matches the event stream.
        let mut preemptions = 0u64;
        for (_, e) in rec.take() {
            if let Event::TaskPreempted { task, reason, priority, preempted_by, .. } = e {
                if reason != "priority_preemption" {
                    prop_assert!(priority.is_none() && preempted_by.is_none());
                    continue;
                }
                preemptions += 1;
                let victim_prio = w.jobs[uid_job[task].index()].priority;
                prop_assert_eq!(priority, Some(victim_prio.0), "event priority is the victim's");
                let by = preempted_by.expect("priority preemptions name their preemptor");
                let placer_prio = w.jobs[uid_job[by].index()].priority;
                prop_assert!(
                    victim_prio < placer_prio,
                    "inversion: task {} (p{}) evicted by task {} (p{})",
                    task, victim_prio.0, by, placer_prio.0
                );
            }
        }
        prop_assert_eq!(o.stats.preemptions, preemptions);
    }

    /// `fits_constrained` equals the primitive-scan oracle on both query
    /// backends, round after round, while churn and placements move the
    /// running state the predicates read.
    #[test]
    fn constrained_query_matches_oracle_on_both_backends(
        w in arb_workload(),
        taints in arb_taints(),
        plan in arb_plan(),
        seed in 0u64..32,
    ) {
        for machine_index in [true, false] {
            let o = Simulation::build(
                ClusterConfig::uniform(N_MACHINES, MachineSpec::paper_small()),
                w.clone(),
            )
            .scheduler(ConstraintAudit { inner: GreedyFifo::new(), rounds: 0 })
            .config(config(seed, plan.clone(), taints.clone(), machine_index))
            .run();
            prop_assert!(o.completed, "index={machine_index}: run must settle");
        }
    }
}
