//! Property test for the event-driven incremental scheduling path.
//!
//! Random workloads × random fault plans drive random interleavings of
//! every [`SchedulerEvent`] the engine emits — job arrivals, task
//! placements/finishes, crash preemptions and abandonments, machine
//! down/up cycles, tracker flakes and suspicion flips, restarts — through
//! the incremental Tetris policy and through the same policy behind the
//! [`MarkAllDirty`] adapter (which swallows events, so the inner policy
//! never syncs and recomputes from the view every round). The two runs
//! must be indistinguishable: identical trace event streams (which carry
//! every assignment and its score breakdown) and identical outcomes.
//!
//! [`SchedulerEvent`]: tetris_sim::SchedulerEvent
//! [`MarkAllDirty`]: tetris_sim::MarkAllDirty

use proptest::prelude::*;
use tetris_core::{EstimationMode, TetrisConfig, TetrisScheduler};
use tetris_obs::{Event, Obs, VecRecorder};
use tetris_resources::MachineSpec;
use tetris_sim::{ClusterConfig, SchedulerPolicy, SimConfig, SimOutcome, Simulation};
use tetris_workload::WorkloadSuiteConfig;

/// Everything that varies across cases: the workload draw, the cluster,
/// the fault plan, and the scheduler's estimation mode.
#[derive(Debug, Clone)]
struct Case {
    seed: u64,
    n_jobs: usize,
    machines: usize,
    crash_frac: f64,
    crash_cycles: u32,
    downtime: f64,
    flake_lead: f64,
    restart_backoff: f64,
    noisy_estimates: bool,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        0u64..1_000,
        2usize..=6,
        3usize..=6,
        prop_oneof![Just(0.0), 0.1f64..=0.5],
        1u32..=2,
        20.0f64..=120.0,
        prop_oneof![Just(0.0), 10.0f64..=40.0],
        prop_oneof![Just(0.0), Just(5.0)],
        prop_oneof![Just(false), Just(true)],
    )
        .prop_map(
            |(
                seed,
                n_jobs,
                machines,
                crash_frac,
                crash_cycles,
                downtime,
                flake_lead,
                restart_backoff,
                noisy_estimates,
            )| Case {
                seed,
                n_jobs,
                machines,
                crash_frac,
                crash_cycles,
                downtime,
                flake_lead,
                restart_backoff,
                noisy_estimates,
            },
        )
}

fn run_case(case: &Case, sched: Box<dyn SchedulerPolicy>) -> (SimOutcome, Vec<(f64, Event)>) {
    let w = WorkloadSuiteConfig::scaled(case.n_jobs, 0.05).generate(case.seed);
    let mut cfg = SimConfig::default();
    cfg.seed = case.seed;
    cfg.max_time = 100_000.0;
    if case.crash_frac > 0.0 {
        cfg.faults.crash_frac = case.crash_frac;
        cfg.faults.crash_cycles = case.crash_cycles;
        cfg.faults.downtime = case.downtime;
        cfg.faults.window = (10.0, 500.0);
        cfg.faults.flake_lead = case.flake_lead;
        cfg.faults.restart_backoff = case.restart_backoff;
    }
    let rec = VecRecorder::shared();
    let mut obs = Obs::with_recorder(Box::new(rec.clone()));
    let outcome = Simulation::build(
        ClusterConfig::uniform(case.machines, MachineSpec::paper_large()),
        w,
    )
    .scheduler(sched)
    .config(cfg)
    .observe(&mut obs)
    .run();
    (outcome, rec.take())
}

/// Zero the only wall-clock-dependent trace field.
fn normalize(events: Vec<(f64, Event)>) -> Vec<(f64, Event)> {
    events
        .into_iter()
        .map(|(t, e)| match e {
            Event::HeartbeatProcessed {
                pending_tasks,
                placements,
                ..
            } => (
                t,
                Event::HeartbeatProcessed {
                    pending_tasks,
                    placements,
                    wall_ns: 0,
                },
            ),
            other => (t, other),
        })
        .collect()
}

fn tetris_cfg(case: &Case) -> TetrisConfig {
    let mut cfg = TetrisConfig::default();
    if case.noisy_estimates {
        // Non-Exact estimation disables the candidate cache; the synced
        // policy must still match the oracle through the fallback path.
        cfg.estimation = EstimationMode::Noisy { sigma: 0.3 };
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_tetris_is_byte_identical_to_oracle(case in arb_case()) {
        let inc = Box::new(TetrisScheduler::new(tetris_cfg(&case)));
        let oracle = Box::new(tetris_sim::MarkAllDirty(TetrisScheduler::new(tetris_cfg(&case))));
        let (o_inc, e_inc) = run_case(&case, inc);
        let (o_oracle, e_oracle) = run_case(&case, oracle);

        let inc_json = serde_json::to_string(&o_inc).unwrap();
        let oracle_json = serde_json::to_string(&o_oracle).unwrap();
        prop_assert_eq!(inc_json, oracle_json, "outcome diverged: {:?}", case);

        let e_inc = normalize(e_inc);
        let e_oracle = normalize(e_oracle);
        prop_assert_eq!(
            e_inc.len(),
            e_oracle.len(),
            "event counts diverged: {:?}",
            case
        );
        for (i, (a, b)) in e_inc.iter().zip(e_oracle.iter()).enumerate() {
            prop_assert_eq!(a, b, "event #{} diverged: {:?}", i, case);
        }
        // Placements must exist, or the comparison is vacuous.
        prop_assert!(
            e_inc.iter().any(|(_, e)| matches!(e, Event::TaskPlaced { .. })),
            "no placements traced: {:?}",
            case
        );
    }
}
