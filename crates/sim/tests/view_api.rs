//! Tests of the scheduler-facing `ClusterView` API, via a capture policy.

use tetris_resources::{units::GB, MachineSpec};
use tetris_sim::{Assignment, ClusterConfig, ClusterView, SchedulerPolicy, Simulation};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::{JobId, TaskUid, Workload};

/// Policy that inspects the view on its first invocation and records what
/// it saw, then delegates to greedy placement.
struct Capture {
    seen: Option<CaptureData>,
}

struct CaptureData {
    pending_stages: Vec<(usize, Vec<TaskUid>)>,
    representative: Option<TaskUid>,
    rep_locked: Option<TaskUid>,
    ages_zero: bool,
    family: Option<String>,
}

impl SchedulerPolicy for Capture {
    fn name(&self) -> &str {
        "capture"
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        if self.seen.is_none() && view.has_active_jobs() {
            let j = JobId(0);
            self.seen = Some(CaptureData {
                pending_stages: view
                    .job_pending_stages(j)
                    .map(|(si, s)| (si, s.to_vec()))
                    .collect(),
                representative: view.stage_representative(j, 0).map(|t| t.uid),
                rep_locked: view.stage_representative(j, 1).map(|t| t.uid),
                ages_zero: view
                    .stage_pending_slice(j, 0)
                    .iter()
                    .all(|&t| view.task_pending_age(t) == 0.0),
                family: view.job_family(j).map(str::to_string),
            });
        }
        // Place everything greedily so the run completes.
        let query = view.query();
        let mut avail: Vec<_> = query.iter_all().map(|m| view.available(m)).collect();
        let mut out = Vec::new();
        for j in view.active_jobs() {
            for (_, slice) in view.job_pending_stages(j) {
                for &t in slice {
                    for m in query.iter_all() {
                        let plan = view.plan(t, m);
                        if plan.local.fits_within(&avail[m.index()]) {
                            avail[m.index()] -= plan.local;
                            out.push(Assignment::new(t, m));
                            break;
                        }
                    }
                }
            }
        }
        out
    }
}

fn workload() -> Workload {
    let mut b = WorkloadBuilder::new();
    let j = b.begin_job("j", Some("fam-x".into()), 0.0);
    b.add_stage(j, "map", vec![], 3, |_| TaskParams {
        cores: 1.0,
        mem: GB,
        duration: 5.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![],
        output_bytes: 1e6,
        remote_frac: 1.0,
    });
    b.add_stage(j, "reduce", vec![0], 2, |_| TaskParams {
        cores: 1.0,
        mem: GB,
        duration: 5.0,
        cpu_frac: 1.0,
        io_burst: 1.0,
        inputs: vec![tetris_workload::InputSpec {
            source: tetris_workload::InputSource::Shuffle { stage: 0 },
            bytes: 1.5e6,
        }],
        output_bytes: 0.0,
        remote_frac: 1.0,
    });
    b.finish()
}

#[test]
fn view_exposes_stages_representatives_and_families() {
    // Run via a shared-state trick: box the policy, then inspect through a
    // static — simpler: run and re-create expectations from the outcome.
    struct Holder(std::rc::Rc<std::cell::RefCell<Capture>>);
    impl SchedulerPolicy for Holder {
        fn name(&self) -> &str {
            "holder"
        }
        fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
            self.0.borrow_mut().schedule(view)
        }
    }
    let cap = std::rc::Rc::new(std::cell::RefCell::new(Capture { seen: None }));
    let outcome = Simulation::build(
        ClusterConfig::uniform(2, MachineSpec::paper_small()),
        workload(),
    )
    .scheduler(Holder(cap.clone()))
    .run();
    assert!(outcome.all_jobs_completed());

    let cap = cap.borrow();
    let seen = cap.seen.as_ref().expect("policy was invoked");
    // Only the map stage has pending tasks at first invocation.
    assert_eq!(seen.pending_stages.len(), 1);
    assert_eq!(seen.pending_stages[0].0, 0);
    assert_eq!(
        seen.pending_stages[0].1,
        vec![TaskUid(0), TaskUid(1), TaskUid(2)]
    );
    // Representative of the unlocked stage = its first pending task;
    // of the locked reduce stage = the stage's first task.
    assert_eq!(seen.representative, Some(TaskUid(0)));
    assert_eq!(seen.rep_locked, Some(TaskUid(3)));
    // Tasks just became runnable: zero pending age.
    assert!(seen.ages_zero);
    assert_eq!(seen.family.as_deref(), Some("fam-x"));
}
