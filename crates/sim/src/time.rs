//! Simulated time: integer microseconds.
//!
//! Integer time makes event ordering exact and runs bit-reproducible;
//! conversions to/from `f64` seconds happen only at the API boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (used as an "unscheduled" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From seconds, rounding *up* to the next microsecond (rounding up
    /// keeps completion events at-or-after the true completion instant, so
    /// work is never left unfinished at its event).
    pub fn from_secs(s: f64) -> SimTime {
        assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        SimTime((s * 1e6).ceil() as u64)
    }

    /// To fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Add a duration in seconds (rounded up), saturating at [`SimTime::MAX`].
    pub fn after_secs(self, s: f64) -> SimTime {
        if !s.is_finite() {
            return SimTime::MAX;
        }
        assert!(s >= 0.0, "negative duration {s}");
        SimTime(self.0.saturating_add((s * 1e6).ceil() as u64))
    }

    /// Elapsed seconds since `earlier` (0 if `earlier` is later).
    pub fn secs_since(self, earlier: SimTime) -> f64 {
        self.0.saturating_sub(earlier.0) as f64 / 1e6
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, micros: u64) -> SimTime {
        SimTime(self.0.saturating_add(micros))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, micros: u64) {
        self.0 = self.0.saturating_add(micros);
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let t = SimTime::from_secs(12.5);
        assert_eq!(t.0, 12_500_000);
        assert_eq!(t.as_secs(), 12.5);
    }

    #[test]
    fn from_secs_rounds_up() {
        // 1 ns rounds up to 1 µs.
        assert_eq!(SimTime::from_secs(1e-9).0, 1);
        assert_eq!(SimTime::from_secs(0.0), SimTime::ZERO);
    }

    #[test]
    fn after_secs_and_since() {
        let t = SimTime::from_secs(10.0).after_secs(2.5);
        assert_eq!(t.as_secs(), 12.5);
        assert_eq!(t.secs_since(SimTime::from_secs(10.0)), 2.5);
        assert_eq!(SimTime::ZERO.secs_since(t), 0.0);
    }

    #[test]
    fn infinite_duration_saturates() {
        assert_eq!(SimTime::ZERO.after_secs(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1.0) < SimTime::from_secs(2.0));
        assert!(SimTime::MAX > SimTime::from_secs(1e12));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO.after_secs(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
    }
}
