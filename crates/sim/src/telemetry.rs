//! Per-heartbeat cluster telemetry sampling.
//!
//! Computes one [`TelemetrySample`] from the live simulation state — the
//! numbers behind the paper's cluster-state curves (utilization Figs
//! 5/6, backlog, efficiency §5): per-resource allocation and usage
//! fractions, a fragmentation score, pending/running/abandoned counts,
//! suspect-machine count, and instantaneous packing efficiency against
//! the one-big-bin `upper_bound` relaxation.
//!
//! Everything here is a pure read of ledger state driven by simulated
//! time — no wall clocks, no RNG — so the resulting stream is
//! byte-identical across repeated runs. The engine calls
//! [`sample_cluster`] once per heartbeat, after the scheduling pass, and
//! only when a collector is attached: runs without telemetry never pay
//! for (or observe) any of this.

use tetris_obs::timeseries::{ResourceUtil, TelemetrySample};
use tetris_resources::{Resource, ResourceVec};

use crate::state::SimState;
use crate::tracker::SUSPECT_THRESHOLD;

/// Component-wise fraction of `v` over `cap` (0 where capacity is 0),
/// exploded into the self-describing per-resource fields of
/// [`ResourceUtil`].
fn frac(v: &ResourceVec, cap: &ResourceVec) -> ResourceUtil {
    let f = |r: Resource| {
        let c = cap.get(r);
        if c > 0.0 {
            v.get(r) / c
        } else {
            0.0
        }
    };
    ResourceUtil {
        cpu: f(Resource::Cpu),
        mem: f(Resource::Mem),
        disk_read: f(Resource::DiskRead),
        disk_write: f(Resource::DiskWrite),
        net_in: f(Resource::NetIn),
        net_out: f(Resource::NetOut),
    }
}

/// One telemetry point from the current state. See the module docs for
/// the metric definitions; the two derived scores are:
///
/// * **fragmentation** — the fraction of pending tasks whose stage's
///   representative demand fits in the cluster's *aggregate* free ledger
///   capacity but on no *single* up machine. These tasks are runnable in
///   the one-big-bin relaxation yet stranded by how the free space is
///   scattered — exactly the resource fragmentation of paper §1/§5.
/// * **packing_efficiency** — allocated ÷ ideally-allocatable on the
///   dominant dimension, where the ideal is the instantaneous
///   `upper_bound` oracle bin: `min(capacity, allocated + pending
///   demand)` per resource. 1.0 means the bottleneck resource is as full
///   as any scheduler could make it right now; lower values quantify
///   capacity the backlog could use but the packing left stranded.
pub(crate) fn sample_cluster(state: &SimState) -> TelemetrySample {
    let mut cluster_allocated = ResourceVec::zero();
    let mut cluster_usage = ResourceVec::zero();
    let mut running = 0usize;
    let mut suspect = 0usize;
    let mut down = 0usize;
    // Ledger-free capacity per up machine, and its cluster aggregate.
    let mut free: Vec<ResourceVec> = Vec::with_capacity(state.machines.len());
    let mut agg_free = ResourceVec::zero();
    for ms in &state.machines {
        cluster_allocated += ms.allocated;
        cluster_usage += ms.usage(&state.flows);
        running += ms.running;
        if ms.down {
            down += 1;
            free.push(ResourceVec::zero());
            continue;
        }
        if ms.suspicion >= SUSPECT_THRESHOLD {
            suspect += 1;
        }
        let avail = (ms.capacity - ms.allocated).clamp_non_negative();
        agg_free += avail;
        free.push(avail);
    }

    // Walk pending stages once: backlog size, aggregate pending demand
    // (stage-representative × count, the §4.1 idiom — tasks of a stage
    // share a demand profile), and strandedness for the fragmentation
    // score.
    let mut pending = 0usize;
    let mut stranded = 0usize;
    let mut pending_demand = ResourceVec::zero();
    for job in state.jobs.iter().filter(|j| j.is_active()) {
        for stage in &job.stages {
            if stage.pending.is_empty() {
                continue;
            }
            let n = stage.pending.len();
            pending += n;
            let rep = state
                .workload
                .task(stage.pending[0])
                .expect("pending task in workload")
                .demand;
            pending_demand += rep * n as f64;
            if rep.fits_within(&agg_free) && !free.iter().any(|f| rep.fits_within(f)) {
                stranded += n;
            }
        }
    }
    let fragmentation = if pending == 0 {
        0.0
    } else {
        stranded as f64 / pending as f64
    };

    // Instantaneous one-big-bin oracle: the most the cluster could have
    // allocated right now is capped by capacity and by demand.
    let cap = state.total_capacity;
    let ideal = (cluster_allocated + pending_demand).min(&cap);
    let mut dominant = None::<(f64, Resource)>;
    for r in Resource::ALL {
        if cap.get(r) > 0.0 {
            let share = ideal.get(r) / cap.get(r);
            if dominant.is_none_or(|(best, _)| share > best) {
                dominant = Some((share, r));
            }
        }
    }
    let packing_efficiency = match dominant {
        Some((_, r)) if ideal.get(r) > f64::EPSILON => {
            (cluster_allocated.get(r) / ideal.get(r)).clamp(0.0, 1.0)
        }
        // No demand anywhere (or a zero-capacity cluster): nothing a
        // better packing could improve.
        _ => 1.0,
    };

    TelemetrySample {
        t: state.now.as_secs(),
        alloc: frac(&cluster_allocated, &cap),
        usage: frac(&cluster_usage, &cap),
        fragmentation,
        packing_efficiency,
        pending_tasks: pending,
        running_tasks: running,
        abandoned_tasks: state.tasks_abandoned,
        suspect_machines: suspect,
        down_machines: down,
    }
}
