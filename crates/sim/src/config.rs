//! Simulation configuration.

use tetris_resources::{Resource, ResourceVec};

use crate::cluster::MachineId;
use crate::fault::FaultPlan;
use crate::time::SimTime;

/// Interference model: when the demand on a disk or network link exceeds
/// its capacity by a factor ρ > 1, the link's *effective* delivered
/// bandwidth drops to `capacity / (1 + α·(ρ − 1))`.
///
/// This models the paper's central observation about over-allocation:
/// "When tasks contend for a resource, the total effective throughput is
/// lowered due to systemic reasons such as buffer overflows on switches
/// (incast), disk seek overheads, and processor cache misses" (§2.1).
/// CPU time-sharing is treated as efficient (α = 0 there); memory
/// over-commit is modelled separately via thrashing.
#[derive(Debug, Clone, Copy)]
pub struct Interference {
    /// Seek-overhead coefficient for DiskRead/DiskWrite links.
    pub disk_alpha: f64,
    /// Incast coefficient for NetIn/NetOut links.
    pub net_alpha: f64,
    /// Lower bound on delivered/nominal bandwidth: however badly a link is
    /// over-subscribed, it still delivers at least this fraction (seeks and
    /// incast degrade throughput, they don't zero it).
    pub floor: f64,
}

impl Default for Interference {
    fn default() -> Self {
        // Calibrated so that heavy over-subscription costs real
        // throughput (ρ = 2 delivers half the bandwidth, ρ = 4 a quarter)
        // without being cliff-like; see DESIGN.md.
        Interference {
            disk_alpha: 1.0,
            net_alpha: 1.0,
            floor: 0.25,
        }
    }
}

impl Interference {
    /// No interference loss (pure proportional sharing).
    pub fn none() -> Self {
        Interference {
            disk_alpha: 0.0,
            net_alpha: 0.0,
            floor: 1.0,
        }
    }

    /// The α for one resource dimension.
    pub fn alpha(&self, r: Resource) -> f64 {
        match r {
            Resource::DiskRead | Resource::DiskWrite => self.disk_alpha,
            Resource::NetIn | Resource::NetOut => self.net_alpha,
            Resource::Cpu | Resource::Mem => 0.0,
        }
    }

    /// Effective capacity of a link of capacity `cap` under total demand
    /// `demand` (≥ cap).
    pub fn effective_capacity(&self, r: Resource, cap: f64, demand: f64) -> f64 {
        if demand <= cap {
            return cap;
        }
        let rho = demand / cap;
        cap * (1.0 / (1.0 + self.alpha(r) * (rho - 1.0))).max(self.floor)
    }
}

/// A period of external (non-task) resource usage on one machine: data
/// ingestion, evacuation/re-replication, or a misbehaving process
/// (paper §4.3). The resource tracker observes it and reports it to the
/// scheduler; schedulers that ignore the tracker (slot-based baselines)
/// keep placing tasks onto the loaded machine — the Figure-6 experiment.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExternalLoad {
    /// The loaded machine.
    pub machine: MachineId,
    /// Start time (seconds).
    pub start: f64,
    /// Duration (seconds).
    pub duration: f64,
    /// Resource usage rates while active (e.g. `DiskWrite` for ingestion,
    /// `DiskRead`+`NetOut` for evacuation).
    pub load: ResourceVec,
}

/// Engine knobs. All defaults follow the paper where it states a value and
/// are documented in DESIGN.md where it does not.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for simulator-internal randomness (block placement, failures).
    /// Workload randomness is seeded separately at generation time.
    pub seed: u64,
    /// HDFS-style replication factor for stored blocks.
    pub replication: usize,
    /// Resource-tracker report period in seconds (§4.1: machines report
    /// usage periodically; this staleness is also what batches freed
    /// resources and avoids large-task starvation, §3.5).
    pub tracker_period: f64,
    /// Utilization sampling period in seconds (None disables timelines).
    pub sample_period: Option<f64>,
    /// Record per-machine samples (Figure 5/6, Table 6). Disable for very
    /// large sweeps to save memory.
    pub record_machine_samples: bool,
    /// Record per-job allocation samples (relative integral unfairness).
    pub record_job_samples: bool,
    /// Hard stop: simulated seconds after which the run aborts (guards
    /// against a policy that never schedules some task).
    pub max_time: f64,
    /// Probability in [0,1] that a finishing task instead fails and
    /// re-runs. 1.0 is allowed and bounded: the failure roll is skipped
    /// once a task reaches its last permitted attempt, so even
    /// always-failing tasks terminate after `max_task_attempts` runs.
    pub task_failure_prob: f64,
    /// Maximum attempts per task before it is abandoned (job never
    /// completes); mirrors YARN's retry limit.
    pub max_task_attempts: u32,
    /// Model memory over-commit thrashing: when hosted memory demand
    /// exceeds capacity, every hosted task's progress is scaled by
    /// `capacity / demand` (paper §3.1: run time can be "arbitrarily worse"
    /// if memory is under-provisioned; slot-based schedulers can
    /// over-commit memory because slots are counted, not sized).
    pub thrashing: bool,
    /// Maximum distinct source machines per shuffle read. Real shuffles
    /// fetch in bounded parallel waves; bounding fan-in keeps the flow
    /// graph tractable. Sources are aggregated to the largest `fanin`
    /// contributors, preserving total bytes.
    pub shuffle_fanin: usize,
    /// External (non-task) load periods.
    pub external_loads: Vec<ExternalLoad>,
    /// Interference (throughput-loss) model for over-subscribed disk and
    /// network links.
    pub interference: Interference,
    /// Usage-based idle reclamation for tracker-aware schedulers
    /// (paper §4.1): availability is derived from tracker-reported *usage*
    /// plus a decaying ramp-up allowance for recently placed tasks, so
    /// resources an over-estimate (or a finished CPU phase) leaves idle
    /// are re-offered. Disable to make tracker-aware availability purely
    /// demand-ledger based (strictly no over-allocation, but idle peaks
    /// are never reclaimed).
    pub reclaim_idle: bool,
    /// Ramp-up allowance horizon in seconds (paper: 10 s).
    pub ramp_up_horizon: f64,
    /// Thrashing exponent: a machine whose memory is over-committed by
    /// ratio ρ > 1 runs every hosted task at `max((1/ρ)^thrash_exponent,
    /// thrash_floor)`. Exponent 1 would be work-conserving time-sharing;
    /// real paging wastes disk bandwidth and CPU, so the default is
    /// superlinear (paper §3.1: runtime can be "arbitrarily worse" under
    /// memory pressure).
    pub thrash_exponent: f64,
    /// Lower bound on the thrashing factor (real systems bound the
    /// meltdown with OOM kills and swap ceilings).
    pub thrash_floor: f64,
    /// Fault-injection plan: machine crash/recover cycles, straggler
    /// slowdown windows, and tracker misbehavior. Disabled by default;
    /// a disabled plan perturbs nothing (byte-identical runs).
    pub faults: FaultPlan,
    /// Maintain the machine-side free-capacity index so `MachineQuery`
    /// serves cold-pass candidate selection sublinearly (DESIGN.md §13).
    /// Disable to force the linear-scan oracle every indexed path is
    /// pinned decision-identical against (`sim/tests/prop_index.rs`).
    pub machine_index: bool,
    /// Checkpoint cadence of the write-ahead journal (DESIGN.md §15): a
    /// full engine snapshot every K scheduling heartbeats, bounding crash
    /// recovery's replay to at most K batches. Ignored unless the run
    /// journals.
    pub checkpoint_every: u64,
    /// Priority preemption (DESIGN.md §16): when on, policies may return
    /// assignments that evict strictly-lower-priority running tasks to
    /// place a higher class that cannot fit. Off by default — batch-only
    /// runs stay byte-identical to pre-serving behaviour.
    pub preemption: bool,
    /// Cap on evicted tasks per preemptive assignment (guards against a
    /// single placement flushing a whole machine). Checked ≥ 1 when
    /// preemption is on.
    pub max_preemptions_per_assignment: usize,
    /// Per-machine taint bitmasks, indexed by machine id (Kubernetes-style
    /// taints). Tasks only land on a tainted machine when their job's
    /// `PlacementConstraints::tolerations` covers every taint bit. Empty
    /// (the default) means an untainted cluster; when non-empty the length
    /// must equal the cluster size (checked at build time).
    pub machine_taints: Vec<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            replication: 3,
            tracker_period: 1.0,
            sample_period: Some(5.0),
            record_machine_samples: true,
            record_job_samples: true,
            max_time: 30.0 * 24.0 * 3600.0,
            task_failure_prob: 0.0,
            max_task_attempts: 4,
            thrashing: true,
            shuffle_fanin: 12,
            external_loads: Vec::new(),
            interference: Interference::default(),
            reclaim_idle: true,
            ramp_up_horizon: 10.0,
            thrash_exponent: 1.35,
            thrash_floor: 0.25,
            faults: FaultPlan::default(),
            machine_index: true,
            checkpoint_every: 32,
            preemption: false,
            max_preemptions_per_assignment: 8,
            machine_taints: Vec::new(),
        }
    }
}

impl SimConfig {
    /// Validate configuration values; called by the engine at build time.
    pub fn validate(&self) -> Result<(), String> {
        if self.replication == 0 {
            return Err("replication must be ≥ 1".into());
        }
        if !(self.tracker_period > 0.0) {
            return Err("tracker_period must be positive".into());
        }
        if let Some(p) = self.sample_period {
            if !(p > 0.0) {
                return Err("sample_period must be positive".into());
            }
        }
        if !(self.max_time > 0.0) {
            return Err("max_time must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.task_failure_prob) {
            return Err("task_failure_prob must be in [0,1]".into());
        }
        if self.max_task_attempts == 0 {
            return Err("max_task_attempts must be ≥ 1".into());
        }
        if self.shuffle_fanin == 0 {
            return Err("shuffle_fanin must be ≥ 1".into());
        }
        if !(self.interference.disk_alpha >= 0.0) || !(self.interference.net_alpha >= 0.0) {
            return Err("interference coefficients must be ≥ 0".into());
        }
        if !(0.0..=1.0).contains(&self.interference.floor) {
            return Err("interference floor must be in [0,1]".into());
        }
        if !(self.ramp_up_horizon > 0.0) {
            return Err("ramp_up_horizon must be positive".into());
        }
        if !(self.thrash_exponent >= 1.0) {
            return Err("thrash_exponent must be ≥ 1".into());
        }
        if !(0.0..=1.0).contains(&self.thrash_floor) {
            return Err("thrash_floor must be in [0,1]".into());
        }
        for (i, e) in self.external_loads.iter().enumerate() {
            if !(e.start >= 0.0) || !(e.duration > 0.0) {
                return Err(format!("external load {i} has invalid timing"));
            }
            if e.load.min_component() < 0.0 || e.load.has_nan() {
                return Err(format!("external load {i} has invalid load vector"));
            }
        }
        if self.checkpoint_every == 0 {
            return Err("checkpoint_every must be ≥ 1".into());
        }
        if self.preemption && self.max_preemptions_per_assignment == 0 {
            return Err("max_preemptions_per_assignment must be ≥ 1 when preemption is on".into());
        }
        self.faults.validate(self.max_time)?;
        Ok(())
    }

    /// Taint bitmask of one machine (0 = untainted; also the answer for
    /// machines beyond an empty/short taint table).
    pub(crate) fn machine_taint(&self, m: usize) -> u64 {
        self.machine_taints.get(m).copied().unwrap_or(0)
    }

    /// Hard-stop time as [`SimTime`].
    pub(crate) fn max_sim_time(&self) -> SimTime {
        SimTime::from_secs(self.max_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::Resource;

    #[test]
    fn default_is_valid() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
    }

    #[test]
    fn rejects_bad_values() {
        let mut c = SimConfig::default();
        c.replication = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.tracker_period = 0.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.sample_period = Some(-1.0);
        assert!(c.validate().is_err());

        // The failure probability accepts the full closed interval: 1.0 is
        // bounded because the roll is skipped on the final attempt.
        let mut c = SimConfig::default();
        c.task_failure_prob = 1.0;
        assert_eq!(c.validate(), Ok(()));
        c.task_failure_prob = 1.0 + 1e-9;
        assert!(c.validate().is_err());
        c.task_failure_prob = -0.1;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.shuffle_fanin = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.checkpoint_every = 0;
        assert!(c.validate().is_err());
        c.checkpoint_every = 1;
        assert_eq!(c.validate(), Ok(()));

        // The eviction cap only matters when preemption can evict.
        let mut c = SimConfig::default();
        c.max_preemptions_per_assignment = 0;
        assert_eq!(c.validate(), Ok(()));
        c.preemption = true;
        assert!(c.validate().is_err());
        c.max_preemptions_per_assignment = 1;
        assert_eq!(c.validate(), Ok(()));

        // Scheduler crashes are 1-based: heartbeat 0 never happens.
        let mut c = SimConfig::default();
        c.faults.sched_crash = Some(crate::fault::SchedulerCrash {
            at_heartbeat: 0,
            mid_commit: false,
        });
        assert!(c.validate().is_err());
        c.faults.sched_crash = Some(crate::fault::SchedulerCrash {
            at_heartbeat: 1,
            mid_commit: true,
        });
        assert_eq!(c.validate(), Ok(()));

        // Fault plans are validated against the sim horizon.
        let mut c = SimConfig::default();
        c.faults.crash_frac = 0.1;
        c.faults.window = (0.0, c.max_time);
        assert!(c.validate().is_err());
        c.faults.window = (0.0, 600.0);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn rejects_bad_external_load() {
        let mut c = SimConfig::default();
        c.external_loads.push(ExternalLoad {
            machine: MachineId(0),
            start: 0.0,
            duration: 0.0,
            load: ResourceVec::zero().with(Resource::DiskWrite, 1.0),
        });
        assert!(c.validate().is_err());
    }
}
