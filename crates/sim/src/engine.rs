//! The simulation engine: builder + event loop.

use std::time::Instant;

use tetris_obs::{names, Event, Obs};
use tetris_resources::ResourceVec;
use tetris_workload::{TaskUid, Workload};

use crate::cluster::{ClusterConfig, MachineId};
use crate::config::SimConfig;
use crate::events::{EventKind, EventQueue};
use crate::fault::{ExpandedFaultPlan, FaultKind};
use crate::journal::{Journal, JournalRecord, JOURNAL_VERSION};
use crate::outcome::{EngineStats, JobRecord, MachineSample, Sample, SimOutcome, TaskRecord};
use crate::recovery::{
    run_fingerprint, CheckpointState, Recovered, RecoveryError, ReplayPlan, RunResult,
};
use crate::state::{DirtySet, Phase, SimState, TaskCompletion};
use crate::time::SimTime;
use crate::view::{ClusterView, SchedulerEvent, SchedulerPolicy};
use tetris_workload::JobId;

/// Cap on re-invocations of the policy within one scheduling round; guards
/// against a policy that keeps returning assignments the engine rejects.
const MAX_SCHEDULE_ROUNDS: usize = 16;

/// Interned preemption-reason tags: `&'static str` into the event's `Cow`
/// field, so emitting a retry allocates nothing for the reason.
const REASON_FAILURE_RETRY: &str = "failure_retry";
const REASON_MACHINE_CRASH: &str = "machine_crash";
const REASON_PRIORITY_PREEMPTION: &str = "priority_preemption";

/// Builder for one simulation run.
///
/// ```
/// use tetris_sim::{ClusterConfig, Simulation, GreedyFifo};
/// use tetris_resources::MachineSpec;
/// use tetris_workload::WorkloadSuiteConfig;
///
/// let cluster = ClusterConfig::uniform(4, MachineSpec::paper_large());
/// let jobs = WorkloadSuiteConfig::small().generate(7);
/// let outcome = Simulation::build(cluster, jobs)
///     .scheduler(GreedyFifo::new())
///     .seed(7)
///     .run();
/// assert!(outcome.all_jobs_completed());
/// ```
pub struct Simulation<'o> {
    cluster: ClusterConfig,
    workload: Workload,
    cfg: SimConfig,
    policy: Option<Box<dyn SchedulerPolicy>>,
    obs: Option<&'o mut Obs>,
    pre_expanded: Option<ExpandedFaultPlan>,
}

impl Simulation<'static> {
    /// Start configuring a run of `workload` on `cluster`.
    pub fn build(cluster: ClusterConfig, workload: Workload) -> Self {
        Simulation {
            cluster,
            workload,
            cfg: SimConfig::default(),
            policy: None,
            obs: None,
            pre_expanded: None,
        }
    }
}

impl<'o> Simulation<'o> {
    /// Set the scheduling policy (required). Accepts both concrete
    /// policies and `Box<dyn SchedulerPolicy>` (heterogeneous sweeps)
    /// through one entry point.
    #[must_use]
    pub fn scheduler(mut self, p: impl Into<Box<dyn SchedulerPolicy>>) -> Self {
        self.policy = Some(p.into());
        self
    }

    /// Replace the whole config.
    #[must_use]
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Shorthand: set the simulator seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Expand this run's fault plan exactly as [`Simulation::run`] would —
    /// same seed, same RNG draw order (a throwaway state performs the
    /// pre-expansion draws, e.g. block-replica placement) — without
    /// running anything. `None` when faults are disabled.
    ///
    /// Callers comparing schedulers under identical faults expand once and
    /// hand the result to each run via
    /// [`Simulation::faults_pre_expanded`], guaranteeing all runs see the
    /// same drawn plan object rather than relying on per-run re-expansion
    /// happening to agree.
    pub fn expand_fault_plan(&self) -> Option<ExpandedFaultPlan> {
        if !self.cfg.faults.enabled() {
            return None;
        }
        let mut state = SimState::new(
            self.cluster.clone(),
            self.workload.clone(),
            self.cfg.clone(),
        );
        let plan = state.cfg.faults.clone();
        Some(plan.expand(state.machines.len(), state.cfg.max_time, &mut state.rng))
    }

    /// Use a pre-expanded fault plan (from [`Simulation::expand_fault_plan`]
    /// on an identically configured builder) instead of the run's own
    /// expansion. The run still performs the expansion draws — keeping the
    /// RNG stream, and therefore every later draw, byte-identical — but the
    /// supplied plan is the one applied (debug builds assert they agree).
    #[must_use]
    pub fn faults_pre_expanded(mut self, plan: ExpandedFaultPlan) -> Self {
        self.pre_expanded = Some(plan);
        self
    }

    /// Attach an observability context: decision events go to its
    /// recorder, heartbeat timings and counters to its metrics registry.
    /// Observability never perturbs the run — the outcome is identical
    /// with or without it (enforced by an integration test).
    #[must_use]
    pub fn observe<'b>(self, obs: &'b mut Obs) -> Simulation<'b> {
        Simulation {
            cluster: self.cluster,
            workload: self.workload,
            cfg: self.cfg,
            policy: self.policy,
            obs: Some(obs),
            pre_expanded: self.pre_expanded,
        }
    }

    /// Run to completion (or the hard stop) and return the outcome.
    ///
    /// # Panics
    /// On invalid configuration or workload — these are programming errors
    /// in experiment setup, not runtime conditions to recover from. Also
    /// panics if the fault plan configures a
    /// [`SchedulerCrash`](crate::SchedulerCrash): a crash is a
    /// [`RunResult`], so callers expecting one use
    /// [`Simulation::run_result`].
    pub fn run(self) -> SimOutcome {
        assert!(
            self.cfg.faults.sched_crash.is_none(),
            "sched_crash configured: use run_result(), which can report the crash"
        );
        match self
            .run_core(None, None, None)
            .expect("no replay: recovery errors are impossible")
        {
            RunResult::Completed(outcome) => *outcome,
            RunResult::Crashed { .. } => unreachable!("sched_crash asserted off above"),
        }
    }

    /// Run like [`Simulation::run`], optionally appending every engine
    /// event and commit decision to a write-ahead `journal`, and report
    /// how the run ended instead of panicking when the fault plan's
    /// [`SchedulerCrash`](crate::SchedulerCrash) fires (DESIGN.md §15).
    pub fn run_result(self, journal: Option<&mut Journal>) -> RunResult {
        self.run_core(journal, None, None)
            .expect("no replay: recovery errors are impossible")
    }

    /// Recover a crashed run from its journal: restore the most recent
    /// checkpoint, deterministically replay the committed batches past it,
    /// then continue live to completion. The recovered outcome is
    /// byte-identical to what the uninterrupted run would have produced.
    ///
    /// The builder must describe the run the journal was written by
    /// (cluster, workload, seed) — recovery refuses on fingerprint
    /// mismatch. A configured `sched_crash` is ignored: recovery always
    /// runs to the end. Torn trailing records (a mid-commit crash's
    /// artifact) are discarded, never replayed.
    pub fn recover(self, journal: &Journal) -> Result<Recovered, RecoveryError> {
        let fingerprint = run_fingerprint(&self.cluster, &self.workload, self.cfg.seed);
        let (cp, mut plan) = crate::recovery::plan_recovery(journal, fingerprint)?;
        match self.run_core(None, Some(&mut plan), Some(Box::new(cp)))? {
            RunResult::Completed(outcome) => Ok(Recovered {
                outcome: *outcome,
                stats: plan.stats,
            }),
            RunResult::Crashed { .. } => unreachable!("resumed runs ignore sched_crash"),
        }
    }

    /// The engine loop behind [`run`](Simulation::run),
    /// [`run_result`](Simulation::run_result) and
    /// [`recover`](Simulation::recover): optionally journaling (live runs),
    /// optionally substituting journaled decisions for policy calls
    /// (`replay`), optionally starting from a restored checkpoint instead
    /// of a fresh state (`resume`).
    fn run_core(
        self,
        mut journal: Option<&mut Journal>,
        mut replay: Option<&mut ReplayPlan>,
        resume: Option<Box<CheckpointState>>,
    ) -> Result<RunResult, RecoveryError> {
        let mut policy = self.policy.expect("Simulation requires a scheduler");
        self.cfg.validate().expect("invalid SimConfig");
        self.workload
            .validate_for_cluster(self.cluster.len())
            .expect("invalid workload");
        assert!(!self.cluster.is_empty());
        assert!(
            self.cfg.machine_taints.is_empty()
                || self.cfg.machine_taints.len() == self.cluster.len(),
            "machine_taints defines {} entries for a {}-machine cluster",
            self.cfg.machine_taints.len(),
            self.cluster.len()
        );

        // Without an attached context the engine observes into a local
        // noop one (discarded at the end), so the loop below never
        // branches on "is observability on". `observing` gates only the
        // extra state walks (pending-task counts) that would otherwise
        // cost time for nobody.
        let observing = self.obs.is_some();
        let mut local_obs;
        let obs: &mut Obs = match self.obs {
            Some(o) => o,
            None => {
                local_obs = Obs::noop();
                &mut local_obs
            }
        };

        // Verbose tracing asks policies to capture decision provenance
        // (rejected candidates, cache bookkeeping) per placement. This is
        // pure extra bookkeeping on the policy side — capture must never
        // change which assignments are produced (the noop-identity test
        // covers the default path; `schedule_equivalence` the policies).
        let verbose = obs.verbose();
        if verbose {
            policy.set_capture_provenance(true);
        }

        let tracker_aware = policy.uses_tracker();

        // The journal header carries a fingerprint of the builder's
        // inputs, computed before they are consumed below. Recovery
        // refuses a journal whose fingerprint disagrees with its builder.
        let fingerprint = journal
            .is_some()
            .then(|| run_fingerprint(&self.cluster, &self.workload, self.cfg.seed));
        // A scheduler crash fires only on a live run: recovering *from* a
        // crash must reach the end, whatever the builder's plan says.
        let sched_crash = if resume.is_some() {
            None
        } else {
            self.cfg.faults.sched_crash
        };
        debug_assert!(
            journal.is_none() || resume.is_none(),
            "journaling a resumed run is not supported"
        );

        let mut dirty = DirtySet::default();
        let (mut state, mut queue, mut stats, mut samples, mut heartbeats) = match resume {
            // A restored checkpoint was taken at a batch boundary: the
            // dirty set was empty and every pending event (including the
            // next TrackerReport and remaining fault schedule) is inside
            // its event-queue snapshot, so no re-seeding happens here.
            Some(mut cp) => {
                // Persistent policy state (reservations, learned demand
                // families) rides in the checkpoint; hand it back before
                // the policy sees any event or schedule call, so replayed
                // heartbeats re-derive the original decisions.
                if let Some(ps) = cp.policy_state.take() {
                    policy.import_state(&ps);
                }
                cp.restore(self.cluster, self.workload, self.cfg)
            }
            None => {
                let mut state = SimState::new(self.cluster, self.workload, self.cfg);
                let mut queue = EventQueue::new();

                // Seed the queue.
                for job in &state.workload.jobs {
                    queue.push(
                        SimTime::from_secs(job.arrival),
                        EventKind::JobArrival(job.id),
                    );
                }
                for (i, e) in state.cfg.external_loads.iter().enumerate() {
                    queue.push(SimTime::from_secs(e.start), EventKind::ExternalStart(i));
                    queue.push(
                        SimTime::from_secs(e.start + e.duration),
                        EventKind::ExternalEnd(i),
                    );
                }
                if state.cfg.sample_period.is_some() {
                    queue.push(SimTime::ZERO, EventKind::Sample);
                }
                queue.push(
                    SimTime::from_secs(state.cfg.tracker_period),
                    EventKind::TrackerReport,
                );
                // Fault plan expansion draws from the sim RNG *after* all other
                // seeding, and only when enabled: a disabled plan draws nothing
                // and pushes nothing, keeping fault-free runs byte-identical.
                if state.cfg.faults.enabled() {
                    let plan = state.cfg.faults.clone();
                    let expanded =
                        plan.expand(state.machines.len(), state.cfg.max_time, &mut state.rng);
                    // A caller-supplied pre-expansion replaces the run's own —
                    // the draws above still happened, so the RNG stream (and every
                    // later legacy draw) is unchanged, and the two plans must
                    // agree whenever the builder configs do.
                    let expanded = match self.pre_expanded {
                        Some(pre) => {
                            debug_assert_eq!(
                                pre, expanded,
                                "pre-expanded fault plan disagrees with this run's expansion"
                            );
                            pre
                        }
                        None => expanded,
                    };
                    state.tracker_modes = expanded.tracker_modes.clone();
                    state.tracker_modes_baseline = expanded.tracker_modes;
                    for (t, k) in expanded.events {
                        let kind = match k {
                            FaultKind::Down(m) => EventKind::MachineDown(MachineId(m)),
                            FaultKind::Up(m) => EventKind::MachineUp(MachineId(m)),
                            FaultKind::SlowStart(m) => EventKind::SlowdownStart(MachineId(m)),
                            FaultKind::SlowEnd(m) => EventKind::SlowdownEnd(MachineId(m)),
                            FaultKind::Flake(m) => EventKind::TrackerFlake(MachineId(m)),
                        };
                        queue.push(SimTime::from_secs(t), kind);
                    }
                }
                (state, queue, EngineStats::default(), Vec::new(), 0u64)
            }
        };

        // Journal prologue: identify the run, then a genesis checkpoint so
        // recovery always has a snapshot to restore, however early the
        // crash.
        let mut checkpoints_written = 0u64;
        if let Some(j) = journal.as_deref_mut() {
            j.append(&JournalRecord::RunHeader {
                version: JOURNAL_VERSION,
                seed: state.cfg.seed,
                fingerprint: fingerprint.expect("fingerprint computed when journaling"),
                checkpoint_every: state.cfg.checkpoint_every,
            });
            j.append(&JournalRecord::Checkpoint {
                heartbeat: heartbeats,
                state: Box::new(CheckpointState::capture(
                    &state,
                    &queue,
                    &stats,
                    &samples,
                    heartbeats,
                    policy.export_state(),
                )),
            });
            checkpoints_written += 1;
        }

        let max_t = state.cfg.max_sim_time();
        let mut timed_out = false;
        let mut tracker_transitions: Vec<(MachineId, bool)> = Vec::new();
        // Scheduler events accumulated while processing one batch,
        // delivered (with the freed-machine mirror) just before the
        // batch's scheduling round. Reused across batches.
        let mut sched_events: Vec<SchedulerEvent> = Vec::new();

        while let Some(ev) = queue.pop() {
            if ev.time > max_t {
                state.now = max_t;
                timed_out = state.jobs_remaining > 0;
                break;
            }
            state.now = ev.time;

            // Drain all events at this instant into one batch.
            let mut batch = vec![ev];
            while queue.peek_time() == Some(state.now) {
                batch.push(queue.pop().expect("peeked event"));
            }

            let mut want_schedule = false;
            let mut want_sample = false;
            sched_events.clear();
            for ev in batch {
                stats.events += 1;
                obs.metrics.counter_inc(names::ENGINE_EVENTS);
                match ev.kind {
                    EventKind::JobArrival(j) => {
                        state.job_arrives(j);
                        sched_events.push(SchedulerEvent::JobArrived { job: j });
                        obs.emit(state.now.as_secs(), || {
                            let spec = &state.workload.jobs[j.index()];
                            Event::JobArrived {
                                job: j.index(),
                                name: spec.name.clone(),
                                tasks: spec.num_tasks(),
                            }
                        });
                        want_schedule = true;
                    }
                    EventKind::FlowDone { flow, gen } => {
                        if let Some(task) = state.flow_done(flow, gen, &mut dirty, &mut queue) {
                            let done = state.task_complete(task, &mut dirty);
                            push_completion_event(&mut sched_events, &state, task, done);
                            observe_completion(obs, &state, task, done);
                            want_schedule = true;
                        }
                    }
                    EventKind::TaskDone { task, gen } => {
                        // Zero-flow tasks: gen is the attempt number at
                        // placement; ignore stale retries.
                        let current = matches!(&state.tasks[task.index()].phase, crate::state::Phase::Running(info) if info.gen == gen);
                        if current {
                            let done = state.task_complete(task, &mut dirty);
                            push_completion_event(&mut sched_events, &state, task, done);
                            observe_completion(obs, &state, task, done);
                            want_schedule = true;
                        }
                    }
                    EventKind::TrackerReport => {
                        tracker_transitions.clear();
                        state.tracker_report(&mut tracker_transitions);
                        for &(m, suspect) in &tracker_transitions {
                            if suspect {
                                sched_events.push(SchedulerEvent::MachineSuspected { machine: m });
                                obs.metrics.counter_inc(names::FAULT_SUSPECTED);
                                obs.emit(state.now.as_secs(), || Event::MachineSuspected {
                                    machine: m.index(),
                                });
                            } else {
                                sched_events.push(SchedulerEvent::MachineCleared { machine: m });
                                obs.metrics.counter_inc(names::FAULT_CLEARED);
                                obs.emit(state.now.as_secs(), || Event::MachineCleared {
                                    machine: m.index(),
                                });
                            }
                        }
                        sched_events.push(SchedulerEvent::TrackerReport);
                        obs.metrics.counter_inc(names::TRACKER_REPORTS);
                        if observing {
                            obs.metrics.gauge_set(
                                names::TRACKER_USAGE_FRAC,
                                state.tracker_usage_fraction(),
                            );
                        }
                        obs.emit(state.now.as_secs(), || Event::TrackerReport {
                            machines: state.machines.len(),
                        });
                        if state.jobs_remaining > 0 {
                            let next = state.now.after_secs(state.cfg.tracker_period);
                            queue.push(next, EventKind::TrackerReport);
                        }
                        want_schedule = true;
                    }
                    EventKind::Sample => {
                        // Taken after the scheduling phase below, so wave
                        // boundaries don't under-count running tasks.
                        want_sample = true;
                        if let Some(p) = state.cfg.sample_period {
                            if state.jobs_remaining > 0 {
                                queue.push(state.now.after_secs(p), EventKind::Sample);
                            }
                        }
                    }
                    EventKind::ExternalStart(i) => {
                        state.set_external(i, true, &mut dirty);
                        sched_events.push(SchedulerEvent::ExternalLoadChanged {
                            machine: external_owner(&state, i),
                        });
                        want_schedule = true;
                    }
                    EventKind::ExternalEnd(i) => {
                        state.set_external(i, false, &mut dirty);
                        sched_events.push(SchedulerEvent::ExternalLoadChanged {
                            machine: external_owner(&state, i),
                        });
                        want_schedule = true;
                    }
                    EventKind::MachineDown(m) => {
                        let rep = state.machine_crash(m, &mut dirty, &mut queue);
                        stats.machine_crashes += 1;
                        stats.crash_killed_attempts +=
                            (rep.requeued.len() + rep.abandoned.len()) as u64;
                        stats.lost_task_seconds += rep.lost_task_seconds;
                        obs.metrics.counter_inc(names::FAULT_CRASHES);
                        obs.metrics.counter_add(
                            names::FAULT_LOST_TASK_SECONDS,
                            rep.lost_task_seconds.round() as u64,
                        );
                        obs.metrics
                            .counter_add(names::FAULT_RETRIES, rep.requeued.len() as u64);
                        obs.metrics
                            .counter_add(names::FAULT_ABANDONED, rep.abandoned.len() as u64);
                        obs.metrics
                            .counter_add(names::FAULT_EVACUATIONS, rep.evacuations as u64);
                        // Scheduler events carry the *host* of each killed
                        // attempt (remote readers run elsewhere); the trace
                        // events below keep attributing to the crashed
                        // machine, matching the pre-event trace format.
                        for &(uid, host) in &rep.requeued {
                            sched_events.push(SchedulerEvent::TaskPreempted {
                                job: JobId(state.task_loc[uid.index()].0),
                                task: uid,
                                machine: host,
                            });
                            obs.emit(state.now.as_secs(), || Event::TaskPreempted {
                                job: state.workload.task(uid).expect("task").job.index(),
                                task: uid.index(),
                                machine: m.index(),
                                reason: REASON_MACHINE_CRASH.into(),
                                priority: None,
                                preempted_by: None,
                            });
                        }
                        for &(uid, host) in &rep.abandoned {
                            sched_events.push(SchedulerEvent::TaskAbandoned {
                                job: JobId(state.task_loc[uid.index()].0),
                                task: uid,
                                machine: host,
                            });
                            obs.emit(state.now.as_secs(), || Event::TaskAbandoned {
                                job: state.workload.task(uid).expect("task").job.index(),
                                task: uid.index(),
                                attempts: state.tasks[uid.index()].attempts,
                            });
                        }
                        sched_events.push(SchedulerEvent::MachineDown { machine: m });
                        obs.emit(state.now.as_secs(), || Event::MachineDown {
                            machine: m.index(),
                            killed: rep.requeued.len() + rep.abandoned.len(),
                            requeued: rep.requeued.len(),
                            abandoned: rep.abandoned.len(),
                            lost_task_seconds: rep.lost_task_seconds,
                            evacuations: rep.evacuations,
                        });
                        want_schedule = true;
                    }
                    EventKind::MachineUp(m) => {
                        state.machine_recover(m);
                        sched_events.push(SchedulerEvent::MachineUp { machine: m });
                        obs.metrics.counter_inc(names::FAULT_RECOVERIES);
                        obs.emit(state.now.as_secs(), || Event::MachineUp {
                            machine: m.index(),
                        });
                        want_schedule = true;
                    }
                    EventKind::SlowdownStart(m) => {
                        let factor = state.cfg.faults.slowdown_factor;
                        state.set_slowdown(m, factor, &mut dirty);
                        obs.metrics.counter_inc(names::FAULT_SLOWDOWNS);
                        obs.emit(state.now.as_secs(), || Event::SlowdownStart {
                            machine: m.index(),
                            factor,
                        });
                        want_schedule = true;
                    }
                    EventKind::SlowdownEnd(m) => {
                        state.set_slowdown(m, 1.0, &mut dirty);
                        obs.emit(state.now.as_secs(), || Event::SlowdownEnd {
                            machine: m.index(),
                        });
                        want_schedule = true;
                    }
                    EventKind::TrackerFlake(m) => {
                        // The doomed machine's tracker goes stale ahead of
                        // its crash; suspicion builds via the ordinary
                        // stale-report detection in `tracker_report`.
                        state.tracker_modes[m.index()] = crate::fault::TrackerMode::Stale;
                        obs.metrics.counter_inc(names::FAULT_FLAKES);
                        obs.emit(state.now.as_secs(), || Event::TrackerFlaky {
                            machine: m.index(),
                        });
                    }
                    EventKind::TaskRestart(task) => {
                        if state.task_restart(task) {
                            sched_events.push(SchedulerEvent::TaskRunnable {
                                job: JobId(state.task_loc[task.index()].0),
                                task,
                            });
                            obs.metrics.counter_inc(names::FAULT_BACKOFF_WAITS);
                            want_schedule = true;
                        }
                    }
                }
            }

            state.recompute_dirty(&mut dirty, &mut queue);

            let did_heartbeat = want_schedule && state.jobs_remaining > 0;
            if did_heartbeat {
                heartbeats += 1;
                // Crash point (a): between batches. Nothing of this
                // heartbeat reaches the journal — recovery resumes exactly
                // at its commit frontier.
                if let Some(c) = sched_crash {
                    if !c.mid_commit && heartbeats == c.at_heartbeat {
                        return Ok(RunResult::Crashed {
                            heartbeat: heartbeats,
                        });
                    }
                }
                let crash_mid_commit =
                    sched_crash.is_some_and(|c| c.mid_commit && heartbeats == c.at_heartbeat);
                if let Some(j) = journal.as_deref_mut() {
                    j.append(&JournalRecord::BatchStart {
                        heartbeat: heartbeats,
                        now_us: state.now.0,
                    });
                }
                // When recovering, the batch journaled for this heartbeat
                // rides along as a witness: the rounds below re-invoke the
                // policy as usual (its checkpointed state makes every
                // decision deterministic) and each applied placement is
                // checked against the journal. Committed batches chain
                // gaplessly from the restored checkpoint, so any
                // misalignment means the journal belongs to a different
                // run (or its payloads lie) — a typed error, never a
                // silent divergence.
                let mut replay_batch = match replay.as_deref_mut() {
                    Some(p) if !p.batches.is_empty() => {
                        let b = p.batches.pop_front().expect("checked non-empty");
                        if b.heartbeat != heartbeats {
                            return Err(RecoveryError::ReplayDivergence {
                                heartbeat: heartbeats,
                                msg: format!(
                                    "journal holds batch {} at engine heartbeat {heartbeats}",
                                    b.heartbeat
                                ),
                            });
                        }
                        if b.now_us != state.now.0 {
                            return Err(RecoveryError::ReplayDivergence {
                                heartbeat: heartbeats,
                                msg: format!(
                                    "journaled batch time {}µs, engine at {}µs",
                                    b.now_us, state.now.0
                                ),
                            });
                        }
                        Some(b)
                    }
                    _ => None,
                };
                // Deliver the batch's scheduler events, then mirror each
                // freed-machine hint, before the round's schedule calls —
                // the protocol documented on [`SchedulerEvent`].
                {
                    let view = ClusterView::new(&state, tracker_aware);
                    for e in &sched_events {
                        policy.on_event(&view, e);
                    }
                    for &m in &state.freed_hint {
                        policy.on_event(&view, &SchedulerEvent::MachineFreed { machine: m });
                    }
                    obs.metrics.counter_add(
                        names::SCHED_EVENTS,
                        (sched_events.len() + state.freed_hint.len()) as u64,
                    );
                }
                // One "resources freed → pick tasks" pass: the heartbeat
                // of a real cluster scheduler. Timed end-to-end into the
                // continuous version of the paper's Table-8 measurement.
                let pending_before =
                    observing.then(|| ClusterView::new(&state, tracker_aware).num_pending());
                let placed_before = stats.placements;
                let calls_before = stats.schedule_calls;
                let rejected_before = stats.rejected_assignments;
                let heartbeat_start = Instant::now();
                for round in 0..MAX_SCHEDULE_ROUNDS {
                    let schedule_start = Instant::now();
                    let assignments = {
                        let view = ClusterView::new(&state, tracker_aware);
                        stats.schedule_calls += 1;
                        policy.schedule(&view)
                    };
                    obs.metrics.observe(
                        names::SCHEDULE_NS,
                        schedule_start.elapsed().as_nanos() as u64,
                    );
                    if assignments.is_empty() {
                        break;
                    }
                    // Crash point (b): mid-commit. Only the first half of
                    // this heartbeat's first-round placements reach the
                    // journal and no commit record does — with a sharded
                    // policy, that is some shards' plans journaled and
                    // others lost. Recovery discards the torn batch and
                    // re-derives the frontier at the last commit.
                    let cut = if round == 0 && crash_mid_commit {
                        assignments.len() / 2
                    } else {
                        usize::MAX
                    };
                    let mut applied = 0usize;
                    let mut placed = false;
                    for a in assignments {
                        // Priority-preemption guard (DESIGN.md §16):
                        // honoring an eviction list requires preemption
                        // enabled, every victim still running on the
                        // target machine, and victim job priority
                        // *strictly below* the placing job's — the
                        // engine-enforced no-priority-inversion
                        // invariant. One invalid victim rejects the
                        // assignment whole; nothing is torn down first.
                        let evictions_valid = a.evict.is_empty()
                            || (state.cfg.preemption && {
                                let placer =
                                    state.workload.jobs[state.task_loc[a.task.index()].0].priority;
                                a.evict.iter().all(|&v| {
                                    matches!(
                                        &state.tasks[v.index()].phase,
                                        Phase::Running(info) if info.machine == a.machine
                                    ) && state.workload.jobs[state.task_loc[v.index()].0].priority
                                        < placer
                                })
                            });
                        if evictions_valid && state.assignment_valid(a.task, a.machine) {
                            if applied >= cut {
                                return Ok(RunResult::Crashed {
                                    heartbeat: heartbeats,
                                });
                            }
                            applied += 1;
                            // Replay cross-check: the restored policy must
                            // re-derive exactly the journaled decision
                            // sequence, placement by placement.
                            if let Some(b) = replay_batch.as_mut() {
                                let expected = b.expected.pop_front();
                                if expected != Some((round as u32, a.task, a.machine)) {
                                    return Err(RecoveryError::ReplayDivergence {
                                        heartbeat: heartbeats,
                                        msg: format!(
                                            "policy placed task {} on machine {} in round \
                                             {round}, journal expected {expected:?}",
                                            a.task.index(),
                                            a.machine.index(),
                                        ),
                                    });
                                }
                            }
                            if let Some(j) = journal.as_deref_mut() {
                                j.append(&JournalRecord::Placement {
                                    task: a.task,
                                    machine: a.machine,
                                    round: round as u32,
                                });
                            }
                            // Evictions land before the placement. They
                            // are *not* journaled: replay re-invokes the
                            // policy live, which re-derives the same
                            // eviction lists, and a torn mid-commit
                            // batch is discarded wholesale — so partial
                            // eviction application can never leak into
                            // recovery.
                            for &v in &a.evict {
                                let vjob = JobId(state.task_loc[v.index()].0);
                                let Some((_lost, host)) = state.preempt_task(v, &mut dirty) else {
                                    continue;
                                };
                                stats.preemptions += 1;
                                obs.metrics.counter_inc(names::PREEMPTIONS);
                                {
                                    let view = ClusterView::new(&state, tracker_aware);
                                    policy.on_event(
                                        &view,
                                        &SchedulerEvent::TaskPreempted {
                                            job: vjob,
                                            task: v,
                                            machine: host,
                                        },
                                    );
                                }
                                obs.metrics.counter_inc(names::SCHED_EVENTS);
                                let vprio = state.workload.jobs[vjob.index()].priority.0;
                                obs.emit(state.now.as_secs(), || Event::TaskPreempted {
                                    job: vjob.index(),
                                    task: v.index(),
                                    machine: host.index(),
                                    reason: REASON_PRIORITY_PREEMPTION.into(),
                                    priority: Some(vprio),
                                    preempted_by: Some(a.task.index()),
                                });
                            }
                            state.apply_assignment(a.task, a.machine, &mut dirty, &mut queue);
                            stats.placements += 1;
                            obs.metrics.counter_inc(names::PLACEMENTS);
                            placed = true;
                            {
                                let view = ClusterView::new(&state, tracker_aware);
                                policy.on_event(
                                    &view,
                                    &SchedulerEvent::TaskPlaced {
                                        job: JobId(state.task_loc[a.task.index()].0),
                                        task: a.task,
                                        machine: a.machine,
                                    },
                                );
                            }
                            obs.metrics.counter_inc(names::SCHED_EVENTS);
                            // Provenance is queried only under verbose
                            // tracing, before the emit closure (which
                            // borrows `state` immutably and cannot also
                            // hold `&mut policy`).
                            let provenance = if verbose {
                                policy.take_provenance(a.task).map(Box::new)
                            } else {
                                None
                            };
                            obs.emit(state.now.as_secs(), || {
                                let job = state.workload.task(a.task).expect("task").job;
                                // Present only for non-default priority:
                                // all-batch traces stay byte-identical.
                                let p = state.workload.jobs[job.index()].priority.0;
                                Event::TaskPlaced {
                                    job: job.index(),
                                    task: a.task.index(),
                                    machine: a.machine.index(),
                                    alignment_score: a.scores.map(|s| s.alignment),
                                    srtf_score: a.scores.map(|s| s.srtf),
                                    combined_score: a.scores.map(|s| s.combined),
                                    considered_machines: a.scores.map(|s| s.considered_machines),
                                    provenance,
                                    priority: (p != 0).then_some(p),
                                }
                            });
                        } else {
                            stats.rejected_assignments += 1;
                            obs.metrics.counter_inc(names::REJECTED_ASSIGNMENTS);
                        }
                    }
                    state.recompute_dirty(&mut dirty, &mut queue);
                    if !placed {
                        break;
                    }
                }
                // Batch-end cross-check: everything the journal committed
                // for this heartbeat was re-derived, and the policy's
                // call/rejection tallies match the commit record — the
                // recovered `EngineStats` is byte-identical to the
                // uninterrupted run's or recovery fails loudly.
                if let Some(b) = replay_batch.take() {
                    if !b.expected.is_empty() {
                        return Err(RecoveryError::ReplayDivergence {
                            heartbeat: heartbeats,
                            msg: format!(
                                "{} journaled placements were not re-derived by the policy",
                                b.expected.len()
                            ),
                        });
                    }
                    let calls = stats.schedule_calls - calls_before;
                    let rejected = stats.rejected_assignments - rejected_before;
                    if calls != b.schedule_calls || rejected != b.rejected {
                        return Err(RecoveryError::ReplayDivergence {
                            heartbeat: heartbeats,
                            msg: format!(
                                "replayed batch made {calls} schedule calls ({} journaled) \
                                 and {rejected} rejections ({} journaled)",
                                b.schedule_calls, b.rejected
                            ),
                        });
                    }
                }
                if crash_mid_commit {
                    // The policy produced nothing to tear this heartbeat —
                    // die anyway, before the commit record, so the batch
                    // still reads as uncommitted.
                    return Ok(RunResult::Crashed {
                        heartbeat: heartbeats,
                    });
                }
                if let Some(j) = journal.as_deref_mut() {
                    // The commit makes the batch durable. Its deltas let
                    // recovery cross-check the replayed policy's tallies
                    // without trusting them.
                    j.append(&JournalRecord::BatchCommit {
                        heartbeat: heartbeats,
                        placements: stats.placements - placed_before,
                        schedule_calls: stats.schedule_calls - calls_before,
                        rejected: stats.rejected_assignments - rejected_before,
                    });
                }
                let wall_ns = heartbeat_start.elapsed().as_nanos() as u64;
                obs.metrics.observe(names::HEARTBEAT_NS, wall_ns);
                if let Some(pending) = pending_before {
                    obs.metrics.gauge_set(names::PENDING_TASKS, pending as f64);
                    obs.emit(state.now.as_secs(), || Event::HeartbeatProcessed {
                        pending_tasks: pending,
                        placements: stats.placements - placed_before,
                        wall_ns,
                    });
                }
                // Hints are consumed by the whole scheduling loop, not per
                // round, so a policy can keep focusing on freed machines
                // across its re-invocations.
                state.freed_hint.clear();
                {
                    let view = ClusterView::new(&state, tracker_aware);
                    policy.on_event(&view, &SchedulerEvent::RoundComplete);
                }
                obs.metrics.counter_inc(names::SCHED_EVENTS);

                // Telemetry time-series: one sample per heartbeat, taken
                // after the scheduling pass so each point describes the
                // cluster the *next* decision will see. Gated on an
                // attached collector; the computation is a pure read of
                // ledger state (no wall clock, no RNG), so the stream is
                // byte-identical across runs.
                if obs.sampling() {
                    let sample = crate::telemetry::sample_cluster(&state);
                    obs.record_sample(sample);
                }

                // The commit frontier is reached the moment the last
                // journaled batch is consumed; everything after runs live.
                if let Some(p) = replay.as_deref_mut() {
                    finish_replay(p, &mut obs.metrics);
                }
            }

            if want_sample {
                samples.push(take_sample(&state));
            }

            // Periodic checkpoint, at the batch boundary the snapshot
            // contract requires (dirty set drained, samples current): a
            // resumed run re-enters the loop exactly here.
            if did_heartbeat && heartbeats % state.cfg.checkpoint_every == 0 {
                if let Some(j) = journal.as_deref_mut() {
                    j.append(&JournalRecord::Checkpoint {
                        heartbeat: heartbeats,
                        state: Box::new(CheckpointState::capture(
                            &state,
                            &queue,
                            &stats,
                            &samples,
                            heartbeats,
                            policy.export_state(),
                        )),
                    });
                    checkpoints_written += 1;
                }
            }

            if state.jobs_remaining == 0 {
                break;
            }
        }

        if state.jobs_remaining > 0 {
            timed_out = true;
        }

        // Drain the free-capacity index's hit/prune counters into the
        // registry (zero-gated: runs without indexed queries — or with
        // the index disabled — add no names to the snapshot).
        let idx_stats = state.index.take_stats();
        if idx_stats.queries > 0 {
            obs.metrics
                .counter_add(names::INDEX_QUERIES, idx_stats.queries);
        }
        if idx_stats.pruned > 0 {
            obs.metrics
                .counter_add(names::INDEX_PRUNED, idx_stats.pruned);
        }
        if idx_stats.returned > 0 {
            obs.metrics
                .counter_add(names::INDEX_RETURNED, idx_stats.returned);
        }
        if idx_stats.env_visits > 0 {
            obs.metrics
                .counter_add(names::INDEX_ENV_VISITS, idx_stats.env_visits);
        }
        // Let the policy contribute its own accumulated metrics (e.g. the
        // sharded driver's conflict counters) — zero-gated like the index
        // drain above, so non-reporting policies add no snapshot names.
        policy.drain_metrics(&mut obs.metrics);

        // A recovery whose journal held no batches past the checkpoint
        // never entered a heartbeat replay — close it out here.
        if let Some(p) = replay {
            finish_replay(p, &mut obs.metrics);
        }
        // Journal accounting (zero-gated by journaling itself: runs
        // without a journal add no names to the snapshot).
        if let Some(j) = journal.as_deref() {
            obs.metrics
                .counter_add(names::JOURNAL_RECORDS, j.appended_records());
            obs.metrics
                .counter_add(names::JOURNAL_BYTES, j.bytes().len() as u64);
            obs.metrics
                .counter_add(names::CHECKPOINTS, checkpoints_written);
        }

        obs.flush();
        let scheduler = policy.name().to_string();
        Ok(RunResult::Completed(Box::new(finalize(
            state, scheduler, samples, stats, timed_out,
        ))))
    }
}

/// Close out a replay once its batches are exhausted: stamp the recovery
/// wall clock (restore begin → frontier reached) and publish the
/// recovery counters. Idempotent past the first call.
fn finish_replay(p: &mut ReplayPlan, metrics: &mut tetris_obs::MetricsRegistry) {
    if p.replay_done || !p.batches.is_empty() {
        return;
    }
    p.replay_done = true;
    p.stats.recovery_wall_us = p.started.elapsed().as_micros() as u64;
    metrics.counter_add(names::RECOVERY_REPLAYED_BATCHES, p.stats.replayed_batches);
    metrics.counter_add(
        names::RECOVERY_REPLAYED_PLACEMENTS,
        p.stats.replayed_placements,
    );
    if p.stats.discarded_records > 0 {
        metrics.counter_add(names::RECOVERY_DISCARDED_RECORDS, p.stats.discarded_records);
    }
    metrics.observe(names::RECOVERY_LATENCY_US, p.stats.recovery_wall_us);
}

/// The machine owning external load `idx` (static config loads first,
/// then dynamic re-replication loads).
fn external_owner(state: &SimState, idx: usize) -> MachineId {
    let n_static = state.cfg.external_loads.len();
    if idx < n_static {
        state.cfg.external_loads[idx].machine
    } else {
        state.dynamic_loads[idx - n_static].machine
    }
}

/// Push the [`SchedulerEvent`] matching a [`TaskCompletion`], if any.
fn push_completion_event(
    out: &mut Vec<SchedulerEvent>,
    state: &SimState,
    task: TaskUid,
    done: TaskCompletion,
) {
    let job = JobId(state.task_loc[task.index()].0);
    match done {
        TaskCompletion::Stale => {}
        TaskCompletion::Requeued { machine } => {
            out.push(SchedulerEvent::TaskPreempted { job, task, machine });
        }
        TaskCompletion::Finished { machine, .. } => {
            out.push(SchedulerEvent::TaskFinished { job, task, machine });
        }
    }
}

/// Emit the trace event and counters matching a [`TaskCompletion`].
fn observe_completion(obs: &mut Obs, state: &SimState, task: TaskUid, done: TaskCompletion) {
    let t = state.now.as_secs();
    match done {
        TaskCompletion::Stale => {}
        TaskCompletion::Requeued { machine } => {
            obs.metrics.counter_inc(names::TASK_RETRIES);
            obs.emit(t, || Event::TaskPreempted {
                job: state.workload.task(task).expect("task").job.index(),
                task: task.index(),
                machine: machine.index(),
                reason: REASON_FAILURE_RETRY.into(),
                priority: None,
                preempted_by: None,
            });
        }
        TaskCompletion::Finished {
            machine, attempts, ..
        } => {
            obs.emit(t, || Event::TaskCompleted {
                job: state.workload.task(task).expect("task").job.index(),
                task: task.index(),
                machine: machine.index(),
                attempts,
            });
        }
    }
}

fn take_sample(state: &SimState) -> Sample {
    let mut cluster_allocated = ResourceVec::zero();
    let mut cluster_usage = ResourceVec::zero();
    let mut running = 0usize;
    let mut machines = state
        .cfg
        .record_machine_samples
        .then(|| Vec::with_capacity(state.machines.len()));
    for ms in &state.machines {
        let usage = ms.usage(&state.flows);
        cluster_allocated += ms.allocated;
        cluster_usage += usage;
        running += ms.running;
        if let Some(v) = machines.as_mut() {
            v.push(MachineSample {
                allocated: ms.allocated,
                usage,
                running: ms.running,
            });
        }
    }
    let per_job_alloc = state
        .cfg
        .record_job_samples
        .then(|| state.jobs.iter().map(|j| j.allocated).collect());
    Sample {
        t: state.now.as_secs(),
        running_tasks: running,
        cluster_allocated,
        cluster_usage,
        machines,
        per_job_alloc,
    }
}

fn finalize(
    state: SimState,
    scheduler: String,
    samples: Vec<Sample>,
    stats: EngineStats,
    timed_out: bool,
) -> SimOutcome {
    let jobs: Vec<JobRecord> = state
        .workload
        .jobs
        .iter()
        .enumerate()
        .map(|(ji, spec)| {
            let js = &state.jobs[ji];
            JobRecord {
                id: spec.id,
                name: spec.name.clone(),
                family: spec.family.clone(),
                arrival: spec.arrival,
                first_start: js.first_start.map(SimTime::as_secs),
                finish: js.finish.map(SimTime::as_secs),
                num_tasks: spec.num_tasks(),
            }
        })
        .collect();

    let mut stats = stats;
    stats.task_failures = state
        .tasks
        .iter()
        .map(|t| (t.attempts.saturating_sub(1)) as u64)
        .sum();
    stats.tasks_abandoned = state.tasks_abandoned;

    let tasks: Vec<TaskRecord> = state
        .workload
        .tasks()
        .map(|spec| {
            let ts = &state.tasks[spec.uid.index()];
            TaskRecord {
                uid: spec.uid,
                job: spec.job,
                machine: ts.machine,
                start: ts.start.map(SimTime::as_secs),
                finish: ts.finish.map(SimTime::as_secs),
                ideal_duration: spec.ideal_duration(),
                planned_duration: ts.planned,
                attempts: ts.attempts,
                abandoned: matches!(ts.phase, Phase::Abandoned),
            }
        })
        .collect();

    SimOutcome {
        scheduler,
        completed: !timed_out,
        final_time: state.now.as_secs(),
        jobs,
        tasks,
        samples,
        stats,
    }
}

/// A deliberately naive reference policy: first-fit in task-uid order over
/// machines in id order, honouring full six-dimension feasibility. Useful
/// as a sanity baseline and for engine tests; not one of the paper's
/// comparators.
#[derive(Debug, Default, Clone)]
pub struct GreedyFifo {
    _private: (),
}

impl GreedyFifo {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulerPolicy for GreedyFifo {
    fn name(&self) -> &str {
        "greedy-fifo"
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<crate::view::Assignment> {
        let query = view.query();
        let mut avail: Vec<ResourceVec> = query.iter_all().map(|m| view.available(m)).collect();
        let mut out = Vec::new();
        for j in view.active_jobs() {
            for t in view.job_pending(j) {
                for m in query.iter_all() {
                    let plan = view.plan(t, m);
                    // Full feasibility: local demand at the host and
                    // disk/net-out demand at every remote input source.
                    let fits = plan.local.fits_within(&avail[m.index()])
                        && plan
                            .remote
                            .iter()
                            .all(|(src, dem)| dem.fits_within(&avail[src.index()]));
                    if fits {
                        avail[m.index()] -= plan.local;
                        for (src, dem) in &plan.remote {
                            avail[src.index()] -= *dem;
                        }
                        out.push(crate::view::Assignment::new(t, m));
                        break;
                    }
                }
            }
        }
        out
    }
}
