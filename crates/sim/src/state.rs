//! Runtime state of a simulation: machines, jobs, tasks, flows, and the
//! rate-sharing model that makes task durations placement- and
//! contention-dependent (paper eqn. 5).
//!
//! ## The flow model
//!
//! Every running task is decomposed into *flows*: a CPU flow, a local
//! disk-write flow, a local disk-read flow, and one flow per remote input
//! source traversing `(src DiskRead) → (src NetOut) → (host NetIn)`. Each
//! flow has a rate cap derived from the task's peak demands and a remaining
//! amount of work; the task completes when all its flows complete.
//!
//! Each `(machine, resource)` pair is a *link*. When the sum of flow caps
//! on a link exceeds its capacity, every flow on it is scaled by
//! `capacity / Σcaps`; a flow's rate is its cap times the minimum scale
//! factor across its links (times a thrashing factor when the host's
//! memory is over-committed). This one-pass proportional-share model is a
//! deliberate simplification of full max–min fairness: it never
//! over-assigns a link, it reproduces the contention behaviour the paper
//! relies on ("two tasks that can both use all of the available network
//! bandwidth ... will take twice as long to finish"), and it requires no
//! iteration, so rates can be recomputed incrementally as tasks come and
//! go. The difference from exact max–min (unclaimed headroom is not
//! redistributed to unconstrained flows) only makes the simulator slightly
//! pessimistic for *all* schedulers equally.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tetris_resources::{Resource, ResourceVec, NUM_RESOURCES};
use tetris_workload::{InputSource, JobId, TaskSpec, TaskUid, Workload};

use crate::cluster::{ClusterConfig, MachineId};
use crate::config::{ExternalLoad, SimConfig};
use crate::events::{EventKind, EventQueue, FlowId};
use crate::fault::TrackerMode;
use crate::index::MachineIndex;
use crate::time::SimTime;
use crate::tracker;

/// Relative tolerance under which a flow's remaining work counts as done.
const WORK_EPS_REL: f64 = 1e-9;
/// Absolute tolerance (bytes / core-seconds).
const WORK_EPS_ABS: f64 = 1e-6;

/// One unit of schedulable work in flight.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct Flow {
    pub task: TaskUid,
    pub host: MachineId,
    pub cap: f64,
    pub links: Vec<(MachineId, Resource)>,
    pub remaining: f64,
    pub init_work: f64,
    pub rate: f64,
    pub last_update: SimTime,
    pub gen: u64,
    pub done: bool,
}

impl Flow {
    fn is_complete(&self) -> bool {
        self.remaining <= (self.init_work * WORK_EPS_REL).max(WORK_EPS_ABS)
    }
}

/// Runtime state of one machine.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct MachineState {
    pub capacity: ResourceVec,
    /// Demand ledger: sum of peak demands of everything placed here
    /// (local + remote reservations). Baselines that ignore disk/network
    /// can drive components above capacity — that *is* over-allocation.
    pub allocated: ResourceVec,
    /// Σ flow caps per resource dimension (+ external load).
    pub link_demand: [f64; NUM_RESOURCES],
    /// Which flows use each dimension.
    pub link_flows: [Vec<FlowId>; NUM_RESOURCES],
    /// Current external (non-task) load rates.
    pub external: ResourceVec,
    /// External load as of the last tracker report (what tracker-aware
    /// schedulers see — stale by up to one report period).
    pub external_reported: ResourceVec,
    /// Total usage (flow rates + external) as of the last tracker report.
    pub usage_reported: ResourceVec,
    /// Recently placed demands (placement time, demand) for the ramp-up
    /// allowance; pruned at tracker reports.
    pub recent: Vec<(SimTime, ResourceVec)>,
    /// Hosted running tasks.
    pub running: usize,
    /// Uids of the hosted running tasks (slot accounting for slot-based
    /// policies; order is placement order).
    pub running_tasks: Vec<TaskUid>,
    /// True while the machine is crashed (fault injection): zero
    /// availability, no placements, no tracker reports.
    pub down: bool,
    /// Straggler factor in (0,1] applied to effective disk/net bandwidth
    /// (1.0 = healthy; fault injection).
    pub slowdown: f64,
    /// Suspicion score fed by missed/implausible tracker reports; decays
    /// on plausible ones. `>= tracker::SUSPECT_THRESHOLD` ⇒ suspect.
    pub suspicion: f64,
    /// Consecutive reports whose memory figure contradicted the
    /// allocation ledger (stale-tracker detector).
    pub stale_streak: u32,
}

impl MachineState {
    fn new(capacity: ResourceVec) -> Self {
        MachineState {
            capacity,
            allocated: ResourceVec::zero(),
            link_demand: [0.0; NUM_RESOURCES],
            link_flows: Default::default(),
            external: ResourceVec::zero(),
            external_reported: ResourceVec::zero(),
            usage_reported: ResourceVec::zero(),
            recent: Vec::new(),
            running: 0,
            running_tasks: Vec::new(),
            down: false,
            slowdown: 1.0,
            suspicion: 0.0,
            stale_streak: 0,
        }
    }

    /// Scale factor of a link: 1 when demand fits, else
    /// effective-capacity/demand, where effective capacity shrinks with
    /// over-subscription per the interference model (disk seeks, incast).
    #[inline]
    fn factor(&self, r: Resource, interference: &crate::config::Interference) -> f64 {
        let mut cap = self.capacity.get(r);
        if self.slowdown < 1.0 && r != Resource::Cpu && r != Resource::Mem {
            // Straggler window: the disk/NIC delivers only a fraction of
            // nominal bandwidth (fault injection; never taken when
            // faults are disabled).
            cap *= self.slowdown;
        }
        let demand = self.link_demand[r.index()];
        if demand <= cap || demand <= 0.0 {
            1.0
        } else {
            interference.effective_capacity(r, cap, demand) / demand
        }
    }

    /// Thrashing factor from memory over-commit:
    /// `max((cap/alloc)^exponent, floor)`.
    #[inline]
    fn thrash_factor(&self, enabled: bool, exponent: f64, floor: f64) -> f64 {
        if !enabled {
            return 1.0;
        }
        let cap = self.capacity.get(Resource::Mem);
        let alloc = self.allocated.get(Resource::Mem);
        if alloc <= cap || alloc <= 0.0 {
            1.0
        } else {
            (cap / alloc).powf(exponent).max(floor)
        }
    }

    /// Actual usage rates on this machine right now (Σ flow rates per dim
    /// plus external load). Unlike `allocated`, this never exceeds
    /// capacity on rate dimensions.
    pub fn usage(&self, flows: &[Flow]) -> ResourceVec {
        let mut u = self.external;
        for r in Resource::ALL {
            if r == Resource::Mem {
                continue;
            }
            // A flow's rate applies fully on each link it traverses.
            let mut sum = u.get(r);
            for &fid in &self.link_flows[r.index()] {
                sum += flows[fid.0].rate;
            }
            u.set(r, sum);
        }
        // Memory usage = allocated memory (space resource).
        u.set(Resource::Mem, self.allocated.get(Resource::Mem));
        u
    }
}

/// Lifecycle of a task.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) enum Phase {
    /// Waiting on upstream stages.
    Blocked,
    /// Schedulable.
    Runnable,
    /// Placed and running.
    Running(RunInfo),
    /// Done.
    Finished,
    /// Attempt lost to a machine crash; waiting out the restart backoff
    /// before becoming runnable again.
    Backoff,
    /// Permanently failed: lost its last permitted attempt to a crash.
    /// Counts toward stage/job completion so the job still terminates.
    Abandoned,
}

/// Bookkeeping for a running task.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct RunInfo {
    pub machine: MachineId,
    /// Flow ids of this attempt (torn down on a crash).
    pub flows: Vec<FlowId>,
    pub flows_left: usize,
    pub local_alloc: ResourceVec,
    pub remote_alloc: Vec<(MachineId, ResourceVec)>,
    pub gen: u64,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct TaskState {
    pub phase: Phase,
    pub attempts: u32,
    pub start: Option<SimTime>,
    pub first_start: Option<SimTime>,
    pub finish: Option<SimTime>,
    pub machine: Option<MachineId>,
    /// When the task last became runnable (stage unlock or retry) — the
    /// basis for starvation detection (paper §3.5).
    pub runnable_since: Option<SimTime>,
    /// Placement-plan duration estimate of the latest attempt (true lower
    /// bound on the attempt's simulated duration).
    pub planned: Option<f64>,
}

#[derive(Debug, Clone)]
pub(crate) struct StageState {
    pub unlocked: bool,
    pub pending: Vec<TaskUid>,
    pub running: usize,
    pub finished: usize,
    pub total: usize,
    /// True if some later stage of the job depends on this one — i.e. this
    /// stage precedes a barrier (§3.5).
    pub feeds_downstream: bool,
    /// Bytes of stage output per machine (filled as tasks finish; consumed
    /// by downstream shuffle readers).
    pub out_by_machine: BTreeMap<MachineId, f64>,
    pub total_out: f64,
}

// Hand-written: the vendored serde maps only `BTreeMap<String, _>` to
// JSON objects, so `out_by_machine` checkpoints as sorted
// `[machine, bytes]` pairs (BTreeMap iteration order is already
// deterministic).
impl serde::Serialize for StageState {
    fn to_value(&self) -> serde::Value {
        let outs: Vec<(MachineId, f64)> =
            self.out_by_machine.iter().map(|(k, v)| (*k, *v)).collect();
        serde::Value::Obj(vec![
            ("unlocked".into(), self.unlocked.to_value()),
            ("pending".into(), self.pending.to_value()),
            ("running".into(), self.running.to_value()),
            ("finished".into(), self.finished.to_value()),
            ("total".into(), self.total.to_value()),
            ("feeds_downstream".into(), self.feeds_downstream.to_value()),
            ("out_by_machine".into(), outs.to_value()),
            ("total_out".into(), self.total_out.to_value()),
        ])
    }
}

impl serde::Deserialize for StageState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::Error::custom("StageState: expected object"))?;
        let outs: Vec<(MachineId, f64)> =
            serde::Deserialize::from_value(serde::Value::field(obj, "out_by_machine"))?;
        Ok(StageState {
            unlocked: serde::Deserialize::from_value(serde::Value::field(obj, "unlocked"))?,
            pending: serde::Deserialize::from_value(serde::Value::field(obj, "pending"))?,
            running: serde::Deserialize::from_value(serde::Value::field(obj, "running"))?,
            finished: serde::Deserialize::from_value(serde::Value::field(obj, "finished"))?,
            total: serde::Deserialize::from_value(serde::Value::field(obj, "total"))?,
            feeds_downstream: serde::Deserialize::from_value(serde::Value::field(
                obj,
                "feeds_downstream",
            ))?,
            out_by_machine: outs.into_iter().collect(),
            total_out: serde::Deserialize::from_value(serde::Value::field(obj, "total_out"))?,
        })
    }
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct JobState {
    pub arrived: bool,
    pub finish: Option<SimTime>,
    pub first_start: Option<SimTime>,
    pub allocated: ResourceVec,
    pub running: usize,
    pub finished_tasks: usize,
    pub total_tasks: usize,
    pub stages: Vec<StageState>,
}

impl JobState {
    pub fn is_active(&self) -> bool {
        self.arrived && self.finish.is_none()
    }
}

/// What [`SimState::task_complete`] did, so the engine can emit the
/// matching trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskCompletion {
    /// The task was not actually running (stale event); nothing changed.
    Stale,
    /// The failure model re-queued the attempt: the task lost its slot on
    /// `machine` and went back to pending.
    Requeued {
        /// Machine the failed attempt was running on.
        machine: MachineId,
    },
    /// The task finished for good.
    Finished {
        /// Machine the final attempt ran on.
        machine: MachineId,
        /// Attempts used.
        attempts: u32,
        /// True if this completion finished the whole job.
        job_finished: bool,
    },
}

impl TaskCompletion {
    /// True if a job finished as a result.
    pub fn job_finished(&self) -> bool {
        matches!(
            self,
            TaskCompletion::Finished {
                job_finished: true,
                ..
            }
        )
    }
}

/// Resolved placement of a task on a candidate machine: what it would
/// demand locally and at each remote input source, and how long it would
/// take at peak allocation (paper eqn. 5 with peak rates).
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// Peak demand at the host, adjusted for placement (NetIn only when
    /// some input is remote; DiskRead only when some input is local).
    pub local: ResourceVec,
    /// Peak demand at each remote source (DiskRead + NetOut there).
    pub remote: Vec<(MachineId, ResourceVec)>,
    /// Bytes read from the host's disks.
    pub local_read_bytes: f64,
    /// Bytes read from each remote source.
    pub remote_reads: Vec<(MachineId, f64)>,
    /// Estimated duration at peak allocation, seconds.
    pub est_duration: f64,
}

impl PlacementPlan {
    /// True if any input comes from a remote machine.
    pub fn is_remote(&self) -> bool {
        !self.remote.is_empty()
    }

    /// Fraction of input bytes that are remote.
    pub fn remote_fraction(&self) -> f64 {
        let remote: f64 = self.remote_reads.iter().map(|(_, b)| b).sum();
        let total = remote + self.local_read_bytes;
        if total <= 0.0 {
            0.0
        } else {
            remote / total
        }
    }
}

/// Dirty-set accumulated while mutating state; drives incremental rate
/// recomputation.
///
/// Allocation-free across events: membership is tracked by generation
/// stamps (one `u64` per (machine, dim) slot / machine / flow) so an
/// event batch never allocates once the stamp tables have grown to the
/// cluster and flow-table size. `recompute_dirty` drains the insertion
/// lists and bumps the generation — an O(1) clear.
#[derive(Debug)]
pub(crate) struct DirtySet {
    /// (machine, dim) links whose demand changed, in insertion order.
    links: Vec<(usize, usize)>,
    /// Machines whose memory allocation changed (thrash factor).
    mem: Vec<usize>,
    /// Stamp per (machine, dim) slot: equals `gen` iff present in `links`.
    link_stamp: Vec<u64>,
    /// Stamp per machine: equals `gen` iff present in `mem`.
    mem_stamp: Vec<u64>,
    /// Stamp per flow: equals `gen` iff already in `affected` this drain.
    flow_stamp: Vec<u64>,
    /// Current batch generation (starts at 1 so zeroed stamps are stale).
    gen: u64,
    /// Reusable buffer of flows touched by the current drain.
    affected: Vec<FlowId>,
}

impl Default for DirtySet {
    fn default() -> Self {
        DirtySet {
            links: Vec::new(),
            mem: Vec::new(),
            link_stamp: Vec::new(),
            mem_stamp: Vec::new(),
            flow_stamp: Vec::new(),
            gen: 1,
            affected: Vec::new(),
        }
    }
}

impl DirtySet {
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.mem.is_empty()
    }

    /// Mark a (machine, dim) link slot dirty.
    pub fn insert_link(&mut self, mi: usize, ri: usize) {
        let idx = mi * NUM_RESOURCES + ri;
        if self.link_stamp.len() <= idx {
            self.link_stamp.resize(idx + 1, 0);
        }
        if self.link_stamp[idx] != self.gen {
            self.link_stamp[idx] = self.gen;
            self.links.push((mi, ri));
        }
    }

    /// Mark a machine's memory allocation dirty.
    pub fn insert_mem(&mut self, mi: usize) {
        if self.mem_stamp.len() <= mi {
            self.mem_stamp.resize(mi + 1, 0);
        }
        if self.mem_stamp[mi] != self.gen {
            self.mem_stamp[mi] = self.gen;
            self.mem.push(mi);
        }
    }
}

/// Mutable simulation state. The engine (`engine.rs`) drives it; the
/// cluster view (`view.rs`) reads it.
pub(crate) struct SimState {
    /// Static cluster description (rack lookups for future extensions).
    #[allow(dead_code)]
    pub cluster: ClusterConfig,
    pub workload: Workload,
    pub cfg: SimConfig,
    pub now: SimTime,
    pub machines: Vec<MachineState>,
    pub tasks: Vec<TaskState>,
    /// uid → (job index, stage index, task index) for O(1) spec lookup.
    pub task_loc: Vec<(usize, usize, usize)>,
    pub jobs: Vec<JobState>,
    /// Block id → replica machines.
    pub blocks: Vec<Vec<MachineId>>,
    pub flows: Vec<Flow>,
    pub jobs_remaining: usize,
    pub total_capacity: ResourceVec,
    pub rng: StdRng,
    /// Machines whose availability changed since the last scheduling round
    /// (a hint for policies; cleared by the engine).
    pub freed_hint: Vec<MachineId>,
    /// Completions this run (diagnostics).
    pub completions: usize,
    /// Tracker behavior per machine (all honest when faults are off).
    pub tracker_modes: Vec<TrackerMode>,
    /// Planned tracker behavior, restored when a machine recovers from a
    /// crash (pre-crash flaking is transient; a reboot resets the agent).
    pub tracker_modes_baseline: Vec<TrackerMode>,
    /// External loads synthesized at runtime (crash-time re-replication);
    /// indexed by `ExternalStart`/`ExternalEnd` past the end of
    /// `cfg.external_loads`.
    pub dynamic_loads: Vec<ExternalLoad>,
    /// Whether each external load (static, then dynamic) is currently
    /// applied, so a crash can abort a machine's in-flight transfers and
    /// the load's own `ExternalEnd` becomes a no-op afterwards.
    pub external_active: Vec<bool>,
    /// External loads permanently aborted because their machine (or its
    /// re-replication peer) crashed; queued Start/End events are no-ops.
    pub external_cancelled: Vec<bool>,
    /// Tasks permanently failed after exhausting `max_task_attempts`.
    pub tasks_abandoned: u64,
    /// Free-capacity index serving `MachineQuery` (DESIGN.md §13).
    /// Disabled (empty) when `cfg.machine_index` is off.
    pub index: MachineIndex,
}

impl SimState {
    pub fn new(cluster: ClusterConfig, workload: Workload, cfg: SimConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n_machines = cluster.len();
        let machines = (0..n_machines)
            .map(|i| MachineState::new(cluster.capacity(MachineId(i))))
            .collect();

        // Bind stored blocks to replica machines.
        let replication = cfg.replication.min(n_machines);
        let blocks = (0..workload.num_blocks)
            .map(|_| {
                let mut reps = BTreeSet::new();
                while reps.len() < replication {
                    reps.insert(MachineId(rng.gen_range(0..n_machines)));
                }
                reps.into_iter().collect::<Vec<_>>()
            })
            .collect();

        // Index tasks and initialize job/stage state.
        let n_tasks = workload.num_tasks();
        let mut task_loc = vec![(0, 0, 0); n_tasks];
        let mut jobs = Vec::with_capacity(workload.jobs.len());
        for (ji, job) in workload.jobs.iter().enumerate() {
            let mut stages = Vec::with_capacity(job.stages.len());
            for (si, stage) in job.stages.iter().enumerate() {
                for (ti, t) in stage.tasks.iter().enumerate() {
                    task_loc[t.uid.index()] = (ji, si, ti);
                }
                let feeds_downstream = job.stages.iter().any(|s2| s2.deps.contains(&si));
                stages.push(StageState {
                    unlocked: false,
                    pending: Vec::new(),
                    running: 0,
                    finished: 0,
                    total: stage.tasks.len(),
                    feeds_downstream,
                    out_by_machine: BTreeMap::new(),
                    total_out: 0.0,
                });
            }
            jobs.push(JobState {
                arrived: false,
                finish: None,
                first_start: None,
                allocated: ResourceVec::zero(),
                running: 0,
                finished_tasks: 0,
                total_tasks: job.num_tasks(),
                stages,
            });
        }

        let tasks = vec![
            TaskState {
                phase: Phase::Blocked,
                attempts: 0,
                start: None,
                first_start: None,
                finish: None,
                machine: None,
                planned: None,
                runnable_since: None,
            };
            n_tasks
        ];

        let total_capacity = cluster.total_capacity();
        let jobs_remaining = workload.jobs.len();
        let n_external = cfg.external_loads.len();
        let index = if cfg.machine_index {
            let caps: Vec<ResourceVec> = (0..n_machines)
                .map(|i| cluster.capacity(MachineId(i)))
                .collect();
            let mut idx = MachineIndex::new(&caps);
            idx.seed();
            idx
        } else {
            MachineIndex::disabled()
        };
        let mut state = SimState {
            cluster,
            workload,
            cfg,
            now: SimTime::ZERO,
            machines,
            tasks,
            task_loc,
            jobs,
            blocks,
            flows: Vec::new(),
            jobs_remaining,
            total_capacity,
            rng,
            freed_hint: Vec::new(),
            completions: 0,
            tracker_modes: vec![TrackerMode::Honest; n_machines],
            tracker_modes_baseline: vec![TrackerMode::Honest; n_machines],
            external_active: vec![false; n_external],
            external_cancelled: vec![false; n_external],
            dynamic_loads: Vec::new(),
            tasks_abandoned: 0,
            index,
        };
        state.index_rebuild();
        state
    }

    /// The index's availability upper bound for one machine: a vector
    /// dominating `availability(m, _)` for every tracker mode and time
    /// (see `index.rs` module docs for the per-mode argument).
    fn index_ub(&self, mi: usize) -> ResourceVec {
        let ms = &self.machines[mi];
        if ms.down {
            return ResourceVec::zero();
        }
        let ledger = ms.capacity - ms.allocated;
        if !self.cfg.reclaim_idle {
            return ledger;
        }
        // Reclaim mode: usage-derived availability can exceed the ledger
        // (idle reclamation), so bound with the reported usage floor, its
        // memory component pinned to the allocation ledger exactly as
        // `availability` pins it.
        let usage_adj = ms
            .usage_reported
            .with(Resource::Mem, ms.allocated.get(Resource::Mem));
        ledger.max(&(ms.capacity - usage_adj))
    }

    /// Refresh one machine's index entry after a ledger / liveness /
    /// suspicion change. No-op when the index is disabled.
    pub fn index_touch(&mut self, mi: usize) {
        if !self.index.enabled {
            return;
        }
        let ub = self.index_ub(mi);
        let ms = &self.machines[mi];
        let considered = !ms.down && ms.suspicion < crate::tracker::SUSPECT_THRESHOLD;
        self.index.refresh(mi, ub, considered);
    }

    /// Refresh every machine's index entry (crash fallout, bulk tracker
    /// refresh under reclaim). No-op when the index is disabled.
    pub fn index_rebuild(&mut self) {
        if !self.index.enabled {
            return;
        }
        for mi in 0..self.machines.len() {
            self.index_touch(mi);
        }
    }

    /// Task spec by uid.
    #[inline]
    pub fn spec(&self, uid: TaskUid) -> &TaskSpec {
        let (j, s, t) = self.task_loc[uid.index()];
        &self.workload.jobs[j].stages[s].tasks[t]
    }

    // ------------------------------------------------------------------
    // Job / stage lifecycle
    // ------------------------------------------------------------------

    /// Mark a job arrived and unlock its root stages.
    pub fn job_arrives(&mut self, job: JobId) {
        let ji = job.index();
        self.jobs[ji].arrived = true;
        let root_stages: Vec<usize> = self.workload.jobs[ji]
            .stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.deps.is_empty())
            .map(|(i, _)| i)
            .collect();
        for si in root_stages {
            self.unlock_stage(ji, si);
        }
    }

    fn unlock_stage(&mut self, ji: usize, si: usize) {
        let stage = &mut self.jobs[ji].stages[si];
        if stage.unlocked {
            return;
        }
        stage.unlocked = true;
        let uids: Vec<TaskUid> = self.workload.jobs[ji].stages[si]
            .tasks
            .iter()
            .map(|t| t.uid)
            .collect();
        let now = self.now;
        for &uid in &uids {
            let t = &mut self.tasks[uid.index()];
            t.phase = Phase::Runnable;
            t.runnable_since = Some(now);
        }
        self.jobs[ji].stages[si].pending = uids;
    }

    // ------------------------------------------------------------------
    // Placement
    // ------------------------------------------------------------------

    /// Check an assignment is applicable: the task is pending/runnable and
    /// the machine exists. Feasibility against capacity is deliberately
    /// *not* checked here — whether to over-allocate is the policy's
    /// decision, and letting baselines over-allocate is the point of the
    /// reproduction.
    pub fn assignment_valid(&self, task: TaskUid, machine: MachineId) -> bool {
        machine.index() < self.machines.len()
            && !self.machines[machine.index()].down
            && task.index() < self.tasks.len()
            && matches!(self.tasks[task.index()].phase, Phase::Runnable)
    }

    /// Resolve where a task's input bytes would come from if placed on
    /// `machine`, and what it would demand locally/remotely.
    pub fn placement_plan(&self, uid: TaskUid, machine: MachineId) -> PlacementPlan {
        let spec = self.spec(uid);
        let (ji, _, _) = self.task_loc[uid.index()];
        let mut local_bytes = 0.0f64;
        let mut remote: BTreeMap<MachineId, f64> = BTreeMap::new();

        for input in &spec.inputs {
            match input.source {
                InputSource::Stored(b) => {
                    let replicas = &self.blocks[b.index()];
                    if replicas.contains(&machine) {
                        local_bytes += input.bytes;
                    } else {
                        // Deterministic replica choice, spread by uid.
                        let src = replicas[uid.index() % replicas.len()];
                        *remote.entry(src).or_default() += input.bytes;
                    }
                }
                InputSource::Shuffle { stage } => {
                    let st = &self.jobs[ji].stages[stage];
                    if st.total_out <= 0.0 {
                        // Upstream produced no bytes; nothing to read.
                        continue;
                    }
                    let frac = input.bytes / st.total_out;
                    for (&m, &bytes) in &st.out_by_machine {
                        let share = bytes * frac;
                        if share <= 0.0 {
                            continue;
                        }
                        if m == machine {
                            local_bytes += share;
                        } else {
                            *remote.entry(m).or_default() += share;
                        }
                    }
                }
            }
        }

        // Bound shuffle fan-in: keep the largest contributors, fold the
        // tail's bytes into them proportionally (bytes conserved).
        let mut remote: Vec<(MachineId, f64)> = remote.into_iter().collect();
        if remote.len() > self.cfg.shuffle_fanin {
            remote.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
            let kept: f64 = remote[..self.cfg.shuffle_fanin]
                .iter()
                .map(|(_, b)| b)
                .sum();
            let tail: f64 = remote[self.cfg.shuffle_fanin..]
                .iter()
                .map(|(_, b)| b)
                .sum();
            remote.truncate(self.cfg.shuffle_fanin);
            if kept > 0.0 {
                let scale = (kept + tail) / kept;
                for (_, b) in &mut remote {
                    *b *= scale;
                }
            }
            remote.sort_by_key(|(m, _)| *m);
        }

        let remote_total: f64 = remote.iter().map(|(_, b)| b).sum();
        let d = spec.demand;
        let d_dr = d.get(Resource::DiskRead);
        let d_ni = d.get(Resource::NetIn);
        // Effective peak remote-read rate: fall back to the disk-read rate
        // when the spec declares no NetIn demand (e.g. a map task expected
        // to be local but placed remotely — an estimation miss the paper's
        // tracker would catch).
        let d_ni_eff = if d_ni > 0.0 { d_ni } else { d_dr };

        let mut local = d;
        local.set(
            Resource::DiskRead,
            if local_bytes > 0.0 { d_dr } else { 0.0 },
        );
        local.set(
            Resource::NetIn,
            if remote_total > 0.0 { d_ni_eff } else { 0.0 },
        );
        local.set(Resource::NetOut, 0.0);

        // Per-source transfer caps: the reader's share of its NetIn
        // demand, additionally bounded by what the source's disk and NIC
        // can physically serve (otherwise a demand no machine can satisfy
        // would make the task permanently unplaceable).
        let remote_demands: Vec<(MachineId, ResourceVec)> = remote
            .iter()
            .map(|&(m, bytes)| {
                let src_cap = self.machines[m.index()].capacity;
                let share = (d_ni_eff * bytes / remote_total)
                    .min(src_cap.get(Resource::DiskRead))
                    .min(src_cap.get(Resource::NetOut))
                    .max(1e-3); // keep caps positive so flows always drain
                (
                    m,
                    ResourceVec::zero()
                        .with(Resource::DiskRead, share)
                        .with(Resource::NetOut, share),
                )
            })
            .collect();

        // Eqn. 5 at peak allocation.
        let mut est: f64 = 0.0;
        if spec.cpu_work > 0.0 {
            est = est.max(spec.cpu_work / d.get(Resource::Cpu));
        }
        if spec.output_bytes > 0.0 {
            est = est.max(spec.output_bytes / d.get(Resource::DiskWrite));
        }
        if local_bytes > 0.0 {
            est = est.max(local_bytes / d_dr);
        }
        for (&(_, bytes), (_, dem)) in remote.iter().zip(&remote_demands) {
            est = est.max(bytes / dem.get(Resource::DiskRead));
        }

        PlacementPlan {
            local,
            remote: remote_demands,
            local_read_bytes: local_bytes,
            remote_reads: remote,
            est_duration: est,
        }
    }

    /// Place a runnable task on a machine: build flows, charge ledgers,
    /// schedule completion events.
    pub fn apply_assignment(
        &mut self,
        uid: TaskUid,
        machine: MachineId,
        dirty: &mut DirtySet,
        queue: &mut EventQueue,
    ) {
        debug_assert!(self.assignment_valid(uid, machine));
        let plan = self.placement_plan(uid, machine);
        let (ji, si, _) = self.task_loc[uid.index()];
        let spec = self.spec(uid);
        let d = spec.demand;
        let cpu_work = spec.cpu_work;
        let output_bytes = spec.output_bytes;
        let d_dr = d.get(Resource::DiskRead);

        // Build flows.
        let mut flow_ids = Vec::new();
        if cpu_work > 0.0 {
            flow_ids.push(self.add_flow(
                uid,
                machine,
                d.get(Resource::Cpu),
                vec![(machine, Resource::Cpu)],
                cpu_work,
                dirty,
            ));
        }
        if output_bytes > 0.0 {
            flow_ids.push(self.add_flow(
                uid,
                machine,
                d.get(Resource::DiskWrite),
                vec![(machine, Resource::DiskWrite)],
                output_bytes,
                dirty,
            ));
        }
        if plan.local_read_bytes > 0.0 {
            flow_ids.push(self.add_flow(
                uid,
                machine,
                d_dr,
                vec![(machine, Resource::DiskRead)],
                plan.local_read_bytes,
                dirty,
            ));
        }
        for (&(src, bytes), &(src2, dem)) in plan.remote_reads.iter().zip(&plan.remote) {
            debug_assert_eq!(src, src2);
            let cap = dem.get(Resource::DiskRead);
            flow_ids.push(self.add_flow(
                uid,
                machine,
                cap,
                vec![
                    (src, Resource::DiskRead),
                    (src, Resource::NetOut),
                    (machine, Resource::NetIn),
                ],
                bytes,
                dirty,
            ));
        }

        // Charge demand ledgers.
        let now = self.now;
        {
            let ms = &mut self.machines[machine.index()];
            ms.allocated += plan.local;
            ms.recent.push((now, plan.local));
            ms.running += 1;
            ms.running_tasks.push(uid);
        }
        if plan.local.get(Resource::Mem) > 0.0 && self.cfg.thrashing {
            dirty.insert_mem(machine.index());
        }
        for &(m, dem) in &plan.remote {
            let ms = &mut self.machines[m.index()];
            ms.allocated += dem;
            ms.recent.push((now, dem));
        }
        self.index_touch(machine.index());
        for &(m, _) in &plan.remote {
            self.index_touch(m.index());
        }

        // Job/stage bookkeeping.
        let job = &mut self.jobs[ji];
        job.allocated += plan.local;
        job.running += 1;
        job.first_start = Some(job.first_start.unwrap_or(self.now));
        let stage = &mut job.stages[si];
        stage.running += 1;
        let pos = stage
            .pending
            .iter()
            .position(|&t| t == uid)
            .expect("pending task not in its stage's pending list");
        stage.pending.swap_remove(pos);

        // Task bookkeeping.
        let t = &mut self.tasks[uid.index()];
        t.attempts += 1;
        t.start = Some(self.now);
        t.first_start = Some(t.first_start.unwrap_or(self.now));
        t.machine = Some(machine);
        t.planned = Some(plan.est_duration);
        let flows_left = flow_ids.len();
        let gen = t.attempts as u64;
        t.phase = Phase::Running(RunInfo {
            machine,
            flows: flow_ids.clone(),
            flows_left,
            local_alloc: plan.local,
            remote_alloc: plan.remote.clone(),
            gen,
        });

        if flows_left == 0 {
            // Zero-work task: completes immediately.
            queue.push(self.now, EventKind::TaskDone { task: uid, gen });
        }
    }

    fn add_flow(
        &mut self,
        task: TaskUid,
        host: MachineId,
        cap: f64,
        links: Vec<(MachineId, Resource)>,
        work: f64,
        dirty: &mut DirtySet,
    ) -> FlowId {
        debug_assert!(work > 0.0, "flow must carry work");
        debug_assert!(cap > 0.0, "flow must have positive cap (validated demand)");
        let fid = FlowId(self.flows.len());
        for &(m, r) in &links {
            let ms = &mut self.machines[m.index()];
            ms.link_demand[r.index()] += cap;
            ms.link_flows[r.index()].push(fid);
            dirty.insert_link(m.index(), r.index());
        }
        self.flows.push(Flow {
            task,
            host,
            cap,
            links,
            remaining: work,
            init_work: work,
            rate: 0.0,
            last_update: self.now,
            gen: 0,
            done: false,
        });
        fid
    }

    // ------------------------------------------------------------------
    // Rate recomputation
    // ------------------------------------------------------------------

    /// Current rate of a flow under the one-pass proportional model.
    pub(crate) fn flow_rate(&self, f: &Flow) -> f64 {
        let mut factor: f64 = 1.0;
        for &(m, r) in &f.links {
            factor = factor.min(self.machines[m.index()].factor(r, &self.cfg.interference));
        }
        factor = factor.min(self.machines[f.host.index()].thrash_factor(
            self.cfg.thrashing,
            self.cfg.thrash_exponent,
            self.cfg.thrash_floor,
        ));
        f.cap * factor
    }

    /// Advance a flow's remaining work to `self.now`.
    fn advance_flow(&mut self, fid: FlowId) {
        let now = self.now;
        let f = &mut self.flows[fid.0];
        if f.done {
            return;
        }
        let dt = now.secs_since(f.last_update);
        if dt > 0.0 {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        f.last_update = now;
    }

    /// Recompute rates of all flows affected by the dirty set; bump their
    /// generation and reschedule completion events when the rate changed.
    pub fn recompute_dirty(&mut self, dirty: &mut DirtySet, queue: &mut EventQueue) {
        if dirty.is_empty() {
            return;
        }
        // Gather affected flows into the reused buffer, stamp-deduped,
        // then sort — reproducing the ascending-FlowId visit order the
        // former BTreeSet gave (event re-queue order depends on it).
        if dirty.flow_stamp.len() < self.flows.len() {
            dirty.flow_stamp.resize(self.flows.len(), 0);
        }
        let fgen = dirty.gen;
        dirty.affected.clear();
        for li in 0..dirty.links.len() {
            let (mi, ri) = dirty.links[li];
            for &fid in &self.machines[mi].link_flows[ri] {
                if dirty.flow_stamp[fid.0] != fgen {
                    dirty.flow_stamp[fid.0] = fgen;
                    dirty.affected.push(fid);
                }
            }
        }
        for ii in 0..dirty.mem.len() {
            let mi = dirty.mem[ii];
            for ri in 0..NUM_RESOURCES {
                for &fid in &self.machines[mi].link_flows[ri] {
                    if self.flows[fid.0].host.index() == mi && dirty.flow_stamp[fid.0] != fgen {
                        dirty.flow_stamp[fid.0] = fgen;
                        dirty.affected.push(fid);
                    }
                }
            }
        }
        dirty.links.clear();
        dirty.mem.clear();
        dirty.gen += 1;

        let mut affected = std::mem::take(&mut dirty.affected);
        affected.sort_unstable();
        for &fid in &affected {
            if self.flows[fid.0].done {
                continue;
            }
            self.advance_flow(fid);
            let new_rate = self.flow_rate(&self.flows[fid.0]);
            let f = &mut self.flows[fid.0];
            let changed = (new_rate - f.rate).abs() > 1e-12 * f.cap.max(1e-12);
            if changed {
                f.rate = new_rate;
                f.gen += 1;
                if new_rate > 0.0 {
                    let eta = self.now.after_secs(f.remaining / new_rate);
                    let gen = f.gen;
                    if eta < SimTime::MAX {
                        queue.push(eta, EventKind::FlowDone { flow: fid, gen });
                    }
                }
                // rate == 0: no event; a later link change will revisit.
            }
        }
        dirty.affected = affected;
    }

    /// Handle a `FlowDone` event. Returns the task to complete, if this was
    /// its last flow.
    pub fn flow_done(
        &mut self,
        fid: FlowId,
        gen: u64,
        dirty: &mut DirtySet,
        queue: &mut EventQueue,
    ) -> Option<TaskUid> {
        if self.flows[fid.0].done || self.flows[fid.0].gen != gen {
            return None; // stale event
        }
        self.advance_flow(fid);
        if !self.flows[fid.0].is_complete() {
            // Numerical residue: reschedule the tail.
            let f = &self.flows[fid.0];
            if f.rate > 0.0 {
                let eta = self.now.after_secs(f.remaining / f.rate);
                let gen = f.gen;
                queue.push(eta, EventKind::FlowDone { flow: fid, gen });
            }
            return None;
        }
        // Complete: remove from links.
        let f = &mut self.flows[fid.0];
        f.done = true;
        f.remaining = 0.0;
        f.rate = 0.0;
        let links = f.links.clone();
        let cap = f.cap;
        let task = f.task;
        for (m, r) in links {
            let ms = &mut self.machines[m.index()];
            ms.link_demand[r.index()] = (ms.link_demand[r.index()] - cap).max(0.0);
            ms.link_flows[r.index()].retain(|&x| x != fid);
            dirty.insert_link(m.index(), r.index());
        }

        let t = &mut self.tasks[task.index()];
        if let Phase::Running(ref mut info) = t.phase {
            info.flows_left -= 1;
            if info.flows_left == 0 {
                return Some(task);
            }
        }
        None
    }

    /// Complete (or fail-and-retry) a task whose work is all done.
    /// Reports what happened so the engine can trace it.
    pub fn task_complete(&mut self, uid: TaskUid, dirty: &mut DirtySet) -> TaskCompletion {
        let (ji, si, _) = self.task_loc[uid.index()];
        let info = match std::mem::replace(&mut self.tasks[uid.index()].phase, Phase::Finished) {
            Phase::Running(info) => info,
            other => {
                self.tasks[uid.index()].phase = other;
                return TaskCompletion::Stale;
            }
        };

        // Release ledgers.
        let host = info.machine;
        {
            let ms = &mut self.machines[host.index()];
            ms.allocated = (ms.allocated - info.local_alloc).clamp_non_negative();
            ms.running -= 1;
            ms.running_tasks.retain(|&t| t != uid);
        }
        if info.local_alloc.get(Resource::Mem) > 0.0 && self.cfg.thrashing {
            dirty.insert_mem(host.index());
        }
        self.freed_hint.push(host);
        for &(m, dem) in &info.remote_alloc {
            self.machines[m.index()].allocated =
                (self.machines[m.index()].allocated - dem).clamp_non_negative();
            self.freed_hint.push(m);
        }
        self.index_touch(host.index());
        for &(m, _) in &info.remote_alloc {
            self.index_touch(m.index());
        }
        let job = &mut self.jobs[ji];
        job.allocated = (job.allocated - info.local_alloc).clamp_non_negative();
        job.running -= 1;
        job.stages[si].running -= 1;

        // Failure roll: rerun the task from scratch.
        let attempts = self.tasks[uid.index()].attempts;
        if self.cfg.task_failure_prob > 0.0
            && attempts < self.cfg.max_task_attempts
            && self.rng.gen::<f64>() < self.cfg.task_failure_prob
        {
            let now = self.now;
            let t = &mut self.tasks[uid.index()];
            t.phase = Phase::Runnable;
            t.machine = None;
            t.runnable_since = Some(now);
            self.jobs[ji].stages[si].pending.push(uid);
            return TaskCompletion::Requeued { machine: host };
        }

        // Genuine completion.
        self.completions += 1;
        self.tasks[uid.index()].finish = Some(self.now);
        let out = self.spec(uid).output_bytes;
        if out > 0.0 {
            let stage = &mut self.jobs[ji].stages[si];
            *stage.out_by_machine.entry(host).or_default() += out;
            stage.total_out += out;
        }
        let job_finished = self.note_task_terminal(ji, si);
        TaskCompletion::Finished {
            machine: host,
            attempts,
            job_finished,
        }
    }

    /// Account one task of `(ji, si)` reaching a terminal state (finished
    /// or abandoned): bump the finished counters, unlock downstream stages
    /// whose dependencies are all complete, and finish the job when its
    /// last task terminates. Returns true iff the job finished.
    fn note_task_terminal(&mut self, ji: usize, si: usize) -> bool {
        let job = &mut self.jobs[ji];
        job.finished_tasks += 1;
        let stage = &mut job.stages[si];
        stage.finished += 1;
        let stage_done = stage.finished == stage.total;

        if stage_done {
            // Unlock downstream stages whose deps are all complete.
            let to_unlock: Vec<usize> = self.workload.jobs[ji]
                .stages
                .iter()
                .enumerate()
                .filter(|(di, ds)| {
                    !self.jobs[ji].stages[*di].unlocked
                        && ds.deps.contains(&si)
                        && ds.deps.iter().all(|&dep| {
                            self.jobs[ji].stages[dep].finished == self.jobs[ji].stages[dep].total
                        })
                })
                .map(|(di, _)| di)
                .collect();
            for di in to_unlock {
                self.unlock_stage(ji, di);
            }
        }

        let job = &mut self.jobs[ji];
        let job_finished = job.finished_tasks == job.total_tasks;
        if job_finished {
            job.finish = Some(self.now);
            self.jobs_remaining -= 1;
        }
        job_finished
    }

    /// Apply/remove external load on a machine's links. Indices past the
    /// end of `cfg.external_loads` address `dynamic_loads` (re-replication
    /// flows synthesized at crash time).
    pub fn set_external(&mut self, idx: usize, active: bool, dirty: &mut DirtySet) {
        // A transfer aborted at crash time ignores its queued Start/End
        // events; the active flag makes the abort idempotent with the
        // load's own End. Exact no-op without faults: starts and ends
        // always alternate and nothing is ever cancelled.
        if active == self.external_active[idx] || (active && self.external_cancelled[idx]) {
            return;
        }
        self.external_active[idx] = active;
        let e = if idx < self.cfg.external_loads.len() {
            self.cfg.external_loads[idx].clone()
        } else {
            self.dynamic_loads[idx - self.cfg.external_loads.len()].clone()
        };
        let mi = e.machine.index();
        let sign = if active { 1.0 } else { -1.0 };
        for (r, v) in e.load.iter() {
            if v == 0.0 {
                continue;
            }
            let ms = &mut self.machines[mi];
            ms.link_demand[r.index()] = (ms.link_demand[r.index()] + sign * v).max(0.0);
            dirty.insert_link(mi, r.index());
        }
        let ms = &mut self.machines[mi];
        if active {
            ms.external += e.load;
        } else {
            ms.external = (ms.external - e.load).clamp_non_negative();
        }
        self.freed_hint.push(e.machine);
    }

    /// Tracker tick: machines report their current usage (task flows plus
    /// external activity) and prune expired ramp-up entries.
    ///
    /// With faults enabled, reports pass through each machine's
    /// [`TrackerMode`] (stale trackers freeze their last report, liars
    /// scale theirs) and feed the per-machine suspicion score: a down
    /// machine misses its report, an over-capacity report is implausible,
    /// and a frozen report while the allocation ledger moves marks a stale
    /// tracker. Suspicion decays on plausible reports. Machines crossing
    /// the suspect threshold (either way) are appended to `transitions`
    /// as `(machine, now_suspect)` so the engine can trace them.
    pub fn tracker_report(&mut self, transitions: &mut Vec<(MachineId, bool)>) {
        let horizon = self.cfg.ramp_up_horizon;
        let now = self.now;
        if !self.cfg.faults.enabled() {
            // Fast path, byte-identical to the pre-fault tracker.
            for mi in 0..self.machines.len() {
                let usage = self.machines[mi].usage(&self.flows);
                let ms = &mut self.machines[mi];
                ms.external_reported = ms.external;
                ms.usage_reported = usage;
                ms.recent.retain(|(t, _)| now.secs_since(*t) < horizon);
            }
            if self.cfg.reclaim_idle {
                // Reported usage moved on every machine and feeds the
                // reclaim-mode availability bound; the report is already
                // O(machines), so the index refresh rides along free.
                self.index_rebuild();
            }
            return;
        }
        let transitions_at_entry = transitions.len();
        for mi in 0..self.machines.len() {
            let was_suspect = self.machines[mi].suspicion >= tracker::SUSPECT_THRESHOLD;
            if self.machines[mi].down {
                // Missed report: the tracker hears nothing from a crashed
                // machine, which is itself a strong signal.
                let ms = &mut self.machines[mi];
                ms.suspicion =
                    (ms.suspicion + tracker::MISSED_REPORT_SUSPICION).min(tracker::SUSPICION_CAP);
            } else {
                let usage = self.machines[mi].usage(&self.flows);
                let mode = self.tracker_modes[mi];
                let ms = &mut self.machines[mi];
                let (reported_usage, reported_external) = match mode {
                    TrackerMode::Honest => (usage, ms.external),
                    // A stale tracker re-sends its previous report forever.
                    TrackerMode::Stale => (ms.usage_reported, ms.external_reported),
                    // A misreporting tracker scales true usage by a factor
                    // (over- or under-reporting).
                    TrackerMode::Misreport(f) => (usage * f, ms.external * f),
                };
                if tracker::report_implausible(&reported_usage, &ms.capacity) {
                    // Claims more usage than the hardware can deliver.
                    ms.suspicion = (ms.suspicion + tracker::IMPLAUSIBLE_REPORT_SUSPICION)
                        .min(tracker::SUSPICION_CAP);
                    ms.stale_streak = 0;
                } else if reported_usage.get(Resource::Mem) != ms.allocated.get(Resource::Mem) {
                    // The report's memory figure contradicts the master's
                    // own allocation ledger. Memory is a space resource —
                    // an honest report equals allocated memory *by
                    // construction* — so a mismatch means the report is
                    // frozen (or scaled) while the ledger moved: a stale
                    // tracker. Rate resources can't be used here: a
                    // saturated link honestly repeats `capacity` forever.
                    // The streak tolerates one-report races a real,
                    // asynchronous cluster would produce.
                    ms.stale_streak += 1;
                    if ms.stale_streak >= tracker::STALE_STREAK_REPORTS {
                        ms.suspicion = (ms.suspicion + tracker::MISSED_REPORT_SUSPICION)
                            .min(tracker::SUSPICION_CAP);
                    }
                } else {
                    ms.stale_streak = 0;
                    ms.suspicion *= tracker::SUSPICION_DECAY;
                    if ms.suspicion < tracker::SUSPICION_ZERO_BELOW {
                        ms.suspicion = 0.0;
                    }
                }
                ms.usage_reported = reported_usage;
                ms.external_reported = reported_external;
                ms.recent.retain(|(t, _)| now.secs_since(*t) < horizon);
            }
            let is_suspect = self.machines[mi].suspicion >= tracker::SUSPECT_THRESHOLD;
            if is_suspect != was_suspect {
                transitions.push((MachineId(mi), is_suspect));
            }
        }
        if self.cfg.reclaim_idle {
            // Reported usage feeds the reclaim-mode bound on every machine.
            self.index_rebuild();
        } else {
            // Ledger-mode bound ignores reported usage: only suspicion
            // flips change the considered set.
            for i in transitions_at_entry..transitions.len() {
                let m = transitions[i].0;
                self.index_touch(m.index());
            }
        }
    }

    /// Cluster-wide tracker-reported usage as a fraction of capacity, in
    /// the most-loaded resource dimension. Observability only — policies
    /// see per-machine availability, never this aggregate.
    pub fn tracker_usage_fraction(&self) -> f64 {
        let mut usage = ResourceVec::zero();
        let mut cap = ResourceVec::zero();
        for ms in &self.machines {
            usage += ms.usage_reported + ms.external_reported;
            cap += ms.capacity;
        }
        usage
            .iter()
            .map(|(r, u)| {
                let c = cap.get(r);
                if c > 0.0 {
                    u / c
                } else {
                    0.0
                }
            })
            .fold(0.0f64, f64::max)
    }

    /// Availability as seen by the scheduler.
    ///
    /// Tracker-unaware policies (the slot baselines) see the demand ledger
    /// only: `capacity − Σ committed peak demands`, which can go negative
    /// when they over-allocate.
    ///
    /// Tracker-aware policies (Tetris, SRTF) see usage-based availability
    /// with idle reclamation (§4.1): `capacity − (reported usage + ramp-up
    /// allowance for recently placed tasks)`, floored by the memory ledger
    /// (memory is held, never reclaimed). With `reclaim_idle` off they see
    /// the demand ledger minus tracker-reported external usage.
    pub fn availability(&self, m: MachineId, tracker_aware: bool) -> ResourceVec {
        let ms = &self.machines[m.index()];
        if ms.down {
            // A crashed machine offers nothing to any policy.
            return ResourceVec::zero();
        }
        if !tracker_aware {
            return ms.capacity - ms.allocated;
        }
        if !self.cfg.reclaim_idle {
            return ms.capacity - ms.allocated - ms.external_reported;
        }
        // Usage + allowance, component-wise maxed with the memory ledger.
        let horizon = self.cfg.ramp_up_horizon;
        let mut committed = ms.usage_reported;
        for (t, demand) in &ms.recent {
            let age = self.now.secs_since(*t);
            if age < horizon {
                committed += *demand * (1.0 - age / horizon);
            }
        }
        // Memory is a space resource: the ledger is authoritative.
        committed.set(Resource::Mem, ms.allocated.get(Resource::Mem));
        ms.capacity - committed
    }

    // ------------------------------------------------------------------
    // Fault injection: crash / recover / slowdown / restart
    // ------------------------------------------------------------------

    /// Tear down a running task's attempt (machine crash): invalidate its
    /// flows, release every ledger the attempt charged, and decide its
    /// fate — abandoned when out of attempts, backoff-delayed restart when
    /// `restart_backoff > 0`, immediately runnable otherwise.
    ///
    /// Returns `None` if the task was not actually running, else
    /// `Some((abandoned, lost_task_seconds, host_machine))`.
    pub(crate) fn kill_task(
        &mut self,
        uid: TaskUid,
        dirty: &mut DirtySet,
        queue: &mut EventQueue,
    ) -> Option<(bool, f64, MachineId)> {
        let (ji, si, _) = self.task_loc[uid.index()];
        let info = self.teardown_attempt(uid, dirty)?;
        let host = info.machine;
        let now = self.now;
        let backoff = self.cfg.faults.restart_backoff;
        let max_attempts = self.cfg.max_task_attempts;
        let t = &mut self.tasks[uid.index()];
        let lost = t.start.map_or(0.0, |s| now.secs_since(s));
        t.machine = None;
        if t.attempts >= max_attempts {
            // Out of attempts: permanently failed, but still terminal so
            // the owning stage/job completes instead of hanging.
            t.phase = Phase::Abandoned;
            t.finish = Some(now);
            self.tasks_abandoned += 1;
            self.note_task_terminal(ji, si);
            Some((true, lost, host))
        } else if backoff > 0.0 {
            t.phase = Phase::Backoff;
            queue.push(now.after_secs(backoff), EventKind::TaskRestart(uid));
            Some((false, lost, host))
        } else {
            t.phase = Phase::Runnable;
            t.runnable_since = Some(now);
            self.jobs[ji].stages[si].pending.push(uid);
            Some((false, lost, host))
        }
    }

    /// Priority preemption (DESIGN.md §16): tear down a running attempt
    /// and requeue the task immediately. Unlike [`SimState::kill_task`],
    /// the lost attempt is *not* charged against `max_task_attempts` (the
    /// eviction is the scheduler's choice, not the task's failure — a
    /// repeatedly preempted task must never be abandoned) and no crash
    /// backoff applies — the victim is pending again within the same
    /// scheduling round.
    ///
    /// Returns `None` if the task was not actually running, else
    /// `Some((lost_task_seconds, host_machine))`.
    pub(crate) fn preempt_task(
        &mut self,
        uid: TaskUid,
        dirty: &mut DirtySet,
    ) -> Option<(f64, MachineId)> {
        let (ji, si, _) = self.task_loc[uid.index()];
        let info = self.teardown_attempt(uid, dirty)?;
        let host = info.machine;
        let now = self.now;
        let t = &mut self.tasks[uid.index()];
        let lost = t.start.map_or(0.0, |s| now.secs_since(s));
        t.machine = None;
        // The attempt counter was bumped at placement; hand it back.
        t.attempts = t.attempts.saturating_sub(1);
        t.phase = Phase::Runnable;
        t.runnable_since = Some(now);
        self.jobs[ji].stages[si].pending.push(uid);
        Some((lost, host))
    }

    /// Shared attempt teardown behind [`SimState::kill_task`] and
    /// [`SimState::preempt_task`]: invalidate the attempt's flows, release
    /// every ledger it charged, and decrement the job/stage running
    /// counters. The task's phase is left `Runnable`; callers refine it.
    /// Returns `None` (phase restored) if the task was not running.
    fn teardown_attempt(&mut self, uid: TaskUid, dirty: &mut DirtySet) -> Option<RunInfo> {
        let (ji, si, _) = self.task_loc[uid.index()];
        let info = match std::mem::replace(&mut self.tasks[uid.index()].phase, Phase::Runnable) {
            Phase::Running(info) => info,
            other => {
                self.tasks[uid.index()].phase = other;
                return None;
            }
        };

        // Invalidate this attempt's flows: mark done, bump generation so
        // queued FlowDone events go stale, and drop them from every link.
        for &fid in &info.flows {
            let f = &mut self.flows[fid.0];
            if f.done {
                continue;
            }
            f.done = true;
            f.remaining = 0.0;
            f.rate = 0.0;
            f.gen += 1;
            let links = f.links.clone();
            let cap = f.cap;
            for (m, r) in links {
                let ms = &mut self.machines[m.index()];
                ms.link_demand[r.index()] = (ms.link_demand[r.index()] - cap).max(0.0);
                ms.link_flows[r.index()].retain(|&x| x != fid);
                dirty.insert_link(m.index(), r.index());
            }
        }

        // Release ledgers (mirror of task_complete).
        let host = info.machine;
        {
            let ms = &mut self.machines[host.index()];
            ms.allocated = (ms.allocated - info.local_alloc).clamp_non_negative();
            ms.running -= 1;
            ms.running_tasks.retain(|&t| t != uid);
        }
        if info.local_alloc.get(Resource::Mem) > 0.0 && self.cfg.thrashing {
            dirty.insert_mem(host.index());
        }
        self.freed_hint.push(host);
        for &(m, dem) in &info.remote_alloc {
            self.machines[m.index()].allocated =
                (self.machines[m.index()].allocated - dem).clamp_non_negative();
            self.freed_hint.push(m);
        }
        self.index_touch(host.index());
        for &(m, _) in &info.remote_alloc {
            self.index_touch(m.index());
        }
        let job = &mut self.jobs[ji];
        job.allocated = (job.allocated - info.local_alloc).clamp_non_negative();
        job.running -= 1;
        job.stages[si].running -= 1;
        Some(info)
    }

    /// Crash a machine: kill every resident task attempt *and* every
    /// remote attempt with a flow traversing this machine (readers of its
    /// disks lose their input stream), zero its tracker state, and kick
    /// off re-replication of the blocks it held.
    pub fn machine_crash(
        &mut self,
        machine: MachineId,
        dirty: &mut DirtySet,
        queue: &mut EventQueue,
    ) -> CrashReport {
        let mi = machine.index();
        self.machines[mi].down = true;
        self.machines[mi].slowdown = 1.0;

        // Victims: tasks hosted here plus any task with a flow on one of
        // this machine's links (remote readers), deduped and in TaskUid
        // order for determinism.
        let mut victims: Vec<TaskUid> = self.machines[mi].running_tasks.clone();
        for ri in 0..NUM_RESOURCES {
            for &fid in &self.machines[mi].link_flows[ri] {
                victims.push(self.flows[fid.0].task);
            }
        }
        victims.sort_unstable();
        victims.dedup();

        let mut report = CrashReport {
            requeued: Vec::new(),
            abandoned: Vec::new(),
            lost_task_seconds: 0.0,
            evacuations: 0,
        };
        for uid in victims {
            if let Some((abandoned, lost, host)) = self.kill_task(uid, dirty, queue) {
                report.lost_task_seconds += lost;
                if abandoned {
                    report.abandoned.push((uid, host));
                } else {
                    report.requeued.push((uid, host));
                }
            }
        }

        // The tracker stops hearing from the machine.
        {
            let ms = &mut self.machines[mi];
            ms.usage_reported = ResourceVec::zero();
            ms.external_reported = ResourceVec::zero();
            ms.recent.clear();
        }

        // Abort external transfers through the dead machine: its links
        // carry nothing while it is down, and the transfer does not resume
        // on recovery. A re-replication stream dies on *both* ends — once
        // one side is gone the surviving peer's effort is moot (pairs sit
        // at consecutive dynamic indices, source first).
        let n_static = self.cfg.external_loads.len();
        for idx in 0..n_static + self.dynamic_loads.len() {
            let owner = if idx < n_static {
                self.cfg.external_loads[idx].machine
            } else {
                self.dynamic_loads[idx - n_static].machine
            };
            if owner != machine || self.external_cancelled[idx] {
                continue;
            }
            self.set_external(idx, false, dirty);
            self.external_cancelled[idx] = true;
            if idx >= n_static {
                let peer = n_static + ((idx - n_static) ^ 1);
                self.set_external(peer, false, dirty);
                self.external_cancelled[peer] = true;
            }
        }

        report.evacuations = self.evacuate_blocks(machine, queue);
        // Crash fallout touches many machines (victim kills released
        // remote ledgers, the dead machine's flags flipped); a crash is
        // already O(cluster) work, so refresh the whole index.
        self.index_rebuild();
        report
    }

    /// Re-replicate blocks lost to a crash (paper §4.3: evacuation shows
    /// up as external DiskRead+NetOut load at the surviving source and
    /// NetIn+DiskWrite at the new home). Transfers are serialized so each
    /// crash adds at most one concurrent transfer stream. Returns the
    /// number of blocks re-replicated.
    fn evacuate_blocks(&mut self, machine: MachineId, queue: &mut EventQueue) -> usize {
        let n = self.machines.len();
        let now_secs = self.now.secs_since(SimTime::ZERO);
        let bw = self.cfg.faults.rerep_bandwidth;
        let duration = self.cfg.faults.rerep_bytes / bw;
        let mut evacuations = 0usize;
        for bi in 0..self.blocks.len() {
            let Some(pos) = self.blocks[bi].iter().position(|&m| m == machine) else {
                continue;
            };
            if self.blocks[bi].len() == 1 {
                // Sole replica: nothing to copy from. The block becomes
                // readable again when the machine recovers; until then
                // placement treats the dead machine as its (only) source.
                continue;
            }
            self.blocks[bi].remove(pos);
            if !self.cfg.faults.evacuate {
                continue;
            }
            let sources: Vec<MachineId> = self.blocks[bi]
                .iter()
                .copied()
                .filter(|m| !self.machines[m.index()].down)
                .collect();
            let dests: Vec<MachineId> = (0..n)
                .map(MachineId)
                .filter(|m| !self.machines[m.index()].down && !self.blocks[bi].contains(m))
                .collect();
            if sources.is_empty() || dests.is_empty() {
                continue;
            }
            let src = sources[self.rng.gen_range(0..sources.len())];
            let dest = dests[self.rng.gen_range(0..dests.len())];
            self.blocks[bi].push(dest);
            self.blocks[bi].sort_unstable();

            // One transfer at a time: the k-th evacuated block starts
            // after the previous one finishes.
            let start = now_secs + evacuations as f64 * duration;
            let src_load = ResourceVec::zero()
                .with(Resource::DiskRead, bw)
                .with(Resource::NetOut, bw);
            let dest_load = ResourceVec::zero()
                .with(Resource::NetIn, bw)
                .with(Resource::DiskWrite, bw);
            for (m, load) in [(src, src_load), (dest, dest_load)] {
                let idx = self.cfg.external_loads.len() + self.dynamic_loads.len();
                self.dynamic_loads.push(ExternalLoad {
                    machine: m,
                    start,
                    duration,
                    load,
                });
                self.external_active.push(false);
                self.external_cancelled.push(false);
                queue.push(SimTime::from_secs(start), EventKind::ExternalStart(idx));
                queue.push(
                    SimTime::from_secs(start + duration),
                    EventKind::ExternalEnd(idx),
                );
            }
            evacuations += 1;
        }
        evacuations
    }

    /// Bring a crashed machine back: it starts reporting again with a
    /// clean tracker slate (suspicion is retained so flapping machines
    /// stay suspect until they prove themselves with good reports).
    pub fn machine_recover(&mut self, machine: MachineId) {
        // A reboot resets the tracker agent: transient pre-crash flaking
        // ends here (planned stale/misreporting modes persist).
        self.tracker_modes[machine.index()] = self.tracker_modes_baseline[machine.index()];
        let ms = &mut self.machines[machine.index()];
        ms.down = false;
        ms.recent.clear();
        ms.usage_reported = ResourceVec::zero();
        ms.external_reported = ResourceVec::zero();
        ms.stale_streak = 0;
        self.freed_hint.push(machine);
        self.index_touch(machine.index());
    }

    /// Enter/leave a straggler window: `factor < 1` scales the machine's
    /// effective disk/net bandwidth; `1.0` restores health.
    pub fn set_slowdown(&mut self, machine: MachineId, factor: f64, dirty: &mut DirtySet) {
        let mi = machine.index();
        self.machines[mi].slowdown = factor;
        for r in [
            Resource::DiskRead,
            Resource::DiskWrite,
            Resource::NetIn,
            Resource::NetOut,
        ] {
            dirty.insert_link(mi, r.index());
        }
    }

    /// A crash-lost task finishes its restart backoff. Returns true if it
    /// became runnable (false on a stale event).
    pub fn task_restart(&mut self, uid: TaskUid) -> bool {
        if !matches!(self.tasks[uid.index()].phase, Phase::Backoff) {
            return false;
        }
        let (ji, si, _) = self.task_loc[uid.index()];
        let now = self.now;
        let t = &mut self.tasks[uid.index()];
        t.phase = Phase::Runnable;
        t.runnable_since = Some(now);
        self.jobs[ji].stages[si].pending.push(uid);
        true
    }
}

/// What a machine crash did, so the engine can trace and count it.
///
/// Each victim carries the machine that *hosted* the killed attempt —
/// remote readers of the crashed machine's disks run elsewhere, so the
/// host is not always the crashed machine itself.
#[derive(Debug, Clone)]
pub(crate) struct CrashReport {
    /// Tasks whose attempt was lost but which will run again (directly
    /// runnable or in backoff), with the machine that hosted the attempt.
    pub requeued: Vec<(TaskUid, MachineId)>,
    /// Tasks permanently failed (attempt cap reached), with the machine
    /// that hosted the final attempt.
    pub abandoned: Vec<(TaskUid, MachineId)>,
    /// Sum over killed attempts of seconds of progress lost.
    pub lost_task_seconds: f64,
    /// Blocks re-replicated off the dead machine.
    pub evacuations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::units::{GB, MB};
    use tetris_resources::MachineSpec;
    use tetris_workload::gen::{TaskParams, WorkloadBuilder};

    fn one_task_workload(cores: f64, dur: f64) -> Workload {
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        b.add_stage(j, "s", vec![], 1, |_| TaskParams {
            cores,
            mem: GB,
            duration: dur,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        b.finish()
    }

    fn mk_state(w: Workload) -> SimState {
        let cluster = ClusterConfig::uniform(2, MachineSpec::paper_small());
        SimState::new(cluster, w, SimConfig::default())
    }

    #[test]
    fn arrival_unlocks_root_stage() {
        let mut st = mk_state(one_task_workload(1.0, 10.0));
        assert!(matches!(st.tasks[0].phase, Phase::Blocked));
        st.job_arrives(JobId(0));
        assert!(matches!(st.tasks[0].phase, Phase::Runnable));
        assert_eq!(st.jobs[0].stages[0].pending, vec![TaskUid(0)]);
    }

    #[test]
    fn placement_creates_cpu_flow_and_event() {
        let mut st = mk_state(one_task_workload(2.0, 10.0));
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        assert_eq!(st.flows.len(), 1);
        assert_eq!(st.flows[0].rate, 2.0); // uncontended: full cap
        let ev = q.pop().unwrap();
        assert_eq!(ev.time, SimTime::from_secs(10.0));
    }

    #[test]
    fn contention_halves_rate() {
        // Two 3-core tasks on a 4-core machine: Σcap 6 > 4 → factor 2/3.
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        b.add_stage(j, "s", vec![], 2, |_| TaskParams {
            cores: 3.0,
            mem: GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let mut st = mk_state(b.finish());
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.apply_assignment(TaskUid(1), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        let expect = 3.0 * (4.0 / 6.0);
        assert!((st.flows[0].rate - expect).abs() < 1e-9);
        assert!((st.flows[1].rate - expect).abs() < 1e-9);
    }

    #[test]
    fn flow_done_completes_task() {
        let mut st = mk_state(one_task_workload(1.0, 5.0));
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        let ev = q.pop().unwrap();
        st.now = ev.time;
        let done = match ev.kind {
            EventKind::FlowDone { flow, gen } => st.flow_done(flow, gen, &mut dirty, &mut q),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(done, Some(TaskUid(0)));
        let done = st.task_complete(TaskUid(0), &mut dirty);
        assert!(done.job_finished());
        assert_eq!(st.jobs_remaining, 0);
        assert_eq!(st.jobs[0].finish, Some(SimTime::from_secs(5.0)));
        // Ledger fully released.
        assert!(st.machines[0].allocated.is_zero());
    }

    #[test]
    fn stale_flow_events_ignored() {
        let mut st = mk_state(one_task_workload(1.0, 5.0));
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        // Wrong generation → ignored.
        assert_eq!(st.flow_done(FlowId(0), 999, &mut dirty, &mut q), None);
    }

    #[test]
    fn availability_reflects_allocation_and_tracker() {
        let mut st = mk_state(one_task_workload(2.0, 10.0));
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        let avail = st.availability(MachineId(0), false);
        assert_eq!(avail.get(Resource::Cpu), 2.0); // 4 - 2
        assert_eq!(avail.get(Resource::Mem), 15.0 * GB); // 16 - 1

        // External load visible only after a tracker report, and only to
        // tracker-aware policies.
        st.cfg.external_loads.push(crate::config::ExternalLoad {
            machine: MachineId(0),
            start: 0.0,
            duration: 10.0,
            load: ResourceVec::zero().with(Resource::DiskWrite, 50.0 * MB),
        });
        // Keep the activation flags parallel to the injected load.
        st.external_active.push(false);
        st.external_cancelled.push(false);
        st.set_external(0, true, &mut dirty);
        assert_eq!(
            st.availability(MachineId(0), true).get(Resource::DiskWrite),
            st.machines[0].capacity.get(Resource::DiskWrite)
        );
        st.tracker_report(&mut Vec::new());
        let dw_avail = st.availability(MachineId(0), true).get(Resource::DiskWrite);
        assert_eq!(
            dw_avail,
            st.machines[0].capacity.get(Resource::DiskWrite) - 50.0 * MB
        );
        // Tracker-unaware view unchanged.
        assert_eq!(
            st.availability(MachineId(0), false)
                .get(Resource::DiskWrite),
            st.machines[0].capacity.get(Resource::DiskWrite)
        );
    }

    #[test]
    fn thrashing_slows_overcommitted_machine() {
        // Two tasks each demanding 12 GB on a 16 GB machine → 24/16 = 1.5×
        // over-commit → thrash factor 2/3.
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        b.add_stage(j, "s", vec![], 2, |_| TaskParams {
            cores: 1.0,
            mem: 12.0 * GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let mut st = mk_state(b.finish());
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.apply_assignment(TaskUid(1), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        // CPU link uncontended (2 ≤ 4) but memory 24 GB > 16 GB:
        // thrash factor (16/24)^1.35 with the default exponent.
        let expect = 1.0 * (16.0f64 / 24.0).powf(1.35);
        assert!(
            (st.flows[0].rate - expect).abs() < 1e-9,
            "{}",
            st.flows[0].rate
        );
    }

    #[test]
    fn remote_read_creates_three_link_flow() {
        // Task reads a stored block not replicated on its host.
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        let input = b.stored_input(100.0 * MB);
        b.add_stage(j, "s", vec![], 1, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![input],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let w = b.finish();
        let cluster = ClusterConfig::uniform(4, MachineSpec::paper_small());
        let mut cfg = SimConfig::default();
        cfg.replication = 1;
        let mut st = SimState::new(cluster, w, cfg);
        st.job_arrives(JobId(0));
        let replica = st.blocks[0][0];
        // Place on a different machine.
        let host = MachineId((replica.index() + 1) % 4);
        let plan = st.placement_plan(TaskUid(0), host);
        assert!(plan.is_remote());
        assert_eq!(plan.remote_reads, vec![(replica, 100.0 * MB)]);
        assert_eq!(plan.local_read_bytes, 0.0);
        assert!(plan.local.get(Resource::NetIn) > 0.0);
        assert_eq!(plan.local.get(Resource::DiskRead), 0.0);

        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), host, &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        // cpu flow + remote read flow.
        assert_eq!(st.flows.len(), 2);
        let remote_flow = &st.flows[1];
        assert_eq!(remote_flow.links.len(), 3);
        // Remote source charged for DiskRead + NetOut.
        assert!(st.machines[replica.index()].allocated.get(Resource::NetOut) > 0.0);
    }

    #[test]
    fn local_placement_has_no_remote_demand() {
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        let input = b.stored_input(100.0 * MB);
        b.add_stage(j, "s", vec![], 1, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![input],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let w = b.finish();
        let cluster = ClusterConfig::uniform(4, MachineSpec::paper_small());
        let mut cfg = SimConfig::default();
        cfg.replication = 2;
        let mut st = SimState::new(cluster, w, cfg);
        st.job_arrives(JobId(0));
        let replica = st.blocks[0][0];
        let plan = st.placement_plan(TaskUid(0), replica);
        assert!(!plan.is_remote());
        assert_eq!(plan.local_read_bytes, 100.0 * MB);
        assert_eq!(plan.local.get(Resource::NetIn), 0.0);
        assert!(plan.local.get(Resource::DiskRead) > 0.0);
        assert_eq!(plan.remote_fraction(), 0.0);
    }

    #[test]
    fn task_failure_requeues() {
        let w = one_task_workload(1.0, 5.0);
        let cluster = ClusterConfig::uniform(2, MachineSpec::paper_small());
        let mut cfg = SimConfig::default();
        cfg.task_failure_prob = 0.999_999;
        cfg.max_task_attempts = 2;
        let mut st = SimState::new(cluster, w, cfg);
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        st.now = SimTime::from_secs(5.0);
        // First completion fails (attempts=1 < max 2) → requeued.
        let done = st.task_complete(TaskUid(0), &mut dirty);
        assert_eq!(
            done,
            TaskCompletion::Requeued {
                machine: MachineId(0)
            }
        );
        assert!(matches!(st.tasks[0].phase, Phase::Runnable));
        assert_eq!(st.jobs[0].stages[0].pending, vec![TaskUid(0)]);
        // Second attempt hits the attempt cap and must complete.
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        let done = st.task_complete(TaskUid(0), &mut dirty);
        assert!(done.job_finished());
    }

    #[test]
    fn shuffle_distribution_feeds_downstream_plan() {
        // map (2 tasks) → reduce (1 task); maps write output, reduce reads
        // it from wherever maps ran.
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        let in0 = b.stored_input(10.0 * MB);
        let in1 = b.stored_input(10.0 * MB);
        b.add_stage(j, "map", vec![], 2, |i| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 5.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![if i == 0 { in0 } else { in1 }],
            output_bytes: 50.0 * MB,
            remote_frac: 1.0,
        });
        b.add_stage(j, "reduce", vec![0], 1, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 5.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![tetris_workload::InputSpec {
                source: InputSource::Shuffle { stage: 0 },
                bytes: 100.0 * MB,
            }],
            output_bytes: 10.0 * MB,
            remote_frac: 1.0,
        });
        let w = b.finish();
        let cluster = ClusterConfig::uniform(3, MachineSpec::paper_small());
        let mut st = SimState::new(cluster, w, SimConfig::default());
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.apply_assignment(TaskUid(1), MachineId(1), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        // Finish both maps.
        st.now = SimTime::from_secs(5.1);
        for fid in 0..st.flows.len() {
            let gen = st.flows[fid].gen;
            if let Some(t) = st.flow_done(FlowId(fid), gen, &mut dirty, &mut q) {
                st.task_complete(t, &mut dirty);
            }
        }
        // Reduce unlocked; its plan on machine 0 reads 50 MB locally,
        // 50 MB from machine 1.
        assert!(matches!(st.tasks[2].phase, Phase::Runnable));
        let plan = st.placement_plan(TaskUid(2), MachineId(0));
        assert!((plan.local_read_bytes - 50.0 * MB).abs() < 1.0);
        assert_eq!(plan.remote_reads.len(), 1);
        assert_eq!(plan.remote_reads[0].0, MachineId(1));
        assert!((plan.remote_reads[0].1 - 50.0 * MB).abs() < 1.0);
        assert!((plan.remote_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fanin_cap_preserves_bytes() {
        // Remote map from many sources with a tight fan-in.
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        let inputs: Vec<_> = (0..8).map(|_| b.stored_input(10.0 * MB)).collect();
        b.add_stage(j, "s", vec![], 1, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: inputs.clone(),
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let w = b.finish();
        let cluster = ClusterConfig::uniform(16, MachineSpec::paper_small());
        let mut cfg = SimConfig::default();
        cfg.replication = 1;
        cfg.shuffle_fanin = 3;
        cfg.seed = 7;
        let mut st = SimState::new(cluster, w, cfg);
        st.job_arrives(JobId(0));
        // Find a host with no replicas.
        let host = (0..16)
            .map(MachineId)
            .find(|m| !st.blocks.iter().any(|r| r.contains(m)))
            .expect("some machine without replicas");
        let plan = st.placement_plan(TaskUid(0), host);
        assert!(plan.remote_reads.len() <= 3);
        let total: f64 =
            plan.remote_reads.iter().map(|(_, b)| b).sum::<f64>() + plan.local_read_bytes;
        assert!(
            (total - 80.0 * MB).abs() < 1.0,
            "bytes not conserved: {total}"
        );
    }

    #[test]
    fn usage_never_exceeds_rate_capacity() {
        // Over-allocate CPU heavily; usage must stay at capacity.
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        b.add_stage(j, "s", vec![], 6, |_| TaskParams {
            cores: 2.0,
            mem: 0.5 * GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let mut st = mk_state(b.finish());
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        for i in 0..6 {
            st.apply_assignment(TaskUid(i), MachineId(0), &mut dirty, &mut q);
        }
        st.recompute_dirty(&mut dirty, &mut q);
        let usage = st.machines[0].usage(&st.flows);
        assert!(usage.get(Resource::Cpu) <= 4.0 + 1e-9);
        // Allocation ledger, by contrast, records the over-allocation.
        assert_eq!(st.machines[0].allocated.get(Resource::Cpu), 12.0);
        assert!(st.availability(MachineId(0), false).get(Resource::Cpu) < 0.0);
    }

    #[test]
    fn crash_kills_resident_task_and_requeues() {
        let mut st = mk_state(one_task_workload(2.0, 10.0));
        st.cfg.faults.restart_backoff = 0.0;
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        st.now = SimTime::from_secs(3.0);
        let rep = st.machine_crash(MachineId(0), &mut dirty, &mut q);
        assert_eq!(rep.requeued, vec![(TaskUid(0), MachineId(0))]);
        assert!(rep.abandoned.is_empty());
        assert!((rep.lost_task_seconds - 3.0).abs() < 1e-9);
        // Attempt fully torn down: runnable again, ledgers released,
        // machine offers nothing, queued FlowDone is stale.
        assert!(matches!(st.tasks[0].phase, Phase::Runnable));
        assert_eq!(st.jobs[0].stages[0].pending, vec![TaskUid(0)]);
        assert!(st.machines[0].allocated.is_zero());
        assert!(st.machines[0].down);
        assert!(st.availability(MachineId(0), false).is_zero());
        assert!(st.availability(MachineId(0), true).is_zero());
        assert!(!st.assignment_valid(TaskUid(0), MachineId(0)));
        assert!(st.assignment_valid(TaskUid(0), MachineId(1)));
        assert!(st.flows[0].done);
        // Recovery restores availability.
        st.machine_recover(MachineId(0));
        assert!(!st.machines[0].down);
        assert_eq!(st.availability(MachineId(0), false).get(Resource::Cpu), 4.0);
    }

    #[test]
    fn crash_respects_restart_backoff() {
        let mut st = mk_state(one_task_workload(2.0, 10.0));
        st.cfg.faults.restart_backoff = 7.5;
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        st.now = SimTime::from_secs(1.0);
        let rep = st.machine_crash(MachineId(0), &mut dirty, &mut q);
        assert_eq!(rep.requeued, vec![(TaskUid(0), MachineId(0))]);
        assert!(matches!(st.tasks[0].phase, Phase::Backoff));
        assert!(st.jobs[0].stages[0].pending.is_empty());
        // The restart event fires after the backoff.
        let restart = loop {
            let ev = q.pop().expect("restart event queued");
            if let EventKind::TaskRestart(uid) = ev.kind {
                break (ev.time, uid);
            }
        };
        assert_eq!(restart, (SimTime::from_secs(8.5), TaskUid(0)));
        st.now = restart.0;
        assert!(st.task_restart(TaskUid(0)));
        assert!(matches!(st.tasks[0].phase, Phase::Runnable));
        assert_eq!(st.jobs[0].stages[0].pending, vec![TaskUid(0)]);
        // A second restart for the same task is stale.
        assert!(!st.task_restart(TaskUid(0)));
    }

    #[test]
    fn crash_abandons_task_out_of_attempts_and_job_terminates() {
        let w = one_task_workload(2.0, 10.0);
        let cluster = ClusterConfig::uniform(2, MachineSpec::paper_small());
        let mut cfg = SimConfig::default();
        cfg.max_task_attempts = 1;
        let mut st = SimState::new(cluster, w, cfg);
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        st.now = SimTime::from_secs(2.0);
        let rep = st.machine_crash(MachineId(0), &mut dirty, &mut q);
        assert_eq!(rep.abandoned, vec![(TaskUid(0), MachineId(0))]);
        assert!(rep.requeued.is_empty());
        // Terminal-failure audit: the job still reaches a terminal state.
        assert!(matches!(st.tasks[0].phase, Phase::Abandoned));
        assert_eq!(st.tasks_abandoned, 1);
        assert_eq!(st.jobs_remaining, 0);
        assert_eq!(st.jobs[0].finish, Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn crash_kills_remote_reader_and_evacuates_blocks() {
        // A task reads a block from a remote source; the *source* crashes:
        // the reader's attempt dies and the block is re-replicated.
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        let input = b.stored_input(100.0 * MB);
        b.add_stage(j, "s", vec![], 1, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![input],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let w = b.finish();
        let cluster = ClusterConfig::uniform(4, MachineSpec::paper_small());
        let mut cfg = SimConfig::default();
        cfg.replication = 2;
        cfg.faults.restart_backoff = 0.0;
        let mut st = SimState::new(cluster, w, cfg);
        st.job_arrives(JobId(0));
        let replicas = st.blocks[0].clone();
        let host = (0..4)
            .map(MachineId)
            .find(|m| !replicas.contains(m))
            .expect("non-replica host");
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), host, &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        // The deterministic replica choice for uid 0 is replicas[0].
        let src = replicas[0];
        st.now = SimTime::from_secs(1.0);
        let rep = st.machine_crash(src, &mut dirty, &mut q);
        // The reader lost its input stream even though its host is fine —
        // the report carries the *host*, not the crashed source.
        assert_eq!(rep.requeued, vec![(TaskUid(0), host)]);
        assert!(matches!(st.tasks[0].phase, Phase::Runnable));
        assert!(st.machines[host.index()].allocated.is_zero());
        // Block evacuated: the dead machine no longer appears as a
        // replica, replication is restored, and the copy shows up as a
        // pair of dynamic external loads (source + destination).
        assert_eq!(rep.evacuations, 1);
        assert!(!st.blocks[0].contains(&src));
        assert_eq!(st.blocks[0].len(), 2);
        assert_eq!(st.dynamic_loads.len(), 2);
        let placed = st.placement_plan(TaskUid(0), host);
        assert!(placed
            .remote_reads
            .iter()
            .all(|(m, _)| !st.machines[m.index()].down));
    }

    #[test]
    fn sole_replica_survives_crash_without_evacuation() {
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        let input = b.stored_input(10.0 * MB);
        b.add_stage(j, "s", vec![], 1, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![input],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let w = b.finish();
        let cluster = ClusterConfig::uniform(3, MachineSpec::paper_small());
        let mut cfg = SimConfig::default();
        cfg.replication = 1;
        let mut st = SimState::new(cluster, w, cfg);
        let only = st.blocks[0][0];
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        let rep = st.machine_crash(only, &mut dirty, &mut q);
        // Nothing to copy from: the replica entry is retained so the
        // block is readable again after recovery.
        assert_eq!(rep.evacuations, 0);
        assert_eq!(st.blocks[0], vec![only]);
        assert!(st.dynamic_loads.is_empty());
    }

    #[test]
    fn slowdown_scales_io_links_only() {
        // A disk-write-bound task at half disk bandwidth runs at half rate;
        // CPU links are untouched by the straggler window.
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 0.0);
        b.add_stage(j, "s", vec![], 1, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 10.0,
            cpu_frac: 0.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 500.0 * MB,
            remote_frac: 1.0,
        });
        let mut st = mk_state(b.finish());
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        let dw = st
            .flows
            .iter()
            .position(|f| f.links.iter().any(|&(_, r)| r == Resource::DiskWrite))
            .expect("disk-write flow");
        let healthy = st.flows[dw].rate;
        assert!(healthy > 0.0);
        // Enter a slowdown window with a factor small enough to bite even
        // an under-subscribed link.
        let cap = st.machines[0].capacity.get(Resource::DiskWrite);
        let factor = (st.flows[dw].cap / cap) * 0.5;
        st.set_slowdown(MachineId(0), factor, &mut dirty);
        st.recompute_dirty(&mut dirty, &mut q);
        assert!(st.flows[dw].rate < healthy);
        // Window ends: full rate restored.
        st.set_slowdown(MachineId(0), 1.0, &mut dirty);
        st.recompute_dirty(&mut dirty, &mut q);
        assert!((st.flows[dw].rate - healthy).abs() < 1e-9);
    }

    #[test]
    fn suspicion_rises_on_missed_reports_and_decays_on_good_ones() {
        let mut st = mk_state(one_task_workload(1.0, 10.0));
        st.cfg.faults.stale_frac = 0.5; // any non-zero knob enables faults
        let mut transitions = Vec::new();
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        st.machine_crash(MachineId(0), &mut dirty, &mut q);
        let reports_to_suspect =
            (tracker::SUSPECT_THRESHOLD / tracker::MISSED_REPORT_SUSPICION).ceil() as usize;
        for _ in 0..reports_to_suspect {
            st.tracker_report(&mut transitions);
        }
        assert_eq!(transitions, vec![(MachineId(0), true)]);
        assert!(st.machines[0].suspicion >= tracker::SUSPECT_THRESHOLD);
        // Machine 1 stayed honest and unsuspected.
        assert_eq!(st.machines[1].suspicion, 0.0);
        // Recovery + good reports clear the suspicion.
        st.machine_recover(MachineId(0));
        transitions.clear();
        for _ in 0..16 {
            st.tracker_report(&mut transitions);
        }
        assert_eq!(transitions, vec![(MachineId(0), false)]);
        assert_eq!(st.machines[0].suspicion, 0.0);
    }

    #[test]
    fn stale_tracker_mode_freezes_reports_and_raises_suspicion() {
        let mut st = mk_state(one_task_workload(2.0, 10.0));
        st.cfg.faults.stale_frac = 0.5;
        st.tracker_modes[0] = TrackerMode::Stale;
        st.job_arrives(JobId(0));
        let mut dirty = DirtySet::default();
        let mut q = EventQueue::new();
        let mut transitions = Vec::new();
        st.tracker_report(&mut transitions);
        // Place a task: allocation moves, but the stale report stays
        // frozen at zero usage.
        st.apply_assignment(TaskUid(0), MachineId(0), &mut dirty, &mut q);
        st.recompute_dirty(&mut dirty, &mut q);
        for _ in 0..16 {
            st.tracker_report(&mut transitions);
        }
        assert!(st.machines[0].usage_reported.is_zero());
        assert_eq!(transitions, vec![(MachineId(0), true)]);
    }
}
