//! Machine-side free-capacity index: per-resource bucketed availability
//! classes maintained incrementally from state mutations, so cold-pass
//! placement queries touch only the machines that can matter instead of
//! scanning the cluster (DESIGN.md §13).
//!
//! The index stores, per machine, a cheap **upper bound** `ub(m)` on the
//! scheduler-visible availability vector, valid for *every* availability
//! mode the view can serve:
//!
//! * down machine → availability is the zero vector → `ub = 0`;
//! * `reclaim_idle = false` → tracker-unaware availability is exactly
//!   `capacity − allocated` and tracker-aware availability subtracts a
//!   further non-negative `external_reported`, so `ub = capacity −
//!   allocated` bounds both;
//! * `reclaim_idle = true` → tracker-aware availability is `capacity −
//!   (usage_reported + ramp-up allowance)` with the memory component
//!   floored by the allocation ledger. Allowances are non-negative, so
//!   `capacity − usage_adj` (usage with memory replaced by allocated
//!   memory) bounds it at all times; the component-wise max with
//!   `capacity − allocated` additionally covers tracker-unaware readers.
//!
//! Because `ub(m) ≥ availability(m)` component-wise, any query of the form
//! "availability ≥ x" can be answered from a **superset** computed on the
//! buckets and then filtered exactly — pruning is sound, never lossy.
//! Buckets are power-of-two classes of the `ub` component (65 per
//! resource: one for `≤ 0`, one per clamped binary exponent), so a
//! threshold query unions a bucket suffix instead of scanning machines.
//!
//! Every query path is pinned decision-identical to the linear-scan
//! oracle by `sim/tests/prop_index.rs` and the `scale` experiment's
//! internal assertion.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use tetris_resources::{Resource, ResourceVec, NUM_RESOURCES};

/// Buckets per resource: bucket 0 holds `ub ≤ 0` (and NaN, defensively);
/// bucket `k ∈ [1, 64]` holds values with clamped binary exponent
/// `k − 17`, i.e. `x ∈ [2^(k−17), 2^(k−16))` for interior buckets.
pub(crate) const NUM_BUCKETS: usize = 65;
const EXP_MIN: i32 = -16;
const EXP_MAX: i32 = 47;

/// Bucket of a non-negative quantity. Monotone: `x ≤ y ⇒ bucket_of(x) ≤
/// bucket_of(y)`, which is what makes suffix unions sound.
#[inline]
pub(crate) fn bucket_of(x: f64) -> usize {
    if !(x > 0.0) {
        return 0; // ≤ 0 or NaN
    }
    // Biased exponent from the bit pattern: exact floor(log2) for normal
    // positives, no libm and fully deterministic. Subnormals give e =
    // −1023 and clamp to the bottom interior bucket; +inf gives e = 1024
    // and clamps to the top.
    let e = ((x.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    (e.clamp(EXP_MIN, EXP_MAX) + 1 - EXP_MIN) as usize
}

/// `2^e` without libm (e within the clamp range, so always normal).
#[inline]
fn two_pow(e: i32) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Exclusive upper bound of every value in buckets `< k` (for interior
/// `k`): members of bucket `j ≤ k − 1` satisfy `x < 2^(k − 17)`.
#[inline]
fn below_bucket_bound(k: usize) -> f64 {
    two_pow(k as i32 - 17)
}

/// Hit/prune counters, accumulated with interior mutability so `&self`
/// query paths can report. Drained once per run into the obs registry.
#[derive(Debug, Default)]
pub(crate) struct IndexStats {
    /// Indexed candidate/floor queries served.
    pub queries: AtomicU64,
    /// Considered machines excluded from query results by the index.
    pub pruned: AtomicU64,
    /// Machines returned across indexed queries.
    pub returned: AtomicU64,
    /// Availability evaluations performed by envelope descents.
    pub env_visits: AtomicU64,
}

/// A drained, plain-integer snapshot of [`IndexStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStatsSnapshot {
    /// Indexed candidate/floor queries served.
    pub queries: u64,
    /// Considered machines excluded from query results by the index.
    pub pruned: u64,
    /// Machines returned across indexed queries.
    pub returned: u64,
    /// Availability evaluations performed by envelope descents.
    pub env_visits: u64,
}

/// Cached per-(resource, bucket) maximum of the considered members' `ub`
/// component, plus its argmax machine. Maintained O(1) by [`MachineIndex::
/// refresh`] — marked stale (never rescanned eagerly) when the cached
/// argmax leaves the bucket, drops its value, or stops being considered —
/// and lazily revalidated by the envelope descent. Atomics exist so that
/// `&self` query methods can revalidate the cache, including the sharded
/// heartbeat's concurrent read-only fan-out (`crate::sharded`): all
/// mutation happens between queries (`refresh` takes `&mut self`), and
/// concurrent revalidations recompute identical values from `ub`, so any
/// interleaving of their stores leaves the same cache. The `stale` flag
/// is released/acquired so a reader seeing `stale == false` also sees
/// the matching `ub`/`mi` stores. Scoped (overlay-adjusted) availability
/// closures are safe here too: the cache only ever holds `ub`-derived
/// values, never closure results.
#[derive(Debug)]
struct BucketMax {
    /// Bit pattern of the max `ub` component (`NEG_INFINITY` when the
    /// bucket has no considered member).
    ub: AtomicU64,
    /// Machine achieving it (`u32::MAX` when none).
    mi: AtomicU32,
    stale: AtomicBool,
}

impl Default for BucketMax {
    fn default() -> Self {
        BucketMax {
            ub: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            mi: AtomicU32::new(u32::MAX),
            stale: AtomicBool::new(false),
        }
    }
}

impl BucketMax {
    fn reset(&self) {
        self.ub
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        self.mi.store(u32::MAX, Ordering::Relaxed);
        self.stale.store(false, Ordering::Relaxed);
    }
}

/// The free-capacity index. Lives inside `SimState`; refreshed by the
/// state mutators that move a machine's ledger, tracker report, crash
/// flag or suspicion (the PR-5 event taxonomy's touch points).
#[derive(Debug)]
pub(crate) struct MachineIndex {
    /// False ⇒ the index holds nothing and every query must use the
    /// linear-scan path (`SimConfig::machine_index = false`).
    pub enabled: bool,
    /// Availability upper bound per machine (may be negative).
    ub: Vec<ResourceVec>,
    /// Current bucket per machine per resource.
    bkt: Vec<[u8; NUM_RESOURCES]>,
    /// Position of each machine inside its bucket list, per resource.
    pos: Vec<[u32; NUM_RESOURCES]>,
    /// `buckets[r][b]` = machines whose `ub[r]` falls in bucket `b`.
    buckets: Vec<Vec<Vec<u32>>>,
    /// `bmax[r][b]` = cached max `ub[r]` over bucket `b`'s considered
    /// members (see [`BucketMax`]) — what lets the envelope descent skip
    /// or settle a bucket without scanning its membership.
    bmax: Vec<Vec<BucketMax>>,
    /// `!down && !suspect` mirror.
    considered: Vec<bool>,
    n_considered: usize,
    /// Distinct machine capacity vectors, first-seen over machine ids.
    classes: Vec<ResourceVec>,
    class_of: Vec<u32>,
    /// Considered machines per capacity class (for the capacity
    /// envelope without a scan).
    class_considered: Vec<usize>,
    pub stats: IndexStats,
}

impl MachineIndex {
    /// An empty, disabled index (no memory beyond the struct).
    pub fn disabled() -> Self {
        MachineIndex {
            enabled: false,
            ub: Vec::new(),
            bkt: Vec::new(),
            pos: Vec::new(),
            buckets: Vec::new(),
            bmax: Vec::new(),
            considered: Vec::new(),
            n_considered: 0,
            classes: Vec::new(),
            class_of: Vec::new(),
            class_considered: Vec::new(),
            stats: IndexStats::default(),
        }
    }

    /// Build the index skeleton for `capacities.len()` machines: capacity
    /// classes are fixed for the simulation's lifetime, bucket contents
    /// start empty and are filled by the caller's initial refresh sweep.
    pub fn new(capacities: &[ResourceVec]) -> Self {
        let n = capacities.len();
        let mut classes: Vec<ResourceVec> = Vec::new();
        let mut class_of = Vec::with_capacity(n);
        for cap in capacities {
            let cls = match classes.iter().position(|c| c == cap) {
                Some(i) => i,
                None => {
                    classes.push(*cap);
                    classes.len() - 1
                }
            };
            class_of.push(cls as u32);
        }
        let class_considered = vec![0usize; classes.len()];
        MachineIndex {
            enabled: true,
            ub: vec![ResourceVec::zero(); n],
            bkt: vec![[0u8; NUM_RESOURCES]; n],
            pos: vec![[0u32; NUM_RESOURCES]; n],
            buckets: (0..NUM_RESOURCES)
                .map(|_| vec![Vec::new(); NUM_BUCKETS])
                .collect(),
            bmax: (0..NUM_RESOURCES)
                .map(|_| (0..NUM_BUCKETS).map(|_| BucketMax::default()).collect())
                .collect(),
            considered: vec![false; n],
            n_considered: 0,
            classes,
            class_of,
            class_considered,
            stats: IndexStats::default(),
        }
    }

    /// Seed bucket membership: every machine starts in bucket 0 of every
    /// resource; the caller's refresh sweep moves it where it belongs.
    pub fn seed(&mut self) {
        for r in 0..NUM_RESOURCES {
            self.buckets[r][0].clear();
            for mi in 0..self.ub.len() {
                self.pos[mi][r] = self.buckets[r][0].len() as u32;
                self.bkt[mi][r] = 0;
                self.buckets[r][0].push(mi as u32);
            }
            for bm in &self.bmax[r] {
                bm.reset();
            }
        }
    }

    /// Refresh one machine's entry: new availability upper bound and
    /// considered flag. O(1) amortized per resource (bucket swap-remove).
    pub fn refresh(&mut self, mi: usize, ub: ResourceVec, considered: bool) {
        if !self.enabled {
            return;
        }
        self.ub[mi] = ub;
        for r in Resource::ALL {
            let ri = r.index();
            let u = ub.get(r);
            let nb = bucket_of(u) as u8;
            let ob = self.bkt[mi][ri];
            if nb != ob {
                // Leaving a bucket whose cached argmax we were stales
                // its max cache (revalidated lazily at query time).
                let bm = &mut self.bmax[ri][ob as usize];
                if !*bm.stale.get_mut() && *bm.mi.get_mut() == mi as u32 {
                    *bm.stale.get_mut() = true;
                }
                // Swap-remove from the old bucket, fixing the moved
                // member.
                let p = self.pos[mi][ri] as usize;
                let old = &mut self.buckets[ri][ob as usize];
                let last = old.pop().expect("bucket member");
                if last as usize != mi {
                    old[p] = last;
                    self.pos[last as usize][ri] = p as u32;
                }
                let new = &mut self.buckets[ri][nb as usize];
                self.pos[mi][ri] = new.len() as u32;
                new.push(mi as u32);
                self.bkt[mi][ri] = nb;
            }
            // Fold the (possibly unchanged-bucket) new value into the
            // destination bucket's max cache under the *new* considered
            // flag. Keeping an equal-valued incumbent argmax makes the
            // cache deterministic for a given operation history.
            let bm = &mut self.bmax[ri][nb as usize];
            if !*bm.stale.get_mut() {
                let bmi = *bm.mi.get_mut();
                let bub = f64::from_bits(*bm.ub.get_mut());
                if considered {
                    if bmi == mi as u32 {
                        if u >= bub {
                            *bm.ub.get_mut() = u.to_bits();
                        } else {
                            // The argmax itself dropped: another member
                            // may now hold the max.
                            *bm.stale.get_mut() = true;
                        }
                    } else if u > bub {
                        *bm.ub.get_mut() = u.to_bits();
                        *bm.mi.get_mut() = mi as u32;
                    }
                } else if bmi == mi as u32 {
                    *bm.stale.get_mut() = true;
                }
            }
        }
        if considered != self.considered[mi] {
            self.considered[mi] = considered;
            let cls = self.class_of[mi] as usize;
            if considered {
                self.n_considered += 1;
                self.class_considered[cls] += 1;
            } else {
                self.n_considered -= 1;
                self.class_considered[cls] -= 1;
            }
        }
    }

    /// Number of machines that are neither down nor suspect.
    pub fn considered_count(&self) -> usize {
        self.n_considered
    }

    /// Component-wise maximum capacity over considered machines, via the
    /// per-class considered counts (no machine scan).
    pub fn capacity_envelope(&self) -> ResourceVec {
        let mut env = ResourceVec::zero();
        for (cls, cap) in self.classes.iter().enumerate() {
            if self.class_considered[cls] > 0 {
                env = env.max(cap);
            }
        }
        env
    }

    /// Component-wise maximum of `clamp_non_negative(availability)` over
    /// considered machines — **exact**, not a bound. Per resource the
    /// buckets are descended from the top, best-`ub` member first, and
    /// the descent stops once the running maximum dominates the tightest
    /// remaining upper bound (`avail ≤ ub`). A bucket holding the whole
    /// cluster therefore costs one availability evaluation when its best
    /// member's availability meets its bound (the common case: an
    /// untouched resource), never a full scan of evaluations. `avail` is
    /// consulted once per distinct machine (memoized across the six
    /// descents) and must be the view's availability for the caller's
    /// tracker mode.
    pub fn availability_envelope(
        &self,
        mut avail: impl FnMut(usize) -> ResourceVec,
    ) -> ResourceVec {
        let mut env = ResourceVec::zero();
        let mut memo: HashMap<u32, ResourceVec> = HashMap::new();
        let mut visits = 0u64;
        // Best-first scratch: max-heap keyed on the `ub` component's bit
        // pattern (order-preserving for the positive values interior
        // buckets hold), machine id ascending on key ties so the visit
        // order — and the `env_visits` counter — is deterministic.
        let mut scratch: Vec<(u64, std::cmp::Reverse<u32>)> = Vec::new();
        for r in Resource::ALL {
            let ri = r.index();
            // Bucket 0 members have ub[r] ≤ 0 ⇒ clamped avail[r] = 0 ≤
            // env[r] (env starts at 0), so the descent skips bucket 0.
            for b in (1..NUM_BUCKETS).rev() {
                if env.get(r) >= below_bucket_bound(b + 1) {
                    // Everything in buckets ≤ b sits strictly below the
                    // running maximum for this resource.
                    break;
                }
                let members = &self.buckets[ri][b];
                if members.is_empty() {
                    continue;
                }
                // Fast path: the bucket's cached max-ub member (kept
                // fresh by `refresh`, revalidated here if stale);
                // evaluating it alone settles the bucket whenever its
                // availability meets its bound (an untouched resource, a
                // freshly freed machine) — no membership scan, no heap.
                let bm = &self.bmax[ri][b];
                let (maxub, bmi);
                if bm.stale.load(Ordering::Acquire) {
                    let (mut mu, mut mmi) = (f64::NEG_INFINITY, u32::MAX);
                    for &mi in members {
                        if !self.considered[mi as usize] {
                            continue;
                        }
                        let u = self.ub[mi as usize].get(r);
                        if u > mu {
                            mu = u;
                            mmi = mi;
                        }
                    }
                    bm.ub.store(mu.to_bits(), Ordering::Relaxed);
                    bm.mi.store(mmi, Ordering::Relaxed);
                    // Release pairs with the Acquire above: a concurrent
                    // reader that observes `stale == false` also observes
                    // the ub/mi stores of the revalidation that cleared it
                    // (all revalidations of one epoch store identical
                    // values, so racing writers are benign).
                    bm.stale.store(false, Ordering::Release);
                    (maxub, bmi) = (mu, mmi);
                } else {
                    maxub = f64::from_bits(bm.ub.load(Ordering::Relaxed));
                    bmi = bm.mi.load(Ordering::Relaxed);
                }
                if env.get(r) >= maxub || bmi == u32::MAX {
                    continue;
                }
                let a = *memo.entry(bmi).or_insert_with(|| {
                    visits += 1;
                    avail(bmi as usize).clamp_non_negative()
                });
                // Maxing the full vector is sound for every component
                // (each is ≤ its own true maximum) and exact for `r`
                // once this resource's descent ends.
                env = env.max(&a);
                if env.get(r) >= maxub {
                    continue;
                }
                // Slow path: the best member's availability fell short of
                // its bound. Order the rest best-first and evaluate until
                // the running max dominates the tightest remaining bound.
                scratch.clear();
                scratch.extend(members.iter().filter_map(|&mi| {
                    let m = mi as usize;
                    if mi == bmi || !self.considered[m] {
                        return None;
                    }
                    let u = self.ub[m].get(r);
                    (u > env.get(r)).then_some((u.to_bits(), std::cmp::Reverse(mi)))
                }));
                let mut heap = std::collections::BinaryHeap::from(std::mem::take(&mut scratch));
                while let Some((ubits, std::cmp::Reverse(mi))) = heap.pop() {
                    if env.get(r) >= f64::from_bits(ubits) {
                        // Every remaining member's ub[r] — and so its
                        // avail[r] — sits at or below the running max.
                        break;
                    }
                    let a = *memo.entry(mi).or_insert_with(|| {
                        visits += 1;
                        avail(mi as usize).clamp_non_negative()
                    });
                    env = env.max(&a);
                }
                scratch = heap.into_vec();
            }
        }
        self.stats.env_visits.fetch_add(visits, Ordering::Relaxed);
        env
    }

    /// Considered machines whose availability upper bound meets the
    /// cheapest-candidate floor on CPU **and** memory, ascending by id —
    /// a superset of the machines whose true availability meets it.
    /// Served from the more selective of the two bucket suffixes.
    pub fn floor_candidates_into(&self, min_cpu: f64, min_mem: f64, out: &mut Vec<u32>) {
        out.clear();
        let cpu_from = bucket_of(min_cpu);
        let mem_from = bucket_of(min_mem);
        let cpu_n: usize = self.buckets[Resource::Cpu.index()][cpu_from..]
            .iter()
            .map(Vec::len)
            .sum();
        let mem_n: usize = self.buckets[Resource::Mem.index()][mem_from..]
            .iter()
            .map(Vec::len)
            .sum();
        let (ri, from) = if cpu_n <= mem_n {
            (Resource::Cpu.index(), cpu_from)
        } else {
            (Resource::Mem.index(), mem_from)
        };
        for b in &self.buckets[ri][from..] {
            for &mi in b {
                let m = mi as usize;
                if self.considered[m]
                    && self.ub[m].get(Resource::Cpu) >= min_cpu
                    && self.ub[m].get(Resource::Mem) >= min_mem
                {
                    out.push(mi);
                }
            }
        }
        out.sort_unstable();
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.stats
            .pruned
            .fetch_add((self.n_considered - out.len()) as u64, Ordering::Relaxed);
        self.stats
            .returned
            .fetch_add(out.len() as u64, Ordering::Relaxed);
    }

    /// Considered machines whose availability upper bound dominates
    /// `demand` component-wise, ascending by id — a superset of the
    /// machines `demand` truly fits on. The bucket suffix is taken on
    /// the most selective positive-demand resource.
    pub fn fits_superset_into(&self, demand: &ResourceVec, out: &mut Vec<u32>) {
        out.clear();
        // Pick the resource whose suffix has the fewest members.
        let mut best: Option<(usize, usize, usize)> = None; // (count, ri, from)
        for r in Resource::ALL {
            let d = demand.get(r);
            if !(d > 0.0) {
                continue;
            }
            let ri = r.index();
            let from = bucket_of(d);
            let count: usize = self.buckets[ri][from..].iter().map(Vec::len).sum();
            if best.is_none_or(|(c, ..)| count < c) {
                best = Some((count, ri, from));
            }
        }
        match best {
            Some((_, ri, from)) => {
                for b in &self.buckets[ri][from..] {
                    for &mi in b {
                        let m = mi as usize;
                        if self.considered[m] && demand.fits_within(&self.ub[m]) {
                            out.push(mi);
                        }
                    }
                }
                out.sort_unstable();
            }
            None => {
                // Zero demand fits anywhere a scheduler may place.
                out.extend(
                    (0..self.considered.len() as u32).filter(|&mi| self.considered[mi as usize]),
                );
            }
        }
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.stats
            .pruned
            .fetch_add((self.n_considered - out.len()) as u64, Ordering::Relaxed);
        self.stats
            .returned
            .fetch_add(out.len() as u64, Ordering::Relaxed);
    }

    /// Drain the hit/prune counters (engine end-of-run, probes).
    pub fn take_stats(&self) -> IndexStatsSnapshot {
        IndexStatsSnapshot {
            queries: self.stats.queries.swap(0, Ordering::Relaxed),
            pruned: self.stats.pruned.swap(0, Ordering::Relaxed),
            returned: self.stats.returned.swap(0, Ordering::Relaxed),
            env_visits: self.stats.env_visits.swap(0, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_monotone_and_clamped() {
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(-1.0), 0);
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(f64::INFINITY), NUM_BUCKETS - 1);
        let mut last = 0;
        let mut x = 1e-12;
        while x < 1e16 {
            let b = bucket_of(x);
            assert!(b >= last, "bucket_of must be monotone at {x}");
            assert!(b < NUM_BUCKETS);
            last = b;
            x *= 1.7;
        }
        // Interior bucket bound: members of buckets < k are < 2^(k−17).
        for k in 2..NUM_BUCKETS {
            let bound = below_bucket_bound(k);
            assert!(
                bucket_of(bound) >= k,
                "bound {bound} must not fall below bucket {k}"
            );
            assert!(bucket_of(bound * 0.99) < k + 1);
        }
    }

    #[test]
    fn refresh_moves_between_buckets_and_counts_considered() {
        let caps = vec![ResourceVec::splat(8.0); 4];
        let mut idx = MachineIndex::new(&caps);
        idx.seed();
        assert_eq!(idx.considered_count(), 0);
        for mi in 0..4 {
            idx.refresh(mi, ResourceVec::splat(8.0), true);
        }
        assert_eq!(idx.considered_count(), 4);
        assert_eq!(idx.capacity_envelope(), ResourceVec::splat(8.0));
        let mut out = Vec::new();
        idx.floor_candidates_into(4.0, 4.0, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        // Drop machine 2 below the floor; mark machine 3 unconsidered.
        idx.refresh(2, ResourceVec::splat(1.0), true);
        idx.refresh(3, ResourceVec::splat(8.0), false);
        idx.floor_candidates_into(4.0, 4.0, &mut out);
        assert_eq!(out, vec![0, 1]);
        assert_eq!(idx.considered_count(), 3);
        let env = idx.availability_envelope(|mi| idx.ub[mi]);
        assert_eq!(env, ResourceVec::splat(8.0));
    }

    #[test]
    fn fits_superset_handles_zero_and_infinite_demand() {
        let caps = vec![ResourceVec::splat(8.0); 3];
        let mut idx = MachineIndex::new(&caps);
        idx.seed();
        for mi in 0..3 {
            idx.refresh(mi, ResourceVec::splat(2.0_f64.powi(mi as i32)), true);
        }
        let mut out = Vec::new();
        idx.fits_superset_into(&ResourceVec::zero(), &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        idx.fits_superset_into(&ResourceVec::splat(2.0), &mut out);
        assert_eq!(out, vec![1, 2]);
        idx.fits_superset_into(&ResourceVec::splat(f64::INFINITY), &mut out);
        assert!(out.is_empty());
    }
}
