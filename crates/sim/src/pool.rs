//! Deterministic parallel map over a hand-rolled worker pool.
//!
//! Scoped threads + a shared work deque + an mpsc results channel — no
//! external crates. Workers pull the next item off the deque, run it, and
//! send the result back tagged with its submission index; the caller's
//! `on_done` streams completions strictly in submission order (a
//! completion for item 3 is buffered until items 0..3 have been
//! delivered), and the returned vector is in submission order too.
//! Parallelism changes only the wall-clock, never the output — the
//! guarantee the experiment runner (`crates/expts`), the sharded
//! cold-pass scoring loop (`crates/core`, DESIGN.md §13) and the
//! Omega-style sharded heartbeat fan-out (`crate::sharded`, DESIGN.md
//! §14) all rest on.
//!
//! Hoisted from `crates/expts/src/runner.rs` so `sim`-layer consumers can
//! share the exact pool the experiment suite already trusts; `expts`
//! re-exports these functions unchanged.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Run every item of `items` through `f` on `jobs` worker threads,
/// invoking `on_done` in *submission order* as results become available.
/// Returns all results in submission order.
///
/// `jobs = 1` still routes through the pool — one worker draining the
/// deque in order — so the serial and parallel paths are the same code.
pub fn pool_map<T, R, F, C>(items: Vec<T>, jobs: usize, f: F, on_done: C) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T, usize) -> R + Sync,
    C: FnMut(usize, &R),
{
    pool_map_prioritized(items, jobs, |_| 0, f, on_done)
}

/// [`pool_map`] with an execution-priority hint: higher-priority items
/// are *started* first (classic longest-processing-time-first packing —
/// launching the most expensive item last would leave one worker
/// grinding it alone while the rest idle). Delivery to `on_done` and the
/// returned vector stay in submission order regardless; priorities
/// change wall-clock only, never output.
pub fn pool_map_prioritized<T, R, P, F, C>(
    items: Vec<T>,
    jobs: usize,
    priority: P,
    f: F,
    mut on_done: C,
) -> Vec<R>
where
    T: Send,
    R: Send,
    P: Fn(&T) -> u64,
    F: Fn(T, usize) -> R + Sync,
    C: FnMut(usize, &R),
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs.clamp(1, n);
    let mut ordered: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    // Stable sort: equal priorities keep submission order.
    ordered.sort_by_key(|(_, item)| std::cmp::Reverse(priority(item)));
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(ordered.into_iter().collect());
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            s.spawn(move || loop {
                // Take the lock only to pop; the (expensive) call to `f`
                // runs outside it.
                let next = queue.lock().expect("pool queue poisoned").pop_front();
                let Some((idx, item)) = next else { break };
                let result = f(item, idx);
                if tx.send((idx, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx); // rx ends when the last worker finishes

        let mut next_out = 0;
        for (idx, result) in rx {
            slots[idx] = Some(result);
            while next_out < n {
                match slots[next_out].as_ref() {
                    Some(r) => on_done(next_out, r),
                    None => break,
                }
                next_out += 1;
            }
        }
        // If a worker panicked, the scope re-raises that panic here —
        // after the channel drained — so partial results still stream.
    });
    slots
        .into_iter()
        .map(|r| r.expect("worker exited without delivering a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_map_preserves_order_and_streams_in_order() {
        // Items deliberately finish out of order (larger index = shorter
        // sleep); the callback must still see 0,1,2,...
        let items: Vec<u64> = (0..12).collect();
        let mut seen = Vec::new();
        let out = pool_map(
            items,
            4,
            |x, _| {
                std::thread::sleep(std::time::Duration::from_millis(12 - x));
                x * 10
            },
            |idx, r| seen.push((idx, *r)),
        );
        assert_eq!(out, (0..12).map(|x| x * 10).collect::<Vec<_>>());
        assert_eq!(
            seen,
            (0..12).map(|x| (x as usize, x * 10)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn priority_controls_start_order_not_output_order() {
        // One worker executes strictly in queue order, which makes the
        // start order observable; results must still come back 1,2,3.
        let started = Mutex::new(Vec::new());
        let out = pool_map_prioritized(
            vec![1u64, 2, 3],
            1,
            |x| *x,
            |x, _| {
                started.lock().unwrap().push(x);
                x
            },
            |_, _| {},
        );
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(*started.lock().unwrap(), vec![3, 2, 1]);
    }

    #[test]
    fn pool_map_jobs_one_equals_many() {
        let f = |x: u64, _| x * x + 1;
        let a = pool_map((0..40).collect(), 1, f, |_, _| {});
        let b = pool_map((0..40).collect(), 8, f, |_, _| {});
        assert_eq!(a, b);
    }

    #[test]
    fn pool_map_empty_and_oversubscribed() {
        let empty: Vec<u64> = Vec::new();
        assert!(pool_map(empty, 4, |x, _| x, |_, _| {}).is_empty());
        // More workers than items: clamped, still correct.
        assert_eq!(pool_map(vec![7u64], 16, |x, _| x, |_, _| {}), vec![7]);
    }
}
