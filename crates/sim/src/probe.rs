//! Benchmark probes: measure one scheduling decision in isolation.
//!
//! The paper's Table 8 reports the resource manager's time to process a
//! node-manager heartbeat — i.e. one "resources freed → pick tasks" pass —
//! with 10 k/50 k tasks pending. [`ScheduleProbe`] reconstructs exactly
//! that moment: every job arrived, nothing placed yet, and the policy is
//! invoked once per `measure()` call on a fresh clone of the state.

use std::time::Instant;

use tetris_obs::{names, Event, Obs};
use tetris_workload::Workload;

use crate::cluster::ClusterConfig;
use crate::config::SimConfig;
use crate::state::SimState;
use crate::view::{ClusterView, SchedulerPolicy};

/// A reusable snapshot of "all jobs pending" state.
pub struct ScheduleProbe {
    state: SimState,
}

impl ScheduleProbe {
    /// Build the snapshot: bind the workload to the cluster and mark every
    /// job arrived (all tasks of root stages pending).
    pub fn new(cluster: ClusterConfig, workload: Workload, cfg: SimConfig) -> Self {
        workload.validate().expect("invalid workload");
        let mut state = SimState::new(cluster, workload, cfg);
        let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            state.job_arrives(j);
        }
        ScheduleProbe { state }
    }

    /// Number of pending runnable tasks in the snapshot.
    pub fn pending(&self) -> usize {
        self.state
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .map(|s| s.pending.len())
            .sum()
    }

    /// Invoke the policy once against the snapshot and return how many
    /// assignments it proposed. The state is not mutated, so repeated
    /// calls measure the same decision.
    pub fn measure(&self, policy: &mut dyn SchedulerPolicy) -> usize {
        let view = ClusterView::new(&self.state, policy.uses_tracker());
        policy.schedule(&view).len()
    }

    /// [`ScheduleProbe::measure`], additionally timing the pass into
    /// `obs`'s `heartbeat_ns`/`schedule_ns` histograms and emitting a
    /// [`tetris_obs::Event::HeartbeatProcessed`] — so one-off Table-8
    /// probes and continuous engine runs land in the same metrics.
    pub fn measure_observed(&self, policy: &mut dyn SchedulerPolicy, obs: &mut Obs) -> usize {
        let pending = self.pending();
        let start = Instant::now();
        let n = self.measure(policy);
        let wall_ns = start.elapsed().as_nanos() as u64;
        obs.metrics.observe(names::HEARTBEAT_NS, wall_ns);
        obs.metrics.observe(names::SCHEDULE_NS, wall_ns);
        obs.metrics.gauge_set(names::PENDING_TASKS, pending as f64);
        obs.emit(self.state.now.as_secs(), || Event::HeartbeatProcessed {
            pending_tasks: pending,
            placements: n as u64,
            wall_ns,
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GreedyFifo;
    use tetris_resources::MachineSpec;
    use tetris_workload::WorkloadSuiteConfig;

    #[test]
    fn probe_counts_pending_and_measures() {
        let w = WorkloadSuiteConfig::small().generate(3);
        // Map tasks of every job are pending (reduces are locked).
        let expected: usize = w.jobs.iter().map(|j| j.stages[0].len()).sum();
        let probe = ScheduleProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        assert_eq!(probe.pending(), expected);
        let mut policy = GreedyFifo::new();
        let n1 = probe.measure(&mut policy);
        let n2 = probe.measure(&mut policy);
        assert!(n1 > 0);
        assert_eq!(n1, n2, "probe must be repeatable");
    }

    #[test]
    fn observed_probe_feeds_heartbeat_histogram() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let probe = ScheduleProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        let mut policy = GreedyFifo::new();
        let mut obs = Obs::noop();
        let n = probe.measure_observed(&mut policy, &mut obs);
        assert_eq!(n, probe.measure(&mut policy));
        let h = obs.metrics.histogram(names::HEARTBEAT_NS).unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() > 0);
        assert_eq!(
            obs.metrics.gauge(names::PENDING_TASKS),
            Some(probe.pending() as f64)
        );
    }
}
