//! Benchmark probes: measure one scheduling decision in isolation.
//!
//! The paper's Table 8 reports the resource manager's time to process a
//! node-manager heartbeat — i.e. one "resources freed → pick tasks" pass —
//! with 10 k/50 k tasks pending. [`ScheduleProbe`] reconstructs exactly
//! that moment: every job arrived, nothing placed yet, and the policy is
//! invoked once per `measure()` call on a fresh clone of the state.

use std::time::Instant;

use tetris_obs::{names, Event, Obs};
use tetris_resources::NUM_RESOURCES;
use tetris_workload::Workload;

use crate::cluster::ClusterConfig;
use crate::config::SimConfig;
use crate::events::EventQueue;
use crate::state::{DirtySet, SimState};
use crate::view::{ClusterView, SchedulerPolicy};

/// A reusable snapshot of "all jobs pending" state.
pub struct ScheduleProbe {
    state: SimState,
}

impl ScheduleProbe {
    /// Build the snapshot: bind the workload to the cluster and mark every
    /// job arrived (all tasks of root stages pending).
    pub fn new(cluster: ClusterConfig, workload: Workload, cfg: SimConfig) -> Self {
        workload.validate().expect("invalid workload");
        let mut state = SimState::new(cluster, workload, cfg);
        let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            state.job_arrives(j);
        }
        ScheduleProbe { state }
    }

    /// Number of pending runnable tasks in the snapshot.
    pub fn pending(&self) -> usize {
        self.state
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .map(|s| s.pending.len())
            .sum()
    }

    /// Invoke the policy once against the snapshot and return how many
    /// assignments it proposed. The state is not mutated, so repeated
    /// calls measure the same decision.
    pub fn measure(&self, policy: &mut dyn SchedulerPolicy) -> usize {
        let view = ClusterView::new(&self.state, policy.uses_tracker());
        policy.schedule(&view).len()
    }

    /// [`ScheduleProbe::measure`], additionally timing the pass into
    /// `obs`'s `heartbeat_ns`/`schedule_ns` histograms and emitting a
    /// [`tetris_obs::Event::HeartbeatProcessed`] — so one-off Table-8
    /// probes and continuous engine runs land in the same metrics.
    pub fn measure_observed(&self, policy: &mut dyn SchedulerPolicy, obs: &mut Obs) -> usize {
        let pending = self.pending();
        let start = Instant::now();
        let n = self.measure(policy);
        let wall_ns = start.elapsed().as_nanos() as u64;
        obs.metrics.observe(names::HEARTBEAT_NS, wall_ns);
        obs.metrics.observe(names::SCHEDULE_NS, wall_ns);
        obs.metrics.gauge_set(names::PENDING_TASKS, pending as f64);
        obs.emit(self.state.now.as_secs(), || Event::HeartbeatProcessed {
            pending_tasks: pending,
            placements: n as u64,
            wall_ns,
        });
        n
    }
}

/// A snapshot for benchmarking incremental rate recomputation
/// ([`recompute_dirty`](SimState::recompute_dirty)): every job arrived
/// and one scheduling pass applied, so the per-link flow tables are
/// populated the way a mid-run heartbeat sees them.
///
/// `measure()` marks every link that carries at least one flow dirty —
/// the worst-case invalidation pattern, equivalent to a cluster-wide
/// tracker report — and recomputes all affected flow rates.
pub struct RecomputeProbe {
    state: SimState,
    queue: EventQueue,
    dirty: DirtySet,
    /// (machine, dim) link slots with at least one live flow.
    live_links: Vec<(usize, usize)>,
}

impl RecomputeProbe {
    /// Build the snapshot: arrive every job, run `policy` once, apply its
    /// valid assignments, and settle the initial rates.
    pub fn new(
        cluster: ClusterConfig,
        workload: Workload,
        cfg: SimConfig,
        policy: &mut dyn SchedulerPolicy,
    ) -> Self {
        workload.validate().expect("invalid workload");
        let mut state = SimState::new(cluster, workload, cfg);
        let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            state.job_arrives(j);
        }
        let mut dirty = DirtySet::default();
        let mut queue = EventQueue::new();
        let assignments = {
            let view = ClusterView::new(&state, policy.uses_tracker());
            policy.schedule(&view)
        };
        for a in assignments {
            if state.assignment_valid(a.task, a.machine) {
                state.apply_assignment(a.task, a.machine, &mut dirty, &mut queue);
            }
        }
        state.recompute_dirty(&mut dirty, &mut queue);
        let live_links: Vec<(usize, usize)> = (0..state.machines.len())
            .flat_map(|mi| (0..NUM_RESOURCES).map(move |ri| (mi, ri)))
            .filter(|&(mi, ri)| !state.machines[mi].link_flows[ri].is_empty())
            .collect();
        RecomputeProbe {
            state,
            queue,
            dirty,
            live_links,
        }
    }

    /// Number of live flows in the snapshot.
    pub fn flows(&self) -> usize {
        self.state.flows.iter().filter(|f| !f.done).count()
    }

    /// Number of dirty-able (machine, dim) link slots.
    pub fn links(&self) -> usize {
        self.live_links.len()
    }

    /// Mark every live link dirty and recompute all affected flow rates;
    /// returns the number of links invalidated. Rates settle after the
    /// first call, so repeated calls measure the steady-state cost of a
    /// full-cluster invalidation (gather + dedup + rate evaluation).
    pub fn measure(&mut self) -> usize {
        for &(mi, ri) in &self.live_links {
            self.dirty.insert_link(mi, ri);
        }
        self.state.recompute_dirty(&mut self.dirty, &mut self.queue);
        self.live_links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GreedyFifo;
    use tetris_resources::MachineSpec;
    use tetris_workload::WorkloadSuiteConfig;

    #[test]
    fn probe_counts_pending_and_measures() {
        let w = WorkloadSuiteConfig::small().generate(3);
        // Map tasks of every job are pending (reduces are locked).
        let expected: usize = w.jobs.iter().map(|j| j.stages[0].len()).sum();
        let probe = ScheduleProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        assert_eq!(probe.pending(), expected);
        let mut policy = GreedyFifo::new();
        let n1 = probe.measure(&mut policy);
        let n2 = probe.measure(&mut policy);
        assert!(n1 > 0);
        assert_eq!(n1, n2, "probe must be repeatable");
    }

    #[test]
    fn recompute_probe_is_populated_and_repeatable() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let mut policy = GreedyFifo::new();
        let mut probe = RecomputeProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
            &mut policy,
        );
        assert!(probe.flows() > 0, "placements must create flows");
        assert!(probe.links() > 0, "flows must occupy links");
        let n1 = probe.measure();
        let n2 = probe.measure();
        assert_eq!(n1, n2, "probe must be repeatable");
        assert_eq!(n1, probe.links());
    }

    #[test]
    fn observed_probe_feeds_heartbeat_histogram() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let probe = ScheduleProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        let mut policy = GreedyFifo::new();
        let mut obs = Obs::noop();
        let n = probe.measure_observed(&mut policy, &mut obs);
        assert_eq!(n, probe.measure(&mut policy));
        let h = obs.metrics.histogram(names::HEARTBEAT_NS).unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() > 0);
        assert_eq!(
            obs.metrics.gauge(names::PENDING_TASKS),
            Some(probe.pending() as f64)
        );
    }
}
