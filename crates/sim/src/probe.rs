//! Benchmark probes: measure one scheduling decision in isolation.
//!
//! The paper's Table 8 reports the resource manager's time to process a
//! node-manager heartbeat — i.e. one "resources freed → pick tasks" pass —
//! with 10 k/50 k tasks pending. [`ScheduleProbe`] reconstructs exactly
//! that moment: every job arrived, nothing placed yet, and the policy is
//! invoked once per `measure()` call on a fresh clone of the state.

use std::time::Instant;

use tetris_obs::{names, Event, Obs};
use tetris_resources::NUM_RESOURCES;
use tetris_workload::{JobId, Workload};

use crate::cluster::{ClusterConfig, MachineId};
use crate::config::SimConfig;
use crate::events::EventQueue;
use crate::state::{DirtySet, SimState};
use crate::view::{Assignment, ClusterView, SchedulerEvent, SchedulerPolicy};

/// A reusable snapshot of "all jobs pending" state.
pub struct ScheduleProbe {
    state: SimState,
}

impl ScheduleProbe {
    /// Build the snapshot: bind the workload to the cluster and mark every
    /// job arrived (all tasks of root stages pending).
    pub fn new(cluster: ClusterConfig, workload: Workload, cfg: SimConfig) -> Self {
        workload.validate().expect("invalid workload");
        let mut state = SimState::new(cluster, workload, cfg);
        let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            state.job_arrives(j);
        }
        ScheduleProbe { state }
    }

    /// Number of pending runnable tasks in the snapshot.
    pub fn pending(&self) -> usize {
        self.state
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .map(|s| s.pending.len())
            .sum()
    }

    /// Invoke the policy once against the snapshot and return how many
    /// assignments it proposed. The state is not mutated, so repeated
    /// calls measure the same decision.
    pub fn measure(&self, policy: &mut dyn SchedulerPolicy) -> usize {
        let view = ClusterView::new(&self.state, policy.uses_tracker());
        policy.schedule(&view).len()
    }

    /// [`ScheduleProbe::measure`], additionally timing the pass into
    /// `obs`'s `heartbeat_ns`/`schedule_ns` histograms and emitting a
    /// [`tetris_obs::Event::HeartbeatProcessed`] — so one-off Table-8
    /// probes and continuous engine runs land in the same metrics.
    pub fn measure_observed(&self, policy: &mut dyn SchedulerPolicy, obs: &mut Obs) -> usize {
        let pending = self.pending();
        let start = Instant::now();
        let n = self.measure(policy);
        let wall_ns = start.elapsed().as_nanos() as u64;
        obs.metrics.observe(names::HEARTBEAT_NS, wall_ns);
        obs.metrics.observe(names::SCHEDULE_NS, wall_ns);
        obs.metrics.gauge_set(names::PENDING_TASKS, pending as f64);
        obs.emit(self.state.now.as_secs(), || Event::HeartbeatProcessed {
            pending_tasks: pending,
            placements: n as u64,
            wall_ns,
        });
        n
    }
}

/// A snapshot for benchmarking incremental rate recomputation
/// ([`recompute_dirty`](SimState::recompute_dirty)): every job arrived
/// and one scheduling pass applied, so the per-link flow tables are
/// populated the way a mid-run heartbeat sees them.
///
/// `measure()` marks every link that carries at least one flow dirty —
/// the worst-case invalidation pattern, equivalent to a cluster-wide
/// tracker report — and recomputes all affected flow rates.
pub struct RecomputeProbe {
    state: SimState,
    queue: EventQueue,
    dirty: DirtySet,
    /// (machine, dim) link slots with at least one live flow.
    live_links: Vec<(usize, usize)>,
}

impl RecomputeProbe {
    /// Build the snapshot: arrive every job, run `policy` once, apply its
    /// valid assignments, and settle the initial rates.
    pub fn new(
        cluster: ClusterConfig,
        workload: Workload,
        cfg: SimConfig,
        policy: &mut dyn SchedulerPolicy,
    ) -> Self {
        workload.validate().expect("invalid workload");
        let mut state = SimState::new(cluster, workload, cfg);
        let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            state.job_arrives(j);
        }
        let mut dirty = DirtySet::default();
        let mut queue = EventQueue::new();
        let assignments = {
            let view = ClusterView::new(&state, policy.uses_tracker());
            policy.schedule(&view)
        };
        for a in assignments {
            if state.assignment_valid(a.task, a.machine) {
                state.apply_assignment(a.task, a.machine, &mut dirty, &mut queue);
            }
        }
        state.recompute_dirty(&mut dirty, &mut queue);
        let live_links: Vec<(usize, usize)> = (0..state.machines.len())
            .flat_map(|mi| (0..NUM_RESOURCES).map(move |ri| (mi, ri)))
            .filter(|&(mi, ri)| !state.machines[mi].link_flows[ri].is_empty())
            .collect();
        RecomputeProbe {
            state,
            queue,
            dirty,
            live_links,
        }
    }

    /// Number of live flows in the snapshot.
    pub fn flows(&self) -> usize {
        self.state.flows.iter().filter(|f| !f.done).count()
    }

    /// Number of dirty-able (machine, dim) link slots.
    pub fn links(&self) -> usize {
        self.live_links.len()
    }

    /// Mark every live link dirty and recompute all affected flow rates;
    /// returns the number of links invalidated. Rates settle after the
    /// first call, so repeated calls measure the steady-state cost of a
    /// full-cluster invalidation (gather + dedup + rate evaluation).
    pub fn measure(&mut self) -> usize {
        for &(mi, ri) in &self.live_links {
            self.dirty.insert_link(mi, ri);
        }
        self.state.recompute_dirty(&mut self.dirty, &mut self.queue);
        self.live_links.len()
    }
}

/// A live snapshot for benchmarking *incremental* scheduling: the
/// heartbeat-scale loop of [`SchedulerEvent`]-driven policies.
///
/// [`ScheduleProbe`] measures the cold decision — an unsynced policy
/// rebuilding its world from the view. This probe measures the warm one:
/// after [`settle`](IncrementalProbe::settle) bootstraps two policies
/// (typically the incremental policy under test and a
/// [`MarkAllDirty`](crate::view::MarkAllDirty) oracle) onto a packed
/// cluster, each [`warm_heartbeat`](IncrementalProbe::warm_heartbeat)
/// drains one machine, delivers the resulting [`TaskPreempted`] /
/// [`MachineFreed`] events exactly as the engine would, and times one
/// `schedule()` call per policy on the identical state — asserting the
/// two assignment streams stay byte-identical.
///
/// The engine's freed-machine hint stays in place for the timed calls —
/// both policies consider the identical hinted machine set, exactly as
/// they would inside the engine. What the oracle pays and the synced
/// policy skips is the per-job state rebuild (remaining-work scores,
/// demand estimates, placement preferences for every pending job) — the
/// cost Table 8's incremental row reports.
///
/// [`TaskPreempted`]: SchedulerEvent::TaskPreempted
/// [`MachineFreed`]: SchedulerEvent::MachineFreed
pub struct IncrementalProbe {
    state: SimState,
    dirty: DirtySet,
    queue: EventQueue,
    reps: u64,
    events: u64,
}

/// One timed warm heartbeat: wall-clock nanoseconds for the policy under
/// test and the oracle, plus what the (identical) decisions did.
#[derive(Debug, Clone, Copy)]
pub struct WarmHeartbeat {
    /// Nanoseconds for the event-synced policy's `schedule()` call.
    pub inc_ns: u64,
    /// Nanoseconds for the oracle policy's `schedule()` call.
    pub oracle_ns: u64,
    /// Tasks killed to drain the heartbeat's machine.
    pub drained: usize,
    /// Assignments both policies proposed (asserted identical).
    pub placements: usize,
}

impl IncrementalProbe {
    /// Build the snapshot: every job arrived, nothing placed. Restart
    /// backoff is zeroed and the attempt cap lifted so drained tasks
    /// return to the pending pool immediately instead of dying.
    pub fn new(cluster: ClusterConfig, workload: Workload, mut cfg: SimConfig) -> Self {
        workload.validate().expect("invalid workload");
        cfg.faults.restart_backoff = 0.0;
        cfg.max_task_attempts = u32::MAX;
        let mut state = SimState::new(cluster, workload, cfg);
        let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            state.job_arrives(j);
        }
        IncrementalProbe {
            state,
            dirty: DirtySet::default(),
            queue: EventQueue::new(),
            reps: 0,
            events: 0,
        }
    }

    /// Number of pending runnable tasks right now.
    pub fn pending(&self) -> usize {
        self.state
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .map(|s| s.pending.len())
            .sum()
    }

    /// Total [`SchedulerEvent`]s delivered so far (counted once per
    /// event, not per receiving policy) — deterministic for a given
    /// snapshot and call sequence, which is what lets callers assert the
    /// incremental path was actually exercised.
    pub fn events_delivered(&self) -> u64 {
        self.events
    }

    fn deliver(&mut self, policies: &mut [&mut dyn SchedulerPolicy], event: &SchedulerEvent) {
        self.events += 1;
        for p in policies.iter_mut() {
            let view = ClusterView::new(&self.state, p.uses_tracker());
            p.on_event(&view, event);
        }
    }

    /// One engine-faithful scheduling round over both policies: schedule
    /// on the identical state, assert the streams match, apply `inc`'s
    /// assignments, and deliver a [`TaskPlaced`](SchedulerEvent::TaskPlaced)
    /// per application plus a terminal
    /// [`RoundComplete`](SchedulerEvent::RoundComplete) to both. Returns
    /// (placements, inc_ns, oracle_ns).
    fn round(
        &mut self,
        inc: &mut dyn SchedulerPolicy,
        oracle: &mut dyn SchedulerPolicy,
    ) -> (usize, u64, u64) {
        let (a_inc, inc_ns, a_oracle, oracle_ns) = {
            let view_inc = ClusterView::new(&self.state, inc.uses_tracker());
            let t0 = Instant::now();
            let a_inc = inc.schedule(&view_inc);
            let inc_ns = t0.elapsed().as_nanos() as u64;
            let view_oracle = ClusterView::new(&self.state, oracle.uses_tracker());
            let t1 = Instant::now();
            let a_oracle = oracle.schedule(&view_oracle);
            let oracle_ns = t1.elapsed().as_nanos() as u64;
            (a_inc, inc_ns, a_oracle, oracle_ns)
        };
        assert_assignments_eq(&a_inc, &a_oracle);
        let mut placed = 0;
        for a in &a_inc {
            if !self.state.assignment_valid(a.task, a.machine) {
                continue;
            }
            self.state
                .apply_assignment(a.task, a.machine, &mut self.dirty, &mut self.queue);
            placed += 1;
            let job = JobId(self.state.task_loc[a.task.index()].0);
            self.deliver(
                &mut [&mut *inc, &mut *oracle],
                &SchedulerEvent::TaskPlaced {
                    job,
                    task: a.task,
                    machine: a.machine,
                },
            );
        }
        self.state.recompute_dirty(&mut self.dirty, &mut self.queue);
        self.state.freed_hint.clear();
        self.deliver(
            &mut [&mut *inc, &mut *oracle],
            &SchedulerEvent::RoundComplete,
        );
        (placed, inc_ns, oracle_ns)
    }

    /// Bootstrap both policies: deliver a
    /// [`JobArrived`](SchedulerEvent::JobArrived) per job (syncing any
    /// event-driven policy), then run scheduling rounds until the cluster
    /// stops accepting work. Returns (placements, cold-pass ns for `inc`,
    /// cold-pass ns for `oracle`) where the cold pass is the first —
    /// all-pending — `schedule()` call of each.
    pub fn settle(
        &mut self,
        inc: &mut dyn SchedulerPolicy,
        oracle: &mut dyn SchedulerPolicy,
    ) -> (usize, u64, u64) {
        let jobs: Vec<JobId> = self.state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            self.deliver(
                &mut [&mut *inc, &mut *oracle],
                &SchedulerEvent::JobArrived { job: j },
            );
        }
        let (mut total, cold_inc, cold_oracle) = self.round(inc, oracle);
        loop {
            let (placed, _, _) = self.round(inc, oracle);
            if placed == 0 {
                break;
            }
            total += placed;
        }
        (total, cold_inc, cold_oracle)
    }

    /// One warm heartbeat: drain the next machine round-robin (kill its
    /// resident tasks back into the pending pool), deliver the
    /// preemption/freed events, clear the engine hint, and time one
    /// `schedule()` per policy on the identical state. Panics if the two
    /// assignment streams diverge.
    pub fn warm_heartbeat(
        &mut self,
        inc: &mut dyn SchedulerPolicy,
        oracle: &mut dyn SchedulerPolicy,
    ) -> WarmHeartbeat {
        let mi = (self.reps as usize) % self.state.machines.len();
        self.reps += 1;
        let machine = MachineId(mi);
        let victims: Vec<_> = self.state.machines[mi].running_tasks.clone();
        let mut drained = 0;
        for uid in victims {
            let Some((abandoned, _, host)) =
                self.state.kill_task(uid, &mut self.dirty, &mut self.queue)
            else {
                continue;
            };
            debug_assert!(!abandoned, "attempt cap was lifted in new()");
            drained += 1;
            let job = JobId(self.state.task_loc[uid.index()].0);
            self.deliver(
                &mut [&mut *inc, &mut *oracle],
                &SchedulerEvent::TaskPreempted {
                    job,
                    task: uid,
                    machine: host,
                },
            );
        }
        self.state.recompute_dirty(&mut self.dirty, &mut self.queue);
        // Mirror the engine's freed-machine delivery; the state-side hint
        // stays for the scheduling round (as in the engine), so a synced
        // policy's event-built freed set and an unsynced policy's
        // view-read one describe the same machines.
        let freed = self.state.freed_hint.clone();
        for &m in &freed {
            self.deliver(
                &mut [&mut *inc, &mut *oracle],
                &SchedulerEvent::MachineFreed { machine: m },
            );
        }
        debug_assert!(drained == 0 || freed.contains(&machine));
        let (placements, inc_ns, oracle_ns) = self.round(inc, oracle);
        WarmHeartbeat {
            inc_ns,
            oracle_ns,
            drained,
            placements,
        }
    }
}

/// A saturated-cluster snapshot for benchmarking the *cold* scheduling
/// pass — the one [`MachineQuery`](crate::view::MachineQuery)'s
/// free-capacity index makes sublinear (DESIGN.md §13).
///
/// The scenario is the worst case for a linear cold pass and the best
/// case for an indexed one: almost every machine is packed full (below
/// the cheapest candidate's floor, so it can host nothing), a handful of
/// spread-out machines are left empty, and a deep pending backlog forces
/// the policy to consider placement everywhere. Two byte-identical
/// `SimState`s are built — one with `machine_index` on, one off — so the
/// same policy type can be timed against the indexed and the
/// linear-oracle query backends on identical inputs, with the assignment
/// streams asserted equal.
///
/// Saturation bypasses the scheduler entirely (a deterministic
/// first-fit cursor over the machine list), so building a 100k-machine
/// snapshot costs O(machines + placed tasks), not a full scheduling run.
pub struct ColdPassProbe {
    indexed: SimState,
    linear: SimState,
    free: Vec<MachineId>,
}

/// One timed cold pass over both query backends.
#[derive(Debug, Clone, Copy)]
pub struct ColdPassSample {
    /// Nanoseconds for the pass against the indexed backend.
    pub indexed_ns: u64,
    /// Nanoseconds for the pass against the linear-oracle backend.
    pub linear_ns: u64,
    /// Assignments proposed (asserted identical across backends).
    pub placements: usize,
}

impl ColdPassProbe {
    /// Build the snapshot: `n_machines` uniform
    /// [`paper_small`](tetris_resources::MachineSpec::paper_small)
    /// machines, a synthetic single-stage workload sized so `pending`
    /// tasks remain runnable after saturation, and four spread-out
    /// machines (n/8, 3n/8, 5n/8, 7n/8) left empty for the pass to fill.
    ///
    /// Tracker idle-reclaim is disabled: under reclaim the index's
    /// availability upper bound for a machine with no usage reports yet
    /// is its full capacity, which would (correctly but uselessly)
    /// defeat pruning in this synthetic no-tracker setup.
    pub fn new(n_machines: usize, pending: usize) -> Self {
        Self::with_tasks_per_job(n_machines, pending, Self::TASKS_PER_JOB)
    }

    /// [`ColdPassProbe::new`] with an explicit job granularity. Small
    /// `tasks_per_job` values multiply the policy's candidate count
    /// (one candidate per job with pending work), which is how callers
    /// push a cold pass over a sharded scorer's minimum batch size.
    pub fn with_tasks_per_job(n_machines: usize, pending: usize, tasks_per_job: usize) -> Self {
        assert!(n_machines >= 8, "probe needs at least 8 machines");
        assert!(tasks_per_job >= 1);
        let workload = Self::workload(n_machines, pending, tasks_per_job);
        let free = Self::free_machines(n_machines);
        let build = |machine_index: bool| {
            let mut cfg = SimConfig::default();
            cfg.reclaim_idle = false;
            cfg.machine_index = machine_index;
            let mut state = SimState::new(
                ClusterConfig::uniform(n_machines, tetris_resources::MachineSpec::paper_small()),
                workload.clone(),
                cfg,
            );
            let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
            for j in jobs {
                state.job_arrives(j);
            }
            Self::saturate(&mut state, &free);
            state
        };
        ColdPassProbe {
            indexed: build(true),
            linear: build(false),
            free,
        }
    }

    /// The synthetic workload: identical CPU/memory-only tasks (no
    /// inputs, no output, effectively infinite duration) split into jobs
    /// of [`Self::TASKS_PER_JOB`] so candidate-building cost stays small
    /// relative to the machine scan under test.
    fn workload(n_machines: usize, pending: usize, tasks_per_job: usize) -> Workload {
        use tetris_resources::units::GB;
        use tetris_workload::gen::{TaskParams, WorkloadBuilder};
        let total = n_machines * Self::SLOTS_PER_MACHINE + pending;
        let jobs = total.div_ceil(tasks_per_job);
        let mut b = WorkloadBuilder::new();
        let mut left = total;
        for ji in 0..jobs {
            let j = b.begin_job(format!("cold-{ji}"), None, 0.0);
            let n = left.min(tasks_per_job);
            left -= n;
            b.add_stage(j, "work", vec![], n, |_| TaskParams {
                cores: 1.0,
                mem: 4.0 * GB,
                duration: 1e7,
                cpu_frac: 1.0,
                io_burst: 1.0,
                inputs: vec![],
                output_bytes: 0.0,
                remote_frac: 0.0,
            });
        }
        b.finish()
    }

    const SLOTS_PER_MACHINE: usize = 4; // paper_small: 16 GB / 4 GB tasks
    const TASKS_PER_JOB: usize = 5_000;

    fn free_machines(n: usize) -> Vec<MachineId> {
        let mut free: Vec<MachineId> = [n / 8, 3 * n / 8, 5 * n / 8, 7 * n / 8]
            .into_iter()
            .map(MachineId)
            .collect();
        free.dedup();
        free
    }

    /// First-fit cursor: pack pending tasks onto machines in id order,
    /// skipping the kept-free set, until the cursor runs off the end.
    /// `assignment_valid` does not check capacity (the engine trusts the
    /// policy for that), so the cursor keeps its own availability ledger
    /// and advances when the next task no longer fits. Identical task
    /// demands make the cursor monotone, so this is one linear sweep
    /// regardless of backlog depth.
    fn saturate(state: &mut SimState, free: &[MachineId]) {
        let uids: Vec<_> = state
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .flat_map(|s| s.pending.iter().copied())
            .collect();
        let mut dirty = DirtySet::default();
        let mut queue = EventQueue::new();
        let mut mi = 0usize;
        let mut avail = state.machines.first().map(|m| m.capacity);
        for uid in uids {
            loop {
                if mi >= state.machines.len() {
                    break;
                }
                let m = MachineId(mi);
                let fits =
                    avail.is_some_and(|a| state.placement_plan(uid, m).local.fits_within(&a));
                if !free.contains(&m) && fits && state.assignment_valid(uid, m) {
                    break;
                }
                mi += 1;
                avail = state.machines.get(mi).map(|m| m.capacity);
            }
            if mi >= state.machines.len() {
                break;
            }
            let m = MachineId(mi);
            let local = state.placement_plan(uid, m).local;
            state.apply_assignment(uid, m, &mut dirty, &mut queue);
            if let Some(a) = avail.as_mut() {
                *a -= local;
            }
        }
        state.recompute_dirty(&mut dirty, &mut queue);
        state.freed_hint.clear();
    }

    /// Drain the indexed backend's query counters (queries served,
    /// machines pruned/returned, envelope visits) accumulated by
    /// [`measure`](ColdPassProbe::measure) calls so far.
    pub fn take_index_stats(&self) -> crate::index::IndexStatsSnapshot {
        self.indexed.index.take_stats()
    }

    /// Machines deliberately left empty.
    pub fn free(&self) -> &[MachineId] {
        &self.free
    }

    /// Pending runnable tasks in the snapshot (identical across
    /// backends).
    pub fn pending(&self) -> usize {
        self.indexed
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .map(|s| s.pending.len())
            .sum()
    }

    /// Run one cold `schedule()` against the indexed snapshot only and
    /// return the placement count. Single-backend entry point for
    /// Criterion, which wants the two sides as separate measurements;
    /// cross-backend equivalence is [`measure`](ColdPassProbe::measure)'s
    /// job. Same freshness contract: pass an unsynced policy.
    pub fn cold_schedule_indexed(&self, policy: &mut dyn SchedulerPolicy) -> usize {
        let view = ClusterView::new(&self.indexed, policy.uses_tracker());
        policy.schedule(&view).len()
    }

    /// [`cold_schedule_indexed`](ColdPassProbe::cold_schedule_indexed)
    /// against the linear-scan snapshot.
    pub fn cold_schedule_linear(&self, policy: &mut dyn SchedulerPolicy) -> usize {
        let view = ClusterView::new(&self.linear, policy.uses_tracker());
        policy.schedule(&view).len()
    }

    /// One cold `schedule()` against the indexed snapshot, returning the
    /// raw assignment stream — for cross-*policy* equivalence gates (the
    /// omega experiment pins a one-shard `ShardedScheduler` against its
    /// bare inner policy this way), where `measure`'s cross-*backend*
    /// comparison is the wrong axis. Same freshness contract: pass an
    /// unsynced policy.
    pub fn cold_assignments_indexed(&self, policy: &mut dyn SchedulerPolicy) -> Vec<Assignment> {
        let view = ClusterView::new(&self.indexed, policy.uses_tracker());
        policy.schedule(&view)
    }

    /// Time one cold `schedule()` call per backend on the identical
    /// snapshot and assert the assignment streams match. Pass *fresh,
    /// unsynced* policies each call — an unsynced policy sees no freed
    /// hint and takes the cold path, and adaptive internal state (score
    /// normalization, caches) never leaks between reps.
    pub fn measure(
        &self,
        indexed: &mut dyn SchedulerPolicy,
        linear: &mut dyn SchedulerPolicy,
    ) -> ColdPassSample {
        let view_idx = ClusterView::new(&self.indexed, indexed.uses_tracker());
        let t0 = Instant::now();
        let a_idx = indexed.schedule(&view_idx);
        let indexed_ns = t0.elapsed().as_nanos() as u64;
        let view_lin = ClusterView::new(&self.linear, linear.uses_tracker());
        let t1 = Instant::now();
        let a_lin = linear.schedule(&view_lin);
        let linear_ns = t1.elapsed().as_nanos() as u64;
        assert_assignments_eq(&a_idx, &a_lin);
        ColdPassSample {
            indexed_ns,
            linear_ns,
            placements: a_idx.len(),
        }
    }
}

#[track_caller]
fn assert_assignments_eq(a: &[Assignment], b: &[Assignment]) {
    assert_eq!(
        a.len(),
        b.len(),
        "incremental and oracle proposed different assignment counts"
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            x == y,
            "assignment #{i} diverged: incremental {x:?} vs oracle {y:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GreedyFifo;
    use tetris_resources::MachineSpec;
    use tetris_workload::WorkloadSuiteConfig;

    #[test]
    fn probe_counts_pending_and_measures() {
        let w = WorkloadSuiteConfig::small().generate(3);
        // Map tasks of every job are pending (reduces are locked).
        let expected: usize = w.jobs.iter().map(|j| j.stages[0].len()).sum();
        let probe = ScheduleProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        assert_eq!(probe.pending(), expected);
        let mut policy = GreedyFifo::new();
        let n1 = probe.measure(&mut policy);
        let n2 = probe.measure(&mut policy);
        assert!(n1 > 0);
        assert_eq!(n1, n2, "probe must be repeatable");
    }

    #[test]
    fn recompute_probe_is_populated_and_repeatable() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let mut policy = GreedyFifo::new();
        let mut probe = RecomputeProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
            &mut policy,
        );
        assert!(probe.flows() > 0, "placements must create flows");
        assert!(probe.links() > 0, "flows must occupy links");
        let n1 = probe.measure();
        let n2 = probe.measure();
        assert_eq!(n1, n2, "probe must be repeatable");
        assert_eq!(n1, probe.links());
    }

    #[test]
    fn incremental_probe_drains_and_replaces() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let mut probe = IncrementalProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        // GreedyFifo never syncs, so inc and oracle take the same path —
        // this pins the probe's drain/replace mechanics, not a speedup.
        let mut inc = GreedyFifo::new();
        let mut oracle = GreedyFifo::new();
        let before = probe.pending();
        let (placed, cold_inc, cold_oracle) = probe.settle(&mut inc, &mut oracle);
        assert!(placed > 0, "settle must place work");
        assert!(cold_inc > 0 && cold_oracle > 0);
        assert_eq!(before - probe.pending(), placed);
        let mut drained_total = 0;
        let mut replaced_total = 0;
        for _ in 0..4 {
            let hb = probe.warm_heartbeat(&mut inc, &mut oracle);
            drained_total += hb.drained;
            replaced_total += hb.placements;
            assert!(hb.inc_ns > 0 && hb.oracle_ns > 0);
        }
        assert!(drained_total > 0, "drains must kill resident tasks");
        assert!(replaced_total > 0, "freed machines must be refilled");
    }

    #[test]
    fn cold_pass_probe_saturates_and_backends_agree() {
        let probe = ColdPassProbe::new(16, 40);
        // Four machines kept free, the rest packed to their 4-task
        // brim: 16 machines × 4 slots − 4 free × 4 = 48 placed.
        assert_eq!(probe.free().len(), 4);
        assert_eq!(probe.pending(), 40 + 4 * probe.free().len());
        // GreedyFifo reads the view identically through either backend;
        // the probe must report both streams equal and nonempty.
        let mut idx = GreedyFifo::new();
        let mut lin = GreedyFifo::new();
        let s = probe.measure(&mut idx, &mut lin);
        assert!(s.placements > 0, "free machines must accept work");
        assert!(s.indexed_ns > 0 && s.linear_ns > 0);
    }

    #[test]
    fn observed_probe_feeds_heartbeat_histogram() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let probe = ScheduleProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        let mut policy = GreedyFifo::new();
        let mut obs = Obs::noop();
        let n = probe.measure_observed(&mut policy, &mut obs);
        assert_eq!(n, probe.measure(&mut policy));
        let h = obs.metrics.histogram(names::HEARTBEAT_NS).unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() > 0);
        assert_eq!(
            obs.metrics.gauge(names::PENDING_TASKS),
            Some(probe.pending() as f64)
        );
    }
}
