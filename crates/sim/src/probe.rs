//! Benchmark probes: measure one scheduling decision in isolation.
//!
//! The paper's Table 8 reports the resource manager's time to process a
//! node-manager heartbeat — i.e. one "resources freed → pick tasks" pass —
//! with 10 k/50 k tasks pending. [`ScheduleProbe`] reconstructs exactly
//! that moment: every job arrived, nothing placed yet, and the policy is
//! invoked once per `measure()` call on a fresh clone of the state.

use std::time::Instant;

use tetris_obs::{names, Event, Obs};
use tetris_resources::NUM_RESOURCES;
use tetris_workload::{JobId, Workload};

use crate::cluster::{ClusterConfig, MachineId};
use crate::config::SimConfig;
use crate::events::EventQueue;
use crate::state::{DirtySet, SimState};
use crate::view::{Assignment, ClusterView, SchedulerEvent, SchedulerPolicy};

/// A reusable snapshot of "all jobs pending" state.
pub struct ScheduleProbe {
    state: SimState,
}

impl ScheduleProbe {
    /// Build the snapshot: bind the workload to the cluster and mark every
    /// job arrived (all tasks of root stages pending).
    pub fn new(cluster: ClusterConfig, workload: Workload, cfg: SimConfig) -> Self {
        workload.validate().expect("invalid workload");
        let mut state = SimState::new(cluster, workload, cfg);
        let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            state.job_arrives(j);
        }
        ScheduleProbe { state }
    }

    /// Number of pending runnable tasks in the snapshot.
    pub fn pending(&self) -> usize {
        self.state
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .map(|s| s.pending.len())
            .sum()
    }

    /// Invoke the policy once against the snapshot and return how many
    /// assignments it proposed. The state is not mutated, so repeated
    /// calls measure the same decision.
    pub fn measure(&self, policy: &mut dyn SchedulerPolicy) -> usize {
        let view = ClusterView::new(&self.state, policy.uses_tracker());
        policy.schedule(&view).len()
    }

    /// [`ScheduleProbe::measure`], additionally timing the pass into
    /// `obs`'s `heartbeat_ns`/`schedule_ns` histograms and emitting a
    /// [`tetris_obs::Event::HeartbeatProcessed`] — so one-off Table-8
    /// probes and continuous engine runs land in the same metrics.
    pub fn measure_observed(&self, policy: &mut dyn SchedulerPolicy, obs: &mut Obs) -> usize {
        let pending = self.pending();
        let start = Instant::now();
        let n = self.measure(policy);
        let wall_ns = start.elapsed().as_nanos() as u64;
        obs.metrics.observe(names::HEARTBEAT_NS, wall_ns);
        obs.metrics.observe(names::SCHEDULE_NS, wall_ns);
        obs.metrics.gauge_set(names::PENDING_TASKS, pending as f64);
        obs.emit(self.state.now.as_secs(), || Event::HeartbeatProcessed {
            pending_tasks: pending,
            placements: n as u64,
            wall_ns,
        });
        n
    }
}

/// A snapshot for benchmarking incremental rate recomputation
/// ([`recompute_dirty`](SimState::recompute_dirty)): every job arrived
/// and one scheduling pass applied, so the per-link flow tables are
/// populated the way a mid-run heartbeat sees them.
///
/// `measure()` marks every link that carries at least one flow dirty —
/// the worst-case invalidation pattern, equivalent to a cluster-wide
/// tracker report — and recomputes all affected flow rates.
pub struct RecomputeProbe {
    state: SimState,
    queue: EventQueue,
    dirty: DirtySet,
    /// (machine, dim) link slots with at least one live flow.
    live_links: Vec<(usize, usize)>,
}

impl RecomputeProbe {
    /// Build the snapshot: arrive every job, run `policy` once, apply its
    /// valid assignments, and settle the initial rates.
    pub fn new(
        cluster: ClusterConfig,
        workload: Workload,
        cfg: SimConfig,
        policy: &mut dyn SchedulerPolicy,
    ) -> Self {
        workload.validate().expect("invalid workload");
        let mut state = SimState::new(cluster, workload, cfg);
        let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            state.job_arrives(j);
        }
        let mut dirty = DirtySet::default();
        let mut queue = EventQueue::new();
        let assignments = {
            let view = ClusterView::new(&state, policy.uses_tracker());
            policy.schedule(&view)
        };
        for a in assignments {
            if state.assignment_valid(a.task, a.machine) {
                state.apply_assignment(a.task, a.machine, &mut dirty, &mut queue);
            }
        }
        state.recompute_dirty(&mut dirty, &mut queue);
        let live_links: Vec<(usize, usize)> = (0..state.machines.len())
            .flat_map(|mi| (0..NUM_RESOURCES).map(move |ri| (mi, ri)))
            .filter(|&(mi, ri)| !state.machines[mi].link_flows[ri].is_empty())
            .collect();
        RecomputeProbe {
            state,
            queue,
            dirty,
            live_links,
        }
    }

    /// Number of live flows in the snapshot.
    pub fn flows(&self) -> usize {
        self.state.flows.iter().filter(|f| !f.done).count()
    }

    /// Number of dirty-able (machine, dim) link slots.
    pub fn links(&self) -> usize {
        self.live_links.len()
    }

    /// Mark every live link dirty and recompute all affected flow rates;
    /// returns the number of links invalidated. Rates settle after the
    /// first call, so repeated calls measure the steady-state cost of a
    /// full-cluster invalidation (gather + dedup + rate evaluation).
    pub fn measure(&mut self) -> usize {
        for &(mi, ri) in &self.live_links {
            self.dirty.insert_link(mi, ri);
        }
        self.state.recompute_dirty(&mut self.dirty, &mut self.queue);
        self.live_links.len()
    }
}

/// A live snapshot for benchmarking *incremental* scheduling: the
/// heartbeat-scale loop of [`SchedulerEvent`]-driven policies.
///
/// [`ScheduleProbe`] measures the cold decision — an unsynced policy
/// rebuilding its world from the view. This probe measures the warm one:
/// after [`settle`](IncrementalProbe::settle) bootstraps two policies
/// (typically the incremental policy under test and a
/// [`MarkAllDirty`](crate::view::MarkAllDirty) oracle) onto a packed
/// cluster, each [`warm_heartbeat`](IncrementalProbe::warm_heartbeat)
/// drains one machine, delivers the resulting [`TaskPreempted`] /
/// [`MachineFreed`] events exactly as the engine would, and times one
/// `schedule()` call per policy on the identical state — asserting the
/// two assignment streams stay byte-identical.
///
/// The engine's freed-machine hint stays in place for the timed calls —
/// both policies consider the identical hinted machine set, exactly as
/// they would inside the engine. What the oracle pays and the synced
/// policy skips is the per-job state rebuild (remaining-work scores,
/// demand estimates, placement preferences for every pending job) — the
/// cost Table 8's incremental row reports.
///
/// [`TaskPreempted`]: SchedulerEvent::TaskPreempted
/// [`MachineFreed`]: SchedulerEvent::MachineFreed
pub struct IncrementalProbe {
    state: SimState,
    dirty: DirtySet,
    queue: EventQueue,
    reps: u64,
    events: u64,
}

/// One timed warm heartbeat: wall-clock nanoseconds for the policy under
/// test and the oracle, plus what the (identical) decisions did.
#[derive(Debug, Clone, Copy)]
pub struct WarmHeartbeat {
    /// Nanoseconds for the event-synced policy's `schedule()` call.
    pub inc_ns: u64,
    /// Nanoseconds for the oracle policy's `schedule()` call.
    pub oracle_ns: u64,
    /// Tasks killed to drain the heartbeat's machine.
    pub drained: usize,
    /// Assignments both policies proposed (asserted identical).
    pub placements: usize,
}

impl IncrementalProbe {
    /// Build the snapshot: every job arrived, nothing placed. Restart
    /// backoff is zeroed and the attempt cap lifted so drained tasks
    /// return to the pending pool immediately instead of dying.
    pub fn new(cluster: ClusterConfig, workload: Workload, mut cfg: SimConfig) -> Self {
        workload.validate().expect("invalid workload");
        cfg.faults.restart_backoff = 0.0;
        cfg.max_task_attempts = u32::MAX;
        let mut state = SimState::new(cluster, workload, cfg);
        let jobs: Vec<_> = state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            state.job_arrives(j);
        }
        IncrementalProbe {
            state,
            dirty: DirtySet::default(),
            queue: EventQueue::new(),
            reps: 0,
            events: 0,
        }
    }

    /// Number of pending runnable tasks right now.
    pub fn pending(&self) -> usize {
        self.state
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .map(|s| s.pending.len())
            .sum()
    }

    /// Total [`SchedulerEvent`]s delivered so far (counted once per
    /// event, not per receiving policy) — deterministic for a given
    /// snapshot and call sequence, which is what lets callers assert the
    /// incremental path was actually exercised.
    pub fn events_delivered(&self) -> u64 {
        self.events
    }

    fn deliver(&mut self, policies: &mut [&mut dyn SchedulerPolicy], event: &SchedulerEvent) {
        self.events += 1;
        for p in policies.iter_mut() {
            let view = ClusterView::new(&self.state, p.uses_tracker());
            p.on_event(&view, event);
        }
    }

    /// One engine-faithful scheduling round over both policies: schedule
    /// on the identical state, assert the streams match, apply `inc`'s
    /// assignments, and deliver a [`TaskPlaced`](SchedulerEvent::TaskPlaced)
    /// per application plus a terminal
    /// [`RoundComplete`](SchedulerEvent::RoundComplete) to both. Returns
    /// (placements, inc_ns, oracle_ns).
    fn round(
        &mut self,
        inc: &mut dyn SchedulerPolicy,
        oracle: &mut dyn SchedulerPolicy,
    ) -> (usize, u64, u64) {
        let (a_inc, inc_ns, a_oracle, oracle_ns) = {
            let view_inc = ClusterView::new(&self.state, inc.uses_tracker());
            let t0 = Instant::now();
            let a_inc = inc.schedule(&view_inc);
            let inc_ns = t0.elapsed().as_nanos() as u64;
            let view_oracle = ClusterView::new(&self.state, oracle.uses_tracker());
            let t1 = Instant::now();
            let a_oracle = oracle.schedule(&view_oracle);
            let oracle_ns = t1.elapsed().as_nanos() as u64;
            (a_inc, inc_ns, a_oracle, oracle_ns)
        };
        assert_assignments_eq(&a_inc, &a_oracle);
        let mut placed = 0;
        for a in &a_inc {
            if !self.state.assignment_valid(a.task, a.machine) {
                continue;
            }
            self.state
                .apply_assignment(a.task, a.machine, &mut self.dirty, &mut self.queue);
            placed += 1;
            let job = JobId(self.state.task_loc[a.task.index()].0);
            self.deliver(
                &mut [&mut *inc, &mut *oracle],
                &SchedulerEvent::TaskPlaced {
                    job,
                    task: a.task,
                    machine: a.machine,
                },
            );
        }
        self.state.recompute_dirty(&mut self.dirty, &mut self.queue);
        self.state.freed_hint.clear();
        self.deliver(
            &mut [&mut *inc, &mut *oracle],
            &SchedulerEvent::RoundComplete,
        );
        (placed, inc_ns, oracle_ns)
    }

    /// Bootstrap both policies: deliver a
    /// [`JobArrived`](SchedulerEvent::JobArrived) per job (syncing any
    /// event-driven policy), then run scheduling rounds until the cluster
    /// stops accepting work. Returns (placements, cold-pass ns for `inc`,
    /// cold-pass ns for `oracle`) where the cold pass is the first —
    /// all-pending — `schedule()` call of each.
    pub fn settle(
        &mut self,
        inc: &mut dyn SchedulerPolicy,
        oracle: &mut dyn SchedulerPolicy,
    ) -> (usize, u64, u64) {
        let jobs: Vec<JobId> = self.state.workload.jobs.iter().map(|j| j.id).collect();
        for j in jobs {
            self.deliver(
                &mut [&mut *inc, &mut *oracle],
                &SchedulerEvent::JobArrived { job: j },
            );
        }
        let (mut total, cold_inc, cold_oracle) = self.round(inc, oracle);
        loop {
            let (placed, _, _) = self.round(inc, oracle);
            if placed == 0 {
                break;
            }
            total += placed;
        }
        (total, cold_inc, cold_oracle)
    }

    /// One warm heartbeat: drain the next machine round-robin (kill its
    /// resident tasks back into the pending pool), deliver the
    /// preemption/freed events, clear the engine hint, and time one
    /// `schedule()` per policy on the identical state. Panics if the two
    /// assignment streams diverge.
    pub fn warm_heartbeat(
        &mut self,
        inc: &mut dyn SchedulerPolicy,
        oracle: &mut dyn SchedulerPolicy,
    ) -> WarmHeartbeat {
        let mi = (self.reps as usize) % self.state.machines.len();
        self.reps += 1;
        let machine = MachineId(mi);
        let victims: Vec<_> = self.state.machines[mi].running_tasks.clone();
        let mut drained = 0;
        for uid in victims {
            let Some((abandoned, _, host)) =
                self.state.kill_task(uid, &mut self.dirty, &mut self.queue)
            else {
                continue;
            };
            debug_assert!(!abandoned, "attempt cap was lifted in new()");
            drained += 1;
            let job = JobId(self.state.task_loc[uid.index()].0);
            self.deliver(
                &mut [&mut *inc, &mut *oracle],
                &SchedulerEvent::TaskPreempted {
                    job,
                    task: uid,
                    machine: host,
                },
            );
        }
        self.state.recompute_dirty(&mut self.dirty, &mut self.queue);
        // Mirror the engine's freed-machine delivery; the state-side hint
        // stays for the scheduling round (as in the engine), so a synced
        // policy's event-built freed set and an unsynced policy's
        // view-read one describe the same machines.
        let freed = self.state.freed_hint.clone();
        for &m in &freed {
            self.deliver(
                &mut [&mut *inc, &mut *oracle],
                &SchedulerEvent::MachineFreed { machine: m },
            );
        }
        debug_assert!(drained == 0 || freed.contains(&machine));
        let (placements, inc_ns, oracle_ns) = self.round(inc, oracle);
        WarmHeartbeat {
            inc_ns,
            oracle_ns,
            drained,
            placements,
        }
    }
}

#[track_caller]
fn assert_assignments_eq(a: &[Assignment], b: &[Assignment]) {
    assert_eq!(
        a.len(),
        b.len(),
        "incremental and oracle proposed different assignment counts"
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            x == y,
            "assignment #{i} diverged: incremental {x:?} vs oracle {y:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GreedyFifo;
    use tetris_resources::MachineSpec;
    use tetris_workload::WorkloadSuiteConfig;

    #[test]
    fn probe_counts_pending_and_measures() {
        let w = WorkloadSuiteConfig::small().generate(3);
        // Map tasks of every job are pending (reduces are locked).
        let expected: usize = w.jobs.iter().map(|j| j.stages[0].len()).sum();
        let probe = ScheduleProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        assert_eq!(probe.pending(), expected);
        let mut policy = GreedyFifo::new();
        let n1 = probe.measure(&mut policy);
        let n2 = probe.measure(&mut policy);
        assert!(n1 > 0);
        assert_eq!(n1, n2, "probe must be repeatable");
    }

    #[test]
    fn recompute_probe_is_populated_and_repeatable() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let mut policy = GreedyFifo::new();
        let mut probe = RecomputeProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
            &mut policy,
        );
        assert!(probe.flows() > 0, "placements must create flows");
        assert!(probe.links() > 0, "flows must occupy links");
        let n1 = probe.measure();
        let n2 = probe.measure();
        assert_eq!(n1, n2, "probe must be repeatable");
        assert_eq!(n1, probe.links());
    }

    #[test]
    fn incremental_probe_drains_and_replaces() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let mut probe = IncrementalProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        // GreedyFifo never syncs, so inc and oracle take the same path —
        // this pins the probe's drain/replace mechanics, not a speedup.
        let mut inc = GreedyFifo::new();
        let mut oracle = GreedyFifo::new();
        let before = probe.pending();
        let (placed, cold_inc, cold_oracle) = probe.settle(&mut inc, &mut oracle);
        assert!(placed > 0, "settle must place work");
        assert!(cold_inc > 0 && cold_oracle > 0);
        assert_eq!(before - probe.pending(), placed);
        let mut drained_total = 0;
        let mut replaced_total = 0;
        for _ in 0..4 {
            let hb = probe.warm_heartbeat(&mut inc, &mut oracle);
            drained_total += hb.drained;
            replaced_total += hb.placements;
            assert!(hb.inc_ns > 0 && hb.oracle_ns > 0);
        }
        assert!(drained_total > 0, "drains must kill resident tasks");
        assert!(replaced_total > 0, "freed machines must be refilled");
    }

    #[test]
    fn observed_probe_feeds_heartbeat_histogram() {
        let w = WorkloadSuiteConfig::small().generate(3);
        let probe = ScheduleProbe::new(
            ClusterConfig::uniform(4, MachineSpec::paper_large()),
            w,
            SimConfig::default(),
        );
        let mut policy = GreedyFifo::new();
        let mut obs = Obs::noop();
        let n = probe.measure_observed(&mut policy, &mut obs);
        assert_eq!(n, probe.measure(&mut policy));
        let h = obs.metrics.histogram(names::HEARTBEAT_NS).unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() > 0);
        assert_eq!(
            obs.metrics.gauge(names::PENDING_TASKS),
            Some(probe.pending() as f64)
        );
    }
}
