//! The scheduler-facing API: [`SchedulerPolicy`], [`SchedulerEvent`],
//! [`Assignment`] and [`ClusterView`].
//!
//! The protocol is event-driven (DESIGN.md §11). Whenever
//! scheduling-relevant state changes, the engine first delivers the typed
//! [`SchedulerEvent`]s describing *what* changed through
//! [`SchedulerPolicy::on_event`], then asks for decisions through
//! [`SchedulerPolicy::schedule`]. A policy may ignore events entirely —
//! the default `on_event` is a no-op, which is the "mark all dirty"
//! contract: `schedule` must then derive everything it needs from the
//! view, exactly like the original stateless API. A policy that *does*
//! consume events may keep incrementally maintained state (candidate
//! caches, slot counters) and answer `schedule` by touching only the
//! delta, provided its answers stay byte-identical to its own
//! mark-all-dirty behaviour (pinned by `tests/schedule_equivalence.rs`
//! and the [`MarkAllDirty`] oracle).
//!
//! The view exposes *reported* information — peak demands, machine
//! availability ledgers, tracker reports — never simulation ground truth
//! like actual flow rates, mirroring what a real cluster scheduler can
//! observe.

use tetris_obs::DecisionScores;
use tetris_resources::ResourceVec;
use tetris_workload::{JobClass, JobId, PlacementConstraints, PriorityClass, TaskSpec, TaskUid};

use crate::cluster::MachineId;
use crate::sharded::{owner_shard, CommitOverlay};
use crate::state::{Phase, PlacementPlan, SimState};

/// A scheduling decision: run `task` on `machine`, optionally after
/// evicting strictly-lower-priority running tasks from it (priority
/// preemption, DESIGN.md §16).
///
/// Scoring policies (Tetris) attach a [`DecisionScores`] breakdown so the
/// trace can explain *why* each placement won; slot baselines leave it
/// `None`. Scores are observability payload only — the engine ignores
/// them when applying the assignment. The eviction list is *not*
/// advisory: the engine tears each victim down (requeueing it without
/// charging an attempt) before applying the placement, after verifying
/// that every victim runs on `machine` and has strictly lower priority
/// than `task`'s job — an assignment with an invalid victim is rejected
/// whole.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The task to place (must currently be runnable).
    pub task: TaskUid,
    /// The machine to place it on.
    pub machine: MachineId,
    /// Optional score breakdown for decision tracing.
    pub scores: Option<DecisionScores>,
    /// Running tasks to evict from `machine` before placing (empty for
    /// ordinary placements; only honored when `SimConfig::preemption` is
    /// on).
    pub evict: Vec<TaskUid>,
}

impl Assignment {
    /// Assignment without score annotations (baselines).
    pub fn new(task: TaskUid, machine: MachineId) -> Self {
        Assignment {
            task,
            machine,
            scores: None,
            evict: Vec::new(),
        }
    }

    /// Attach a score breakdown (scoring policies).
    #[must_use]
    pub fn with_scores(mut self, scores: DecisionScores) -> Self {
        self.scores = Some(scores);
        self
    }

    /// Attach an eviction list (priority preemption).
    #[must_use]
    pub fn with_evictions(mut self, evict: Vec<TaskUid>) -> Self {
        self.evict = evict;
        self
    }
}

/// A scheduling-relevant state change, delivered to policies through
/// [`SchedulerPolicy::on_event`] before each scheduling round.
///
/// The taxonomy covers everything a policy could otherwise only discover
/// by re-scanning the view (DESIGN.md §11 documents the invalidation rule
/// each variant implies). Events are facts about the simulation, not
/// commands: a policy is free to ignore any of them as long as its
/// `schedule` answers account for the change some other way.
///
/// Delivery guarantees (the determinism contract):
///
/// * every arrival, placement, completion, preemption, abandonment,
///   restart, crash, recovery, suspicion transition, tracker report and
///   external-load change is delivered, in simulation order, before the
///   `schedule` calls of the round it occurred in;
/// * one [`SchedulerEvent::MachineFreed`] is delivered per entry of
///   [`ClusterView::freed_machines`], in the same order (duplicates
///   included), so an event-consuming policy can mirror the hint list
///   exactly;
/// * [`SchedulerEvent::RoundComplete`] is delivered once after the last
///   `schedule` call of a round, when the engine clears the freed-machine
///   hints — a mirrored list must be cleared there too;
/// * events may be *spurious* (e.g. an external-load change that was
///   cancelled at crash time still reports); treating an event as "mark
///   dirty" is always safe, treating it as "state certainly changed" is
///   not;
/// * machine slowdowns are deliberately **not** delivered: they alter
///   flow rates, which are simulation ground truth the scheduler cannot
///   observe (§4.1 trackers report usage, not speed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerEvent {
    /// A job arrived; its root stages became pending.
    JobArrived {
        /// The arriving job.
        job: JobId,
    },
    /// The engine applied an assignment: `task` now runs on `machine`.
    TaskPlaced {
        /// Owning job.
        job: JobId,
        /// The placed task.
        task: TaskUid,
        /// Host machine.
        machine: MachineId,
    },
    /// A task finished for good; its resources were released.
    TaskFinished {
        /// Owning job.
        job: JobId,
        /// The finished task.
        task: TaskUid,
        /// The machine that hosted it.
        machine: MachineId,
    },
    /// A running attempt was torn down (failure retry or machine crash)
    /// and the task returned to the pending queue (or a restart backoff).
    TaskPreempted {
        /// Owning job.
        job: JobId,
        /// The preempted task.
        task: TaskUid,
        /// The machine that hosted the killed attempt.
        machine: MachineId,
    },
    /// A task permanently failed at the attempt cap; its stage counts it
    /// as terminal.
    TaskAbandoned {
        /// Owning job.
        job: JobId,
        /// The abandoned task.
        task: TaskUid,
        /// The machine that hosted the final attempt.
        machine: MachineId,
    },
    /// A crash-killed task finished its restart backoff and is pending
    /// again.
    TaskRunnable {
        /// Owning job.
        job: JobId,
        /// The again-runnable task.
        task: TaskUid,
    },
    /// A machine's availability changed since the last round (mirror of
    /// [`ClusterView::freed_machines`]; may repeat per round).
    MachineFreed {
        /// The machine with changed availability.
        machine: MachineId,
    },
    /// A machine crashed: zero capacity, residents killed, blocks
    /// re-replicating — locality preference lists are globally stale.
    MachineDown {
        /// The crashed machine.
        machine: MachineId,
    },
    /// A crashed machine came back empty.
    MachineUp {
        /// The recovered machine.
        machine: MachineId,
    },
    /// The machine's tracker reports crossed the suspicion threshold.
    MachineSuspected {
        /// The now-suspect machine.
        machine: MachineId,
    },
    /// A suspect machine's reports became plausible again.
    MachineCleared {
        /// The cleared machine.
        machine: MachineId,
    },
    /// A tracker reporting round ran: reported usage / availability of
    /// every machine may have moved (tracker-aware policies re-read it
    /// per call anyway).
    TrackerReport,
    /// An external load (ingestion, evacuation, §4.3) started or ended on
    /// a machine.
    ExternalLoadChanged {
        /// The machine whose external load changed.
        machine: MachineId,
    },
    /// The scheduling round finished; freed-machine hints were consumed.
    RoundComplete,
}

/// A cluster scheduling policy.
///
/// Implementations must be deterministic functions of the views and
/// events they see (plus their own seeded state): the whole simulator is
/// bit-reproducible and the test suite relies on it.
pub trait SchedulerPolicy {
    /// Short name for reports ("tetris", "drf", "fair", ...). Borrowed —
    /// it is read per schedule round and per trace event, so allocating
    /// here would cost on every decision.
    fn name(&self) -> &str;

    /// Observe one scheduling-relevant state change (see
    /// [`SchedulerEvent`] for the taxonomy and delivery guarantees).
    ///
    /// The default does nothing — the *mark-all-dirty* contract: a policy
    /// that ignores events must treat every `schedule` call as if
    /// anything may have changed, which is exactly the behaviour of the
    /// pre-event stateless API. Incremental policies override this to
    /// invalidate only what the event touches.
    fn on_event(&mut self, view: &ClusterView<'_>, event: &SchedulerEvent) {
        let _ = (view, event);
    }

    /// Pick assignments for the current state. Called repeatedly within a
    /// scheduling round until it returns an empty batch; implementations
    /// should therefore return *all* assignments they can justify now,
    /// maintaining their own working copy of availability while choosing.
    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment>;

    /// Whether this policy subtracts tracker-reported external usage
    /// (ingestion, evacuation, misbehaving processes) from machine
    /// availability. Tetris does (§4.3); slot-based baselines do not.
    fn uses_tracker(&self) -> bool {
        false
    }

    /// Ask the policy to record decision provenance (losing candidates,
    /// cache/dirty-set bookkeeping) for each assignment it returns, to be
    /// collected via [`SchedulerPolicy::take_provenance`]. The engine
    /// enables this only under verbose tracing; it must never change
    /// which assignments are produced. The default ignores the request —
    /// policies without provenance simply yield `None` later.
    fn set_capture_provenance(&mut self, on: bool) {
        let _ = on;
    }

    /// Surrender the recorded provenance for one assignment returned by
    /// the latest `schedule` call(s). Called at most once per placed
    /// task, after the engine applies the assignment. Default: `None`.
    fn take_provenance(&mut self, task: TaskUid) -> Option<tetris_obs::PlacementProvenance> {
        let _ = task;
        None
    }

    /// Drain any metrics the policy accumulated internally into
    /// `metrics`, resetting its own tally. Called once by the engine at
    /// end of run, next to the free-capacity index drain; probes and
    /// experiments may call it directly. Contributions must be
    /// zero-gated (a policy with nothing to report adds no names to the
    /// snapshot) and must never influence scheduling decisions. The
    /// default reports nothing.
    fn drain_metrics(&mut self, metrics: &mut tetris_obs::MetricsRegistry) {
        let _ = metrics;
    }

    /// Serialize the policy state that persists across `schedule()` calls
    /// and is **not** reconstructible from the view: §3.5 starvation
    /// reservations, learned-estimator family history, and the like.
    /// Caches invalidated per-event are explicitly *excluded* — a rebuilt
    /// cache entry must equal the incrementally maintained one (the
    /// mark-all-dirty contract), so caches never need checkpointing.
    ///
    /// The engine stores this blob in every crash-recovery checkpoint
    /// (DESIGN.md §15) and hands it back through
    /// [`SchedulerPolicy::import_state`] on a freshly built policy when a
    /// run resumes. Policies whose only cross-call state is cache keep
    /// the default `None`. The format is policy-private; it only ever
    /// round-trips through the same policy type.
    fn export_state(&self) -> Option<String> {
        None
    }

    /// Restore state produced by [`SchedulerPolicy::export_state`] on an
    /// identically configured policy. Called at most once, before any
    /// `on_event`/`schedule` call, when a run resumes from a checkpoint.
    /// The default ignores the blob (correct for policies that export
    /// `None`).
    fn import_state(&mut self, state: &str) {
        let _ = state;
    }
}

/// Any policy converts into a boxed trait object, so builder entry points
/// (notably `Simulation::scheduler`) accept concrete policies and
/// pre-boxed ones through one `impl Into<Box<dyn SchedulerPolicy>>`
/// parameter (the `std::error::Error` pattern).
impl<T: SchedulerPolicy + 'static> From<T> for Box<dyn SchedulerPolicy> {
    fn from(policy: T) -> Self {
        Box::new(policy)
    }
}

/// Adapter that suppresses event delivery to the wrapped policy, forcing
/// its mark-all-dirty (full re-scan) path on every `schedule` call.
///
/// This is the *oracle* the equivalence suite and the Table-8 experiment
/// compare incremental policies against: the wrapped policy never sees an
/// event, so it can never sync its caches and must recompute from the
/// view alone — the exact behaviour of the pre-event API.
pub struct MarkAllDirty<P>(pub P);

impl<P: SchedulerPolicy> SchedulerPolicy for MarkAllDirty<P> {
    fn name(&self) -> &str {
        self.0.name()
    }

    // No `on_event` override: the trait default swallows every event, so
    // the inner policy stays on its view-only path.

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.0.schedule(view)
    }

    fn uses_tracker(&self) -> bool {
        self.0.uses_tracker()
    }

    fn set_capture_provenance(&mut self, on: bool) {
        self.0.set_capture_provenance(on);
    }

    fn take_provenance(&mut self, task: TaskUid) -> Option<tetris_obs::PlacementProvenance> {
        self.0.take_provenance(task)
    }

    fn drain_metrics(&mut self, metrics: &mut tetris_obs::MetricsRegistry) {
        self.0.drain_metrics(metrics);
    }

    fn export_state(&self) -> Option<String> {
        self.0.export_state()
    }

    fn import_state(&mut self, state: &str) {
        self.0.import_state(state);
    }
}

/// Per-stage progress visible to policies (for the barrier knob, §3.5).
#[derive(Debug, Clone, Copy)]
pub struct StageProgress {
    /// Total tasks in the stage.
    pub total: usize,
    /// Finished tasks.
    pub finished: usize,
    /// Currently running tasks.
    pub running: usize,
    /// Pending (runnable, unplaced) tasks.
    pub pending: usize,
    /// True if a later stage depends on this one (it precedes a barrier).
    /// The end of the job also acts as a barrier (§3.5), so policies treat
    /// the final stage as barrier-feeding too.
    pub feeds_barrier: bool,
    /// True once upstream dependencies completed and tasks became runnable.
    pub unlocked: bool,
}

/// The job-partition lens a sharded heartbeat applies to a view: which
/// shard the wrapped policy is, how many shards exist, the stable
/// partitioning seed, and the demand already committed by earlier
/// shards/rounds of this heartbeat (see `crate::sharded`).
///
/// A scoped view narrows job enumeration to the shard's owned partition
/// and subtracts the commit overlay from availability, so an inner
/// policy sees a consistent "my jobs, remaining capacity" world without
/// knowing it runs sharded. Machine-level facts (capacity, down/suspect
/// flags, freed hints) stay global — every shard may place anywhere.
#[derive(Clone, Copy)]
pub(crate) struct ShardScope<'a> {
    /// This shard's index in `0..shards`.
    pub shard: usize,
    /// Total shard count (≥ 2 on scoped views).
    pub shards: usize,
    /// Stable seed of the job → shard hash.
    pub seed: u64,
    /// Demand committed by earlier shards/rounds of this heartbeat.
    pub overlay: &'a CommitOverlay,
    /// The shard's active owned jobs in id order, pre-bucketed by the
    /// sharded driver once per heartbeat so each shard's job enumeration
    /// costs O(partition), not O(cluster jobs) — without this, every
    /// shard re-scans the whole job table per pass and the fan-out
    /// cannot beat one scheduler no matter how many cores run it.
    /// `None` (event delivery) falls back to the hash-filtered scan.
    pub jobs: Option<&'a [JobId]>,
}

/// Read-only snapshot interface over the simulation state.
pub struct ClusterView<'a> {
    state: &'a SimState,
    tracker_aware: bool,
    scope: Option<ShardScope<'a>>,
}

impl<'a> ClusterView<'a> {
    pub(crate) fn new(state: &'a SimState, tracker_aware: bool) -> Self {
        ClusterView {
            state,
            tracker_aware,
            scope: None,
        }
    }

    /// This view narrowed to one shard's job partition, with `scope`'s
    /// commit overlay charged against availability. The result borrows
    /// for the overlay's (possibly shorter) lifetime — `&'a SimState`
    /// shrinks covariantly.
    pub(crate) fn scoped<'b>(&self, scope: ShardScope<'b>) -> ClusterView<'b>
    where
        'a: 'b,
    {
        ClusterView {
            state: self.state,
            tracker_aware: self.tracker_aware,
            scope: Some(scope),
        }
    }

    /// True when `j` belongs to this view's shard partition (always true
    /// on unscoped views).
    #[inline]
    fn owns_job(&self, j: JobId) -> bool {
        match self.scope {
            None => true,
            Some(s) => owner_shard(j, s.shards, s.seed) == s.shard,
        }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.state.now.as_secs()
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.state.machines.len()
    }

    /// Machine-selection interface (indexed when the simulation maintains
    /// the free-capacity index, linear-scan oracle otherwise). This is the
    /// only way a policy may enumerate machines — flat iteration lives on
    /// [`MachineQuery::iter_all`].
    pub fn query(&self) -> MachineQuery<'a> {
        MachineQuery {
            state: self.state,
            tracker_aware: self.tracker_aware,
            scope: self.scope,
        }
    }

    /// Capacity of a machine (zero while it is crashed: a down machine
    /// offers no hardware, so slot counts derived from capacity go to
    /// zero too).
    pub fn capacity(&self, m: MachineId) -> ResourceVec {
        let ms = &self.state.machines[m.index()];
        if ms.down {
            return ResourceVec::zero();
        }
        ms.capacity
    }

    /// True while the machine is crashed (fault injection). Down machines
    /// have zero capacity/availability and reject assignments.
    pub fn is_down(&self, m: MachineId) -> bool {
        self.state.machines[m.index()].down
    }

    /// True if the machine's tracker reports are currently suspect
    /// (missed, implausible, or frozen reports — see `tracker`). Policies
    /// should deprioritize suspect machines rather than blacklist them:
    /// graceful degradation, not capacity loss (DESIGN.md §10).
    pub fn is_suspect(&self, m: MachineId) -> bool {
        self.state.machines[m.index()].suspicion >= crate::tracker::SUSPECT_THRESHOLD
    }

    /// Scheduler-visible availability of a machine: capacity minus the
    /// demand ledger (minus tracker-reported external usage for
    /// tracker-aware policies). Negative components mean someone
    /// over-allocated. Shard-scoped views additionally subtract the
    /// demand already committed this heartbeat by racing shards.
    pub fn available(&self, m: MachineId) -> ResourceVec {
        let mut a = self.state.availability(m, self.tracker_aware);
        if let Some(s) = self.scope {
            if let Some(c) = s.overlay.charged(m) {
                a -= *c;
            }
        }
        a
    }

    /// Aggregate cluster capacity.
    pub fn total_capacity(&self) -> ResourceVec {
        self.state.total_capacity
    }

    /// Number of tasks currently running on a machine (slot occupancy for
    /// slot-based policies).
    pub fn machine_running(&self, m: MachineId) -> usize {
        self.state.machines[m.index()].running
    }

    /// Uids of the tasks currently running on a machine, in placement
    /// order (for slot accounting by slot-based policies).
    pub fn machine_tasks(&self, m: MachineId) -> &[TaskUid] {
        &self.state.machines[m.index()].running_tasks
    }

    /// Machines whose availability changed since the last scheduling round
    /// (a hint; may contain duplicates).
    pub fn freed_machines(&self) -> &[MachineId] {
        &self.state.freed_hint
    }

    /// Jobs that have arrived and not finished, in id order. Shard-scoped
    /// views yield only the shard's owned partition.
    ///
    /// Allocation-free: the iterator borrows the underlying state (not the
    /// view), so it can outlive the `&self` borrow.
    pub fn active_jobs(&self) -> impl Iterator<Item = JobId> + 'a {
        // Scoped views with a pre-bucketed partition list iterate the
        // list (O(partition)); everything else scans the job table. The
        // two halves of the chain are mutually exclusive — `take(0)`
        // empties the scan when the list exists — and both yield id
        // order, so the chain does too. The list re-checks `is_active`
        // for free exactness, though activity cannot change within the
        // heartbeat that built the list.
        let state = self.state;
        let list: Option<&'a [JobId]> = self.scope.and_then(|s| s.jobs);
        let scan_take = if list.is_some() { 0 } else { usize::MAX };
        let part = self.scope.map(|s| (s.shard, s.shards, s.seed));
        state
            .jobs
            .iter()
            .enumerate()
            .take(scan_take)
            .filter(|(_, j)| j.is_active())
            .map(|(i, _)| JobId(i))
            .filter(move |&j| match part {
                None => true,
                Some((shard, shards, seed)) => owner_shard(j, shards, seed) == shard,
            })
            .chain(
                list.unwrap_or(&[])
                    .iter()
                    .copied()
                    .filter(move |&j| state.jobs[j.index()].is_active()),
            )
    }

    /// True iff at least one (owned, on scoped views) job has arrived and
    /// not finished.
    pub fn has_active_jobs(&self) -> bool {
        match self.scope {
            None => self.state.jobs.iter().any(|j| j.is_active()),
            Some(_) => self.active_jobs().next().is_some(),
        }
    }

    /// True iff this job has arrived and not finished — the membership
    /// test behind [`ClusterView::active_jobs`], exposed so event-driven
    /// policies can prune incrementally maintained job lists without
    /// scanning every job. Scoped views also require ownership, so a
    /// shard's cached lists converge to its own partition.
    pub fn job_is_active(&self, j: JobId) -> bool {
        self.state.jobs[j.index()].is_active() && self.owns_job(j)
    }

    /// Job arrival time (seconds).
    pub fn job_arrival(&self, j: JobId) -> f64 {
        self.state.workload.jobs[j.index()].arrival
    }

    /// Recurring-job family of a job, if any (for demand estimation from
    /// prior runs, §4.1). Borrowed — `schedule()` is called per event, so
    /// cloning here would allocate on every decision.
    pub fn job_family(&self, j: JobId) -> Option<&'a str> {
        self.state.workload.jobs[j.index()].family.as_deref()
    }

    /// Sum of local peak demands of the job's currently running tasks —
    /// the job's current allocation, used for fair-share deficits.
    pub fn job_allocated(&self, j: JobId) -> ResourceVec {
        self.state.jobs[j.index()].allocated
    }

    /// Number of running tasks of the job (slot-based fairness counts
    /// these).
    pub fn job_running(&self, j: JobId) -> usize {
        self.state.jobs[j.index()].running
    }

    /// Runnable, unplaced tasks of the job, in stage order.
    pub fn job_pending(&self, j: JobId) -> impl Iterator<Item = TaskUid> + 'a {
        self.state.jobs[j.index()]
            .stages
            .iter()
            .flat_map(|s| s.pending.iter().copied())
    }

    /// Zero-copy view of the job's pending tasks, one slice per stage with
    /// pending work, in stage order. Slices are stable for the duration of
    /// one `schedule()` invocation (the engine applies assignments only
    /// after the policy returns).
    pub fn job_pending_stages(
        &self,
        j: JobId,
    ) -> impl Iterator<Item = (usize, &'a [TaskUid])> + 'a {
        self.state.jobs[j.index()]
            .stages
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.pending.is_empty())
            .map(|(si, s)| (si, s.pending.as_slice()))
    }

    /// True iff the job has at least one runnable, unplaced task.
    pub fn job_has_pending(&self, j: JobId) -> bool {
        self.state.jobs[j.index()]
            .stages
            .iter()
            .any(|s| !s.pending.is_empty())
    }

    /// The pending slice of one stage (empty slice if none).
    pub fn stage_pending_slice(&self, j: JobId, si: usize) -> &[TaskUid] {
        &self.state.jobs[j.index()].stages[si].pending
    }

    /// A representative unscheduled task of a stage: the first pending one
    /// for unlocked stages, the stage's first task for locked ones, `None`
    /// if the stage has no unscheduled work. Tasks of a stage are
    /// statistically similar (§4.1), so one representative suffices for
    /// remaining-work scoring without walking the whole stage.
    pub fn stage_representative(&self, j: JobId, si: usize) -> Option<&TaskSpec> {
        let stage = &self.state.jobs[j.index()].stages[si];
        if stage.unlocked {
            stage.pending.first().map(|&uid| self.task(uid))
        } else {
            self.state.workload.jobs[j.index()].stages[si]
                .tasks
                .first()
                .map(|t| {
                    let uid = t.uid;
                    self.task(uid)
                })
        }
    }

    /// All unfinished, unplaced tasks of the job *including* tasks of
    /// still-locked stages — the "remaining work" of the multi-resource
    /// SRTF score (§3.3.1).
    pub fn job_remaining_tasks(&self, j: JobId) -> impl Iterator<Item = TaskUid> + 'a {
        let ji = j.index();
        let workload_stages = &self.state.workload.jobs[ji].stages;
        self.state.jobs[ji]
            .stages
            .iter()
            .enumerate()
            .flat_map(move |(si, s)| {
                let (pending, locked) = if s.unlocked {
                    (s.pending.as_slice(), &workload_stages[si].tasks[..0])
                } else {
                    (&s.pending[..0], workload_stages[si].tasks.as_slice())
                };
                pending.iter().copied().chain(locked.iter().map(|t| t.uid))
            })
    }

    /// Per-stage progress of a job.
    pub fn stage_progress(&self, j: JobId) -> impl Iterator<Item = StageProgress> + 'a {
        let js = &self.state.jobs[j.index()];
        let n = js.stages.len();
        js.stages
            .iter()
            .enumerate()
            .map(move |(si, s)| StageProgress {
                total: s.total,
                finished: s.finished,
                running: s.running,
                pending: s.pending.len(),
                // The end of the job is a barrier too (§3.5).
                feeds_barrier: s.feeds_downstream || si == n - 1,
                unlocked: s.unlocked,
            })
    }

    /// Fill `out` with the job's per-stage progress (reusable scratch form
    /// of [`ClusterView::stage_progress`] for indexed access on hot paths).
    pub fn stage_progress_into(&self, j: JobId, out: &mut Vec<StageProgress>) {
        out.clear();
        out.extend(self.stage_progress(j));
    }

    /// Static spec of a task (peak demands, work, inputs).
    pub fn task(&self, uid: TaskUid) -> &TaskSpec {
        self.state.spec(uid)
    }

    /// Owning job and stage of a task.
    pub fn task_stage(&self, uid: TaskUid) -> (JobId, usize) {
        let (j, s, _) = self.state.task_loc[uid.index()];
        (JobId(j), s)
    }

    /// Whether the task is currently runnable (pending placement).
    pub fn is_runnable(&self, uid: TaskUid) -> bool {
        matches!(self.state.tasks[uid.index()].phase, Phase::Runnable)
    }

    /// Seconds the task has been runnable without being placed (0 if it is
    /// not currently pending). Basis for starvation detection (§3.5).
    pub fn task_pending_age(&self, uid: TaskUid) -> f64 {
        let t = &self.state.tasks[uid.index()];
        match (&t.phase, t.runnable_since) {
            (Phase::Runnable, Some(since)) => self.state.now.secs_since(since),
            _ => 0.0,
        }
    }

    /// Resolve the placement-adjusted demands and estimated duration of
    /// running `task` on `machine` (paper §3.2 "Incorporating task
    /// placement").
    pub fn plan(&self, task: TaskUid, machine: MachineId) -> PlacementPlan {
        self.state.placement_plan(task, machine)
    }

    /// Fill `out` with the machines holding a replica of at least one of
    /// the task's stored input blocks (locality preferences), sorted and
    /// deduplicated. Caller-buffer form so hot paths can reuse one
    /// allocation across tasks and schedule calls.
    pub fn preferred_machines_into(&self, task: TaskUid, out: &mut Vec<MachineId>) {
        out.clear();
        self.preferred_machines_append(task, out);
    }

    /// As [`ClusterView::preferred_machines_into`] but appending to `out`
    /// (only the appended tail is sorted/deduped), returning the appended
    /// range — the arena form used by schedulers that keep all candidates'
    /// preference lists in one buffer.
    pub fn preferred_machines_append(
        &self,
        task: TaskUid,
        out: &mut Vec<MachineId>,
    ) -> (usize, usize) {
        let start = out.len();
        let spec = self.state.spec(task);
        for input in &spec.inputs {
            if let tetris_workload::InputSource::Stored(b) = input.source {
                out.extend_from_slice(&self.state.blocks[b.index()]);
            }
        }
        out[start..].sort_unstable();
        let mut w = start;
        for r in start..out.len() {
            if w == start || out[w - 1] != out[r] {
                out[w] = out[r];
                w += 1;
            }
        }
        out.truncate(w);
        (start, w - start)
    }

    /// Machines holding a replica of at least one of the task's stored
    /// input blocks (allocating convenience over
    /// [`ClusterView::preferred_machines_into`]).
    pub fn preferred_machines(&self, task: TaskUid) -> Vec<MachineId> {
        let mut out = Vec::new();
        self.preferred_machines_into(task, &mut out);
        out
    }

    /// Typed class of a job: batch, or a service with an SLO and diurnal
    /// curve (spec API, DESIGN.md §16).
    pub fn job_class(&self, j: JobId) -> &'a JobClass {
        &self.state.workload.jobs[j.index()].class
    }

    /// Priority class of a job. Higher classes may preempt strictly lower
    /// ones when `SimConfig::preemption` is on.
    pub fn job_priority(&self, j: JobId) -> PriorityClass {
        self.state.workload.jobs[j.index()].priority
    }

    /// Priority class of a task's owning job (for victim selection).
    pub fn task_priority(&self, uid: TaskUid) -> PriorityClass {
        let (j, _, _) = self.state.task_loc[uid.index()];
        self.state.workload.jobs[j].priority
    }

    /// Placement constraints of a job (affinity / anti-affinity / spread /
    /// taint tolerations). [`PlacementConstraints::has_any`] is the cheap
    /// fast-path test policies use to skip constraint filtering entirely
    /// on unconstrained (all-batch) workloads.
    pub fn job_constraints(&self, j: JobId) -> &'a PlacementConstraints {
        &self.state.workload.jobs[j.index()].constraints
    }

    /// True when the run allows priority preemption
    /// (`SimConfig::preemption`).
    pub fn preemption_enabled(&self) -> bool {
        self.state.cfg.preemption
    }

    /// Cap on victims per preemptive assignment
    /// (`SimConfig::max_preemptions_per_assignment`).
    pub fn max_evictions(&self) -> usize {
        self.state.cfg.max_preemptions_per_assignment
    }

    /// Taint mask of a machine (0 when the run defines no taints).
    pub fn machine_taint(&self, m: MachineId) -> u64 {
        self.state.cfg.machine_taint(m.index())
    }

    /// True when the run defines machine taints — with job constraints'
    /// [`PlacementConstraints::has_any`], the cheap test policies use to
    /// skip constraint filtering on unconstrained runs entirely.
    pub fn taints_active(&self) -> bool {
        !self.state.cfg.machine_taints.is_empty()
    }

    /// True iff at least one running task of job `j` is hosted on `m`.
    pub fn machine_hosts_job(&self, m: MachineId, j: JobId) -> bool {
        machine_hosts_job_raw(self.state, m, j)
    }

    /// Number of distinct machines currently hosting running tasks of the
    /// job (the spread count of its constraint floor).
    pub fn job_spread(&self, j: JobId) -> usize {
        job_spread_raw(self.state, j)
    }

    /// Whether job `j`'s placement constraints allow machine `m` *right
    /// now* (DESIGN.md §16): taints, anti-affinity, affinity (vacuous
    /// while no listed job has a running task, so first replicas can
    /// bootstrap), and the spread floor (a machine already hosting the
    /// job is ineligible until its running tasks span the floor).
    /// Down/suspect filtering is *not* included — compose with the query
    /// layer's considered filter.
    pub fn constraints_allow(&self, j: JobId, m: MachineId) -> bool {
        constraints_allow_raw(self.state, j, self.job_constraints(j), m)
    }

    /// Total number of pending runnable tasks across active (owned, on
    /// scoped views) jobs.
    pub fn num_pending(&self) -> usize {
        match self.scope {
            None => self
                .state
                .jobs
                .iter()
                .filter(|j| j.is_active())
                .flat_map(|j| j.stages.iter())
                .map(|s| s.pending.len())
                .sum(),
            Some(_) => self
                .active_jobs()
                .flat_map(|j| self.state.jobs[j.index()].stages.iter())
                .map(|s| s.pending.len())
                .sum(),
        }
    }
}

/// Machine-selection interface over one scheduling view: the single
/// source of machine-enumeration truth for every policy (DESIGN.md §13).
///
/// Two interchangeable backends serve it. When the simulation maintains
/// the free-capacity index (`SimConfig::machine_index`, the default),
/// threshold queries are answered from per-resource bucket suffixes in
/// time proportional to the machines that can match, not cluster size;
/// with the index disabled every method falls back to a linear scan —
/// the oracle `sim/tests/prop_index.rs` pins the indexed backend
/// decision-identical against. Results never differ between backends:
/// the index only ever *prunes* machines whose availability upper bound
/// already rules them out, and exact predicates re-filter the survivors.
///
/// A machine is *considered* when it is neither down nor suspect —
/// the standing candidate filter shared by every shipping policy.
pub struct MachineQuery<'a> {
    state: &'a SimState,
    tracker_aware: bool,
    scope: Option<ShardScope<'a>>,
}

impl<'a> MachineQuery<'a> {
    /// Availability as this query's view sees it: the state's ledger
    /// value, minus the commit overlay on shard-scoped queries. Exact
    /// filters and envelopes use this; the `ub`-based pruning paths stay
    /// unscoped (the overlay only *lowers* availability, so the superset
    /// stays sound).
    #[inline]
    fn scoped_availability(&self, mi: usize) -> ResourceVec {
        let mut a = self.state.availability(MachineId(mi), self.tracker_aware);
        if let Some(s) = self.scope {
            if let Some(c) = s.overlay.charged(MachineId(mi)) {
                a -= *c;
            }
        }
        a
    }

    /// True when queries are served by the free-capacity index.
    pub fn indexed(&self) -> bool {
        self.state.index.enabled
    }

    /// All machine ids in id order, down and suspect included — the flat
    /// iteration that used to live on `ClusterView::machines()`. Prefer
    /// the filtered queries; this exists for whole-cluster passes
    /// (starvation sweeps, slot inventories).
    pub fn iter_all(&self) -> impl Iterator<Item = MachineId> {
        (0..self.state.machines.len()).map(MachineId)
    }

    fn is_considered(&self, mi: usize) -> bool {
        let ms = &self.state.machines[mi];
        !ms.down && ms.suspicion < crate::tracker::SUSPECT_THRESHOLD
    }

    /// Number of machines that are neither down nor suspect.
    pub fn considered_count(&self) -> usize {
        if self.state.index.enabled {
            self.state.index.considered_count()
        } else {
            (0..self.state.machines.len())
                .filter(|&mi| self.is_considered(mi))
                .count()
        }
    }

    /// Component-wise maximum capacity over considered machines (the
    /// demand-clamping envelope of the scheduler prefilter).
    pub fn capacity_envelope(&self) -> ResourceVec {
        if self.state.index.enabled {
            self.state.index.capacity_envelope()
        } else {
            let mut env = ResourceVec::zero();
            for mi in 0..self.state.machines.len() {
                if self.is_considered(mi) {
                    env = env.max(&self.state.machines[mi].capacity);
                }
            }
            env
        }
    }

    /// Component-wise maximum of non-negative-clamped availability over
    /// considered machines — exact on both backends (the indexed descent
    /// stops early but never below the true maximum).
    pub fn availability_envelope(&self) -> ResourceVec {
        if self.state.index.enabled {
            self.state
                .index
                .availability_envelope(|mi| self.scoped_availability(mi))
        } else {
            let mut env = ResourceVec::zero();
            for mi in 0..self.state.machines.len() {
                if self.is_considered(mi) {
                    let a = self.scoped_availability(mi);
                    env = env.max(&a.clamp_non_negative());
                }
            }
            env
        }
    }

    /// Fill `out` with the considered machines whose availability *upper
    /// bound* meets the given CPU and memory floors, ascending by id — a
    /// superset of the machines whose true availability meets them, so a
    /// caller that re-checks exact availability (the cold greedy loop
    /// does, via its floor break) loses nothing to the pruning. The
    /// linear backend returns every considered machine: the floors are a
    /// pruning opportunity, not a correctness filter.
    pub fn floor_candidates_into(&self, min_cpu: f64, min_mem: f64, out: &mut Vec<MachineId>) {
        out.clear();
        if self.state.index.enabled {
            let mut raw = Vec::new();
            self.state
                .index
                .floor_candidates_into(min_cpu, min_mem, &mut raw);
            out.extend(raw.into_iter().map(|mi| MachineId(mi as usize)));
        } else {
            out.extend(
                (0..self.state.machines.len())
                    .filter(|&mi| self.is_considered(mi))
                    .map(MachineId),
            );
        }
    }

    /// Considered machines the demand vector fits on right now (exact
    /// availability check, raw — not clamped), ascending by id.
    /// Identical on both backends.
    pub fn fits(&self, demand: &ResourceVec) -> Vec<MachineId> {
        let mut out = Vec::new();
        if self.state.index.enabled {
            let mut raw = Vec::new();
            self.state.index.fits_superset_into(demand, &mut raw);
            out.extend(
                raw.into_iter()
                    .map(|mi| MachineId(mi as usize))
                    .filter(|&m| demand.fits_within(&self.scoped_availability(m.index()))),
            );
        } else {
            out.extend((0..self.state.machines.len()).map(MachineId).filter(|&m| {
                self.is_considered(m.index())
                    && demand.fits_within(&self.scoped_availability(m.index()))
            }));
        }
        out
    }

    /// At most `k` considered machines the demand fits on, lowest ids
    /// first (the prefix of [`MachineQuery::fits`]).
    pub fn candidates_for(&self, demand: &ResourceVec, k: usize) -> Vec<MachineId> {
        let mut out = self.fits(demand);
        out.truncate(k);
        out
    }

    /// Considered machines the demand fits on **and** that `job`'s
    /// placement constraints allow, ascending by id — the constrained
    /// form of [`MachineQuery::fits`] (DESIGN.md §16). The indexed
    /// backend composes the bucketed superset prune with the exact
    /// availability re-filter and the constraint predicate; the linear
    /// oracle applies the identical predicate, so both backends return
    /// the same list (`prop_index.rs` pins this). The constraint filter
    /// is exact, never an inflated demand envelope: folding constraints
    /// into the demand vector would change which buckets prune and is
    /// not decision-safe.
    ///
    /// `job` is the placing task's owning job — needed because spread
    /// and self-exclusion are evaluated against that job's own running
    /// replicas, not just the constraint literals.
    pub fn fits_constrained(
        &self,
        demand: &ResourceVec,
        job: JobId,
        constraints: &PlacementConstraints,
    ) -> Vec<MachineId> {
        let mut out = Vec::new();
        if self.state.index.enabled {
            let mut raw = Vec::new();
            self.state.index.fits_superset_into(demand, &mut raw);
            out.extend(
                raw.into_iter()
                    .map(|mi| MachineId(mi as usize))
                    .filter(|&m| {
                        demand.fits_within(&self.scoped_availability(m.index()))
                            && constraints_allow_raw(self.state, job, constraints, m)
                    }),
            );
        } else {
            out.extend((0..self.state.machines.len()).map(MachineId).filter(|&m| {
                self.is_considered(m.index())
                    && demand.fits_within(&self.scoped_availability(m.index()))
                    && constraints_allow_raw(self.state, job, constraints, m)
            }));
        }
        out
    }
}

/// True iff at least one running task of job `j` is hosted on `m` —
/// resolved through the machine's resident list (placement order), which
/// is short relative to the job's task count.
fn machine_hosts_job_raw(state: &SimState, m: MachineId, j: JobId) -> bool {
    state.machines[m.index()]
        .running_tasks
        .iter()
        .any(|&uid| state.task_loc[uid.index()].0 == j.index())
}

/// Number of distinct machines hosting running tasks of job `j`. Scans
/// the job's own tasks (constrained jobs are small service waves), using
/// a tiny vec for distinctness — replica counts stay far below any
/// threshold where a hash set would win.
fn job_spread_raw(state: &SimState, j: JobId) -> usize {
    let mut machines: Vec<MachineId> = Vec::new();
    for stage in &state.workload.jobs[j.index()].stages {
        for t in &stage.tasks {
            if let Phase::Running(info) = &state.tasks[t.uid.index()].phase {
                if !machines.contains(&info.machine) {
                    machines.push(info.machine);
                }
            }
        }
    }
    machines.len()
}

/// The §16 constraint predicate, shared verbatim by both query backends
/// and [`ClusterView::constraints_allow`] so indexed and linear paths
/// cannot drift.
pub(crate) fn constraints_allow_raw(
    state: &SimState,
    j: JobId,
    cons: &PlacementConstraints,
    m: MachineId,
) -> bool {
    // Taints: every taint bit of the machine must be tolerated. Checked
    // even when the rest of the constraint set is empty — taints live on
    // the cluster config, not the job spec.
    if state.cfg.machine_taint(m.index()) & !cons.tolerations != 0 {
        return false;
    }
    if !cons.has_any() {
        return true;
    }
    // Anti-affinity: a machine hosting any listed job is ineligible.
    if cons
        .anti_affinity
        .iter()
        .any(|&aj| machine_hosts_job_raw(state, m, aj))
    {
        return false;
    }
    // Affinity: while at least one listed job has a running task
    // anywhere, only machines hosting one are eligible. Vacuous when
    // none runs, so the first replica can bootstrap anywhere.
    if !cons.affinity.is_empty() {
        let anywhere = cons
            .affinity
            .iter()
            .any(|&aj| state.jobs[aj.index()].running > 0);
        if anywhere
            && !cons
                .affinity
                .iter()
                .any(|&aj| machine_hosts_job_raw(state, m, aj))
        {
            return false;
        }
    }
    // Spread floor: a machine already hosting this job is ineligible
    // until the job's running tasks span the floor.
    if let Some(n) = cons.spread {
        if machine_hosts_job_raw(state, m, j) && job_spread_raw(state, j) < n {
            return false;
        }
    }
    true
}

/// Plan one priority-preemptive assignment, if the round needs one
/// (DESIGN.md §16). Shared epilogue for Tetris and the slot baselines:
/// policies call it after their ordinary placement loop with the
/// assignments they just produced, and append the result (if any) to the
/// batch.
///
/// The plan targets the highest-priority job (above the lowest class)
/// that has pending work and got *nothing* this `schedule()` call, and
/// only fires when no constrained fit exists for its head task — if a
/// machine can take the task as-is, placement (this round or next call of
/// the round) is the policy's job, not preemption's. Victims are running
/// tasks of strictly-lower-priority jobs, taken in placement order per
/// machine, at most [`ClusterView::max_evictions`]; among machines whose
/// evictable capacity covers the placement-adjusted demand, the plan
/// picks the fewest victims, lowest machine id. One preemptive
/// assignment per `schedule()` call keeps rounds bounded — the engine
/// re-calls `schedule` until the batch is empty, so a backlogged service
/// drains at one eviction set per call, every step validated against
/// fresh state.
///
/// Returns `None` whenever `SimConfig::preemption` is off, so policies
/// can call it unconditionally without perturbing batch-only runs.
pub fn plan_priority_preemption(
    view: &ClusterView<'_>,
    placed: &[Assignment],
) -> Option<Assignment> {
    if !view.preemption_enabled() {
        return None;
    }
    // Highest-priority starved job: pending work, nothing placed this
    // call, priority above the floor class (which can never evict).
    // `active_jobs` yields id order, so strict `>` ties to lowest id.
    let mut starved: Option<(PriorityClass, JobId, TaskUid)> = None;
    for j in view.active_jobs() {
        let p = view.job_priority(j);
        if p == PriorityClass::BATCH {
            continue;
        }
        if starved.is_some_and(|(bp, _, _)| p <= bp) {
            continue;
        }
        if placed.iter().any(|a| view.task_stage(a.task).0 == j) {
            continue;
        }
        if let Some(task) = view.job_pending(j).next() {
            starved = Some((p, j, task));
        }
    }
    let (prio, job, task) = starved?;
    let cons = view.job_constraints(job);
    let query = view.query();

    // A constrained fit exists → not preemption's problem.
    let demand = view.task(task).demand;
    if !query.fits_constrained(&demand, job, cons).is_empty() {
        return None;
    }

    // Best (victim-count, machine) plan across eligible machines.
    let cap = view.max_evictions();
    let mut best: Option<(usize, MachineId, Vec<TaskUid>)> = None;
    for m in query.iter_all() {
        if view.is_down(m) || view.is_suspect(m) {
            continue;
        }
        if !view.constraints_allow(job, m) {
            continue;
        }
        let plan = view.plan(task, m);
        // Remote demands must fit without eviction: evicting here frees
        // nothing on the input hosts.
        if plan
            .remote
            .iter()
            .any(|&(rm, ref dem)| !dem.fits_within(&view.available(rm)))
        {
            continue;
        }
        let mut avail = view.available(m);
        let mut victims: Vec<TaskUid> = Vec::new();
        for &v in view.machine_tasks(m) {
            if plan.local.fits_within(&avail) || victims.len() >= cap {
                break;
            }
            if view.task_priority(v) < prio {
                if let Phase::Running(info) = &view.state.tasks[v.index()].phase {
                    avail += info.local_alloc;
                    victims.push(v);
                }
            }
        }
        if !victims.is_empty() && plan.local.fits_within(&avail) {
            let better = match &best {
                None => true,
                Some((n, bm, _)) => victims.len() < *n || (victims.len() == *n && m < *bm),
            };
            if better {
                best = Some((victims.len(), m, victims));
            }
        }
    }
    let (_, machine, victims) = best?;
    Some(Assignment::new(task, machine).with_evictions(victims))
}
