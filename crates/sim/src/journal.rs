//! Write-ahead decision journal (DESIGN.md §15).
//!
//! An append-only, CRC-framed record stream that makes the *scheduler*
//! restart-safe: the engine journals every scheduling batch's commit
//! decisions plus periodic checkpoints of the full ledger state, and
//! [`crate::Simulation::recover`] restores the latest surviving
//! checkpoint and deterministically replays the tail so the recovered
//! run's outcome is byte-identical to an uninterrupted run.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. The payload is the compact
//! JSON encoding of one [`JournalRecord`] — the same wire idiom as the
//! obs trace stream, framed so a torn tail (the scheduler died mid-write)
//! is detected by length or checksum rather than by a JSON parse panic.
//!
//! ## Record stream grammar
//!
//! ```text
//! RunHeader Checkpoint(0)
//!   ( BatchStart Placement* BatchCommit Checkpoint? )*
//! ```
//!
//! A batch is *committed* iff its `BatchCommit` made it into the journal;
//! recovery replays only committed batches (the commit frontier) and
//! discards a trailing `BatchStart` whose commit never landed — exactly
//! the torn state a mid-commit crash leaves behind.
//!
//! Two readers share the frame scanner:
//!
//! * `Journal::records_lenient` — the lenient scan used by recovery:
//!   stops at the first invalid frame and reports how many bytes/records
//!   were dropped, because a torn tail is an expected crash artifact.
//! * [`Journal::verify`] — the *strict* scan used by tests and tooling:
//!   any invalid frame or grammar violation is a typed [`JournalError`]
//!   carrying the byte offset of the failing record.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use tetris_workload::TaskUid;

use crate::cluster::MachineId;
use crate::recovery::CheckpointState;

/// Journal wire-format version; bumped on any frame or record change.
pub const JOURNAL_VERSION: u32 = 1;

/// Frame header size: `len` + `crc32`.
const FRAME_HEADER: usize = 8;

/// Hard cap on a single record's payload so a corrupt length field can't
/// ask the scanner to allocate the universe (checkpoints of very large
/// clusters are tens of MB; 1 GiB is far beyond any real record).
const MAX_RECORD_LEN: u32 = 1 << 30;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One journal record.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) enum JournalRecord {
    /// First record of every journal: identifies the run it belongs to.
    RunHeader {
        /// Wire-format version ([`JOURNAL_VERSION`]).
        version: u32,
        /// Simulator seed of the journaled run.
        seed: u64,
        /// Fingerprint of (cluster, workload, seed) — recovery refuses a
        /// journal whose fingerprint disagrees with the builder's.
        fingerprint: u64,
        /// Checkpoint cadence the run was configured with.
        checkpoint_every: u64,
    },
    /// Full engine snapshot at a batch boundary (heartbeat 0 = genesis,
    /// written immediately after the header).
    Checkpoint {
        /// Scheduling heartbeats completed when the snapshot was taken.
        heartbeat: u64,
        /// The snapshot itself.
        state: Box<CheckpointState>,
    },
    /// A scheduling batch began.
    BatchStart {
        /// 1-based scheduling-heartbeat number.
        heartbeat: u64,
        /// Simulated time of the batch, microseconds.
        now_us: u64,
    },
    /// One committed placement decision within the current batch.
    Placement {
        /// Task placed.
        task: TaskUid,
        /// Machine it was placed on.
        machine: MachineId,
        /// Scheduling round within the batch (placements must re-apply in
        /// per-round groups: rate recomputation between rounds pushes
        /// queue events whose sequence numbers feed event ordering).
        round: u32,
    },
    /// The scheduling batch committed.
    BatchCommit {
        /// Heartbeat being committed (must match the open `BatchStart`).
        heartbeat: u64,
        /// Placements applied in the batch (cross-check for replay).
        placements: u64,
        /// `schedule()` invocations the batch made — not re-derivable
        /// during replay (the policy is not re-invoked), so the delta is
        /// journaled to keep [`crate::EngineStats`] byte-identical.
        schedule_calls: u64,
        /// Assignments the engine rejected as invalid in the batch.
        rejected: u64,
    },
}

/// A typed journal defect, located by the byte offset of the offending
/// frame.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The journal has no bytes at all.
    Empty,
    /// The first record is not a `RunHeader` (or a later record is a
    /// second one).
    MissingHeader {
        /// Offset of the record that should have been the header.
        offset: u64,
    },
    /// A second `RunHeader` appeared mid-stream.
    DuplicateHeader {
        /// Offset of the duplicate.
        offset: u64,
    },
    /// The file ends inside a frame (torn tail).
    Truncated {
        /// Offset of the incomplete frame.
        offset: u64,
    },
    /// A frame's checksum does not match its payload.
    BadCrc {
        /// Offset of the corrupt frame.
        offset: u64,
    },
    /// A frame's payload is not a decodable record.
    BadPayload {
        /// Offset of the undecodable frame.
        offset: u64,
        /// Decoder diagnostic.
        msg: String,
    },
    /// A structurally impossible record sequence (duplicate commit,
    /// placement outside a batch, out-of-order heartbeat, …) somewhere
    /// other than a discardable tail.
    OutOfOrder {
        /// Offset of the violating record.
        offset: u64,
        /// What was violated.
        msg: String,
    },
    /// The journal belongs to a different run than the builder describes.
    FingerprintMismatch {
        /// Fingerprint the builder computed.
        expected: u64,
        /// Fingerprint stored in the journal header.
        found: u64,
    },
    /// The journal version is not supported.
    BadVersion {
        /// Version stored in the header.
        found: u32,
    },
    /// No checkpoint survives in the readable prefix — nothing to restore.
    NoCheckpoint,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Empty => write!(f, "journal is empty"),
            JournalError::MissingHeader { offset } => {
                write!(f, "record at byte {offset} is not the run header")
            }
            JournalError::DuplicateHeader { offset } => {
                write!(f, "duplicate run header at byte {offset}")
            }
            JournalError::Truncated { offset } => {
                write!(f, "journal truncated inside the frame at byte {offset}")
            }
            JournalError::BadCrc { offset } => {
                write!(f, "checksum mismatch in the frame at byte {offset}")
            }
            JournalError::BadPayload { offset, msg } => {
                write!(f, "undecodable record at byte {offset}: {msg}")
            }
            JournalError::OutOfOrder { offset, msg } => {
                write!(f, "impossible record sequence at byte {offset}: {msg}")
            }
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal belongs to a different run (fingerprint {found:#x}, expected {expected:#x})"
            ),
            JournalError::BadVersion { found } => {
                write!(f, "unsupported journal version {found} (expected {JOURNAL_VERSION})")
            }
            JournalError::NoCheckpoint => write!(f, "no checkpoint survives in the journal"),
        }
    }
}

impl std::error::Error for JournalError {}

/// What the lenient scan dropped from the tail, if anything.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscardedTail {
    /// Byte offset where the readable prefix ends.
    pub offset: u64,
    /// Bytes dropped.
    pub bytes: u64,
    /// Why the scan stopped (display form of the frame defect).
    pub reason: String,
}

/// Aggregate counts from a strict scan ([`Journal::verify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Records in the journal.
    pub records: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Checkpoints (including genesis).
    pub checkpoints: u64,
    /// Committed batches.
    pub committed_batches: u64,
    /// Placements journaled inside committed batches.
    pub placements: u64,
}

/// An append-only, CRC-framed journal buffer.
///
/// The engine appends records while running; [`Journal::save`] /
/// [`Journal::load`] move the byte stream to and from disk. All decoding
/// goes through the scanning methods, never through direct indexing, so
/// corrupt input surfaces as [`JournalError`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    buf: Vec<u8>,
    records: u64,
}

impl Journal {
    /// New empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap raw journal bytes (e.g. read from elsewhere, or corrupted on
    /// purpose by a test).
    pub fn from_bytes(buf: Vec<u8>) -> Self {
        Journal { buf, records: 0 }
    }

    /// The raw byte stream.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Records appended through this handle (not counting pre-loaded
    /// bytes).
    pub fn appended_records(&self) -> u64 {
        self.records
    }

    /// Append one framed record.
    pub(crate) fn append(&mut self, rec: &JournalRecord) {
        let payload = serde_json::to_string(rec)
            .expect("journal records always serialize")
            .into_bytes();
        let len = u32::try_from(payload.len()).expect("record fits a u32 length");
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.records += 1;
    }

    /// Write the journal to `path` (atomic enough for the simulator: a
    /// single create+write).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, &self.buf)
    }

    /// Read a journal byte stream from `path`. No validation happens
    /// here — corrupt content surfaces from the scanning methods.
    pub fn load(path: &Path) -> io::Result<Self> {
        Ok(Journal::from_bytes(fs::read(path)?))
    }

    /// Lenient scan: decode records until the first invalid frame, which
    /// (with everything after it) is discarded rather than reported as an
    /// error. This is the recovery reader — a torn tail is an expected
    /// crash artifact. Each record comes with its byte offset so grammar
    /// violations found later can still name the failing record.
    pub(crate) fn records_lenient(&self) -> (Vec<(u64, JournalRecord)>, Option<DiscardedTail>) {
        let mut out = Vec::new();
        let mut pos = 0usize;
        loop {
            match next_frame(&self.buf, pos) {
                Ok(None) => return (out, None),
                Ok(Some((rec, next))) => {
                    out.push((pos as u64, rec));
                    pos = next;
                }
                Err(e) => {
                    let tail = DiscardedTail {
                        offset: pos as u64,
                        bytes: (self.buf.len() - pos) as u64,
                        reason: e.to_string(),
                    };
                    return (out, Some(tail));
                }
            }
        }
    }

    /// Strict scan: decode every record or fail with the first frame
    /// defect, plus validate the record-stream grammar (header first and
    /// unique, batches open/commit in order with ascending heartbeats,
    /// placements only inside an open batch). A torn *trailing* batch —
    /// `BatchStart` and placements with no `BatchCommit` at EOF — is
    /// legal: that is the documented crash artifact.
    pub fn verify(&self) -> Result<JournalStats, JournalError> {
        if self.buf.is_empty() {
            return Err(JournalError::Empty);
        }
        let mut stats = JournalStats {
            bytes: self.buf.len() as u64,
            ..JournalStats::default()
        };
        let mut pos = 0usize;
        let mut seen_header = false;
        let mut open_batch: Option<u64> = None;
        let mut open_placements = 0u64;
        let mut last_heartbeat = 0u64;
        loop {
            let offset = pos as u64;
            let (rec, next) = match next_frame(&self.buf, pos)? {
                None => break,
                Some(x) => x,
            };
            stats.records += 1;
            match rec {
                JournalRecord::RunHeader { version, .. } => {
                    if seen_header {
                        return Err(JournalError::DuplicateHeader { offset });
                    }
                    if offset != 0 {
                        return Err(JournalError::MissingHeader { offset: 0 });
                    }
                    if version != JOURNAL_VERSION {
                        return Err(JournalError::BadVersion { found: version });
                    }
                    seen_header = true;
                }
                _ if !seen_header => {
                    return Err(JournalError::MissingHeader { offset });
                }
                JournalRecord::Checkpoint { heartbeat, .. } => {
                    if open_batch.is_some() {
                        return Err(JournalError::OutOfOrder {
                            offset,
                            msg: format!("checkpoint inside uncommitted batch {heartbeat}"),
                        });
                    }
                    if heartbeat != last_heartbeat {
                        return Err(JournalError::OutOfOrder {
                            offset,
                            msg: format!(
                                "checkpoint at heartbeat {heartbeat} after batch {last_heartbeat}"
                            ),
                        });
                    }
                    stats.checkpoints += 1;
                }
                JournalRecord::BatchStart { heartbeat, .. } => {
                    if let Some(open) = open_batch {
                        return Err(JournalError::OutOfOrder {
                            offset,
                            msg: format!("batch {heartbeat} opened while batch {open} is open"),
                        });
                    }
                    if heartbeat != last_heartbeat + 1 {
                        return Err(JournalError::OutOfOrder {
                            offset,
                            msg: format!(
                                "batch {heartbeat} does not follow batch {last_heartbeat}"
                            ),
                        });
                    }
                    open_batch = Some(heartbeat);
                    open_placements = 0;
                }
                JournalRecord::Placement { .. } => {
                    if open_batch.is_none() {
                        return Err(JournalError::OutOfOrder {
                            offset,
                            msg: "placement outside any open batch".into(),
                        });
                    }
                    open_placements += 1;
                }
                JournalRecord::BatchCommit {
                    heartbeat,
                    placements,
                    ..
                } => {
                    match open_batch.take() {
                        Some(open) if open == heartbeat => {}
                        Some(open) => {
                            return Err(JournalError::OutOfOrder {
                                offset,
                                msg: format!("commit for batch {heartbeat} closes batch {open}"),
                            });
                        }
                        None => {
                            return Err(JournalError::OutOfOrder {
                                offset,
                                msg: format!("commit for batch {heartbeat} with no open batch"),
                            });
                        }
                    }
                    if placements != open_placements {
                        return Err(JournalError::OutOfOrder {
                            offset,
                            msg: format!(
                                "batch {heartbeat} commits {placements} placements but journaled {open_placements}"
                            ),
                        });
                    }
                    last_heartbeat = heartbeat;
                    stats.committed_batches += 1;
                    stats.placements += placements;
                }
            }
            pos = next;
        }
        if !seen_header {
            return Err(JournalError::MissingHeader { offset: 0 });
        }
        Ok(stats)
    }
}

/// Decode the frame starting at `pos`. `Ok(None)` = clean EOF;
/// `Ok(Some((record, next_pos)))` = one frame; `Err` = the frame is torn
/// or corrupt (error offsets point at `pos`).
fn next_frame(buf: &[u8], pos: usize) -> Result<Option<(JournalRecord, usize)>, JournalError> {
    if pos == buf.len() {
        return Ok(None);
    }
    let offset = pos as u64;
    if buf.len() - pos < FRAME_HEADER {
        return Err(JournalError::Truncated { offset });
    }
    let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
    if len > MAX_RECORD_LEN {
        return Err(JournalError::BadPayload {
            offset,
            msg: format!("record length {len} exceeds the {MAX_RECORD_LEN}-byte cap"),
        });
    }
    let start = pos + FRAME_HEADER;
    let end = start + len as usize;
    if end > buf.len() {
        return Err(JournalError::Truncated { offset });
    }
    let payload = &buf[start..end];
    if crc32(payload) != crc {
        return Err(JournalError::BadCrc { offset });
    }
    let text = std::str::from_utf8(payload).map_err(|e| JournalError::BadPayload {
        offset,
        msg: e.to_string(),
    })?;
    let rec = serde_json::from_str(text).map_err(|e| JournalError::BadPayload {
        offset,
        msg: e.to_string(),
    })?;
    Ok(Some((rec, end)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalRecord {
        JournalRecord::RunHeader {
            version: JOURNAL_VERSION,
            seed: 7,
            fingerprint: 0xfeed,
            checkpoint_every: 4,
        }
    }

    fn commit(hb: u64, placements: u64) -> JournalRecord {
        JournalRecord::BatchCommit {
            heartbeat: hb,
            placements,
            schedule_calls: 2,
            rejected: 0,
        }
    }

    fn placement() -> JournalRecord {
        JournalRecord::Placement {
            task: TaskUid(3),
            machine: MachineId(1),
            round: 0,
        }
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_scan_roundtrip() {
        let mut j = Journal::new();
        j.append(&header());
        j.append(&JournalRecord::BatchStart {
            heartbeat: 1,
            now_us: 1_000_000,
        });
        j.append(&placement());
        j.append(&commit(1, 1));
        let (recs, tail) = j.records_lenient();
        assert!(tail.is_none());
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].1, header());
        assert_eq!(recs[2].1, placement());
        assert_eq!(recs[0].0, 0);
        let stats = j.verify().unwrap();
        assert_eq!(stats.records, 4);
        assert_eq!(stats.committed_batches, 1);
        assert_eq!(stats.placements, 1);
    }

    #[test]
    fn empty_journal_is_typed() {
        assert_eq!(Journal::new().verify(), Err(JournalError::Empty));
    }

    #[test]
    fn bit_flip_is_bad_crc_with_offset() {
        let mut j = Journal::new();
        j.append(&header());
        j.append(&commit(1, 0)); // grammar checked later; CRC first
        let second = {
            // offset of the second frame = first frame's total size
            let len = u32::from_le_bytes(j.buf[0..4].try_into().unwrap());
            FRAME_HEADER + len as usize
        };
        let mut bytes = j.buf.clone();
        *bytes.last_mut().unwrap() ^= 0x40;
        let j2 = Journal::from_bytes(bytes);
        assert_eq!(
            j2.verify(),
            Err(JournalError::BadCrc {
                offset: second as u64
            })
        );
        let (recs, tail) = j2.records_lenient();
        assert_eq!(recs.len(), 1);
        let tail = tail.unwrap();
        assert_eq!(tail.offset, second as u64);
        assert!(tail.reason.contains("checksum"));
    }

    #[test]
    fn truncation_mid_frame_is_typed_and_droppable() {
        let mut j = Journal::new();
        j.append(&header());
        j.append(&placement());
        for cut in 1..j.buf.len() {
            let j2 = Journal::from_bytes(j.buf[..cut].to_vec());
            match j2.verify() {
                // Cuts at a frame boundary after the header verify clean.
                Ok(stats) => assert!(stats.records >= 1),
                Err(
                    JournalError::Truncated { .. }
                    | JournalError::BadCrc { .. }
                    | JournalError::MissingHeader { .. }
                    | JournalError::OutOfOrder { .. },
                ) => {}
                Err(other) => panic!("unexpected error at cut {cut}: {other}"),
            }
            // The lenient scan never panics and never reports more
            // records than the prefix holds.
            let (recs, _) = j2.records_lenient();
            assert!(recs.len() <= 2);
        }
    }

    #[test]
    fn duplicated_record_is_out_of_order_with_offset() {
        let mut j = Journal::new();
        j.append(&header());
        j.append(&JournalRecord::BatchStart {
            heartbeat: 1,
            now_us: 5,
        });
        j.append(&commit(1, 0));
        let end = j.buf.len();
        // Duplicate the commit frame verbatim: valid CRC, impossible
        // grammar.
        let len = {
            let hdr_len = u32::from_le_bytes(j.buf[0..4].try_into().unwrap()) as usize;
            let bs_off = FRAME_HEADER + hdr_len;
            let bs_len = u32::from_le_bytes(j.buf[bs_off..bs_off + 4].try_into().unwrap()) as usize;
            let commit_off = bs_off + FRAME_HEADER + bs_len;
            j.buf[commit_off..].to_vec()
        };
        let mut bytes = j.buf.clone();
        bytes.extend_from_slice(&len);
        let j2 = Journal::from_bytes(bytes);
        match j2.verify() {
            Err(JournalError::OutOfOrder { offset, msg }) => {
                assert_eq!(offset, end as u64);
                assert!(msg.contains("no open batch"), "{msg}");
            }
            other => panic!("expected OutOfOrder, got {other:?}"),
        }
    }

    #[test]
    fn missing_header_is_typed() {
        let mut j = Journal::new();
        j.append(&placement());
        assert_eq!(j.verify(), Err(JournalError::MissingHeader { offset: 0 }));
    }

    #[test]
    fn torn_trailing_batch_verifies_clean() {
        let mut j = Journal::new();
        j.append(&header());
        j.append(&JournalRecord::BatchStart {
            heartbeat: 1,
            now_us: 5,
        });
        j.append(&placement());
        // No commit: the torn mid-commit artifact. Strict scan accepts it
        // (the tail is discardable), counting only committed batches.
        let stats = j.verify().unwrap();
        assert_eq!(stats.committed_batches, 0);
        assert_eq!(stats.placements, 0);
        assert_eq!(stats.records, 3);
    }
}
