//! Omega-style sharded multi-scheduler: optimistic parallel placement
//! over shared cluster state (DESIGN.md §14).
//!
//! [`ShardedScheduler`] wraps N inner [`SchedulerPolicy`] instances, each
//! owning a deterministic hash partition of the job space. One
//! `schedule()` call from the engine becomes a fan-out / commit pipeline:
//!
//! 1. every shard with work runs its inner policy's `schedule()` pass
//!    concurrently on the deterministic worker pool (`crate::pool`),
//!    against a read-only [`ClusterView`] scoped to its own partition;
//! 2. proposals are committed *serially* in shard order against a
//!    [`CommitOverlay`] — the demand ledger of what this heartbeat has
//!    already accepted. A proposal whose placement no longer fits (a
//!    racing shard won the machine) is rejected and counted as a
//!    conflict;
//! 3. shards that lost at least one proposal retry within the same
//!    heartbeat against the updated overlay, for at most
//!    [`MAX_RETRY_ROUNDS`] rounds — and only when a cheap commit-time
//!    feasibility check says a rejected task could still fit somewhere
//!    (`retry_could_place`), so fully-contended heartbeats don't pay for
//!    retry passes that would place nothing.
//!
//! Shard workers only ever *read* shared state: all mutation flows
//! through the engine applying the committed assignment batch after
//! `schedule()` returns (`scripts/check.sh` greps this module to keep it
//! that way). Determinism holds because the pool delivers results in
//! submission order, commits iterate shards in index order, and the
//! job → shard hash is a pure function of (job id, seed) — parallelism
//! changes wall-clock only, never output.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use tetris_obs::{names, MetricsRegistry};
use tetris_resources::ResourceVec;
use tetris_workload::{JobId, TaskUid};

use crate::cluster::MachineId;
use crate::pool::pool_map;
use crate::view::{Assignment, ClusterView, SchedulerEvent, SchedulerPolicy, ShardScope};

/// Bound on intra-heartbeat retry rounds for shards whose proposals lost
/// a commit race. The engine's own schedule loop provides further rounds
/// against true (post-apply) state, so a small bound loses nothing.
pub const MAX_RETRY_ROUNDS: usize = 4;

/// Job-partition block size: consecutive job ids are assigned to shards
/// in blocks of this many, not one by one. Job state lives in id-indexed
/// tables, so a shard sweeping its partition touches runs of
/// [`OWNER_BLOCK`] adjacent entries instead of isolated cache lines —
/// measured at ~1.4× on the per-shard pass at 50 k jobs / 4 shards
/// (single-id hashing made every table access a miss and capped the
/// whole fan-out below 2×). Load balance needs active blocks ≫ shards;
/// workloads smaller than a few blocks degenerate to one busy shard,
/// which is skewed but correct (sharding is a throughput device for
/// large clusters, not a semantic one).
pub const OWNER_BLOCK: usize = 64;

/// The shard owning `job`: a splitmix64-style hash of the job's
/// [`OWNER_BLOCK`] block index folded with the stable partitioning
/// `seed`, reduced mod `shards`. A pure function — every component
/// (views, event routing, commit loop) must agree on ownership, and
/// re-runs with the same seed must re-partition identically.
#[inline]
pub fn owner_shard(job: JobId, shards: usize, seed: u64) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut z = (job.index() as u64 / OWNER_BLOCK as u64)
        .wrapping_add(seed)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Demand committed earlier in the current heartbeat, per machine — the
/// ledger the serialized commit stage checks proposals against and the
/// amount shard-scoped views subtract from availability on retry rounds.
///
/// Starts empty every `schedule()` call, so round 0 (the common,
/// conflict-free case) pays nothing: an empty overlay never allocates
/// and every lookup is a trivial miss.
#[derive(Debug, Default)]
pub struct CommitOverlay {
    committed: HashMap<u32, ResourceVec>,
}

impl CommitOverlay {
    /// Empty overlay (no committed demand).
    pub fn new() -> Self {
        CommitOverlay::default()
    }

    /// True when nothing has been committed this heartbeat.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Charge `demand` against `m` (accumulates across commits).
    pub fn charge(&mut self, m: MachineId, demand: &ResourceVec) {
        *self
            .committed
            .entry(m.index() as u32)
            .or_insert_with(ResourceVec::zero) += *demand;
    }

    /// Demand committed against `m` so far, if any.
    #[inline]
    pub fn charged(&self, m: MachineId) -> Option<&ResourceVec> {
        if self.committed.is_empty() {
            return None;
        }
        self.committed.get(&(m.index() as u32))
    }

    /// Machines with committed demand (order unspecified — callers must
    /// not derive decisions from iteration order).
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.committed.keys().map(|&k| MachineId(k as usize))
    }
}

/// Conflict/retry tally of one [`ShardedScheduler`], drained via
/// [`ShardedScheduler::drain_metrics`] (the engine calls it at end of
/// run; experiments call it directly).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardedStats {
    /// Proposals accepted by the commit stage.
    pub committed: u64,
    /// Proposals rejected because a racing shard won the machine.
    pub conflicts: u64,
    /// Intra-heartbeat retry rounds run across all heartbeats.
    pub retry_rounds: u64,
    /// Most retry rounds any single heartbeat needed.
    pub retry_rounds_peak: u64,
}

/// Omega-style sharded scheduling driver. See the module docs for the
/// pipeline; see [`owner_shard`] for the partitioning.
///
/// With one shard the driver is a transparent delegate — same name, same
/// views, same event stream — so `shards = 1` output is byte-identical
/// to running the inner policy bare (pinned by `tests/prop_sharded.rs`).
pub struct ShardedScheduler {
    inner: Vec<Box<dyn SchedulerPolicy + Send>>,
    seed: u64,
    name: String,
    stats: ShardedStats,
    /// Per-shard `schedule()` pass wall-times (nanoseconds), drained into
    /// the `heartbeat_shard_us` histogram.
    shard_ns: Vec<u64>,
    /// Critical path of the most recent `schedule()` call (nanoseconds):
    /// partition bucketing, plus per round the *slowest* shard pass and
    /// the serialized commit stage. See
    /// [`ShardedScheduler::last_heartbeat_critical_ns`].
    last_critical_ns: u64,
}

impl ShardedScheduler {
    /// Build a driver over `shards` inner policies produced by `make`
    /// (called once per shard index). All shards should be configured
    /// identically — partitioning is a throughput device, not a policy
    /// mixer — but this is not enforced.
    ///
    /// # Panics
    /// If `shards` is zero.
    pub fn new<F>(shards: usize, seed: u64, mut make: F) -> Self
    where
        F: FnMut(usize) -> Box<dyn SchedulerPolicy + Send>,
    {
        assert!(shards >= 1, "ShardedScheduler requires at least one shard");
        let inner: Vec<_> = (0..shards).map(&mut make).collect();
        let name = if shards == 1 {
            inner[0].name().to_string()
        } else {
            format!("omega[shards={shards}]({})", inner[0].name())
        };
        ShardedScheduler {
            inner,
            seed,
            name,
            stats: ShardedStats::default(),
            shard_ns: Vec::new(),
            last_critical_ns: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.len()
    }

    /// Snapshot of the conflict/retry tally without draining it.
    pub fn stats(&self) -> ShardedStats {
        self.stats
    }

    /// Critical path of the most recent `schedule()` call in nanoseconds:
    /// the serial partition bucketing, plus — per fan-out round — the
    /// *slowest* shard pass and the serialized commit stage. This is the
    /// heartbeat wall-clock a deployment with one core per shard
    /// observes, and unlike raw elapsed time it is measurable on any
    /// host core count: per-pass timings are taken inside each pass, so
    /// they stay clean even when the pool time-shares fewer cores.
    /// With one shard it is simply the inner pass's elapsed time.
    ///
    /// Timing only — never feeds back into decisions (determinism).
    pub fn last_heartbeat_critical_ns(&self) -> u64 {
        self.last_critical_ns
    }

    /// True if committing `plan`'s demands — local at `machine`, remote
    /// read demands at their sources — still fits on top of what the
    /// overlay already holds.
    fn commit_fits(
        view: &ClusterView<'_>,
        overlay: &CommitOverlay,
        machine: MachineId,
        plan: &crate::state::PlacementPlan,
    ) -> bool {
        let avail = |m: MachineId| {
            let mut a = view.available(m);
            if let Some(c) = overlay.charged(m) {
                a -= *c;
            }
            a
        };
        plan.local.fits_within(&avail(machine))
            && plan
                .remote
                .iter()
                .all(|(src, dem)| dem.fits_within(&avail(*src)))
    }

    /// Could another optimistic round commit anything *right now*?
    ///
    /// A retry pass can only see more room than round 0 did on machines
    /// the heartbeat has touched: overlay-charged machines (where racing
    /// commits changed availability) and machines named by rejected
    /// proposals (whose working-ledger charge the losing shard will not
    /// re-apply). So the retry is skipped — an O(rejected × touched)
    /// check instead of an O(partition) scheduling pass per loser — when
    /// no rejected task's local demand fits any touched machine's
    /// residual capacity.
    ///
    /// The check is a deterministic heuristic, not an oracle: it can
    /// miss a cross-task substitution (a *smaller* task the shard never
    /// proposed fitting where its rejected task cannot). Skipping those
    /// loses nothing durable — the engine re-invokes `schedule()` until
    /// quiescence against true post-apply state, the same backstop that
    /// justifies [`MAX_RETRY_ROUNDS`] being finite.
    fn retry_could_place(
        view: &ClusterView<'_>,
        overlay: &CommitOverlay,
        rejected: &[(TaskUid, MachineId)],
    ) -> bool {
        let mut touched: Vec<MachineId> = overlay.machines().collect();
        touched.extend(rejected.iter().map(|&(_, m)| m));
        touched.sort_unstable();
        touched.dedup();
        touched.retain(|&m| !view.is_down(m));
        rejected.iter().any(|&(t, _)| {
            view.is_runnable(t)
                && touched.iter().any(|&m| {
                    let mut a = view.available(m);
                    if let Some(c) = overlay.charged(m) {
                        a -= *c;
                    }
                    view.plan(t, m).local.fits_within(&a)
                })
        })
    }
}

impl SchedulerPolicy for ShardedScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_event(&mut self, view: &ClusterView<'_>, event: &SchedulerEvent) {
        let shards = self.inner.len();
        if shards == 1 {
            return self.inner[0].on_event(view, event);
        }
        // Events are delivered outside the commit pipeline, so shards see
        // an empty overlay (true ledger state) with their partition lens.
        let empty = CommitOverlay::new();
        let scope = |shard| ShardScope {
            shard,
            shards,
            seed: self.seed,
            overlay: &empty,
            jobs: None,
        };
        match event {
            // Job-scoped events concern exactly one partition.
            SchedulerEvent::JobArrived { job }
            | SchedulerEvent::TaskPlaced { job, .. }
            | SchedulerEvent::TaskFinished { job, .. }
            | SchedulerEvent::TaskPreempted { job, .. }
            | SchedulerEvent::TaskAbandoned { job, .. }
            | SchedulerEvent::TaskRunnable { job, .. } => {
                let owner = owner_shard(*job, shards, self.seed);
                self.inner[owner].on_event(&view.scoped(scope(owner)), event);
            }
            // Machine-scoped and round-marker events concern everyone.
            _ => {
                for (i, p) in self.inner.iter_mut().enumerate() {
                    p.on_event(&view.scoped(scope(i)), event);
                }
            }
        }
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let shards = self.inner.len();
        if shards == 1 {
            // Transparent delegate; timed so the critical-path metric is
            // defined uniformly across shard counts.
            let t0 = Instant::now();
            let out = self.inner[0].schedule(view);
            self.last_critical_ns = t0.elapsed().as_nanos() as u64;
            return out;
        }

        let seed = self.seed;
        let mut overlay = CommitOverlay::new();
        let mut accepted: Vec<Assignment> = Vec::new();
        let mut committed_tasks: HashSet<TaskUid> = HashSet::new();
        let mut active: Vec<usize> = (0..shards).collect();
        let mut critical_ns;

        // Bucket the active jobs by owner shard once per heartbeat, so
        // each shard's pass enumerates O(partition) jobs instead of
        // hash-filtering the whole job table per round. Job activity
        // cannot change while schedule() runs (the engine applies
        // assignments only after we return), so the lists stay exact
        // across retry rounds.
        let t0 = Instant::now();
        let mut partition: Vec<Vec<tetris_workload::JobId>> = vec![Vec::new(); shards];
        for j in view.active_jobs() {
            partition[owner_shard(j, shards, seed)].push(j);
        }
        critical_ns = t0.elapsed().as_nanos() as u64;

        // Never oversubscribe the host: extra workers only time-share.
        // Worker count is invisible in the output (pool contract).
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);

        for round in 0..=MAX_RETRY_ROUNDS {
            // Fan out: every active shard runs its pass concurrently
            // against a read-only view scoped to its partition and the
            // overlay committed so far. The pool returns results in
            // submission (= shard) order regardless of finish order.
            let overlay_ref = &overlay;
            let partition_ref = &partition;
            let items: Vec<(usize, &mut Box<dyn SchedulerPolicy + Send>)> = self
                .inner
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| active.contains(i))
                .collect();
            let workers = items.len().min(cores);
            let results: Vec<(usize, Vec<Assignment>, u64)> = pool_map(
                items,
                workers,
                |(si, policy), _| {
                    let t0 = Instant::now();
                    let scoped = view.scoped(ShardScope {
                        shard: si,
                        shards,
                        seed,
                        overlay: overlay_ref,
                        jobs: Some(&partition_ref[si]),
                    });
                    let out = policy.schedule(&scoped);
                    (si, out, t0.elapsed().as_nanos() as u64)
                },
                |_, _| {},
            );
            critical_ns += results.iter().map(|(_, _, ns)| *ns).max().unwrap_or(0);
            let t_commit = Instant::now();

            // Commit serially, shards in index order (the deterministic
            // tie-break), proposals in each shard's own order.
            let mut losers: Vec<usize> = Vec::new();
            let mut rejected: Vec<(TaskUid, MachineId)> = Vec::new();
            for (si, proposals, ns) in results {
                self.shard_ns.push(ns);
                let mut lost = false;
                for a in proposals {
                    if committed_tasks.contains(&a.task) {
                        // Re-proposal of a task this heartbeat already
                        // committed (the proposing shard has not seen a
                        // TaskPlaced event yet) — not a conflict. Audit
                        // note: this guard is what keeps the commit stage
                        // idempotent under retries — the overlay is
                        // charged and `stats.committed` bumped exactly
                        // once per task, and `stats.conflicts` counts
                        // only genuine capacity losses. Pinned by
                        // `reproposals_commit_once_without_double_charging`
                        // in tests/prop_sharded.rs.
                        continue;
                    }
                    let plan = view.plan(a.task, a.machine);
                    if view.is_runnable(a.task)
                        && !view.is_down(a.machine)
                        && Self::commit_fits(view, &overlay, a.machine, &plan)
                    {
                        overlay.charge(a.machine, &plan.local);
                        for (src, dem) in &plan.remote {
                            overlay.charge(*src, dem);
                        }
                        committed_tasks.insert(a.task);
                        accepted.push(a);
                        self.stats.committed += 1;
                    } else {
                        self.stats.conflicts += 1;
                        rejected.push((a.task, a.machine));
                        lost = true;
                    }
                }
                if lost {
                    losers.push(si);
                }
            }

            // Futile-retry cutoff: losers re-run only when a rejected
            // task could actually commit against the residual capacity —
            // otherwise the whole retry round would rediscover "nothing
            // fits" at O(partition) cost per loser.
            let done = losers.is_empty()
                || round == MAX_RETRY_ROUNDS
                || !Self::retry_could_place(view, &overlay, &rejected);
            critical_ns += t_commit.elapsed().as_nanos() as u64;

            if done {
                self.stats.retry_rounds_peak = self.stats.retry_rounds_peak.max(round as u64);
                break;
            }
            self.stats.retry_rounds += 1;
            active = losers;
        }
        self.last_critical_ns = critical_ns;
        accepted
    }

    fn uses_tracker(&self) -> bool {
        self.inner[0].uses_tracker()
    }

    fn export_state(&self) -> Option<String> {
        // One slot per shard, in shard order: job→shard ownership is a
        // pure hash, so a restored driver routes every job to the shard
        // whose state it re-imports. `None` when no shard carries state,
        // keeping stateless configurations blob-free.
        let per_shard: Vec<Option<String>> = self.inner.iter().map(|p| p.export_state()).collect();
        if per_shard.iter().all(Option::is_none) {
            return None;
        }
        Some(serde_json::to_string(&per_shard).expect("shard states serialize"))
    }

    fn import_state(&mut self, state: &str) {
        let per_shard: Vec<Option<String>> =
            serde_json::from_str(state).expect("valid sharded state blob");
        assert_eq!(
            per_shard.len(),
            self.inner.len(),
            "checkpointed shard count differs from this driver's"
        );
        for (p, s) in self.inner.iter_mut().zip(per_shard) {
            if let Some(s) = s {
                p.import_state(&s);
            }
        }
    }

    fn set_capture_provenance(&mut self, on: bool) {
        for p in &mut self.inner {
            p.set_capture_provenance(on);
        }
    }

    fn take_provenance(&mut self, task: TaskUid) -> Option<tetris_obs::PlacementProvenance> {
        self.inner.iter_mut().find_map(|p| p.take_provenance(task))
    }

    fn drain_metrics(&mut self, metrics: &mut MetricsRegistry) {
        for p in &mut self.inner {
            p.drain_metrics(metrics);
        }
        let s = std::mem::take(&mut self.stats);
        if s.conflicts > 0 {
            metrics.counter_add(names::SCHED_CONFLICTS, s.conflicts);
        }
        if s.retry_rounds > 0 {
            metrics.counter_add(names::CONFLICT_RETRY_ROUNDS, s.retry_rounds);
        }
        if s.retry_rounds_peak > 0 {
            metrics.gauge_set(names::CONFLICT_RETRY_PEAK, s.retry_rounds_peak as f64);
        }
        for ns in self.shard_ns.drain(..) {
            metrics.observe(names::SHARD_HEARTBEAT_US, ns / 1_000);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_shard_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for j in 0..256 {
                let a = owner_shard(JobId(j), shards, 42);
                let b = owner_shard(JobId(j), shards, 42);
                assert_eq!(a, b, "hash must be stable");
                assert!(a < shards);
            }
        }
        // Single shard owns everything regardless of seed.
        assert_eq!(owner_shard(JobId(7), 1, 999), 0);
    }

    #[test]
    fn owner_shard_spreads_jobs() {
        // Ownership is block-granular, so spread is asserted over many
        // blocks (1024 here): every shard should own a healthy fraction.
        let shards = 4;
        let n = OWNER_BLOCK * 1024;
        let mut counts = vec![0usize; shards];
        for j in 0..n {
            counts[owner_shard(JobId(j), shards, 42)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > n / 8, "shard {i} owns only {c}/{n} jobs");
        }
        // Whole blocks share an owner (the locality contract).
        for b in 0..32 {
            let first = owner_shard(JobId(b * OWNER_BLOCK), shards, 7);
            for o in 1..OWNER_BLOCK {
                assert_eq!(first, owner_shard(JobId(b * OWNER_BLOCK + o), shards, 7));
            }
        }
    }

    #[test]
    fn overlay_accumulates_charges() {
        let mut o = CommitOverlay::new();
        assert!(o.is_empty());
        assert!(o.charged(MachineId(3)).is_none());
        o.charge(MachineId(3), &ResourceVec::splat(2.0));
        o.charge(MachineId(3), &ResourceVec::splat(1.0));
        assert_eq!(o.charged(MachineId(3)), Some(&ResourceVec::splat(3.0)));
        assert!(o.charged(MachineId(0)).is_none());
    }
}
