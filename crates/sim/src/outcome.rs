//! Results of a simulation run: per-job/task records, utilization samples,
//! and summary accessors used by the evaluation metrics.

use tetris_resources::ResourceVec;
use tetris_workload::{JobId, TaskUid};

use crate::cluster::MachineId;

/// Final record of one job.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Job name from the workload.
    pub name: String,
    /// Recurring-job family, if any.
    pub family: Option<String>,
    /// Arrival time (seconds).
    pub arrival: f64,
    /// When its first task started, if any did.
    pub first_start: Option<f64>,
    /// Completion time (None if the run ended first).
    pub finish: Option<f64>,
    /// Task count.
    pub num_tasks: usize,
}

impl JobRecord {
    /// Job completion time (finish − arrival), if finished.
    pub fn jct(&self) -> Option<f64> {
        self.finish.map(|f| f - self.arrival)
    }
}

/// Final record of one task.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TaskRecord {
    /// Task uid.
    pub uid: TaskUid,
    /// Owning job.
    pub job: JobId,
    /// Machine of the final attempt.
    pub machine: Option<MachineId>,
    /// Start of the final attempt (seconds).
    pub start: Option<f64>,
    /// Finish time (seconds).
    pub finish: Option<f64>,
    /// Ideal (peak-allocation, all-local) duration from the spec.
    pub ideal_duration: f64,
    /// Placement-adjusted duration estimate of the final attempt (a true
    /// lower bound on the simulated duration).
    pub planned_duration: Option<f64>,
    /// Number of attempts (>1 ⇒ failures).
    pub attempts: u32,
    /// True if the task was permanently abandoned after exhausting
    /// `max_task_attempts` (its `finish` records when it was given up).
    #[serde(default)]
    pub abandoned: bool,
}

impl TaskRecord {
    /// Actual duration of the final attempt, if it ran.
    pub fn duration(&self) -> Option<f64> {
        match (self.start, self.finish) {
            (Some(s), Some(f)) => Some(f - s),
            _ => None,
        }
    }

    /// Stretch = actual / planned duration (1.0 = ran at peak rates, more
    /// than 1 = slowed by contention). Falls back to the spec's ideal duration
    /// when no plan was recorded.
    pub fn stretch(&self) -> Option<f64> {
        let d = self.duration()?;
        let base = self.planned_duration.unwrap_or(self.ideal_duration);
        if base > 0.0 {
            Some(d / base)
        } else {
            None
        }
    }
}

/// Per-machine utilization snapshot.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MachineSample {
    /// Demand ledger (may exceed capacity — over-allocation).
    pub allocated: ResourceVec,
    /// Actual usage rates (flows + external; never exceeds capacity on
    /// rate dimensions).
    pub usage: ResourceVec,
    /// Running tasks.
    pub running: usize,
}

/// Cluster-wide utilization snapshot.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Sample time (seconds).
    pub t: f64,
    /// Total running tasks.
    pub running_tasks: usize,
    /// Σ machine allocation ledgers.
    pub cluster_allocated: ResourceVec,
    /// Σ machine usage.
    pub cluster_usage: ResourceVec,
    /// Per-machine detail (if enabled).
    pub machines: Option<Vec<MachineSample>>,
    /// Per-job local allocation (if enabled), indexed by job id.
    pub per_job_alloc: Option<Vec<ResourceVec>>,
}

/// Engine counters (diagnostics and the overhead table).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Events processed.
    pub events: u64,
    /// schedule() invocations.
    pub schedule_calls: u64,
    /// Assignments applied.
    pub placements: u64,
    /// Assignments rejected as invalid.
    pub rejected_assignments: u64,
    /// Task attempts that failed and re-ran.
    pub task_failures: u64,
    /// Tasks permanently abandoned after exhausting `max_task_attempts`
    /// (terminal-failure audit: their jobs still complete).
    #[serde(default)]
    pub tasks_abandoned: u64,
    /// Machine crash events injected by the fault plan.
    #[serde(default)]
    pub machine_crashes: u64,
    /// Task attempts killed by machine crashes.
    #[serde(default)]
    pub crash_killed_attempts: u64,
    /// Seconds of task progress lost to crashes.
    #[serde(default)]
    pub lost_task_seconds: f64,
    /// Running tasks evicted by priority preemption (DESIGN.md §16;
    /// always 0 with `SimConfig::preemption` off).
    #[serde(default)]
    pub preemptions: u64,
}

/// Everything a run produced.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SimOutcome {
    /// Name of the scheduler that ran.
    pub scheduler: String,
    /// True if every job finished before the hard stop.
    pub completed: bool,
    /// Simulated time at which the run ended (seconds).
    pub final_time: f64,
    /// Per-job records, indexed by job id.
    pub jobs: Vec<JobRecord>,
    /// Per-task records, indexed by task uid.
    pub tasks: Vec<TaskRecord>,
    /// Utilization timeline.
    pub samples: Vec<Sample>,
    /// Engine counters.
    pub stats: EngineStats,
}

impl SimOutcome {
    /// True iff all jobs completed.
    pub fn all_jobs_completed(&self) -> bool {
        self.completed
    }

    /// Makespan: time at which the last job finished (the paper measures
    /// makespan on runs where all jobs arrive at t=0).
    pub fn makespan(&self) -> f64 {
        self.jobs
            .iter()
            .filter_map(|j| j.finish)
            .fold(0.0, f64::max)
    }

    /// Job completion times in job-id order (NaN-free; unfinished jobs are
    /// skipped).
    pub fn jct_vec(&self) -> Vec<f64> {
        self.jobs.iter().filter_map(|j| j.jct()).collect()
    }

    /// Average job completion time.
    pub fn avg_jct(&self) -> f64 {
        let v = self.jct_vec();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// JCT of one job.
    pub fn jct(&self, j: JobId) -> Option<f64> {
        self.jobs[j.index()].jct()
    }

    /// Mean stretch (actual/ideal duration) over completed tasks; values
    /// above 1 quantify contention-induced slowdown (over-allocation).
    pub fn mean_task_stretch(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for t in &self.tasks {
            if let Some(s) = t.stretch() {
                sum += s;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, arrival: f64, finish: Option<f64>) -> JobRecord {
        JobRecord {
            id: JobId(id),
            name: format!("j{id}"),
            family: None,
            arrival,
            first_start: finish.map(|_| arrival),
            finish,
            num_tasks: 1,
        }
    }

    fn outcome(jobs: Vec<JobRecord>) -> SimOutcome {
        SimOutcome {
            scheduler: "test".into(),
            completed: jobs.iter().all(|j| j.finish.is_some()),
            final_time: 0.0,
            jobs,
            tasks: vec![],
            samples: vec![],
            stats: EngineStats::default(),
        }
    }

    #[test]
    fn jct_and_makespan() {
        let o = outcome(vec![job(0, 10.0, Some(50.0)), job(1, 0.0, Some(30.0))]);
        assert_eq!(o.jct(JobId(0)), Some(40.0));
        assert_eq!(o.makespan(), 50.0);
        assert_eq!(o.avg_jct(), 35.0);
        assert!(o.all_jobs_completed());
    }

    #[test]
    fn unfinished_jobs_skipped() {
        let o = outcome(vec![job(0, 0.0, Some(10.0)), job(1, 0.0, None)]);
        assert!(!o.all_jobs_completed());
        assert_eq!(o.jct_vec(), vec![10.0]);
        assert_eq!(o.avg_jct(), 10.0);
    }

    #[test]
    fn empty_outcome_defaults() {
        let o = outcome(vec![]);
        assert_eq!(o.makespan(), 0.0);
        assert_eq!(o.avg_jct(), 0.0);
        assert_eq!(o.mean_task_stretch(), 0.0);
    }

    #[test]
    fn task_stretch() {
        let t = TaskRecord {
            uid: TaskUid(0),
            job: JobId(0),
            machine: Some(MachineId(0)),
            start: Some(0.0),
            finish: Some(20.0),
            ideal_duration: 8.0,
            planned_duration: Some(10.0),
            attempts: 1,
            abandoned: false,
        };
        assert_eq!(t.duration(), Some(20.0));
        assert_eq!(t.stretch(), Some(2.0));
    }
}
