//! Crash recovery: checkpoint restore + deterministic journal replay
//! (DESIGN.md §15).
//!
//! The journal ([`crate::journal`]) records enough to rebuild the engine
//! at any *batch boundary*: a periodic [`CheckpointState`] snapshot of
//! everything event processing reads or writes (ledgers, queue, RNG,
//! stats, samples), plus the per-batch commit decisions. Recovery is then
//! three deterministic steps:
//!
//! 1. **Scan** — read the journal leniently, discarding a torn tail, and
//!    derive the *commit frontier*: the last batch whose `BatchCommit`
//!    survived. Records of an uncommitted trailing batch (the mid-commit
//!    crash artifact — e.g. only some of a `ShardedScheduler`'s merged
//!    shard plans made it out) are dropped with the tail.
//! 2. **Restore** — rebuild the engine from the last checkpoint at or
//!    before the frontier, including the policy's persistent state
//!    ([`crate::SchedulerPolicy::import_state`]: §3.5 reservations and
//!    the like — cache state is excluded, it rebuilds from the view).
//! 3. **Replay** — re-run the event loop from the checkpoint. Events are
//!    recomputed (they are a pure function of restored state), and the
//!    scheduling rounds of replayed heartbeats re-invoke the policy —
//!    determinism makes its decisions a pure function of the restored
//!    state — while every applied placement is cross-checked against the
//!    journaled decision stream. Any disagreement is a typed
//!    [`RecoveryError::ReplayDivergence`], never a silent fork. Past the
//!    frontier the run continues live to completion.
//!
//! Because every input to the event loop is restored exactly — queue
//! order *and* sequence counter, RNG state, ledger contents, policy
//! state — the recovered outcome is byte-identical to the uninterrupted
//! run's (pinned by `prop_recovery` and the `recovery` experiment).

use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

use rand::rngs::StdRng;
use tetris_workload::{TaskUid, Workload};

use crate::cluster::{ClusterConfig, MachineId};
use crate::config::{ExternalLoad, SimConfig};
use crate::events::{Event, EventQueue};
use crate::fault::TrackerMode;
use crate::journal::{DiscardedTail, Journal, JournalError, JournalRecord, JOURNAL_VERSION};
use crate::outcome::{EngineStats, Sample, SimOutcome};
use crate::state::{Flow, JobState, MachineState, SimState, TaskState};
use crate::time::SimTime;

/// How a journaled run ended.
#[derive(Debug)]
pub enum RunResult {
    /// The run completed (or hit the hard stop) normally.
    Completed(Box<SimOutcome>),
    /// A configured [`crate::SchedulerCrash`] fired: the scheduler died at
    /// this 1-based heartbeat, leaving the journal as its only trace.
    Crashed {
        /// Heartbeat at which the scheduler died.
        heartbeat: u64,
    },
}

impl RunResult {
    /// The outcome, if the run completed.
    pub fn completed(self) -> Option<SimOutcome> {
        match self {
            RunResult::Completed(o) => Some(*o),
            RunResult::Crashed { .. } => None,
        }
    }
}

/// Why a recovery attempt failed. Never a panic: corrupt journals and
/// divergent replays both surface as values.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The journal could not be read back to a usable prefix.
    Journal(JournalError),
    /// Replay contradicted the live engine: a journaled decision was
    /// invalid against the reconstructed state, or batches misaligned.
    /// Indicates a journal from a different run slipping past the
    /// fingerprint, or corruption inside a CRC-valid payload.
    ReplayDivergence {
        /// Heartbeat at which replay diverged.
        heartbeat: u64,
        /// What disagreed.
        msg: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Journal(e) => write!(f, "journal unusable: {e}"),
            RecoveryError::ReplayDivergence { heartbeat, msg } => {
                write!(f, "replay diverged at heartbeat {heartbeat}: {msg}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<JournalError> for RecoveryError {
    fn from(e: JournalError) -> Self {
        RecoveryError::Journal(e)
    }
}

/// A successful recovery: the reconstructed outcome plus what it took.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered run's outcome — byte-identical to an uninterrupted
    /// run of the same builder.
    pub outcome: SimOutcome,
    /// Recovery diagnostics.
    pub stats: RecoveryStats,
}

/// Diagnostics of one recovery.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Heartbeat of the checkpoint restored from.
    pub checkpoint_heartbeat: u64,
    /// Committed batches replayed from the journal (frontier −
    /// checkpoint; ≤ the configured checkpoint interval when the journal
    /// is untruncated).
    pub replayed_batches: u64,
    /// Journaled placements re-derived and cross-checked during replay.
    pub replayed_placements: u64,
    /// Records dropped with the torn tail (0 for a clean journal).
    pub discarded_records: u64,
    /// Byte offset where the torn tail began, if one was discarded.
    pub discarded_offset: Option<u64>,
    /// Wall-clock of restore + replay back to the commit frontier,
    /// microseconds.
    pub recovery_wall_us: u64,
}

/// Everything the engine needs to resume at a batch boundary. Fields not
/// stored are derivable: `task_loc` and `total_capacity` from the
/// builder's cluster/workload, the machine index via `index_rebuild`, and
/// the dirty set is empty at every batch boundary.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct CheckpointState {
    pub now_us: u64,
    pub heartbeat: u64,
    pub machines: Vec<MachineState>,
    pub tasks: Vec<TaskState>,
    pub jobs: Vec<JobState>,
    pub blocks: Vec<Vec<MachineId>>,
    pub flows: Vec<Flow>,
    pub jobs_remaining: usize,
    pub rng: [u64; 4],
    pub completions: usize,
    pub tracker_modes: Vec<TrackerMode>,
    pub tracker_modes_baseline: Vec<TrackerMode>,
    pub dynamic_loads: Vec<ExternalLoad>,
    pub external_active: Vec<bool>,
    pub external_cancelled: Vec<bool>,
    pub tasks_abandoned: u64,
    pub freed_hint: Vec<MachineId>,
    pub events: Vec<Event>,
    pub next_seq: u64,
    pub stats: EngineStats,
    pub samples: Vec<Sample>,
    /// The policy's persistent cross-call state
    /// ([`crate::SchedulerPolicy::export_state`]); `None` for policies
    /// whose only cross-call state is rebuildable cache.
    pub policy_state: Option<String>,
}

// Snapshot equality via the wire form: the runtime-state types don't
// implement `PartialEq`, and the wire form is exactly what recovery sees.
impl PartialEq for CheckpointState {
    fn eq(&self, other: &Self) -> bool {
        serde_json::to_string(self).ok() == serde_json::to_string(other).ok()
    }
}

impl CheckpointState {
    /// Snapshot the engine at a batch boundary.
    pub(crate) fn capture(
        state: &SimState,
        queue: &EventQueue,
        stats: &EngineStats,
        samples: &[Sample],
        heartbeat: u64,
        policy_state: Option<String>,
    ) -> Self {
        let (events, next_seq) = queue.snapshot();
        CheckpointState {
            now_us: state.now.0,
            heartbeat,
            machines: state.machines.clone(),
            tasks: state.tasks.clone(),
            jobs: state.jobs.clone(),
            blocks: state.blocks.clone(),
            flows: state.flows.clone(),
            jobs_remaining: state.jobs_remaining,
            rng: state.rng.state(),
            completions: state.completions,
            tracker_modes: state.tracker_modes.clone(),
            tracker_modes_baseline: state.tracker_modes_baseline.clone(),
            dynamic_loads: state.dynamic_loads.clone(),
            external_active: state.external_active.clone(),
            external_cancelled: state.external_cancelled.clone(),
            tasks_abandoned: state.tasks_abandoned,
            freed_hint: state.freed_hint.clone(),
            events,
            next_seq,
            stats: stats.clone(),
            samples: samples.to_vec(),
            policy_state,
        }
    }

    /// Rebuild engine state from this snapshot. The builder supplies the
    /// static inputs (cluster, workload, config); the snapshot overwrites
    /// every runtime field, so the `SimState::new` RNG draws (block
    /// placement) are discarded along with its fresh block binding.
    pub(crate) fn restore(
        self,
        cluster: ClusterConfig,
        workload: Workload,
        cfg: SimConfig,
    ) -> (SimState, EventQueue, EngineStats, Vec<Sample>, u64) {
        let mut state = SimState::new(cluster, workload, cfg);
        state.now = SimTime(self.now_us);
        state.machines = self.machines;
        state.tasks = self.tasks;
        state.jobs = self.jobs;
        state.blocks = self.blocks;
        state.flows = self.flows;
        state.jobs_remaining = self.jobs_remaining;
        state.rng = StdRng::from_state(self.rng);
        state.completions = self.completions;
        state.tracker_modes = self.tracker_modes;
        state.tracker_modes_baseline = self.tracker_modes_baseline;
        state.dynamic_loads = self.dynamic_loads;
        state.external_active = self.external_active;
        state.external_cancelled = self.external_cancelled;
        state.tasks_abandoned = self.tasks_abandoned;
        state.freed_hint = self.freed_hint;
        state.index_rebuild();
        let queue = EventQueue::restore(self.events, self.next_seq);
        (state, queue, self.stats, self.samples, self.heartbeat)
    }
}

/// One committed batch reconstructed from the journal. During replay the
/// policy is re-invoked and its applied placements are popped off
/// `expected` one by one — the journal is the witness the live decisions
/// must reproduce, not a substitute for them.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ReplayBatch {
    pub heartbeat: u64,
    pub now_us: u64,
    /// `(round, task, machine)` in commit order.
    pub expected: VecDeque<(u32, TaskUid, MachineId)>,
    pub placements: u64,
    pub schedule_calls: u64,
    pub rejected: u64,
}

/// The replay half of a recovery: the batches between the restored
/// checkpoint and the commit frontier, plus bookkeeping the engine fills
/// in as it consumes them.
#[derive(Debug)]
pub(crate) struct ReplayPlan {
    pub batches: VecDeque<ReplayBatch>,
    pub stats: RecoveryStats,
    /// Started at restore begin; stops when the last batch is consumed.
    pub started: Instant,
    pub replay_done: bool,
}

impl ReplayPlan {
    /// Total placements across all batches.
    fn total_placements(&self) -> u64 {
        self.batches.iter().map(|b| b.placements).sum()
    }
}

/// Scan `journal`, validate it against the builder's `fingerprint`, and
/// derive (checkpoint to restore, batches to replay).
pub(crate) fn plan_recovery(
    journal: &Journal,
    expected_fingerprint: u64,
) -> Result<(CheckpointState, ReplayPlan), RecoveryError> {
    let started = Instant::now();
    if journal.bytes().is_empty() {
        return Err(JournalError::Empty.into());
    }
    let (records, tail) = journal.records_lenient();

    // Header first, and it must belong to this run.
    match records.first() {
        Some((
            _,
            JournalRecord::RunHeader {
                version,
                fingerprint,
                ..
            },
        )) => {
            if *version != JOURNAL_VERSION {
                return Err(JournalError::BadVersion { found: *version }.into());
            }
            if *fingerprint != expected_fingerprint {
                return Err(JournalError::FingerprintMismatch {
                    expected: expected_fingerprint,
                    found: *fingerprint,
                }
                .into());
            }
        }
        _ => return Err(JournalError::MissingHeader { offset: 0 }.into()),
    }

    // Walk the committed prefix: remember the last checkpoint and the
    // batches after it. An uncommitted trailing batch is dropped exactly
    // like a torn tail; a structural violation *before* the tail is a
    // hard error (the lenient scan only forgives frame damage, not
    // grammar damage).
    let mut checkpoint: Option<(u64, CheckpointState)> = None;
    let mut committed: Vec<ReplayBatch> = Vec::new();
    let mut open: Option<ReplayBatch> = None;
    let mut discarded_records = 0u64;
    for (offset, rec) in records.into_iter().skip(1) {
        match rec {
            JournalRecord::RunHeader { .. } => {
                return Err(JournalError::DuplicateHeader { offset }.into());
            }
            JournalRecord::Checkpoint { heartbeat, state } => {
                if open.is_some() {
                    return Err(structural(offset, "checkpoint inside an open batch"));
                }
                checkpoint = Some((heartbeat, *state));
                // Batches at or before the snapshot are baked into it.
                committed.clear();
            }
            JournalRecord::BatchStart { heartbeat, now_us } => {
                if let Some(b) = &open {
                    return Err(structural(
                        offset,
                        &format!("batch opened while batch {} is open", b.heartbeat),
                    ));
                }
                open = Some(ReplayBatch {
                    heartbeat,
                    now_us,
                    expected: VecDeque::new(),
                    placements: 0,
                    schedule_calls: 0,
                    rejected: 0,
                });
            }
            JournalRecord::Placement {
                task,
                machine,
                round,
            } => match &mut open {
                None => return Err(structural(offset, "placement outside any open batch")),
                Some(b) => {
                    b.expected.push_back((round, task, machine));
                    b.placements += 1;
                }
            },
            JournalRecord::BatchCommit {
                heartbeat,
                placements,
                schedule_calls,
                rejected,
            } => match open.take() {
                Some(mut b) if b.heartbeat == heartbeat => {
                    if b.placements != placements {
                        return Err(structural(
                            offset,
                            &format!(
                                "commit claims {placements} placements, journal holds {}",
                                b.placements
                            ),
                        ));
                    }
                    b.schedule_calls = schedule_calls;
                    b.rejected = rejected;
                    committed.push(b);
                }
                Some(b) => {
                    return Err(structural(
                        offset,
                        &format!("commit for batch {heartbeat} closes batch {}", b.heartbeat),
                    ));
                }
                None => {
                    return Err(structural(
                        offset,
                        &format!("commit for batch {heartbeat} with no open batch"),
                    ))
                }
            },
        }
    }
    if let Some(b) = open {
        // Torn final batch (mid-commit crash): discard its records.
        discarded_records += 1 + b.placements;
    }

    let (checkpoint_heartbeat, cp) = checkpoint.ok_or(JournalError::NoCheckpoint)?;
    // Only batches after the checkpoint remain (earlier ones were cleared
    // when the checkpoint record was seen), and they must chain directly
    // from it.
    let mut expect = checkpoint_heartbeat;
    for b in &committed {
        if b.heartbeat != expect + 1 {
            return Err(structural(
                0,
                &format!("batch {} does not follow heartbeat {expect}", b.heartbeat),
            ));
        }
        expect = b.heartbeat;
    }

    let stats = RecoveryStats {
        checkpoint_heartbeat,
        replayed_batches: committed.len() as u64,
        replayed_placements: committed.iter().map(|b| b.placements).sum(),
        discarded_records,
        discarded_offset: tail.as_ref().map(|t: &DiscardedTail| t.offset),
        recovery_wall_us: 0,
    };
    let plan = ReplayPlan {
        batches: committed.into(),
        stats,
        started,
        replay_done: false,
    };
    debug_assert_eq!(plan.stats.replayed_placements, plan.total_placements());
    Ok((cp, plan))
}

fn structural(offset: u64, msg: &str) -> RecoveryError {
    RecoveryError::Journal(JournalError::OutOfOrder {
        offset,
        msg: msg.to_string(),
    })
}

/// FNV-1a fingerprint binding a journal to its run: cluster shape,
/// workload size, and seed. Deliberately excludes the crash plan and
/// checkpoint cadence so a crash-free builder can recover a crashed
/// run's journal.
pub(crate) fn run_fingerprint(cluster: &ClusterConfig, workload: &Workload, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let cluster_json = serde_json::to_string(cluster).expect("cluster serializes");
    eat(cluster_json.as_bytes());
    eat(&(workload.jobs.len() as u64).to_le_bytes());
    eat(&(workload.num_tasks() as u64).to_le_bytes());
    eat(&(workload.num_blocks as u64).to_le_bytes());
    eat(&seed.to_le_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_journal() -> Journal {
        let mut j = Journal::new();
        j.append(&JournalRecord::RunHeader {
            version: JOURNAL_VERSION,
            seed: 1,
            fingerprint: 42,
            checkpoint_every: 2,
        });
        j.append(&JournalRecord::Checkpoint {
            heartbeat: 0,
            state: Box::new(empty_checkpoint(0)),
        });
        j
    }

    fn empty_checkpoint(heartbeat: u64) -> CheckpointState {
        CheckpointState {
            now_us: 0,
            heartbeat,
            machines: Vec::new(),
            tasks: Vec::new(),
            jobs: Vec::new(),
            blocks: Vec::new(),
            flows: Vec::new(),
            jobs_remaining: 0,
            rng: [1, 2, 3, 4],
            completions: 0,
            tracker_modes: Vec::new(),
            tracker_modes_baseline: Vec::new(),
            dynamic_loads: Vec::new(),
            external_active: Vec::new(),
            external_cancelled: Vec::new(),
            tasks_abandoned: 0,
            freed_hint: Vec::new(),
            events: Vec::new(),
            next_seq: 0,
            stats: EngineStats::default(),
            samples: Vec::new(),
            policy_state: None,
        }
    }

    #[test]
    fn plan_requires_matching_fingerprint() {
        let j = mini_journal();
        match plan_recovery(&j, 7) {
            Err(RecoveryError::Journal(JournalError::FingerprintMismatch { expected, found })) => {
                assert_eq!((expected, found), (7, 42));
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        assert!(plan_recovery(&j, 42).is_ok());
    }

    #[test]
    fn torn_trailing_batch_is_discarded() {
        let mut j = mini_journal();
        j.append(&JournalRecord::BatchStart {
            heartbeat: 1,
            now_us: 10,
        });
        j.append(&JournalRecord::Placement {
            task: TaskUid(0),
            machine: MachineId(0),
            round: 0,
        });
        // No commit: the batch must not be replayed.
        let (cp, plan) = plan_recovery(&j, 42).unwrap();
        assert_eq!(cp.heartbeat, 0);
        assert!(plan.batches.is_empty());
        assert_eq!(plan.stats.discarded_records, 2);
    }

    #[test]
    fn committed_batches_after_checkpoint_are_replayed() {
        let mut j = mini_journal();
        j.append(&JournalRecord::BatchStart {
            heartbeat: 1,
            now_us: 10,
        });
        j.append(&JournalRecord::Placement {
            task: TaskUid(0),
            machine: MachineId(0),
            round: 0,
        });
        j.append(&JournalRecord::Placement {
            task: TaskUid(1),
            machine: MachineId(0),
            round: 1,
        });
        j.append(&JournalRecord::BatchCommit {
            heartbeat: 1,
            placements: 2,
            schedule_calls: 3,
            rejected: 0,
        });
        let (_, plan) = plan_recovery(&j, 42).unwrap();
        assert_eq!(plan.batches.len(), 1);
        let b = &plan.batches[0];
        assert_eq!(
            Vec::from(b.expected.clone()),
            vec![(0, TaskUid(0), MachineId(0)), (1, TaskUid(1), MachineId(0))]
        );
        assert_eq!(b.schedule_calls, 3);
        assert_eq!(plan.stats.replayed_placements, 2);
    }

    #[test]
    fn later_checkpoint_supersedes_earlier_batches() {
        let mut j = mini_journal();
        j.append(&JournalRecord::BatchStart {
            heartbeat: 1,
            now_us: 10,
        });
        j.append(&JournalRecord::BatchCommit {
            heartbeat: 1,
            placements: 0,
            schedule_calls: 1,
            rejected: 0,
        });
        j.append(&JournalRecord::Checkpoint {
            heartbeat: 1,
            state: Box::new(empty_checkpoint(1)),
        });
        let (cp, plan) = plan_recovery(&j, 42).unwrap();
        assert_eq!(cp.heartbeat, 1);
        assert!(plan.batches.is_empty());
    }

    #[test]
    fn empty_journal_is_typed_not_a_panic() {
        match plan_recovery(&Journal::new(), 0) {
            Err(RecoveryError::Journal(JournalError::Empty)) => {}
            other => panic!("expected Empty, got {other:?}"),
        }
    }
}
