//! Static cluster description: machines, racks, capacities.

use tetris_resources::{MachineSpec, ResourceVec};

/// Identifier of a machine in the cluster (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct MachineId(pub usize);

impl MachineId {
    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Static cluster configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ClusterConfig {
    /// Per-machine hardware specs.
    pub machines: Vec<MachineSpec>,
    /// Machines per rack (racks are metadata; the simulator models the
    /// last-hop link per §4.1 since modern cores have small
    /// over-subscription).
    pub machines_per_rack: usize,
}

impl ClusterConfig {
    /// `n` identical machines.
    pub fn uniform(n: usize, spec: MachineSpec) -> Self {
        assert!(n > 0, "cluster needs at least one machine");
        ClusterConfig {
            machines: vec![spec; n],
            machines_per_rack: 20,
        }
    }

    /// The paper's deployment cluster: 250 machines of the large profile.
    pub fn paper_large() -> Self {
        Self::uniform(250, MachineSpec::paper_large())
    }

    /// The paper's small cluster (§5.1): 30 machines of the small profile.
    pub fn paper_small() -> Self {
        Self::uniform(30, MachineSpec::paper_small())
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True if no machines (never valid for simulation).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Rack of a machine.
    pub fn rack_of(&self, m: MachineId) -> usize {
        m.index() / self.machines_per_rack.max(1)
    }

    /// Capacity vector of machine `m`.
    pub fn capacity(&self, m: MachineId) -> ResourceVec {
        self.machines[m.index()].capacity()
    }

    /// Aggregate capacity of the whole cluster.
    pub fn total_capacity(&self) -> ResourceVec {
        self.machines.iter().map(|s| s.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::Resource;

    #[test]
    fn uniform_builds_n() {
        let c = ClusterConfig::uniform(4, MachineSpec::paper_small());
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        let total = c.total_capacity();
        assert_eq!(total.get(Resource::Cpu), 16.0);
    }

    #[test]
    fn racks_partition_machines() {
        let mut c = ClusterConfig::uniform(45, MachineSpec::paper_small());
        c.machines_per_rack = 20;
        assert_eq!(c.rack_of(MachineId(0)), 0);
        assert_eq!(c.rack_of(MachineId(19)), 0);
        assert_eq!(c.rack_of(MachineId(20)), 1);
        assert_eq!(c.rack_of(MachineId(44)), 2);
    }

    #[test]
    fn paper_clusters() {
        assert_eq!(ClusterConfig::paper_large().len(), 250);
        assert_eq!(ClusterConfig::paper_small().len(), 30);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_cluster_panics() {
        ClusterConfig::uniform(0, MachineSpec::paper_small());
    }
}
