//! # tetris-sim
//!
//! Deterministic discrete-event cluster simulator for the Tetris
//! (SIGCOMM'14) reproduction.
//!
//! The simulator models what the paper's analytical section (§3.1) makes a
//! scheduler responsible for:
//!
//! * machines with six resource dimensions ([`ClusterConfig`]);
//! * tasks whose **durations depend on placement and contention**
//!   (paper eqn. 5): every running task is decomposed into rate-capped
//!   flows over `(machine, resource)` links, over-subscribed links share
//!   proportionally, and a task finishes when all its flows do — so a
//!   scheduler that over-allocates disk or network stretches every task it
//!   co-locates, which is the effect Tetris exists to avoid;
//! * online job arrivals, DAG barriers, shuffle data whose location is
//!   determined by upstream placement, HDFS-style replicated blocks,
//!   task failures, and external cluster activity (ingestion/evacuation,
//!   §4.3) observed through a periodically-reporting resource tracker
//!   (§4.1);
//! * a policy interface ([`SchedulerPolicy`]) through which Tetris and all
//!   baselines plug in, seeing only scheduler-observable state.
//!
//! Runs are **bit-reproducible**: the event queue breaks ties by insertion
//! order, no hash-ordered iteration exists on any decision path, and all
//! randomness flows from one seed.
//!
//! ## Example
//!
//! ```
//! use tetris_sim::{ClusterConfig, GreedyFifo, Simulation};
//! use tetris_resources::MachineSpec;
//! use tetris_workload::WorkloadSuiteConfig;
//!
//! let outcome = Simulation::build(
//!         ClusterConfig::uniform(4, MachineSpec::paper_large()),
//!         WorkloadSuiteConfig::small().generate(1),
//!     )
//!     .scheduler(GreedyFifo::new())
//!     .seed(1)
//!     .run();
//! assert!(outcome.all_jobs_completed());
//! println!("makespan: {:.0}s avg JCT: {:.0}s", outcome.makespan(), outcome.avg_jct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod engine;
mod events;
mod fault;
mod index;
mod journal;
mod outcome;
pub mod pool;
pub mod probe;
mod recovery;
pub mod sharded;
mod state;
mod telemetry;
pub mod time;
pub mod token_bucket;
pub mod tracker;
mod view;

pub use cluster::{ClusterConfig, MachineId};
pub use config::{ExternalLoad, Interference, SimConfig};
pub use engine::{GreedyFifo, Simulation};
pub use fault::{ExpandedFaultPlan, FaultPlan, SchedulerCrash};
pub use index::IndexStatsSnapshot;
pub use journal::{DiscardedTail, Journal, JournalError, JournalStats, JOURNAL_VERSION};
pub use outcome::{EngineStats, JobRecord, MachineSample, Sample, SimOutcome, TaskRecord};
pub use recovery::{Recovered, RecoveryError, RecoveryStats, RunResult};
pub use sharded::{owner_shard, CommitOverlay, ShardedScheduler, ShardedStats};
pub use state::{PlacementPlan, TaskCompletion};
pub use time::SimTime;
pub use view::{
    plan_priority_preemption, Assignment, ClusterView, MachineQuery, MarkAllDirty, SchedulerEvent,
    SchedulerPolicy, StageProgress,
};
// Re-exported so policies can annotate assignments without naming the obs
// crate themselves.
pub use tetris_obs::{DecisionScores, PlacementProvenance, RejectedCandidate};
