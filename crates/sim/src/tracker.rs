//! Resource-tracker helpers (paper §4.1).
//!
//! The tracker process on every node reports aggregate usage to the
//! cluster-wide resource manager. The engine models the report cycle
//! directly (`SimState::tracker_report`); this module provides the
//! *ramp-up allowance* the paper describes for usage-based reports:
//!
//! > "In its reports, the tracker provides allowance for newly assigned
//! > tasks to 'ramp up' their usages. It does so by increasing the
//! > observed usage by a small amount per task; the amount decreases over
//! > the task's lifetime and goes to zero after a threshold (we use 10s)."
//!
//! Without the allowance, a scheduler that trusts *usage* reports would
//! over-schedule during the window between assigning a task and the task
//! reaching its steady-state usage.

use tetris_resources::ResourceVec;

/// Ramp-up horizon in seconds (paper: 10 s).
pub const RAMP_UP_HORIZON_SECS: f64 = 10.0;

/// Allowance added to observed usage for one task that started `age`
/// seconds ago with peak demand `demand`: linearly decaying from the full
/// demand at age 0 to zero at the horizon.
pub fn ramp_up_allowance(demand: &ResourceVec, age: f64, horizon: f64) -> ResourceVec {
    assert!(horizon > 0.0);
    if age >= horizon {
        return ResourceVec::zero();
    }
    let frac = 1.0 - (age.max(0.0) / horizon);
    *demand * frac
}

/// A usage report: observed usage plus ramp-up allowances for young tasks.
///
/// `young_tasks` holds `(demand, age_seconds)` pairs for tasks assigned to
/// the machine within the horizon.
pub fn adjusted_usage(
    observed: &ResourceVec,
    young_tasks: &[(ResourceVec, f64)],
    horizon: f64,
) -> ResourceVec {
    let mut total = *observed;
    for (demand, age) in young_tasks {
        total += ramp_up_allowance(demand, *age, horizon);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::Resource;

    fn d(cpu: f64) -> ResourceVec {
        ResourceVec::zero().with(Resource::Cpu, cpu)
    }

    #[test]
    fn allowance_full_at_zero_age() {
        let a = ramp_up_allowance(&d(2.0), 0.0, 10.0);
        assert_eq!(a.get(Resource::Cpu), 2.0);
    }

    #[test]
    fn allowance_decays_linearly() {
        let a = ramp_up_allowance(&d(2.0), 5.0, 10.0);
        assert_eq!(a.get(Resource::Cpu), 1.0);
    }

    #[test]
    fn allowance_zero_after_horizon() {
        assert!(ramp_up_allowance(&d(2.0), 10.0, 10.0).is_zero());
        assert!(ramp_up_allowance(&d(2.0), 100.0, 10.0).is_zero());
    }

    #[test]
    fn negative_age_clamps_to_full() {
        let a = ramp_up_allowance(&d(2.0), -1.0, 10.0);
        assert_eq!(a.get(Resource::Cpu), 2.0);
    }

    #[test]
    fn adjusted_usage_sums_allowances() {
        let observed = d(1.0);
        let young = vec![(d(2.0), 0.0), (d(4.0), 5.0)];
        let adj = adjusted_usage(&observed, &young, 10.0);
        // 1 + 2 + 2 = 5.
        assert_eq!(adj.get(Resource::Cpu), 5.0);
    }

    #[test]
    fn adjusted_usage_converges_to_observed() {
        let observed = d(3.0);
        let young = vec![(d(2.0), 20.0)];
        assert_eq!(
            adjusted_usage(&observed, &young, RAMP_UP_HORIZON_SECS),
            observed
        );
    }
}
