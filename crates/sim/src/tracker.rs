//! Resource-tracker helpers (paper §4.1).
//!
//! The tracker process on every node reports aggregate usage to the
//! cluster-wide resource manager. The engine models the report cycle
//! directly (`SimState::tracker_report`); this module provides the
//! *ramp-up allowance* the paper describes for usage-based reports:
//!
//! > "In its reports, the tracker provides allowance for newly assigned
//! > tasks to 'ramp up' their usages. It does so by increasing the
//! > observed usage by a small amount per task; the amount decreases over
//! > the task's lifetime and goes to zero after a threshold (we use 10s)."
//!
//! Without the allowance, a scheduler that trusts *usage* reports would
//! over-schedule during the window between assigning a task and the task
//! reaching its steady-state usage.

use tetris_resources::{Resource, ResourceVec};

/// Ramp-up horizon in seconds (paper: 10 s).
pub const RAMP_UP_HORIZON_SECS: f64 = 10.0;

// ----------------------------------------------------------------------
// Misbehaving-node detection (fault model, DESIGN.md §10)
//
// The resource manager scores each machine's trustworthiness from its
// report stream. Missed reports (crashed machine), implausible reports
// (claimed usage beyond hardware capacity) and frozen reports (stale
// tracker: the report stops moving while the allocation ledger does) add
// suspicion; every plausible report halves it. A machine at or above
// `SUSPECT_THRESHOLD` is *suspect*: schedulers deprioritize it rather
// than blacklist it, so the cluster degrades gracefully and a recovered
// machine earns its way back within a few report periods.
// ----------------------------------------------------------------------

/// Suspicion at or above which a machine is suspect. Two strikes: one
/// missed report is forgiven (report loss happens), two in a row are not.
pub const SUSPECT_THRESHOLD: f64 = 2.0;
/// Suspicion ceiling, so recovery time after a long outage is bounded
/// (cap → below threshold in two good reports at the default decay).
pub const SUSPICION_CAP: f64 = 8.0;
/// Multiplicative decay applied by each plausible report.
pub const SUSPICION_DECAY: f64 = 0.5;
/// Suspicion below this snaps to exactly zero (keeps honest machines'
/// state canonical and comparisons exact).
pub const SUSPICION_ZERO_BELOW: f64 = 0.125;
/// Suspicion added per missed report (machine down / unreachable).
pub const MISSED_REPORT_SUSPICION: f64 = 1.0;
/// Suspicion added per implausible (over-capacity) report.
pub const IMPLAUSIBLE_REPORT_SUSPICION: f64 = 1.0;
/// A report is implausible when any rate dimension exceeds capacity by
/// more than this factor (small margin forgives measurement jitter).
pub const PLAUSIBLE_CAPACITY_MARGIN: f64 = 1.05;
/// Consecutive frozen-while-ledger-moves reports before the stale
/// detector starts adding suspicion.
pub const STALE_STREAK_REPORTS: u32 = 3;

/// True if a usage report claims more than the machine's hardware can
/// deliver on some dimension (beyond the plausibility margin). Memory is
/// included: a report above physical RAM is just as impossible.
pub fn report_implausible(reported: &ResourceVec, capacity: &ResourceVec) -> bool {
    Resource::ALL.iter().any(|&r| {
        let cap = capacity.get(r);
        cap > 0.0 && reported.get(r) > cap * PLAUSIBLE_CAPACITY_MARGIN
    })
}

/// Allowance added to observed usage for one task that started `age`
/// seconds ago with peak demand `demand`: linearly decaying from the full
/// demand at age 0 to zero at the horizon.
pub fn ramp_up_allowance(demand: &ResourceVec, age: f64, horizon: f64) -> ResourceVec {
    assert!(horizon > 0.0);
    if age >= horizon {
        return ResourceVec::zero();
    }
    let frac = 1.0 - (age.max(0.0) / horizon);
    *demand * frac
}

/// A usage report: observed usage plus ramp-up allowances for young tasks.
///
/// `young_tasks` holds `(demand, age_seconds)` pairs for tasks assigned to
/// the machine within the horizon.
pub fn adjusted_usage(
    observed: &ResourceVec,
    young_tasks: &[(ResourceVec, f64)],
    horizon: f64,
) -> ResourceVec {
    let mut total = *observed;
    for (demand, age) in young_tasks {
        total += ramp_up_allowance(demand, *age, horizon);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::Resource;

    fn d(cpu: f64) -> ResourceVec {
        ResourceVec::zero().with(Resource::Cpu, cpu)
    }

    #[test]
    fn allowance_full_at_zero_age() {
        let a = ramp_up_allowance(&d(2.0), 0.0, 10.0);
        assert_eq!(a.get(Resource::Cpu), 2.0);
    }

    #[test]
    fn allowance_decays_linearly() {
        let a = ramp_up_allowance(&d(2.0), 5.0, 10.0);
        assert_eq!(a.get(Resource::Cpu), 1.0);
    }

    #[test]
    fn allowance_zero_after_horizon() {
        assert!(ramp_up_allowance(&d(2.0), 10.0, 10.0).is_zero());
        assert!(ramp_up_allowance(&d(2.0), 100.0, 10.0).is_zero());
    }

    #[test]
    fn negative_age_clamps_to_full() {
        let a = ramp_up_allowance(&d(2.0), -1.0, 10.0);
        assert_eq!(a.get(Resource::Cpu), 2.0);
    }

    #[test]
    fn adjusted_usage_sums_allowances() {
        let observed = d(1.0);
        let young = vec![(d(2.0), 0.0), (d(4.0), 5.0)];
        let adj = adjusted_usage(&observed, &young, 10.0);
        // 1 + 2 + 2 = 5.
        assert_eq!(adj.get(Resource::Cpu), 5.0);
    }

    #[test]
    fn implausible_report_detection() {
        let cap = d(4.0);
        // Within capacity and within the margin: plausible.
        assert!(!report_implausible(&d(4.0), &cap));
        assert!(!report_implausible(&d(4.0 * 1.04), &cap));
        // Beyond the margin: impossible hardware claim.
        assert!(report_implausible(&d(4.0 * 1.06), &cap));
        // Zero-capacity dimensions are ignored (cannot divide a claim by
        // hardware that isn't there).
        assert!(!report_implausible(
            &ResourceVec::zero().with(Resource::NetIn, 1.0),
            &d(4.0)
        ));
    }

    #[test]
    fn suspicion_constants_are_consistent() {
        // The cap must drop below the threshold within a few good reports,
        // and one strike must not be enough to mark a machine suspect.
        const { assert!(MISSED_REPORT_SUSPICION < SUSPECT_THRESHOLD) };
        const { assert!(SUSPECT_THRESHOLD < SUSPICION_CAP) };
        let mut s = SUSPICION_CAP;
        let mut reports = 0;
        while s >= SUSPECT_THRESHOLD {
            s *= SUSPICION_DECAY;
            reports += 1;
        }
        assert!(reports <= 3, "recovery takes too long: {reports} reports");
    }

    #[test]
    fn adjusted_usage_converges_to_observed() {
        let observed = d(3.0);
        let young = vec![(d(2.0), 20.0)];
        assert_eq!(
            adjusted_usage(&observed, &young, RAMP_UP_HORIZON_SECS),
            observed
        );
    }
}
