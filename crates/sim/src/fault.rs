//! Fault injection: deterministic, seed-driven cluster churn (paper §3.1,
//! §4.3).
//!
//! The paper's simulator replays "online job arrivals and failures", and
//! the deployed Tetris explicitly survives evacuation/re-replication and
//! misbehaving processes. This module grows the simulator a first-class
//! fault model with three ingredients:
//!
//! * **Crash/recover cycles** — a fraction of machines goes down and comes
//!   back, killing resident flows/tasks; lost attempts are re-queued with
//!   a restart backoff (capped by `max_task_attempts`) and lost block
//!   replicas are re-replicated through the external-load machinery.
//! * **Slowdown windows** — transient stragglers: a machine's effective
//!   disk/net bandwidth is scaled by a factor in `(0, 1]` for a while.
//! * **Tracker misbehavior** — machines whose usage reports go stale or
//!   are multiplied by an over/under-reporting factor, feeding the
//!   suspicion scoring in [`crate::tracker`].
//!
//! Determinism: all fault randomness is drawn from the simulation's seeded
//! RNG, *after* block placement and only when the plan is
//! [`FaultPlan::enabled`]. A disabled plan draws nothing and schedules
//! nothing, so runs without faults are byte-identical to runs built before
//! this module existed.

use rand::rngs::StdRng;
use rand::Rng;

/// Declarative fault-injection plan; expanded into a concrete, sorted
/// event schedule per run (see [`FaultPlan::expand`]). All knobs default
/// to "off"; `SimConfig::validate` rejects inconsistent settings.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Fraction of machines that undergo crash/recover cycling, in [0,1].
    pub crash_frac: f64,
    /// Crash/recover cycles per affected machine.
    pub crash_cycles: u32,
    /// Seconds a crashed machine stays down before recovering.
    pub downtime: f64,
    /// Window `[start, end)` of simulated seconds in which crashes and
    /// slowdowns begin. Recovery may extend past `end` by `downtime`
    /// (resp. `slowdown_duration`), but must stay inside the sim horizon.
    pub window: (f64, f64),
    /// Seconds a task attempt lost to a crash waits before it becomes
    /// schedulable again (≥ 0; 0 = immediate re-queue).
    pub restart_backoff: f64,
    /// Fraction of machines that experience one transient slowdown window,
    /// in [0,1].
    pub slowdown_frac: f64,
    /// Multiplier in (0,1] applied to the machine's effective disk and
    /// network bandwidth while slowed (1.0 = no slowdown).
    pub slowdown_factor: f64,
    /// Duration of each slowdown window in seconds.
    pub slowdown_duration: f64,
    /// Fraction of machines whose tracker reports freeze (stale reports),
    /// in [0,1].
    pub stale_frac: f64,
    /// Fraction of machines whose tracker multiplies reported usage by
    /// [`FaultPlan::misreport_factor`], in [0,1].
    pub misreport_frac: f64,
    /// Usage misreport multiplier (> 0; above 1 over-reports, below 1
    /// under-reports).
    pub misreport_factor: f64,
    /// Seconds before each crash during which the doomed machine's
    /// tracker goes stale (0 = crashes strike with no warning). Failing
    /// machines usually flake before they die; the stale reports feed the
    /// suspicion score, giving tracker-aware schedulers a window to stop
    /// placing work on the machine. Cleared when the machine recovers.
    pub flake_lead: f64,
    /// Re-replicate block replicas lost to a crash via external-load
    /// flows on a surviving source and a new destination (§4.3).
    pub evacuate: bool,
    /// Bandwidth (bytes/sec) of each re-replication transfer.
    pub rerep_bandwidth: f64,
    /// Bytes re-replicated per lost block replica (the workload does not
    /// size blocks individually; this calibration constant stands in for
    /// an HDFS block).
    pub rerep_bytes: f64,
    /// Kill the *scheduler* (not a machine) at a given heartbeat, leaving
    /// the journal as the only record of its decisions. Exercised by the
    /// crash-recovery path (DESIGN.md §15); requires the run to journal.
    pub sched_crash: Option<SchedulerCrash>,
}

/// A scheduler process crash, for crash-recovery testing. Unlike machine
/// faults this draws no randomness and schedules no events, so it is
/// deliberately *excluded* from [`FaultPlan::enabled`]: configuring a
/// crash must not perturb fault-expansion RNG draws, or the recovered
/// run could never be byte-identical to an uninterrupted one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerCrash {
    /// 1-based scheduling heartbeat at which the scheduler dies.
    pub at_heartbeat: u64,
    /// Die *mid-commit*: journal only half of the heartbeat's placements
    /// and no commit record, leaving a torn trailing batch for recovery
    /// to discard (the sharded mid-commit scenario).
    pub mid_commit: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            crash_frac: 0.0,
            crash_cycles: 1,
            downtime: 60.0,
            window: (0.0, 600.0),
            restart_backoff: 5.0,
            slowdown_frac: 0.0,
            slowdown_factor: 1.0,
            slowdown_duration: 120.0,
            stale_frac: 0.0,
            misreport_frac: 0.0,
            misreport_factor: 1.0,
            flake_lead: 0.0,
            evacuate: true,
            rerep_bandwidth: 50.0 * 1024.0 * 1024.0,
            rerep_bytes: 128.0 * 1024.0 * 1024.0,
            sched_crash: None,
        }
    }
}

impl FaultPlan {
    /// True iff the plan injects anything *into the simulated cluster*. A
    /// disabled plan draws no randomness and schedules no events — the
    /// byte-identity guarantee. `sched_crash` is intentionally absent: a
    /// scheduler crash kills the engine process mid-run but must not
    /// change what an uninterrupted run would have computed.
    pub fn enabled(&self) -> bool {
        (self.crash_frac > 0.0 && self.crash_cycles > 0)
            || self.slowdown_frac > 0.0
            || self.stale_frac > 0.0
            || self.misreport_frac > 0.0
    }

    /// Validate the plan against the run's hard stop `max_time`.
    pub fn validate(&self, max_time: f64) -> Result<(), String> {
        for (name, f) in [
            ("crash_frac", self.crash_frac),
            ("slowdown_frac", self.slowdown_frac),
            ("stale_frac", self.stale_frac),
            ("misreport_frac", self.misreport_frac),
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("fault {name} must be in [0,1]"));
            }
        }
        if !(self.restart_backoff >= 0.0) || !self.restart_backoff.is_finite() {
            return Err("fault restart_backoff must be finite and ≥ 0".into());
        }
        if !(self.flake_lead >= 0.0) || !self.flake_lead.is_finite() {
            return Err("fault flake_lead must be finite and ≥ 0".into());
        }
        if !(self.misreport_factor > 0.0) {
            return Err("fault misreport_factor must be > 0".into());
        }
        if !(self.rerep_bandwidth > 0.0) || !(self.rerep_bytes >= 0.0) {
            return Err("fault re-replication constants must be positive".into());
        }
        if !(self.slowdown_factor > 0.0 && self.slowdown_factor <= 1.0) {
            return Err("fault slowdown_factor must be in (0,1]".into());
        }
        let crashes = self.crash_frac > 0.0 && self.crash_cycles > 0;
        let slows = self.slowdown_frac > 0.0;
        if crashes || slows {
            let (a, b) = self.window;
            if !(a >= 0.0) || !(b > a) {
                return Err("fault window must satisfy 0 ≤ start < end".into());
            }
            if crashes {
                if !(self.downtime > 0.0) {
                    return Err("fault downtime must be > 0".into());
                }
                if b + self.downtime > max_time {
                    return Err("fault window + downtime exceeds max_time".into());
                }
            }
            if slows {
                if !(self.slowdown_duration > 0.0) {
                    return Err("fault slowdown_duration must be > 0".into());
                }
                if b + self.slowdown_duration > max_time {
                    return Err("fault window + slowdown_duration exceeds max_time".into());
                }
            }
        }
        if let Some(sc) = &self.sched_crash {
            // Heartbeats are event-driven, so the horizon in heartbeats is
            // not statically derivable from max_time; a crash heartbeat the
            // run never reaches simply means the run completes uncrashed.
            if sc.at_heartbeat == 0 {
                return Err("fault sched_crash.at_heartbeat must be ≥ 1".into());
            }
        }
        Ok(())
    }

    /// Expand the plan into a concrete schedule for `n_machines`, drawing
    /// from `rng`. The returned events are sorted by `(time, kind,
    /// machine)` so the engine's queue push order — and hence event
    /// sequence numbers — is deterministic.
    pub(crate) fn expand(
        &self,
        n_machines: usize,
        max_time: f64,
        rng: &mut StdRng,
    ) -> ExpandedFaultPlan {
        let mut ex = ExpandedFaultPlan {
            events: Vec::new(),
            tracker_modes: vec![TrackerMode::Honest; n_machines],
        };
        let (w0, w1) = self.window;

        if self.crash_frac > 0.0 && self.crash_cycles > 0 {
            for m in pick_machines(self.crash_frac, n_machines, rng) {
                let mut starts: Vec<f64> = (0..self.crash_cycles)
                    .map(|_| w0 + rng.gen::<f64>() * (w1 - w0))
                    .collect();
                starts.sort_by(|a, b| a.partial_cmp(b).unwrap());
                // Enforce recover-before-next-crash spacing.
                let mut prev_up = f64::NEG_INFINITY;
                for t in starts {
                    let down = t.max(prev_up);
                    let up = down + self.downtime;
                    if up > max_time {
                        break;
                    }
                    if self.flake_lead > 0.0 {
                        // The tracker flakes before the crash, but never
                        // while the machine is still down from the
                        // previous cycle.
                        let flake = (down - self.flake_lead).max(prev_up).max(0.0);
                        if flake < down {
                            ex.events.push((flake, FaultKind::Flake(m)));
                        }
                    }
                    ex.events.push((down, FaultKind::Down(m)));
                    ex.events.push((up, FaultKind::Up(m)));
                    prev_up = up;
                }
            }
        }

        if self.slowdown_frac > 0.0 && self.slowdown_factor < 1.0 {
            for m in pick_machines(self.slowdown_frac, n_machines, rng) {
                let start = w0 + rng.gen::<f64>() * (w1 - w0);
                let end = start + self.slowdown_duration;
                if end <= max_time {
                    ex.events.push((start, FaultKind::SlowStart(m)));
                    ex.events.push((end, FaultKind::SlowEnd(m)));
                }
            }
        }

        if self.stale_frac > 0.0 {
            for m in pick_machines(self.stale_frac, n_machines, rng) {
                ex.tracker_modes[m] = TrackerMode::Stale;
            }
        }
        if self.misreport_frac > 0.0 && self.misreport_factor != 1.0 {
            for m in pick_machines(self.misreport_frac, n_machines, rng) {
                // Stale wins if a machine is picked for both: a frozen
                // tracker cannot also scale fresh readings.
                if ex.tracker_modes[m] == TrackerMode::Honest {
                    ex.tracker_modes[m] = TrackerMode::Misreport(self.misreport_factor);
                }
            }
        }

        ex.events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then_with(|| a.1.sort_key().cmp(&b.1.sort_key()))
        });
        ex
    }
}

/// Pick `ceil(frac · n)` distinct machines via a partial Fisher–Yates
/// shuffle (deterministic given the RNG state). Returns at least one
/// machine whenever `frac > 0` and the cluster is non-empty.
fn pick_machines(frac: f64, n: usize, rng: &mut StdRng) -> Vec<usize> {
    if n == 0 || frac <= 0.0 {
        return Vec::new();
    }
    let k = ((frac * n as f64).ceil() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// A concrete fault transition at some simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultKind {
    /// Machine crashes.
    Down(usize),
    /// Machine recovers.
    Up(usize),
    /// IO slowdown begins.
    SlowStart(usize),
    /// IO slowdown ends.
    SlowEnd(usize),
    /// Tracker goes stale ahead of an imminent crash.
    Flake(usize),
}

impl FaultKind {
    fn sort_key(&self) -> (u8, usize) {
        match *self {
            FaultKind::Down(m) => (0, m),
            FaultKind::Up(m) => (1, m),
            FaultKind::SlowStart(m) => (2, m),
            FaultKind::SlowEnd(m) => (3, m),
            FaultKind::Flake(m) => (4, m),
        }
    }
}

/// How a machine's tracker behaves (assigned per machine at expansion).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) enum TrackerMode {
    /// Reports true usage.
    Honest,
    /// Reports never change after the first one (frozen tracker).
    Stale,
    /// Reports usage multiplied by the factor.
    Misreport(f64),
}

/// Expanded plan: sorted fault events plus per-machine tracker modes.
///
/// Obtained from [`crate::Simulation::expand_fault_plan`] and handed back
/// via [`crate::Simulation::faults_pre_expanded`] so several runs (e.g.
/// different schedulers at one sweep point) share the identical drawn
/// plan object. Opaque outside the crate: the fields feed the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedFaultPlan {
    /// `(time_seconds, transition)`, sorted.
    pub(crate) events: Vec<(f64, FaultKind)>,
    /// Tracker behavior per machine index.
    pub(crate) tracker_modes: Vec<TrackerMode>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan_with_crashes() -> FaultPlan {
        FaultPlan {
            crash_frac: 0.3,
            crash_cycles: 2,
            downtime: 30.0,
            window: (0.0, 300.0),
            ..FaultPlan::default()
        }
    }

    #[test]
    fn default_plan_is_disabled_and_valid() {
        let p = FaultPlan::default();
        assert!(!p.enabled());
        assert_eq!(p.validate(1e6), Ok(()));
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut p = plan_with_crashes();
        p.crash_frac = 1.5;
        assert!(p.validate(1e6).is_err());

        let mut p = plan_with_crashes();
        p.restart_backoff = -1.0;
        assert!(p.validate(1e6).is_err());

        let mut p = plan_with_crashes();
        p.downtime = 0.0;
        assert!(p.validate(1e6).is_err());

        let mut p = plan_with_crashes();
        p.window = (100.0, 50.0);
        assert!(p.validate(1e6).is_err());

        // Window + downtime must stay inside the horizon.
        let p = plan_with_crashes();
        assert!(p.validate(310.0).is_err());
        assert!(p.validate(330.0).is_ok());

        let mut p = FaultPlan::default();
        p.slowdown_frac = 0.5;
        p.slowdown_factor = 0.0;
        assert!(p.validate(1e6).is_err());
        p.slowdown_factor = 1.5;
        assert!(p.validate(1e6).is_err());
        p.slowdown_factor = 0.3;
        assert!(p.validate(1e6).is_ok());

        let mut p = FaultPlan::default();
        p.misreport_frac = 0.2;
        p.misreport_factor = 0.0;
        assert!(p.validate(1e6).is_err());
    }

    #[test]
    fn expansion_is_deterministic_and_sorted() {
        let p = plan_with_crashes();
        let a = p.expand(20, 1e6, &mut StdRng::seed_from_u64(9));
        let b = p.expand(20, 1e6, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.events, b.events);
        assert!(
            a.events.windows(2).all(|w| w[0].0 <= w[1].0),
            "events must be time-sorted"
        );
        // 30% of 20 = 6 machines, 2 cycles each → ≤ 24 events, all paired.
        assert!(a.events.len().is_multiple_of(2) && !a.events.is_empty());
    }

    #[test]
    fn crash_cycles_never_overlap_per_machine() {
        let p = FaultPlan {
            crash_frac: 1.0,
            crash_cycles: 5,
            downtime: 40.0,
            window: (0.0, 100.0), // tight window forces spacing pushes
            ..FaultPlan::default()
        };
        let ex = p.expand(4, 1e6, &mut StdRng::seed_from_u64(3));
        for m in 0..4 {
            let mut last_up = f64::NEG_INFINITY;
            let mut downs = 0;
            for &(t, k) in &ex.events {
                match k {
                    FaultKind::Down(x) if x == m => {
                        assert!(t >= last_up, "machine {m} crashed while down");
                        downs += 1;
                    }
                    FaultKind::Up(x) if x == m => last_up = t,
                    _ => {}
                }
            }
            assert!(downs >= 1);
        }
    }

    #[test]
    fn flake_events_precede_each_crash() {
        let mut p = plan_with_crashes();
        p.flake_lead = 20.0;
        let ex = p.expand(20, 1e6, &mut StdRng::seed_from_u64(11));
        let downs: Vec<_> = ex
            .events
            .iter()
            .filter(|(_, k)| matches!(k, FaultKind::Down(_)))
            .collect();
        let flakes: Vec<_> = ex
            .events
            .iter()
            .filter(|(_, k)| matches!(k, FaultKind::Flake(_)))
            .collect();
        assert!(!downs.is_empty());
        // At most one flake per crash; back-to-back cycles (next crash at
        // the instant of recovery) get no flake window at all.
        assert!(!flakes.is_empty() && flakes.len() <= downs.len());
        for &&(t, k) in &flakes {
            let FaultKind::Flake(m) = k else {
                unreachable!()
            };
            // Each flake is followed by a crash of the same machine
            // within the lead time.
            assert!(
                ex.events.iter().any(|&(td, kd)| kd == FaultKind::Down(m)
                    && td >= t
                    && td <= t + p.flake_lead + 1e-9),
                "flake at {t} for machine {m} has no matching crash"
            );
        }
    }

    #[test]
    fn pick_machines_distinct_and_minimum_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let picked = pick_machines(0.01, 10, &mut rng);
        assert_eq!(picked.len(), 1);
        let mut all = pick_machines(1.0, 10, &mut rng);
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert!(pick_machines(0.0, 10, &mut rng).is_empty());
    }

    #[test]
    fn tracker_modes_assigned() {
        let p = FaultPlan {
            stale_frac: 0.25,
            misreport_frac: 0.25,
            misreport_factor: 0.5,
            ..FaultPlan::default()
        };
        let ex = p.expand(8, 1e6, &mut StdRng::seed_from_u64(4));
        let stale = ex
            .tracker_modes
            .iter()
            .filter(|m| **m == TrackerMode::Stale)
            .count();
        let mis = ex
            .tracker_modes
            .iter()
            .filter(|m| matches!(m, TrackerMode::Misreport(_)))
            .count();
        assert_eq!(stale, 2);
        assert!(mis >= 1, "misreporters must be assigned");
        assert!(ex.events.is_empty(), "tracker modes schedule no events");
    }
}
