//! The discrete-event queue.
//!
//! A binary heap ordered by `(time, sequence)`; the sequence number breaks
//! ties deterministically in insertion order, which (together with the
//! absence of hash-ordered iteration anywhere in the engine) makes runs
//! bit-reproducible. Stale completion events are invalidated lazily via
//! per-flow/task generation counters rather than removed from the heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tetris_workload::{JobId, TaskUid};

use crate::time::SimTime;

/// Index of a flow in the engine's flow table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub(crate) struct FlowId(pub usize);

/// What happens at an event.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub(crate) enum EventKind {
    /// A job's arrival time has been reached.
    JobArrival(JobId),
    /// A flow predicts completion (validated against `gen`).
    FlowDone { flow: FlowId, gen: u64 },
    /// A flowless (zero-work) task completes (validated against `gen`).
    TaskDone { task: TaskUid, gen: u64 },
    /// Periodic resource-tracker report.
    TrackerReport,
    /// Periodic utilization sample.
    Sample,
    /// External load period begins (index into `SimConfig::external_loads`,
    /// or past its end into `SimState::dynamic_loads` for re-replication
    /// flows spawned at crash time).
    ExternalStart(usize),
    /// External load period ends.
    ExternalEnd(usize),
    /// Fault injection: a machine crashes (kills resident flows/tasks).
    MachineDown(crate::cluster::MachineId),
    /// Fault injection: a crashed machine recovers.
    MachineUp(crate::cluster::MachineId),
    /// Fault injection: an IO slowdown window begins on a machine.
    SlowdownStart(crate::cluster::MachineId),
    /// Fault injection: an IO slowdown window ends.
    SlowdownEnd(crate::cluster::MachineId),
    /// Fault injection: a machine's tracker goes stale ahead of a crash
    /// (failing machines flake before they die); cleared on recovery.
    TrackerFlake(crate::cluster::MachineId),
    /// A task attempt lost to a crash finishes its restart backoff and
    /// becomes schedulable again.
    TaskRestart(TaskUid),
}

#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Snapshot the pending events in deterministic `(time, seq)` order
    /// plus the sequence counter, for checkpointing. `(time, seq)` is a
    /// total order, so the sorted vector is independent of the heap's
    /// internal layout.
    pub fn snapshot(&self) -> (Vec<Event>, u64) {
        let mut events = self.heap.clone().into_sorted_vec();
        // into_sorted_vec sorts ascending by `Ord`, which is reversed for
        // the max-heap; flip so the snapshot reads earliest-first.
        events.reverse();
        (events, self.next_seq)
    }

    /// Rebuild a queue from a [`EventQueue::snapshot`].
    pub fn restore(events: Vec<Event>, next_seq: u64) -> Self {
        EventQueue {
            heap: events.into(),
            next_seq,
        }
    }

    /// Number of queued events (including stale ones).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2.0), EventKind::TrackerReport);
        q.push(SimTime::from_secs(1.0), EventKind::Sample);
        q.push(SimTime::from_secs(3.0), EventKind::JobArrival(JobId(0)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Sample);
        assert_eq!(q.pop().unwrap().kind, EventKind::TrackerReport);
        assert_eq!(q.pop().unwrap().kind, EventKind::JobArrival(JobId(0)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.push(t, EventKind::JobArrival(JobId(i)));
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().kind, EventKind::JobArrival(JobId(i)));
        }
    }

    #[test]
    fn snapshot_restore_preserves_order_and_seq() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        q.push(SimTime::from_secs(2.0), EventKind::TrackerReport);
        for i in 0..5 {
            q.push(t, EventKind::JobArrival(JobId(i)));
        }
        let (events, next_seq) = q.snapshot();
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].kind, EventKind::JobArrival(JobId(0)));
        let mut r = EventQueue::restore(events, next_seq);
        r.push(SimTime::from_secs(1.5), EventKind::Sample);
        for i in 0..5 {
            assert_eq!(r.pop().unwrap().kind, EventKind::JobArrival(JobId(i)));
        }
        assert_eq!(r.pop().unwrap().kind, EventKind::Sample);
        assert_eq!(r.pop().unwrap().kind, EventKind::TrackerReport);
        assert!(r.pop().is_none());
        // The restored queue's fresh pushes continue the original seq
        // stream, so replayed pushes tie-break identically.
        let (_, seq_after) = EventQueue::new().snapshot();
        assert_eq!(seq_after, 0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_secs(5.0), EventKind::Sample);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5.0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
