//! Token-bucket rate enforcement (paper §4.2).
//!
//! Tetris "explicitly enforces allocations" for disk and network: every
//! read/write call is routed through a token bucket that admits the call if
//! enough tokens remain and queues it otherwise; tokens arrive at the
//! allocated rate and the bucket size bounds bursts.
//!
//! In the simulator the enforcement outcome is inherent (flow rates are
//! capped at their allocation), so this module is the standalone,
//! fully-tested mechanism a real node manager would run. The
//! `enforced_rate` helper is also used by tests to cross-check that
//! simulated flow throughput equals what the bucket would admit.

use tetris_obs::{names, Event, Obs};

use crate::time::SimTime;

/// A token bucket enforcing an average `rate` (tokens/second ≙ bytes/s)
/// with bursts bounded by `burst` tokens.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// New bucket, initially full.
    ///
    /// # Panics
    /// If `rate` is negative/NaN or `burst` is not positive.
    pub fn new(rate: f64, burst: f64, now: SimTime) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "invalid rate {rate}");
        assert!(burst > 0.0 && burst.is_finite(), "invalid burst {burst}");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_refill: now,
        }
    }

    /// Configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Update the allocated rate (the scheduler may revise allocations).
    pub fn set_rate(&mut self, rate: f64, now: SimTime) {
        self.refill(now);
        assert!(rate >= 0.0 && rate.is_finite());
        self.rate = rate;
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.secs_since(self.last_refill);
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last_refill = now;
    }

    /// Current token balance at `now`.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Try to admit a call consuming `amount` tokens; returns true and
    /// deducts if admitted.
    pub fn try_consume(&mut self, amount: f64, now: SimTime) -> bool {
        assert!(amount >= 0.0);
        self.refill(now);
        if self.tokens + 1e-9 >= amount {
            self.tokens -= amount;
            true
        } else {
            false
        }
    }

    /// When a call consuming `amount` tokens could be admitted if the
    /// caller queues (the paper's behaviour: queue the call until tokens
    /// arrive). Returns `now` if admissible immediately.
    pub fn admit_at(&mut self, amount: f64, now: SimTime) -> SimTime {
        assert!(amount >= 0.0);
        self.refill(now);
        if self.tokens + 1e-9 >= amount {
            return now;
        }
        if self.rate == 0.0 {
            return SimTime::MAX;
        }
        let wait = (amount - self.tokens) / self.rate;
        now.after_secs(wait)
    }

    /// [`TokenBucket::admit_at`] with observability: when the call must
    /// queue, bumps the throttled counter, records the queueing delay
    /// (simulated microseconds) into the wait histogram, and emits a
    /// [`Event::TokenBucketThrottled`] trace event.
    pub fn admit_observed(&mut self, amount: f64, now: SimTime, obs: &mut Obs) -> SimTime {
        let when = self.admit_at(amount, now);
        if when > now {
            let wait = if when == SimTime::MAX {
                f64::INFINITY
            } else {
                when.secs_since(now)
            };
            obs.metrics.counter_inc(names::TOKEN_THROTTLED);
            // `as u64` saturates, so an unbounded wait lands in the
            // histogram's overflow bucket.
            obs.metrics
                .observe(names::TOKEN_WAIT_US, (wait * 1e6) as u64);
            obs.emit(now.as_secs(), || Event::TokenBucketThrottled {
                requested: amount,
                wait_secs: wait,
            });
        }
        when
    }
}

/// Average admitted throughput of a caller that requests `call_size` bytes
/// back-to-back through a bucket of rate `rate` — equals `rate` whenever
/// `call_size ≤ burst`. Used by tests to cross-check the simulator's flow
/// rates against explicit enforcement.
pub fn enforced_rate(rate: f64, burst: f64, call_size: f64) -> f64 {
    if call_size <= burst {
        rate
    } else {
        // Calls larger than the burst can never be admitted.
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn starts_full_and_admits_burst() {
        let mut b = TokenBucket::new(100.0, 500.0, t(0.0));
        assert!(b.try_consume(500.0, t(0.0)));
        assert!(!b.try_consume(1.0, t(0.0)));
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(100.0, 500.0, t(0.0));
        assert!(b.try_consume(500.0, t(0.0)));
        // After 2s, 200 tokens available.
        assert!((b.available(t(2.0)) - 200.0).abs() < 1e-9);
        assert!(b.try_consume(200.0, t(2.0)));
        assert!(!b.try_consume(50.0, t(2.0)));
    }

    #[test]
    fn never_exceeds_burst() {
        let mut b = TokenBucket::new(100.0, 500.0, t(0.0));
        assert!((b.available(t(1000.0)) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn admit_at_computes_queueing_delay() {
        let mut b = TokenBucket::new(100.0, 500.0, t(0.0));
        assert!(b.try_consume(500.0, t(0.0)));
        // Need 300 tokens → 3 s wait.
        let when = b.admit_at(300.0, t(0.0));
        assert_eq!(when, t(3.0));
        // At that time it must actually be admitted.
        assert!(b.try_consume(300.0, when));
    }

    #[test]
    fn zero_rate_never_admits_beyond_burst() {
        let mut b = TokenBucket::new(0.0, 10.0, t(0.0));
        assert!(b.try_consume(10.0, t(0.0)));
        assert_eq!(b.admit_at(1.0, t(5.0)), SimTime::MAX);
    }

    #[test]
    fn long_run_throughput_equals_rate() {
        // Issue 64 KB calls as fast as admitted for 100 s through a
        // 10 MB/s bucket; delivered bytes ≈ 10 MB/s × 100 s.
        let rate = 10e6;
        let call = 65536.0;
        let mut b = TokenBucket::new(rate, 4.0 * call, t(0.0));
        let mut now = t(0.0);
        let end = t(100.0);
        let mut delivered = 0.0;
        while now < end {
            let when = b.admit_at(call, now);
            if when > end {
                break;
            }
            now = when;
            assert!(b.try_consume(call, now));
            delivered += call;
        }
        let expect = rate * 100.0;
        assert!(
            (delivered - expect).abs() / expect < 0.01,
            "delivered {delivered} vs {expect}"
        );
        assert_eq!(enforced_rate(rate, 4.0 * call, call), rate);
    }

    #[test]
    fn set_rate_takes_effect() {
        let mut b = TokenBucket::new(100.0, 100.0, t(0.0));
        assert!(b.try_consume(100.0, t(0.0)));
        b.set_rate(10.0, t(0.0));
        // 1 s later only 10 tokens.
        assert!((b.available(t(1.0)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_calls_starve() {
        assert_eq!(enforced_rate(100.0, 10.0, 20.0), 0.0);
    }

    #[test]
    fn observed_admission_records_throttling() {
        use tetris_obs::{names, Event, VecRecorder};
        let rec = VecRecorder::shared();
        let mut obs = Obs::with_recorder(Box::new(rec.clone()));
        let mut b = TokenBucket::new(100.0, 500.0, t(0.0));
        // Admitted immediately: nothing recorded.
        assert_eq!(b.admit_observed(500.0, t(0.0), &mut obs), t(0.0));
        assert!(b.try_consume(500.0, t(0.0)));
        assert_eq!(obs.metrics.counter(names::TOKEN_THROTTLED), 0);
        // Must queue 3 s for 300 tokens.
        assert_eq!(b.admit_observed(300.0, t(0.0), &mut obs), t(3.0));
        assert_eq!(obs.metrics.counter(names::TOKEN_THROTTLED), 1);
        let h = obs.metrics.histogram(names::TOKEN_WAIT_US).unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() >= 2_000_000, "{:?}", h.max());
        let events = rec.take();
        assert!(matches!(
            events.as_slice(),
            [(_, Event::TokenBucketThrottled { .. })]
        ));
    }
}
