//! Slot-based schedulers: the Hadoop 1.x Fair and Capacity schedulers the
//! paper deploys against (§5.1).
//!
//! Both divide each machine into **slots defined on memory only** (the
//! Facebook cluster's 2 GB slots) and allot slots to tasks, each task
//! occupying `ceil(task memory / slot memory)` slots (how Hadoop admins
//! ran big-memory jobs). Placing a task checks *only* slot availability:
//! CPU, disk and network are never examined, and a 1 GB task still holds a
//! full 2 GB slot. These are exactly the fragmentation/wastage and
//! over-allocation behaviours the paper attributes to production
//! schedulers (§2.1).
//!
//! * [`FairScheduler`] — offers the next free slot to the job holding the
//!   fewest slots relative to its fair share.
//! * [`CapacityScheduler`] — serves jobs in arrival order (single-queue
//!   approximation of Hadoop's Capacity scheduler).
//!
//! Both prefer data-local placements for tasks with stored input, like the
//! production clusters ("both clusters preferentially place tasks close to
//! their input data", §2.2.1).

use tetris_resources::{units::GB, Resource};
use tetris_sim::{
    Assignment, ClusterView, MachineId, PlacementProvenance, RejectedCandidate, SchedulerEvent,
    SchedulerPolicy,
};
use tetris_workload::{JobId, TaskUid};

/// Default slot size: 2 GB, "similar to the Facebook cluster".
pub const DEFAULT_SLOT_MEM: f64 = 2.0 * GB;

/// How the next job to serve is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobOrder {
    /// Fewest slots held first (fair sharing).
    FewestSlots,
    /// Earliest arrival first (capacity/FIFO).
    Arrival,
}

/// Shared slot-based scheduling core.
#[derive(Debug, Clone)]
struct SlotScheduler {
    slot_mem: f64,
    order: JobOrder,
    /// When true, a task occupies `ceil(mem/slot_mem)` slots (admins
    /// configuring multi-slot big-memory tasks); when false — the
    /// paper-faithful Facebook configuration — every task takes exactly
    /// one slot, silently over-committing memory (§2.1).
    mem_rounded: bool,
    /// True once any event has been delivered: the `used` ledger below is
    /// then authoritative. Driven bare (no events), every call recomputes
    /// used slots from the view — the exact pre-event path.
    synced: bool,
    /// Incremental used-slot count per machine, maintained from placement
    /// and completion events. Integer slot counts, so incremental += / −=
    /// cannot drift from the recomputed sum.
    used: Vec<usize>,
    /// Verbose-trace provenance capture (see [`SchedulerPolicy`]): pure
    /// bookkeeping, never read by any decision above.
    capture: bool,
    /// Captured provenance per placed task, drained by the engine.
    prov: Vec<(TaskUid, PlacementProvenance)>,
}

impl SlotScheduler {
    /// Drain the provenance captured for `task`, if any.
    fn take_provenance(&mut self, task: TaskUid) -> Option<PlacementProvenance> {
        let i = self.prov.iter().position(|(t, _)| *t == task)?;
        Some(self.prov.swap_remove(i).1)
    }

    fn slots_of(&self, view: &ClusterView<'_>, m: MachineId) -> usize {
        (view.capacity(m).get(Resource::Mem) / self.slot_mem).floor() as usize
    }

    /// Slots one task occupies.
    fn slots_needed(&self, mem: f64) -> usize {
        if self.mem_rounded {
            ((mem / self.slot_mem).ceil() as usize).max(1)
        } else {
            1
        }
    }

    /// Incremental bookkeeping: placements charge the host's slot count,
    /// terminations release it. Crash-killed attempts arrive as
    /// `TaskPreempted`/`TaskAbandoned` naming the *host* of the killed
    /// attempt (remote readers run away from the crashed machine), so the
    /// ledger stays exact under fault injection too.
    fn on_event(&mut self, view: &ClusterView<'_>, event: &SchedulerEvent) {
        self.synced = true;
        if self.used.len() < view.num_machines() {
            self.used.resize(view.num_machines(), 0);
        }
        match *event {
            SchedulerEvent::TaskPlaced { task, machine, .. } => {
                self.used[machine.index()] +=
                    self.slots_needed(view.task(task).demand.get(Resource::Mem));
            }
            SchedulerEvent::TaskFinished { task, machine, .. }
            | SchedulerEvent::TaskPreempted { task, machine, .. }
            | SchedulerEvent::TaskAbandoned { task, machine, .. } => {
                let need = self.slots_needed(view.task(task).demand.get(Resource::Mem));
                self.used[machine.index()] = self.used[machine.index()].saturating_sub(need);
            }
            _ => {}
        }
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        // Provenance not collected by the engine last call is stale now.
        self.prov.clear();
        // Free slots per machine (slots − slots held by running tasks):
        // read from the event-maintained ledger when synced, recomputed
        // from scratch otherwise. Slot counts are integers, so the two
        // agree exactly.
        if self.used.len() < view.num_machines() {
            self.used.resize(view.num_machines(), 0);
        }
        let query = view.query();
        let mut free: Vec<usize> = if self.synced {
            query
                .iter_all()
                .map(|m| self.slots_of(view, m).saturating_sub(self.used[m.index()]))
                .collect()
        } else {
            query
                .iter_all()
                .map(|m| {
                    let total = self.slots_of(view, m);
                    let used: usize = view
                        .machine_tasks(m)
                        .iter()
                        .map(|&t| self.slots_needed(view.task(t).demand.get(Resource::Mem)))
                        .sum();
                    total.saturating_sub(used)
                })
                .collect()
        };

        // Job queue state over zero-copy per-stage pending slices.
        struct JobQ<'a> {
            id: JobId,
            running: usize,
            arrival: f64,
            stages: Vec<(usize, &'a [TaskUid])>,
            stage_pos: usize,
            off: usize,
        }
        impl JobQ<'_> {
            fn head(&self) -> Option<TaskUid> {
                let (_, slice) = self.stages.get(self.stage_pos)?;
                slice.get(self.off).copied()
            }
            fn advance(&mut self) {
                self.off += 1;
                while let Some((_, slice)) = self.stages.get(self.stage_pos) {
                    if self.off < slice.len() {
                        break;
                    }
                    self.stage_pos += 1;
                    self.off = 0;
                }
            }
        }
        let mut jobs: Vec<JobQ<'_>> = view
            .active_jobs()
            .map(|j| JobQ {
                id: j,
                running: view.job_running(j),
                arrival: view.job_arrival(j),
                stages: view.job_pending_stages(j).collect(),
                stage_pos: 0,
                off: 0,
            })
            .filter(|q| q.head().is_some())
            .collect();

        let mut preferred = Vec::new();
        let mut out = Vec::new();
        loop {
            // Pick the next job per policy.
            let ji = match self.order {
                JobOrder::FewestSlots => jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.head().is_some())
                    .min_by_key(|(_, q)| (q.running, q.id))
                    .map(|(i, _)| i),
                JobOrder::Arrival => jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.head().is_some())
                    .min_by(|(_, a), (_, b)| {
                        a.arrival
                            .partial_cmp(&b.arrival)
                            .unwrap()
                            .then(a.id.cmp(&b.id))
                    })
                    .map(|(i, _)| i),
            };
            let Some(ji) = ji else { break };
            let task = jobs[ji].head().expect("filtered head");
            let need = self.slots_needed(view.task(task).demand.get(Resource::Mem));

            // Place: prefer a machine holding the task's input, else the
            // machine with the most free slots (simple spread), checking
            // ONLY slot availability. Down machines are skipped and
            // suspect ones sorted behind trusted ones — both exact no-ops
            // without fault injection (nothing is down or suspect, and
            // the extra leading key is then `true` everywhere), keeping
            // decisions byte-identical to the pre-fault pass. Placement
            // constraints (§16 spec API) filter the same way: `allow` is
            // the constant `true` on unconstrained runs, so all-batch
            // decisions stay byte-identical too.
            let job = jobs[ji].id;
            let constrained = view.taints_active() || view.job_constraints(job).has_any();
            let allow = |m: MachineId| !constrained || view.constraints_allow(job, m);
            view.preferred_machines_into(task, &mut preferred);
            let target = preferred
                .iter()
                .copied()
                .filter(|&m| !view.is_down(m) && !view.is_suspect(m) && allow(m))
                .find(|m| free[m.index()] >= need)
                .or_else(|| {
                    query
                        .iter_all()
                        .filter(|&m| !view.is_down(m) && free[m.index()] >= need && allow(m))
                        .max_by_key(|m| {
                            (
                                !view.is_suspect(*m),
                                free[m.index()],
                                std::cmp::Reverse(m.index()),
                            )
                        })
                });
            match target {
                Some(m) => {
                    if self.capture {
                        // The slot queue has no multi-resource scores: the
                        // runner-ups are the next jobs in policy order, and
                        // `score` is the (negated) queue rank so that, like
                        // Tetris scores, higher still means closer to
                        // winning. Pure bookkeeping after the decision.
                        let mut order: Vec<usize> = jobs
                            .iter()
                            .enumerate()
                            .filter(|&(i, q)| i != ji && q.head().is_some())
                            .map(|(i, _)| i)
                            .collect();
                        let n_queued = order.len() + 1;
                        match self.order {
                            JobOrder::FewestSlots => {
                                order.sort_by_key(|&i| (jobs[i].running, jobs[i].id));
                            }
                            JobOrder::Arrival => order.sort_by(|&x, &y| {
                                jobs[x]
                                    .arrival
                                    .partial_cmp(&jobs[y].arrival)
                                    .unwrap()
                                    .then(jobs[x].id.cmp(&jobs[y].id))
                            }),
                        }
                        let rejected = order
                            .iter()
                            .take(3)
                            .enumerate()
                            .filter_map(|(rank, &i)| {
                                let head = jobs[i].head()?;
                                Some(RejectedCandidate {
                                    job: jobs[i].id.index(),
                                    task: head.index(),
                                    alignment: None,
                                    srtf: None,
                                    score: -((rank + 1) as f64),
                                })
                            })
                            .collect();
                        self.prov.push((
                            task,
                            PlacementProvenance {
                                // The slot ledger is the baselines' only
                                // incremental state: event-maintained when
                                // synced, recomputed from the view when not.
                                cache_hits: if self.synced { 1 } else { 0 },
                                cache_rebuilds: if self.synced { 0 } else { 1 },
                                cache_flushed: !self.synced,
                                dirty_jobs: 0,
                                candidates: n_queued as u32,
                                index_pruned: 0,
                                index_considered: 0,
                                rejected,
                            },
                        ));
                    }
                    free[m.index()] -= need;
                    jobs[ji].running += 1;
                    jobs[ji].advance();
                    out.push(Assignment::new(task, m));
                }
                None => break, // no machine has enough free slots
            }
        }
        // Priority preemption (DESIGN.md §16): when enabled and a
        // higher-priority job placed nothing above, evict strictly
        // lower-priority tasks to make room. No-op (None) with
        // `SimConfig::preemption` off, so batch runs are unchanged.
        if let Some(pre) = tetris_sim::plan_priority_preemption(view, &out) {
            out.push(pre);
        }
        out
    }
}

/// The slot-based Fair scheduler (deployed at Facebook per §5.1).
#[derive(Debug, Clone)]
pub struct FairScheduler {
    inner: SlotScheduler,
}

impl FairScheduler {
    /// Fair scheduler with the default 2 GB slots.
    pub fn new() -> Self {
        Self::with_slot_mem(DEFAULT_SLOT_MEM)
    }

    /// Fair scheduler with custom slot memory.
    pub fn with_slot_mem(slot_mem: f64) -> Self {
        assert!(slot_mem > 0.0);
        FairScheduler {
            inner: SlotScheduler {
                slot_mem,
                order: JobOrder::FewestSlots,
                mem_rounded: false,
                synced: false,
                used: Vec::new(),
                capture: false,
                prov: Vec::new(),
            },
        }
    }

    /// Variant where big-memory tasks occupy multiple slots (avoids memory
    /// over-commit at the cost of more fragmentation).
    pub fn mem_rounded() -> Self {
        FairScheduler {
            inner: SlotScheduler {
                slot_mem: DEFAULT_SLOT_MEM,
                order: JobOrder::FewestSlots,
                mem_rounded: true,
                synced: false,
                used: Vec::new(),
                capture: false,
                prov: Vec::new(),
            },
        }
    }
}

impl Default for FairScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulerPolicy for FairScheduler {
    fn name(&self) -> &str {
        if self.inner.mem_rounded {
            "fair-slots-memrounded"
        } else {
            "fair-slots"
        }
    }

    fn on_event(&mut self, view: &ClusterView<'_>, event: &SchedulerEvent) {
        self.inner.on_event(view, event);
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.inner.schedule(view)
    }

    fn set_capture_provenance(&mut self, on: bool) {
        self.inner.capture = on;
        self.inner.prov.clear();
    }

    fn take_provenance(&mut self, task: TaskUid) -> Option<PlacementProvenance> {
        self.inner.take_provenance(task)
    }
}

/// The slot-based Capacity scheduler (deployed at Yahoo! per §5.1),
/// approximated as a single queue served in arrival order.
#[derive(Debug, Clone)]
pub struct CapacityScheduler {
    inner: SlotScheduler,
}

impl CapacityScheduler {
    /// Capacity scheduler with the default 2 GB slots.
    pub fn new() -> Self {
        Self::with_slot_mem(DEFAULT_SLOT_MEM)
    }

    /// Capacity scheduler with custom slot memory.
    pub fn with_slot_mem(slot_mem: f64) -> Self {
        assert!(slot_mem > 0.0);
        CapacityScheduler {
            inner: SlotScheduler {
                slot_mem,
                order: JobOrder::Arrival,
                mem_rounded: false,
                synced: false,
                used: Vec::new(),
                capture: false,
                prov: Vec::new(),
            },
        }
    }
}

impl Default for CapacityScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulerPolicy for CapacityScheduler {
    fn name(&self) -> &str {
        "capacity-slots"
    }

    fn on_event(&mut self, view: &ClusterView<'_>, event: &SchedulerEvent) {
        self.inner.on_event(view, event);
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        self.inner.schedule(view)
    }

    fn set_capture_provenance(&mut self, on: bool) {
        self.inner.capture = on;
        self.inner.prov.clear();
    }

    fn take_provenance(&mut self, task: TaskUid) -> Option<PlacementProvenance> {
        self.inner.take_provenance(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::MachineSpec;
    use tetris_sim::{ClusterConfig, Simulation};
    use tetris_workload::WorkloadSuiteConfig;

    #[test]
    fn completes_small_suite() {
        for sched in [true, false] {
            let sim = Simulation::build(
                ClusterConfig::uniform(6, MachineSpec::paper_large()),
                WorkloadSuiteConfig::small().generate(4),
            )
            .seed(4);
            let outcome = if sched {
                sim.scheduler(FairScheduler::new()).run()
            } else {
                sim.scheduler(CapacityScheduler::new()).run()
            };
            assert!(outcome.all_jobs_completed(), "sched={sched}");
        }
    }

    #[test]
    fn respects_slot_count() {
        // 32 GB machine, 2 GB slots → 16 slots; never more than 16 tasks
        // running per machine.
        let outcome = Simulation::build(
            ClusterConfig::uniform(3, MachineSpec::paper_large()),
            WorkloadSuiteConfig::small().generate(6),
        )
        .scheduler(FairScheduler::new())
        .seed(6)
        .run();
        for s in &outcome.samples {
            for ms in s.machines.as_ref().unwrap() {
                assert!(ms.running <= 16, "{} tasks on one machine", ms.running);
            }
        }
    }

    #[test]
    fn overallocates_unexamined_resources() {
        // Slot schedulers ignore disk/network → demand ledger exceeds
        // capacity on IO-heavy workloads.
        use tetris_resources::units::MB;
        use tetris_workload::gen::{TaskParams, WorkloadBuilder};
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("writers", None, 0.0);
        b.add_stage(j, "w", vec![], 8, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 20.0,
            cpu_frac: 0.1,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 3000.0 * MB,
            remote_frac: 1.0,
        });
        let mut cfg = tetris_sim::SimConfig::default();
        cfg.sample_period = Some(1.0);
        let outcome = Simulation::build(
            ClusterConfig::uniform(1, MachineSpec::paper_large()),
            b.finish(),
        )
        .scheduler(FairScheduler::new())
        .config(cfg)
        .run();
        let cap = MachineSpec::paper_large().capacity();
        let over = outcome.samples.iter().any(|s| {
            s.cluster_allocated.get(Resource::DiskWrite) > cap.get(Resource::DiskWrite) * 1.5
        });
        assert!(over, "slot scheduler should over-allocate disk");
        assert!(outcome.mean_task_stretch() > 2.0);
    }

    #[test]
    fn fair_balances_slots_across_jobs() {
        // Two identical jobs on a tiny cluster: fair scheduling keeps their
        // running-task counts close, so they finish close together.
        use tetris_workload::gen::{TaskParams, WorkloadBuilder};
        let mut b = WorkloadBuilder::new();
        for name in ["a", "b"] {
            let j = b.begin_job(name, None, 0.0);
            b.add_stage(j, "s", vec![], 8, |_| TaskParams {
                cores: 1.0,
                mem: 2.0 * GB,
                duration: 10.0,
                cpu_frac: 1.0,
                io_burst: 1.0,
                inputs: vec![],
                output_bytes: 0.0,
                remote_frac: 1.0,
            });
        }
        let outcome = Simulation::build(
            ClusterConfig::uniform(1, MachineSpec::paper_small()),
            b.finish(),
        )
        .scheduler(FairScheduler::new())
        .run();
        let a = outcome.jct(JobId(0)).unwrap();
        let b_ = outcome.jct(JobId(1)).unwrap();
        assert!((a - b_).abs() < 10.5, "fair: {a} vs {b_}");
    }

    #[test]
    fn capacity_serves_arrivals_in_order() {
        // Same two jobs but arriving 1s apart: capacity (FIFO) finishes
        // job 0 well before job 1.
        use tetris_workload::gen::{TaskParams, WorkloadBuilder};
        let mut b = WorkloadBuilder::new();
        for (i, arr) in [0.0, 1.0].into_iter().enumerate() {
            let j = b.begin_job(format!("j{i}"), None, arr);
            b.add_stage(j, "s", vec![], 16, |_| TaskParams {
                cores: 1.0,
                mem: 2.0 * GB,
                duration: 10.0,
                cpu_frac: 1.0,
                io_burst: 1.0,
                inputs: vec![],
                output_bytes: 0.0,
                remote_frac: 1.0,
            });
        }
        let outcome = Simulation::build(
            ClusterConfig::uniform(1, MachineSpec::paper_small()),
            b.finish(),
        )
        .scheduler(CapacityScheduler::new())
        .run();
        let j0 = outcome.jobs[0].finish.unwrap();
        let j1 = outcome.jobs[1].finish.unwrap();
        assert!(j0 < j1, "FIFO violated: {j0} vs {j1}");
    }
}
