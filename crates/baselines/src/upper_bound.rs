//! The paper's "simple upper bound" on packing gains (§2.2.3).
//!
//! Finding the optimal schedule is APX-hard, so the paper bounds the
//! potential gains with a relaxation that is *easier* than the real
//! problem:
//!
//! 1. the cluster is one aggregated bin per resource (no machine-level
//!    fragmentation, no placement, all input local);
//! 2. tasks run at peak rates for exactly their ideal durations;
//! 3. over-allocation is explicitly impossible (a task is admitted only
//!    when its full demands fit the aggregate).
//!
//! "We believe that gains for this simpler problem are an upper bound on
//! the gains from optimal packing." Jobs are served shortest-remaining-
//! work-first, which favours average JCT; admission is greedy and
//! work-conserving, which favours makespan.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tetris_resources::ResourceVec;
use tetris_sim::SimTime;
use tetris_workload::{JobId, TaskUid, Workload};

/// Result of the aggregate-bin relaxation.
#[derive(Debug, Clone)]
pub struct UpperBoundOutcome {
    /// Finish time per job (seconds), indexed by job id.
    pub job_finish: Vec<Option<f64>>,
    /// Arrival per job (copied from the workload, for JCTs).
    pub job_arrival: Vec<f64>,
}

impl UpperBoundOutcome {
    /// JCT of one job.
    pub fn jct(&self, j: JobId) -> Option<f64> {
        self.job_finish[j.index()].map(|f| f - self.job_arrival[j.index()])
    }

    /// All finished JCTs.
    pub fn jct_vec(&self) -> Vec<f64> {
        (0..self.job_finish.len())
            .filter_map(|i| self.jct(JobId(i)))
            .collect()
    }

    /// Average JCT.
    pub fn avg_jct(&self) -> f64 {
        let v = self.jct_vec();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Latest finish time.
    pub fn makespan(&self) -> f64 {
        self.job_finish
            .iter()
            .flatten()
            .fold(0.0f64, |a, &b| a.max(b))
    }

    /// True if every job finished.
    pub fn complete(&self) -> bool {
        self.job_finish.iter().all(|f| f.is_some())
    }
}

/// The aggregate-bin upper-bound "scheduler".
///
/// Not a [`tetris_sim::SchedulerPolicy`]: the relaxation deliberately has
/// no machines, so it runs its own tiny event loop.
#[derive(Debug, Clone, Default)]
pub struct UpperBoundScheduler {
    _private: (),
}

impl UpperBoundScheduler {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate the relaxation of `workload` against the aggregate
    /// capacity `total_capacity`.
    pub fn simulate(&self, workload: &Workload, total_capacity: ResourceVec) -> UpperBoundOutcome {
        workload.validate().expect("invalid workload");
        let n_jobs = workload.jobs.len();

        #[derive(Clone)]
        struct Stage {
            pending: Vec<TaskUid>, // reversed: pop from the back
            running: usize,
            finished: usize,
            total: usize,
        }
        struct Job {
            arrived: bool,
            stages: Vec<Stage>,
            remaining_cost: f64,
            finished_tasks: usize,
            total_tasks: usize,
            finish: Option<f64>,
        }

        // Per-task cost for SRTF ordering (normalized by aggregate).
        let task_cost = |uid: TaskUid| {
            let t = workload.task(uid).expect("task");
            t.demand.normalized_by(&total_capacity).sum() * t.ideal_duration()
        };

        let mut jobs: Vec<Job> = workload
            .jobs
            .iter()
            .map(|j| Job {
                arrived: false,
                stages: j
                    .stages
                    .iter()
                    .map(|s| Stage {
                        pending: Vec::new(),
                        running: 0,
                        finished: 0,
                        total: s.tasks.len(),
                    })
                    .collect(),
                remaining_cost: j.tasks().map(|t| task_cost(t.uid)).sum(),
                finished_tasks: 0,
                total_tasks: j.num_tasks(),
                finish: None,
            })
            .collect();

        let mut avail = total_capacity;

        // Events: arrivals and task completions, in (time, seq) order.
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Ev {
            Arrive(JobId),
            Done(TaskUid),
        }
        let mut heap: BinaryHeap<Reverse<(SimTime, u64, Ev)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for j in &workload.jobs {
            heap.push(Reverse((
                SimTime::from_secs(j.arrival),
                seq,
                Ev::Arrive(j.id),
            )));
            seq += 1;
        }

        let unlock_ready = |jobs: &mut Vec<Job>, ji: usize| {
            // Unlock stages whose deps are complete and that have no
            // pending/running/finished state yet.
            let spec = &workload.jobs[ji];
            for (si, s) in spec.stages.iter().enumerate() {
                let st = &jobs[ji].stages[si];
                let untouched = st.pending.is_empty() && st.running == 0 && st.finished == 0;
                if !untouched {
                    continue;
                }
                let ready = s
                    .deps
                    .iter()
                    .all(|&d| jobs[ji].stages[d].finished == jobs[ji].stages[d].total);
                if ready {
                    let mut uids: Vec<TaskUid> =
                        spec.stages[si].tasks.iter().map(|t| t.uid).collect();
                    uids.reverse();
                    jobs[ji].stages[si].pending = uids;
                }
            }
        };

        let mut now;
        while let Some(Reverse((t, _, ev))) = heap.pop() {
            now = t;
            match ev {
                Ev::Arrive(j) => {
                    jobs[j.index()].arrived = true;
                    unlock_ready(&mut jobs, j.index());
                }
                Ev::Done(uid) => {
                    let spec = workload.task(uid).expect("task");
                    let (ji, si) = (spec.job.index(), spec.stage);
                    avail += spec.demand;
                    jobs[ji].stages[si].running -= 1;
                    jobs[ji].stages[si].finished += 1;
                    jobs[ji].finished_tasks += 1;
                    if jobs[ji].stages[si].finished == jobs[ji].stages[si].total {
                        unlock_ready(&mut jobs, ji);
                    }
                    if jobs[ji].finished_tasks == jobs[ji].total_tasks {
                        jobs[ji].finish = Some(now.as_secs());
                    }
                }
            }
            // Drain simultaneous events before admitting.
            while let Some(Reverse((t2, _, _))) = heap.peek() {
                if *t2 != now {
                    break;
                }
                let Reverse((_, _, ev)) = heap.pop().expect("peeked");
                match ev {
                    Ev::Arrive(j) => {
                        jobs[j.index()].arrived = true;
                        unlock_ready(&mut jobs, j.index());
                    }
                    Ev::Done(uid) => {
                        let spec = workload.task(uid).expect("task");
                        let (ji, si) = (spec.job.index(), spec.stage);
                        avail += spec.demand;
                        jobs[ji].stages[si].running -= 1;
                        jobs[ji].stages[si].finished += 1;
                        jobs[ji].finished_tasks += 1;
                        if jobs[ji].stages[si].finished == jobs[ji].stages[si].total {
                            unlock_ready(&mut jobs, ji);
                        }
                        if jobs[ji].finished_tasks == jobs[ji].total_tasks {
                            jobs[ji].finish = Some(now.as_secs());
                        }
                    }
                }
            }

            // Admit greedily: jobs in ascending remaining work; within a
            // job, stage order.
            let mut order: Vec<usize> = (0..n_jobs)
                .filter(|&ji| jobs[ji].arrived && jobs[ji].finish.is_none())
                .collect();
            order.sort_by(|&a, &b| {
                jobs[a]
                    .remaining_cost
                    .partial_cmp(&jobs[b].remaining_cost)
                    .unwrap()
                    .then(a.cmp(&b))
            });
            for ji in order {
                for si in 0..jobs[ji].stages.len() {
                    while let Some(&uid) = jobs[ji].stages[si].pending.last() {
                        let spec = workload.task(uid).expect("task");
                        if !spec.demand.fits_within(&avail) {
                            break;
                        }
                        jobs[ji].stages[si].pending.pop();
                        jobs[ji].stages[si].running += 1;
                        avail -= spec.demand;
                        jobs[ji].remaining_cost -= task_cost(uid);
                        heap.push(Reverse((
                            now.after_secs(spec.ideal_duration()),
                            seq,
                            Ev::Done(uid),
                        )));
                        seq += 1;
                    }
                }
            }
        }

        UpperBoundOutcome {
            job_finish: jobs.into_iter().map(|j| j.finish).collect(),
            job_arrival: workload.jobs.iter().map(|j| j.arrival).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::MachineSpec;
    use tetris_workload::WorkloadSuiteConfig;

    fn cap(n: usize) -> ResourceVec {
        MachineSpec::paper_large().capacity() * n as f64
    }

    #[test]
    fn completes_suite() {
        let w = WorkloadSuiteConfig::small().generate(4);
        let o = UpperBoundScheduler::new().simulate(&w, cap(6));
        assert!(o.complete());
        assert!(o.makespan() > 0.0);
        assert!(o.avg_jct() > 0.0);
    }

    #[test]
    fn respects_barriers() {
        let w = WorkloadSuiteConfig::small().generate(4);
        let o = UpperBoundScheduler::new().simulate(&w, cap(6));
        for j in &w.jobs {
            // A two-stage job can never beat map-dur + reduce-dur.
            let min_map = j.stages[0]
                .tasks
                .iter()
                .map(|t| t.ideal_duration())
                .fold(f64::INFINITY, f64::min);
            let min_red = j.stages[1]
                .tasks
                .iter()
                .map(|t| t.ideal_duration())
                .fold(f64::INFINITY, f64::min);
            let jct = o.jct(j.id).unwrap();
            assert!(
                jct >= min_map + min_red - 1e-3,
                "{}: jct {jct} < {min_map}+{min_red}",
                j.name
            );
        }
    }

    #[test]
    fn beats_or_matches_any_real_schedule() {
        use tetris_sim::{ClusterConfig, GreedyFifo, Simulation};
        let w = WorkloadSuiteConfig::small().generate(12);
        let real = Simulation::build(
            ClusterConfig::uniform(6, MachineSpec::paper_large()),
            w.clone(),
        )
        .scheduler(GreedyFifo::new())
        .seed(12)
        .run();
        let ub = UpperBoundScheduler::new().simulate(&w, cap(6));
        assert!(ub.complete());
        // The relaxation must not be slower than a real schedule on
        // average JCT (it ignores fragmentation, placement, contention,
        // and serves shortest-remaining-work first). Makespan gets slack:
        // SRTF admission order deliberately trades a little makespan for
        // JCT, so strict domination only holds for the JCT objective.
        assert!(
            ub.makespan() <= real.makespan() * 1.10,
            "ub {} vs real {}",
            ub.makespan(),
            real.makespan()
        );
        assert!(
            ub.avg_jct() <= real.avg_jct() + 1e-3,
            "ub {} vs real {}",
            ub.avg_jct(),
            real.avg_jct()
        );
    }

    #[test]
    fn single_task_takes_ideal_duration() {
        use tetris_resources::units::GB;
        use tetris_workload::gen::{TaskParams, WorkloadBuilder};
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("j", None, 5.0);
        b.add_stage(j, "s", vec![], 1, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 30.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let o = UpperBoundScheduler::new().simulate(&b.finish(), cap(1));
        assert!((o.jct(JobId(0)).unwrap() - 30.0).abs() < 1e-3);
        assert!((o.makespan() - 35.0).abs() < 1e-3);
    }
}
