//! Seeded random placement — a floor baseline for sanity checks and
//! ablation tables (not one of the paper's comparators).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tetris_resources::ResourceVec;
use tetris_sim::{Assignment, ClusterView, MachineId, SchedulerPolicy};

/// Random scheduler: shuffles pending tasks, places each on a uniformly
/// random machine among those where its full plan fits.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Seeded instance (determinism matters even for the floor baseline).
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SchedulerPolicy for RandomScheduler {
    fn name(&self) -> &str {
        "random"
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let mut tasks: Vec<_> = view
            .active_jobs()
            .flat_map(|j| {
                view.job_pending_stages(j)
                    .flat_map(|(_, slice)| slice.iter().copied())
            })
            .collect();
        // Fisher–Yates with the policy's own rng.
        for i in (1..tasks.len()).rev() {
            let k = self.rng.gen_range(0..=i);
            tasks.swap(i, k);
        }
        let query = view.query();
        let mut avail: Vec<ResourceVec> = query.iter_all().map(|m| view.available(m)).collect();
        let n = view.num_machines();
        let mut out = Vec::new();
        for t in tasks {
            // Random starting machine, linear probe for a fit.
            let start = self.rng.gen_range(0..n);
            for off in 0..n {
                let m = MachineId((start + off) % n);
                let plan = view.plan(t, m);
                let fits = plan.local.fits_within(&avail[m.index()])
                    && plan
                        .remote
                        .iter()
                        .all(|(s, d)| d.fits_within(&avail[s.index()]));
                if fits {
                    avail[m.index()] -= plan.local;
                    for (s, d) in &plan.remote {
                        avail[s.index()] -= *d;
                    }
                    out.push(Assignment::new(t, m));
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::MachineSpec;
    use tetris_sim::{ClusterConfig, Simulation};
    use tetris_workload::WorkloadSuiteConfig;

    #[test]
    fn completes_small_suite() {
        let outcome = Simulation::build(
            ClusterConfig::uniform(6, MachineSpec::paper_large()),
            WorkloadSuiteConfig::small().generate(9),
        )
        .scheduler(RandomScheduler::seeded(9))
        .seed(9)
        .run();
        assert!(outcome.all_jobs_completed());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |pseed| {
            Simulation::build(
                ClusterConfig::uniform(4, MachineSpec::paper_large()),
                WorkloadSuiteConfig::small().generate(2),
            )
            .scheduler(RandomScheduler::seeded(pseed))
            .seed(2)
            .run()
        };
        assert_eq!(run(1).makespan(), run(1).makespan());
        // Different policy seed → (almost surely) different schedule.
        assert_ne!(
            run(1).tasks.iter().map(|t| t.machine).collect::<Vec<_>>(),
            run(2).tasks.iter().map(|t| t.machine).collect::<Vec<_>>()
        );
    }
}
