//! Dominant Resource Fairness (Ghodsi et al., NSDI'11) as shipped with
//! YARN and evaluated by the paper (§5.1).
//!
//! DRF offers the next resources to the job whose *dominant share* — the
//! maximum over resource dimensions of (job's allocation / cluster
//! capacity) — is smallest. Crucially, "available implementations of DRF
//! and the earlier schedulers only consider CPU and memory" (§6): disk and
//! network are neither counted in shares nor checked at placement, so DRF
//! over-allocates them just like the slot schedulers. An extended variant
//! over all six dimensions is provided for the §2.1 discussion.

use tetris_resources::{Resource, ResourceVec};
use tetris_sim::{Assignment, ClusterView, SchedulerEvent, SchedulerPolicy};
use tetris_workload::{JobId, TaskUid};

/// The DRF scheduler (progressive filling over dominant shares).
#[derive(Debug, Clone)]
pub struct DrfScheduler {
    dims: Vec<Resource>,
    extended: bool,
    /// True once any event has been delivered: `active` below is then the
    /// job list. Driven bare, the view is re-scanned every call.
    synced: bool,
    /// Incrementally maintained active-job list, kept id-sorted (the
    /// order [`ClusterView::active_jobs`] yields). Jobs enter on
    /// `JobArrived` and are dropped once inactive.
    active: Vec<JobId>,
}

impl DrfScheduler {
    /// Shipped DRF: CPU + memory only.
    pub fn new() -> Self {
        DrfScheduler {
            dims: vec![Resource::Cpu, Resource::Mem],
            extended: false,
            synced: false,
            active: Vec::new(),
        }
    }

    /// Extended DRF over all six dimensions (the §2.1 worked example:
    /// even all-dimension DRF packs worse than Tetris).
    pub fn extended() -> Self {
        DrfScheduler {
            dims: Resource::ALL.to_vec(),
            extended: true,
            synced: false,
            active: Vec::new(),
        }
    }
}

impl Default for DrfScheduler {
    fn default() -> Self {
        Self::new()
    }
}

struct JobQueue<'a> {
    id: tetris_workload::JobId,
    alloc: ResourceVec,
    stages: Vec<(usize, &'a [TaskUid])>,
    stage_pos: usize,
    off: usize,
    /// Set once the head task cannot be placed anywhere; DRF then skips
    /// the job this round (no head-of-line blocking of everyone else).
    stuck: bool,
}

impl JobQueue<'_> {
    fn head(&self) -> Option<TaskUid> {
        let (_, slice) = self.stages.get(self.stage_pos)?;
        slice.get(self.off).copied()
    }
    fn advance(&mut self) {
        self.off += 1;
        while let Some((_, slice)) = self.stages.get(self.stage_pos) {
            if self.off < slice.len() {
                break;
            }
            self.stage_pos += 1;
            self.off = 0;
        }
    }
}

impl SchedulerPolicy for DrfScheduler {
    fn name(&self) -> &str {
        if self.extended {
            "drf-all-dims"
        } else {
            "drf"
        }
    }

    fn on_event(&mut self, _view: &ClusterView<'_>, event: &SchedulerEvent) {
        self.synced = true;
        if let SchedulerEvent::JobArrived { job } = *event {
            if let Err(pos) = self.active.binary_search(&job) {
                self.active.insert(pos, job);
            }
        }
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let total = view.total_capacity();
        // Working availability on the dimensions DRF examines.
        let query = view.query();
        let mut avail: Vec<ResourceVec> = query.iter_all().map(|m| view.available(m)).collect();

        // Job list: the event-maintained id-sorted active set (pruned of
        // finished jobs) when synced, else a fresh scan of the view. Both
        // yield active jobs in id order, so decisions are identical.
        let mk = |j: JobId| JobQueue {
            id: j,
            alloc: view.job_allocated(j),
            stages: view.job_pending_stages(j).collect(),
            stage_pos: 0,
            off: 0,
            stuck: false,
        };
        let mut jobs: Vec<JobQueue<'_>> = if self.synced {
            self.active.retain(|&j| view.job_is_active(j));
            self.active
                .iter()
                .map(|&j| mk(j))
                .filter(|j| j.head().is_some())
                .collect()
        } else {
            view.active_jobs()
                .map(mk)
                .filter(|j| j.head().is_some())
                .collect()
        };

        let mut preferred = Vec::new();
        let mut out = Vec::new();
        loop {
            // Progressive filling: job with the minimum dominant share.
            let mut pick: Option<(usize, f64)> = None;
            for (i, j) in jobs.iter().enumerate() {
                if j.stuck || j.head().is_none() {
                    continue;
                }
                let share = j.alloc.dominant_share(&total, &self.dims);
                let better = match pick {
                    None => true,
                    Some((bi, bs)) => share < bs || (share == bs && j.id < jobs[bi].id),
                };
                if better {
                    pick = Some((i, share));
                }
            }
            let Some((ji, _)) = pick else { break };

            let task = jobs[ji].head().expect("picked job has a head task");
            let demand = view.task(task).demand.project(&self.dims);

            // Place: prefer data-local machines, else spread to the
            // machine with the most available memory (YARN's continuous
            // scheduling balances load rather than packing) — checking
            // ONLY `self.dims`.
            view.preferred_machines_into(task, &mut preferred);
            let fits = |avail: &ResourceVec| demand.fits_within(&avail.project(&self.dims));
            let target = preferred
                .iter()
                .copied()
                .find(|m| fits(&avail[m.index()]))
                .or_else(|| {
                    view.query()
                        .iter_all()
                        .filter(|m| fits(&avail[m.index()]))
                        .max_by(|a, b| {
                            let fa = avail[a.index()].get(Resource::Mem);
                            let fb = avail[b.index()].get(Resource::Mem);
                            fa.partial_cmp(&fb).unwrap().then(b.index().cmp(&a.index()))
                        })
                });
            match target {
                Some(m) => {
                    avail[m.index()] -= demand;
                    jobs[ji].alloc += demand;
                    jobs[ji].advance();
                    out.push(Assignment::new(task, m));
                }
                None => {
                    jobs[ji].stuck = true;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait NameOf {
        fn name_of(&self) -> &str;
    }

    impl NameOf for tetris_sim::SimOutcome {
        fn name_of(&self) -> &str {
            &self.scheduler
        }
    }
    use tetris_resources::{units::GB, MachineSpec};
    use tetris_sim::{ClusterConfig, Simulation};
    use tetris_workload::gen::{TaskParams, WorkloadBuilder};
    use tetris_workload::{JobId, WorkloadSuiteConfig};

    #[test]
    fn completes_small_suite() {
        let outcome = Simulation::build(
            ClusterConfig::uniform(6, MachineSpec::paper_large()),
            WorkloadSuiteConfig::small().generate(7),
        )
        .scheduler(DrfScheduler::new())
        .seed(7)
        .run();
        assert!(outcome.all_jobs_completed());
    }

    #[test]
    fn equalizes_dominant_shares() {
        // Job A: cpu-heavy tasks (2 cores, 1 GB); job B: memory-heavy
        // (0.5 core, 4 GB). On a 4-core/16 GB machine DRF should run ~2 A
        // tasks (dom share 2×2/4 = flexible) alongside B tasks rather than
        // letting either monopolize.
        let mut b = WorkloadBuilder::new();
        let a = b.begin_job("cpuish", None, 0.0);
        b.add_stage(a, "s", vec![], 20, |_| TaskParams {
            cores: 2.0,
            mem: GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let bb = b.begin_job("memish", None, 0.0);
        b.add_stage(bb, "s", vec![], 20, |_| TaskParams {
            cores: 0.5,
            mem: 4.0 * GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let outcome = Simulation::build(
            ClusterConfig::uniform(1, MachineSpec::paper_small()),
            b.finish(),
        )
        .scheduler(DrfScheduler::new())
        .run();
        assert!(outcome.all_jobs_completed());
        // DRF equalizes dominant *shares* while both jobs have pending
        // work: at an early sample the two dominant shares must be close
        // (paper §2.1: each job gets an equal dominant share).
        let total = MachineSpec::paper_small().capacity();
        let early = outcome
            .samples
            .iter()
            .find(|s| s.t >= 10.0)
            .expect("early sample");
        let allocs = early.per_job_alloc.as_ref().unwrap();
        let ds_a = allocs[0].dominant_share(&total, &Resource::ALL);
        let ds_b = allocs[1].dominant_share(&total, &Resource::ALL);
        assert!(ds_a > 0.0 && ds_b > 0.0, "both jobs must be running");
        // Task granularity bounds how close progressive filling can get
        // (the paper: "long-running or resource-hungry tasks cause
        // short-term unfairness ... bounded task sizes limit [it]"): here
        // one 2-core task is 0.5 of the machine, so shares can differ by
        // up to one task's dominant share.
        assert!(
            (ds_a - ds_b).abs() <= 0.5 + 1e-9,
            "dominant shares diverged: {ds_a} vs {ds_b}"
        );
        assert!(ds_a >= 0.25 && ds_b >= 0.25, "a job was starved");
        let _ = JobId(0);
    }

    #[test]
    fn ignores_io_and_overallocates() {
        use tetris_resources::units::MB;
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("writers", None, 0.0);
        b.add_stage(j, "w", vec![], 8, |_| TaskParams {
            cores: 1.0,
            mem: GB,
            duration: 20.0,
            cpu_frac: 0.1,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 3000.0 * MB,
            remote_frac: 1.0,
        });
        let mut cfg = tetris_sim::SimConfig::default();
        cfg.sample_period = Some(1.0);
        let outcome = Simulation::build(
            ClusterConfig::uniform(1, MachineSpec::paper_large()),
            b.finish(),
        )
        .scheduler(DrfScheduler::new())
        .config(cfg)
        .run();
        let cap = MachineSpec::paper_large().capacity();
        let over = outcome.samples.iter().any(|s| {
            s.cluster_allocated.get(Resource::DiskWrite) > cap.get(Resource::DiskWrite) * 1.5
        });
        assert!(over, "DRF should over-allocate disk");
    }

    #[test]
    fn extended_variant_checks_all_dims() {
        use tetris_resources::units::MB;
        // Two network-saturating tasks: extended DRF runs them one at a
        // time; shipped DRF piles both on.
        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("net", None, 0.0);
        b.add_stage(j, "s", vec![], 2, |_| TaskParams {
            cores: 0.1,
            mem: 0.1 * GB,
            duration: 10.0,
            cpu_frac: 0.1,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 1250.0 * MB, // 125 MB/s = full small-profile NIC? disk!
            remote_frac: 1.0,
        });
        // output → DiskWrite at 125 MB/s > small profile's 100 MB/s? use
        // large profile: 200 MB/s cap; demand 125 each; two demand 250.
        let cluster = ClusterConfig::uniform(1, MachineSpec::paper_large());
        let shipped = Simulation::build(cluster.clone(), b.finish())
            .scheduler(DrfScheduler::new())
            .run();
        // With both running, each gets 100 MB/s → 12.5 s each.
        assert!(shipped.mean_task_stretch() > 1.2);

        let mut b = WorkloadBuilder::new();
        let j = b.begin_job("net", None, 0.0);
        b.add_stage(j, "s", vec![], 2, |_| TaskParams {
            cores: 0.1,
            mem: 0.1 * GB,
            duration: 10.0,
            cpu_frac: 0.1,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 1250.0 * MB,
            remote_frac: 1.0,
        });
        let serial = Simulation::build(cluster, b.finish())
            .scheduler(DrfScheduler::extended())
            .run();
        // Extended DRF serializes: no stretch.
        assert!(serial.mean_task_stretch() < 1.05);
        assert_eq!(serial.name_of(), "drf-all-dims");
    }

    #[test]
    fn name() {
        assert_eq!(DrfScheduler::new().name(), "drf");
    }
}
