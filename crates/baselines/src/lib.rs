//! # tetris-baselines
//!
//! The comparator schedulers of the Tetris paper's evaluation (§5.1) plus
//! ablation and floor baselines:
//!
//! * [`FairScheduler`] / [`CapacityScheduler`] — slot-based Hadoop 1.x
//!   schedulers (slots defined on memory only; CPU/disk/network never
//!   examined → fragmentation *and* over-allocation);
//! * [`DrfScheduler`] — Dominant Resource Fairness as shipped (CPU+memory
//!   only), plus an all-dimension extended variant;
//! * [`SrtfScheduler`] — multi-resource shortest-remaining-work ordering
//!   without packing (the §5.3.1 ablation);
//! * [`RandomScheduler`] — seeded random placement floor;
//! * [`UpperBoundScheduler`] — the §2.2.3 aggregate-bin relaxation that
//!   upper-bounds the gains any packing scheduler can hope for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drf;
mod random;
mod slots;
mod srtf_only;
mod upper_bound;

pub use drf::DrfScheduler;
pub use random::RandomScheduler;
pub use slots::{CapacityScheduler, FairScheduler, DEFAULT_SLOT_MEM};
pub use srtf_only::SrtfScheduler;
pub use upper_bound::{UpperBoundOutcome, UpperBoundScheduler};
