//! Multi-resource SRTF without packing (§3.3.1 / §5.3.1 ablation).
//!
//! Serves jobs in ascending order of remaining work (the same score the
//! Tetris combination uses) and first-fits their tasks. Full
//! six-dimension feasibility is respected — this isolates the *ordering*
//! heuristic from the *packing* heuristic, which is how the paper
//! decomposes its gains ("Using only the SRTF heuristic lowers the
//! improvement...").

use tetris_resources::ResourceVec;
use tetris_sim::{Assignment, ClusterView, SchedulerPolicy};

/// SRTF-only scheduler.
#[derive(Debug, Clone, Default)]
pub struct SrtfScheduler {
    _private: (),
}

impl SrtfScheduler {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulerPolicy for SrtfScheduler {
    fn name(&self) -> String {
        "srtf".into()
    }

    fn uses_tracker(&self) -> bool {
        true
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let n = view.num_machines().max(1);
        let reference = view.total_capacity() / n as f64;
        let mut jobs: Vec<_> = view
            .active_jobs()
            .into_iter()
            .map(|j| {
                (
                    j,
                    tetris_core::srtf::job_remaining_work(view, j, &reference),
                )
            })
            .collect();
        jobs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));

        let mut avail: Vec<ResourceVec> = view.machines().map(|m| view.available(m)).collect();
        let mut out = Vec::new();
        for (j, _) in jobs {
            for t in view
                .job_pending_stages(j)
                .into_iter()
                .flat_map(|(_, slice)| slice.iter().copied())
            {
                // Prefer data-local placements, else first machine where
                // the full plan (local + remote) fits.
                let preferred = view.preferred_machines(t);
                let candidates = preferred.iter().copied().chain(view.machines());
                for m in candidates {
                    let plan = view.plan(t, m);
                    let fits = plan.local.fits_within(&avail[m.index()])
                        && plan
                            .remote
                            .iter()
                            .all(|(s, d)| d.fits_within(&avail[s.index()]));
                    if fits {
                        avail[m.index()] -= plan.local;
                        for (s, d) in &plan.remote {
                            avail[s.index()] -= *d;
                        }
                        out.push(Assignment::new(t, m));
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::{units::GB, MachineSpec};
    use tetris_sim::{ClusterConfig, Simulation};
    use tetris_workload::gen::{TaskParams, WorkloadBuilder};
    use tetris_workload::{JobId, WorkloadSuiteConfig};

    #[test]
    fn completes_small_suite() {
        let outcome = Simulation::build(
            ClusterConfig::uniform(6, MachineSpec::paper_large()),
            WorkloadSuiteConfig::small().generate(1),
        )
        .scheduler(SrtfScheduler::new())
        .seed(1)
        .run();
        assert!(outcome.all_jobs_completed());
    }

    #[test]
    fn short_job_finishes_first() {
        // A long job (30 tasks) and a short one (2 tasks) arrive together
        // on a tiny cluster; SRTF must finish the short one first even
        // though the long one came first by id.
        let mut b = WorkloadBuilder::new();
        let long = b.begin_job("long", None, 0.0);
        b.add_stage(long, "s", vec![], 30, |_| TaskParams {
            cores: 2.0,
            mem: 4.0 * GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let short = b.begin_job("short", None, 0.0);
        b.add_stage(short, "s", vec![], 2, |_| TaskParams {
            cores: 2.0,
            mem: 4.0 * GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let outcome = Simulation::build(
            ClusterConfig::uniform(1, MachineSpec::paper_small()),
            b.finish(),
        )
        .scheduler(SrtfScheduler::new())
        .run();
        let long_jct = outcome.jct(JobId(0)).unwrap();
        let short_jct = outcome.jct(JobId(1)).unwrap();
        assert!(
            short_jct < long_jct / 2.0,
            "short {short_jct} vs long {long_jct}"
        );
    }
}
