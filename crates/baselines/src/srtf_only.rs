//! Multi-resource SRTF without packing (§3.3.1 / §5.3.1 ablation).
//!
//! Serves jobs in ascending order of remaining work (the same score the
//! Tetris combination uses) and first-fits their tasks. Full
//! six-dimension feasibility is respected — this isolates the *ordering*
//! heuristic from the *packing* heuristic, which is how the paper
//! decomposes its gains ("Using only the SRTF heuristic lowers the
//! improvement...").

use tetris_resources::{Resource, ResourceVec};
use tetris_sim::{Assignment, ClusterView, MachineId, SchedulerPolicy};
use tetris_workload::JobId;

/// SRTF-only scheduler.
///
/// The schedule pass walks every pending task; at saturation that is
/// thousands of tasks per event, so the pass prefilters each task on the
/// placement-*independent* demand dimensions (Cpu, Mem, DiskWrite — a
/// placement plan's local demand equals the spec on exactly these) before
/// paying for any per-machine placement plan. The prefilter only rejects
/// tasks/machines the full feasibility check would also reject, so
/// decisions are identical to the exhaustive pass (proven by
/// `tests/schedule_equivalence.rs`).
#[derive(Debug, Clone, Default)]
pub struct SrtfScheduler {
    /// Skip the prefilter and buffer reuse: the from-scratch reference
    /// that the equivalence test compares against.
    exhaustive: bool,
    scratch: Scratch,
}

/// Buffers reused across `schedule()` calls (cleared, never shrunk).
#[derive(Debug, Clone, Default)]
struct Scratch {
    jobs: Vec<(JobId, f64)>,
    avail: Vec<ResourceVec>,
    preferred: Vec<MachineId>,
    candidates: Vec<MachineId>,
}

/// The demand components a placement plan cannot change: Cpu, Mem and
/// DiskWrite are taken verbatim from the spec regardless of machine, while
/// DiskRead/NetIn/NetOut depend on where the inputs live (zeroed here, so
/// the result is component-wise `<=` any machine's plan-local demand).
fn placement_independent(demand: &ResourceVec) -> ResourceVec {
    ResourceVec::zero()
        .with(Resource::Cpu, demand.get(Resource::Cpu))
        .with(Resource::Mem, demand.get(Resource::Mem))
        .with(Resource::DiskWrite, demand.get(Resource::DiskWrite))
}

impl SrtfScheduler {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// From-scratch reference pass: no prefilter, no scratch reuse. Slower
    /// but structurally identical to the original algorithm; exists so the
    /// equivalence test can prove the optimized pass decision-identical.
    pub fn exhaustive() -> Self {
        SrtfScheduler {
            exhaustive: true,
            ..Self::default()
        }
    }
}

impl SchedulerPolicy for SrtfScheduler {
    fn name(&self) -> &str {
        "srtf"
    }

    fn uses_tracker(&self) -> bool {
        true
    }

    fn schedule(&mut self, view: &ClusterView<'_>) -> Vec<Assignment> {
        let n = view.num_machines().max(1);
        let reference = view.total_capacity() / n as f64;
        let exhaustive = self.exhaustive;
        let Scratch {
            jobs,
            avail,
            preferred,
            candidates,
        } = &mut self.scratch;
        // Fault awareness: skipping down machines and stably pushing
        // suspect ones last are both exact no-ops without fault injection
        // (every machine is up and trusted then), so decisions stay
        // byte-identical to the pre-fault pass.
        let query = view.query();
        let any_suspect = query.iter_all().any(|m| view.is_suspect(m));

        jobs.clear();
        jobs.extend(view.active_jobs().map(|j| {
            (
                j,
                tetris_core::srtf::job_remaining_work(view, j, &reference),
            )
        }));
        jobs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));

        avail.clear();
        avail.extend(query.iter_all().map(|m| view.available(m)));

        // Upper envelope of availability on the placement-independent
        // dims (∞ elsewhere so those always pass). Availability only
        // shrinks during the pass, so the envelope stays an upper bound:
        // a task that fails it fails the full check on every machine.
        let mut env = ResourceVec::zero()
            .with(Resource::Cpu, f64::NEG_INFINITY)
            .with(Resource::Mem, f64::NEG_INFINITY)
            .with(Resource::DiskWrite, f64::NEG_INFINITY)
            .with(Resource::DiskRead, f64::INFINITY)
            .with(Resource::NetIn, f64::INFINITY)
            .with(Resource::NetOut, f64::INFINITY);
        for a in avail.iter() {
            env = env.max(a);
        }

        let mut out = Vec::new();
        for &(j, _) in jobs.iter() {
            for t in view
                .job_pending_stages(j)
                .flat_map(|(_, slice)| slice.iter().copied())
            {
                let quick = placement_independent(&view.task(t).demand);
                if !exhaustive && !quick.fits_within(&env) {
                    continue; // provably unplaceable on every machine
                }
                // Prefer data-local placements, else first machine where
                // the full plan (local + remote) fits.
                view.preferred_machines_into(t, preferred);
                candidates.clear();
                candidates.extend(preferred.iter().copied().chain(query.iter_all()));
                candidates.retain(|&m| !view.is_down(m));
                if any_suspect {
                    // Stable partition: suspect machines considered last.
                    candidates.sort_by_key(|&m| view.is_suspect(m));
                }
                for m in candidates.iter().copied() {
                    // Cheap exact reject before computing the plan: the
                    // plan's local demand is >= `quick` component-wise.
                    if !exhaustive && !quick.fits_within(&avail[m.index()]) {
                        continue;
                    }
                    let plan = view.plan(t, m);
                    let fits = plan.local.fits_within(&avail[m.index()])
                        && plan
                            .remote
                            .iter()
                            .all(|(s, d)| d.fits_within(&avail[s.index()]));
                    if fits {
                        avail[m.index()] -= plan.local;
                        for (s, d) in &plan.remote {
                            avail[s.index()] -= *d;
                        }
                        out.push(Assignment::new(t, m));
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_resources::{units::GB, MachineSpec};
    use tetris_sim::{ClusterConfig, Simulation};
    use tetris_workload::gen::{TaskParams, WorkloadBuilder};
    use tetris_workload::{JobId, WorkloadSuiteConfig};

    #[test]
    fn completes_small_suite() {
        let outcome = Simulation::build(
            ClusterConfig::uniform(6, MachineSpec::paper_large()),
            WorkloadSuiteConfig::small().generate(1),
        )
        .scheduler(SrtfScheduler::new())
        .seed(1)
        .run();
        assert!(outcome.all_jobs_completed());
    }

    #[test]
    fn short_job_finishes_first() {
        // A long job (30 tasks) and a short one (2 tasks) arrive together
        // on a tiny cluster; SRTF must finish the short one first even
        // though the long one came first by id.
        let mut b = WorkloadBuilder::new();
        let long = b.begin_job("long", None, 0.0);
        b.add_stage(long, "s", vec![], 30, |_| TaskParams {
            cores: 2.0,
            mem: 4.0 * GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let short = b.begin_job("short", None, 0.0);
        b.add_stage(short, "s", vec![], 2, |_| TaskParams {
            cores: 2.0,
            mem: 4.0 * GB,
            duration: 10.0,
            cpu_frac: 1.0,
            io_burst: 1.0,
            inputs: vec![],
            output_bytes: 0.0,
            remote_frac: 1.0,
        });
        let outcome = Simulation::build(
            ClusterConfig::uniform(1, MachineSpec::paper_small()),
            b.finish(),
        )
        .scheduler(SrtfScheduler::new())
        .run();
        let long_jct = outcome.jct(JobId(0)).unwrap();
        let short_jct = outcome.jct(JobId(1)).unwrap();
        assert!(
            short_jct < long_jct / 2.0,
            "short {short_jct} vs long {long_jct}"
        );
    }
}
