//! Property-based invariants of the baseline schedulers.

use proptest::prelude::*;
use tetris_baselines::{CapacityScheduler, DrfScheduler, FairScheduler, SrtfScheduler};
use tetris_resources::{units::GB, units::MB, MachineSpec, Resource};
use tetris_sim::{SchedulerPolicy, SimConfig, Simulation};
use tetris_workload::gen::{TaskParams, WorkloadBuilder};
use tetris_workload::Workload;

fn arb_workload() -> impl Strategy<Value = Workload> {
    let job = (
        1usize..=6,    // tasks
        0.25f64..=2.0, // cores
        0.25f64..=6.0, // mem GB
        2.0f64..=20.0, // duration
        0.0f64..=30.0, // arrival
    );
    proptest::collection::vec(job, 1..=4).prop_map(|jobs| {
        let mut b = WorkloadBuilder::new().with_demand_cap(MachineSpec::paper_small().capacity());
        for (ji, (n, cores, mem_gb, dur, arrival)) in jobs.into_iter().enumerate() {
            let j = b.begin_job(format!("j{ji}"), None, arrival);
            let inputs: Vec<_> = (0..n).map(|_| b.stored_input(16.0 * MB)).collect();
            b.add_stage(j, "map", vec![], n, |i| TaskParams {
                cores,
                mem: mem_gb * GB,
                duration: dur,
                cpu_frac: 1.0,
                io_burst: 1.0,
                inputs: vec![inputs[i]],
                output_bytes: 4.0 * MB,
                remote_frac: 1.0,
            });
        }
        b.finish()
    })
}

fn run(w: &Workload, policy: Box<dyn SchedulerPolicy>) -> tetris_sim::SimOutcome {
    let mut cfg = SimConfig::default();
    cfg.seed = 11;
    cfg.max_time = 50_000.0;
    Simulation::build(
        tetris_sim::ClusterConfig::uniform(2, MachineSpec::paper_small()),
        w.clone(),
    )
    .scheduler(policy)
    .config(cfg)
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn slot_schedulers_respect_slot_counts(w in arb_workload()) {
        // paper_small: 16 GB / 2 GB slots = 8 slots per machine.
        for fair in [true, false] {
            let policy: Box<dyn SchedulerPolicy> = if fair {
                Box::new(FairScheduler::new())
            } else {
                Box::new(CapacityScheduler::new())
            };
            let o = run(&w, policy);
            prop_assert!(o.all_jobs_completed());
            for s in &o.samples {
                for ms in s.machines.as_ref().unwrap() {
                    prop_assert!(ms.running <= 8, "{} tasks on one machine", ms.running);
                }
            }
        }
    }

    #[test]
    fn drf_never_overallocates_its_dims(w in arb_workload()) {
        let o = run(&w, Box::new(DrfScheduler::new()));
        prop_assert!(o.all_jobs_completed());
        let cap = MachineSpec::paper_small().capacity();
        for s in &o.samples {
            for ms in s.machines.as_ref().unwrap() {
                for r in [Resource::Cpu, Resource::Mem] {
                    prop_assert!(
                        ms.allocated.get(r) <= cap.get(r) * (1.0 + 1e-9) + 1e-6,
                        "DRF over-allocated {r}: {}",
                        ms.allocated.get(r)
                    );
                }
            }
        }
    }

    #[test]
    fn srtf_completes_and_never_overallocates(w in arb_workload()) {
        let o = run(&w, Box::new(SrtfScheduler::new()));
        prop_assert!(o.all_jobs_completed());
        let cap = MachineSpec::paper_small().capacity();
        for s in &o.samples {
            for ms in s.machines.as_ref().unwrap() {
                // SRTF respects every dimension; memory must never exceed.
                prop_assert!(
                    ms.allocated.get(Resource::Mem) <= cap.get(Resource::Mem) * (1.0 + 1e-9),
                    "SRTF over-committed memory"
                );
            }
        }
    }

    #[test]
    fn all_baselines_deterministic(w in arb_workload()) {
        for mk in [
            || Box::new(FairScheduler::new()) as Box<dyn SchedulerPolicy>,
            || Box::new(DrfScheduler::new()) as Box<dyn SchedulerPolicy>,
        ] {
            let a = run(&w, mk());
            let b = run(&w, mk());
            prop_assert_eq!(a.makespan(), b.makespan());
            prop_assert_eq!(
                a.tasks.iter().map(|t| t.finish).collect::<Vec<_>>(),
                b.tasks.iter().map(|t| t.finish).collect::<Vec<_>>()
            );
        }
    }
}
