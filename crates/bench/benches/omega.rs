//! Omega-style sharded heartbeat cost vs shard count (DESIGN.md §14,
//! companion to the `omega` experiment).
//!
//! Times one full sharded heartbeat — parallel per-partition
//! `schedule()` passes over a shared read-only snapshot, serialized
//! commit-time conflict resolution, bounded intra-heartbeat retries —
//! on the saturated 10 k-machine cold-pass scenario with its backlog
//! split into 2-task jobs so the job partitioner has a wide candidate
//! set to spread. Each iteration uses a *fresh* `ShardedScheduler`
//! (unsynced ⇒ every pass genuinely cold; no adaptive state leaks
//! between iterations), with construction kept outside the timed window
//! via `iter_custom`. `shards = 1` is the transparent-delegate baseline
//! the speedup is read against.
//!
//! The accumulated quantity is the heartbeat's fan-out **critical path**
//! (`ShardedScheduler::last_heartbeat_critical_ns`): serial partition
//! bucketing, plus per round the slowest shard pass and the serialized
//! commit stage. That is the heartbeat wall-clock of a one-core-per-shard
//! deployment, and because per-pass timings are taken inside each pass it
//! stays meaningful even when the host has fewer cores than shards.
//!
//! [`ColdPassProbe`]: tetris_sim::probe::ColdPassProbe

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tetris_core::{TetrisConfig, TetrisScheduler};
use tetris_sim::probe::ColdPassProbe;
use tetris_sim::ShardedScheduler;

/// Cluster size: the acceptance scenario's 10 k machines.
const MACHINES: usize = 10_000;
/// Pending backlog per machine, matching the `omega` experiment.
const PENDING_PER_MACHINE: usize = 10;
/// Tasks per job: small, so the backlog becomes many partitionable jobs.
const TASKS_PER_JOB: usize = 2;
/// Seed for the deterministic job→shard hash.
const SEED: u64 = 42;

fn time_sharded(probe: &ColdPassProbe, shards: usize, iters: u64) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let mut policy = ShardedScheduler::new(shards, SEED, |_| {
            Box::new(TetrisScheduler::new(TetrisConfig::default()))
        });
        let placed = probe.cold_schedule_indexed(&mut policy);
        total += Duration::from_nanos(policy.last_heartbeat_critical_ns());
        black_box(placed);
    }
    total
}

fn bench_omega_heartbeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("omega_heartbeat");
    group.sample_size(10);

    let probe =
        ColdPassProbe::with_tasks_per_job(MACHINES, MACHINES * PENDING_PER_MACHINE, TASKS_PER_JOB);
    for &shards in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter_custom(|iters| time_sharded(&probe, shards, iters))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_omega_heartbeat);
criterion_main!(benches);
